#!/usr/bin/env python3
"""A fault-tolerant key-value store in ~60 lines of application code.

Shows the toolkit composing: a replicated dict (abcast state machine),
distributed mutual exclusion for a read-modify-write, state transfer to a
late joiner, and a two-resource distributed transaction — all surviving a
replica crash.

Run:  python examples/replicated_kv.py
"""

from repro import Environment, GroupNode, build_group
from repro.toolkit import (
    DistributedMutex,
    ReplicatedDict,
    TransactionCoordinator,
    TransactionResource,
)


def main() -> None:
    env = Environment(seed=5)

    print("== a replicated dict over a group of three ==")
    nodes, members = build_group(env, "kv", 3)
    replicas = [ReplicatedDict(m, "kv") for m in members]
    replicas[0].put("motd", "hello, 1989")
    replicas[1].put("users", 42)
    env.run_for(1.0)
    for replica, member in zip(replicas, members):
        print(f"  {member.me}: motd={replica.get('motd')!r} users={replica.get('users')}")

    print("\n== read-modify-write under a distributed lock ==")
    locks = [DistributedMutex(m, "users-lock") for m in members]

    def bump(owner_index: int) -> None:
        lock, replica = locks[owner_index], replicas[owner_index]

        def critical_section() -> None:
            current = replica.get("users")
            replica.put("users", current + 1)
            # release after the update has been ordered
            env.scheduler.after(0.1, lock.release)

        lock.acquire(critical_section)

    bump(0)
    bump(2)  # queued behind the first holder; no lost update
    env.run_for(3.0)
    print(f"  users after two locked increments: {replicas[1].get('users')}")
    assert replicas[1].get("users") == 44

    print("\n== replica crash, then a late joiner with state transfer ==")
    nodes[0].crash()
    env.run_for(3.0)
    joiner = GroupNode(env, "kv-new")
    joined_member = joiner.runtime.join_group("kv", contact="kv-1")
    joined_dict = ReplicatedDict(joined_member, "kv")
    env.run_for(5.0)
    print(
        f"  joiner sees motd={joined_dict.get('motd')!r}, "
        f"users={joined_dict.get('users')} (transferred, not replayed)"
    )
    assert joined_dict.get("users") == 44

    print("\n== a distributed transaction across two resource groups ==")
    a_nodes, a_members = build_group(env, "accounts", 3, prefix="acct")
    s_nodes, s_members = build_group(env, "stocks", 3, prefix="stk")
    accounts = [TransactionResource(m, "accounts") for m in a_members]
    stocks = [TransactionResource(m, "stocks") for m in s_members]
    txc_node = GroupNode(env, "txc")
    txc = TransactionCoordinator(txc_node, rpc=txc_node.runtime.rpc)
    outcome = []
    txc.execute(
        {"acct-0": [("alice", -100)], "stk-0": [("alice:IBM", 2)]},
        on_done=outcome.append,
    )
    env.run_for(5.0)
    print(
        f"  transaction committed: {outcome[0]}; "
        f"alice balance delta={accounts[1].get('alice')}, "
        f"alice IBM shares={stocks[2].get('alice:IBM')}"
    )
    assert outcome == [True]


if __name__ == "__main__":
    main()
