#!/usr/bin/env python3
"""Quickstart: virtually synchronous process groups in five minutes.

Builds a small group on the simulated network, shows the three multicast
orderings, a failure with automatic view change, and a dynamic join with
state transfer — the classical ISIS programming model this library
re-creates.

Run:  python examples/quickstart.py
"""

from repro import Environment, FIFO, CAUSAL, TOTAL, GroupNode, build_group


def main() -> None:
    # One Environment per simulation: scheduler + seeded RNG + network.
    env = Environment(seed=42)

    # A process group of four workstations, statically bootstrapped.
    nodes, members = build_group(env, "demo", 4)

    for member in members:
        member.add_delivery_listener(
            lambda event, me=member.me: print(
                f"  [{env.now:7.3f}s] {me} delivered {event.payload!r} "
                f"({event.ordering}, from {event.sender})"
            )
        )
        member.add_view_listener(
            lambda event, me=member.me: print(
                f"  [{env.now:7.3f}s] {me} installed view #{event.view.seq} "
                f"{list(event.view.members)}"
            )
        )

    print("== three orderings ==")
    members[0].multicast("fifo: cheap, per-sender order", FIFO)
    members[1].multicast("causal: respects happens-before", CAUSAL)
    members[2].multicast("total: same sequence everywhere", TOTAL)
    env.run_for(1.0)

    print("\n== a member crashes: survivors agree on the next view ==")
    nodes[3].crash()
    env.run_for(3.0)
    print(f"  survivors' view: {list(members[0].view.members)}")

    print("\n== a new workstation joins, with state transfer ==")
    members[0].state_provider = lambda: {"orders-processed": 17}
    newcomer = GroupNode(env, "newcomer")
    joined = newcomer.runtime.join_group("demo", contact="demo-1")
    joined.state_receiver = lambda state: print(
        f"  newcomer received application state: {state}"
    )
    env.run_for(3.0)
    print(f"  final view everywhere: {list(members[0].view.members)}")
    assert joined.view == members[0].view

    print("\n== totally ordered updates stay identical everywhere ==")
    log = {m.me: [] for m in members[:3]}
    for m in members[:3]:
        m.add_delivery_listener(
            lambda e, me=m.me: log[me].append(e.payload)
            if isinstance(e.payload, int)
            else None
        )
    for i, m in enumerate(members[:3]):
        m.multicast(i, TOTAL)  # three concurrent writers
    env.run_for(2.0)
    sequences = {tuple(v) for v in log.values()}
    print(f"  delivery sequences observed: {sequences}")
    assert len(sequences) == 1, "abcast must agree everywhere"

    stats = env.network.stats
    print(
        f"\nsimulation done at t={env.now:.2f}s: "
        f"{stats.messages} messages, {stats.wire_packets} wire packets"
    )


if __name__ == "__main__":
    main()
