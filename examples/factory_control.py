#!/usr/bin/env python3
"""Manufacturing control: the paper's second motivating application.

120 work cells run as a hierarchical large group; a resilient inventory
group replicates stock levels with totally ordered updates; production
orders flow through the hierarchical coordinator-cohort service; and a
factory-wide shift change is pushed with the *atomic* tree broadcast so
every live cell switches recipe at once.

Run:  python examples/factory_control.py
"""

from repro.metrics import print_table
from repro.workloads import ManufacturingWorkload


def main() -> None:
    print("building a 120-cell factory (hierarchical groups + replicated inventory)...")
    workload = ManufacturingWorkload(
        cells=120,
        inventory_replicas=3,
        status_rate=0.4,
        order_rate=6.0,
        seed=21,
        resiliency=3,
        fanout=8,
    )
    state = workload.cluster.manager_root.replica.state
    print(
        f"  {state.total_size} cells in {len(state.leaves)} leaf subgroups, "
        f"inventory replicated at {len(workload.inventory)} control stations"
    )

    result = workload.run(duration=8.0, dispatch_clients=3, reconfigure_at=3.0)

    snapshots = [tuple(sorted(d.snapshot().items())) for d in workload.inventory]
    consistent = len(set(snapshots)) == 1
    live = [m.node.address for m in workload.cluster.live_members()]
    recipes_ok = all(workload.recipes_applied.get(a) == [1] for a in live)

    print_table(
        "factory results",
        ["metric", "value"],
        [
            ("cells online", int(result.extra["cells"])),
            ("cell status reports (leaf-local)", result.events_published),
            ("orders completed",
             f"{result.requests_answered}/{result.requests_sent}"),
            ("order p99 latency (ms)",
             round(result.request_latency.p99 * 1000, 2)),
            ("inventory replicas consistent", "yes" if consistent else "NO"),
            ("shift change applied atomically", "yes" if recipes_ok else "NO"),
        ],
        note="consistency from abcast replication; atomicity from the "
        "two-phase tree broadcast",
    )
    assert consistent and recipes_ok

    print("\nfinal stock levels:")
    for part, level in sorted(workload.inventory[0].snapshot().items()):
        print(f"  {part:>6}: {level}")


if __name__ == "__main__":
    main()
