#!/usr/bin/env python3
"""Trading room: the paper's first motivating application at scale.

150 analyst workstations join a hierarchical large group; outside data
feeds publish market events through the bounded-fanout tree broadcast;
trader stations query positions via the coordinator-cohort service that
runs inside each leaf.  Mid-run, a whole rack of analysts fails — the
rest of the room never notices (bounded failure disturbance, paper §3).

Run:  python examples/trading_room.py
"""

from repro.metrics import print_table
from repro.workloads import TradingRoomWorkload


def main() -> None:
    print("building a 150-analyst trading room (hierarchical groups)...")
    workload = TradingRoomWorkload(
        analysts=150, feeds=4, tick_rate=1.5, seed=9, resiliency=3, fanout=8
    )
    cluster = workload.cluster
    manager = cluster.manager_root.replica
    state = manager.state
    print(
        f"  placed {state.total_size} analysts in {len(state.leaves)} leaf "
        f"subgroups, branch tree depth {state.depth()}, "
        f"max branch children {state.max_branch_children()}"
    )

    # Kill one rack: every member of one leaf subgroup.
    rack_leaf = sorted(state.leaves)[0]
    rack = [m for m in cluster.members if m.leaf_id == rack_leaf]
    print(f"  scheduling a rack failure: all {len(rack)} analysts of {rack_leaf}")

    def rack_failure() -> None:
        for member in rack:
            member.node.crash()

    workload.env.scheduler.after(3.0, rack_failure)

    result = workload.run(duration=8.0, query_clients=4)

    live = int(result.extra["analysts"])
    print_table(
        "trading room results",
        ["metric", "value"],
        [
            ("analysts still trading", live),
            ("feed events published", result.events_published),
            ("tick p50 latency (ms)", round(result.latency.p50 * 1000, 2)),
            ("tick p99 latency (ms)", round(result.latency.p99 * 1000, 2)),
            ("position queries answered",
             f"{result.requests_answered}/{result.requests_sent}"),
            ("query p99 latency (ms)",
             round(result.request_latency.p99 * 1000, 2)),
        ],
        note="ticks stay sub-second through the rack failure; queries that "
        "had been routed to the failed rack show the fail-over in their p99",
    )
    assert result.latency.p99 < 1.0, "paper demands sub-second response"

    after = workload.cluster.manager_root.replica.state
    print(
        f"\nafter the rack failure the leader tracks {len(after.leaves)} "
        f"leaves totalling {after.total_size} analysts; "
        f"'leaf-lost' events: "
        f"{[e for e in manager.events if e[0] == 'leaf-lost']}"
    )


if __name__ == "__main__":
    main()
