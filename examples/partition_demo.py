#!/usr/bin/env python3
"""Network partitions and long-distance links (the paper's §5 agenda).

Demonstrates the 1989 failure mode — a partitioned flat group splits its
brain — and the primary-partition rule that prevents it: only the island
holding a strict majority of the current view may install new views; the
minority stalls, then rejoins after the network heals.  Finishes with a
group spanning two sites over a simulated long-distance link.

Run:  python examples/partition_demo.py
"""

from repro import Environment, FIFO, FixedLatency, GroupNode
from repro.failure import HeartbeatDetector
from repro.membership import build_group
from repro.net import SiteLatency


def heartbeats(node):
    return HeartbeatDetector(node, interval=0.1, suspect_after=0.5)


def build(primary_partition):
    env = Environment(seed=7, latency=FixedLatency(0.002))
    nodes, members = build_group(
        env,
        "svc",
        5,
        detector_factory=heartbeats,
        primary_partition=primary_partition,
        gossip_interval=None,
    )
    env.run_for(1.0)
    return env, nodes, members


def show_views(members, label):
    print(f"  {label}:")
    for m in members:
        print(f"    {m.me}: view #{m.view.seq} {list(m.view.members)}")


def main() -> None:
    print("== without the rule: a partition splits the brain ==")
    env, nodes, members = build(primary_partition=False)
    env.network.partitions.partition({"svc-0", "svc-1"}, {"svc-2", "svc-3", "svc-4"})
    env.run_for(10.0)
    show_views(members, "after 10s of partition (DIVERGED — both sides 'won')")

    print("\n== with the primary-partition rule ==")
    env, nodes, members = build(primary_partition=True)
    env.network.partitions.partition({"svc-0", "svc-1"}, {"svc-2", "svc-3", "svc-4"})
    env.run_for(10.0)
    show_views(members, "after 10s of partition (majority progressed, minority stalled)")

    print("\n  healing the network and rejoining the stranded pair...")
    env.network.partitions.heal()
    env.run_for(2.0)
    rejoined = [nodes[i].runtime.rejoin_group("svc", contact="svc-2") for i in (0, 1)]
    env.run_for(10.0)
    show_views(members[2:] , "after heal + rejoin")
    assert all(m.is_member for m in rejoined)
    assert set(members[2].view.members) == {f"svc-{i}" for i in range(5)}
    print("  all five workstations back in one agreed view — no split brain.")

    print("\n== long-distance links: one group across two sites ==")
    env = Environment(
        seed=8,
        latency=SiteLatency(local=FixedLatency(0.001), wan_delay=0.04, wan_jitter=0.0),
    )
    addresses = ["nyc.a", "nyc.b", "sfo.a", "sfo.b"]
    nodes = [GroupNode(env, a, gossip_interval=None) for a in addresses]
    members = [n.runtime.create_group("wan", addresses) for n in nodes]
    arrival = {}
    for m in members:
        m.add_delivery_listener(lambda e, me=m.me: arrival.setdefault(me, env.now))
    start = env.now
    members[0].multicast("coast to coast", FIFO)
    env.run_for(1.0)
    for address in addresses:
        print(f"    {address}: delivered after {(arrival[address]-start)*1000:6.2f} ms")
    print("  same-site neighbours hear it ~40ms before the far coast —")
    print("  exactly why §5 flags long-distance links as a structuring concern.")


if __name__ == "__main__":
    main()
