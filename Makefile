PYTHON ?= python
export PYTHONPATH := src

.PHONY: test lint lint-baseline analyze sanitize smoke-asyncio smoke-socket trace bench bench-report bench-guard bench-quick bench-scale bench-claims bench-tables bench-comm bench-wire bench-parallel perf-smoke clean

## Tier-1: unit + integration tests (includes the quick perf smoke and
## the backend smokes, markers: asyncio_smoke, socket_smoke).
test:
	$(PYTHON) -m pytest -x -q

## Static determinism & protocol-safety analysis: per-file rules
## (RL001…RL011) plus the whole-program passes (RL012 taint, RL013
## handler exhaustiveness, RL014 await-atomicity); --check-baseline
## keeps the grandfathered-findings file from going stale.
lint:
	$(PYTHON) -m tools.lint src/repro --flow --check-baseline

## Rewrite the grandfathered-findings baseline from the current tree.
lint-baseline:
	$(PYTHON) -m tools.lint src/repro --flow --update-baseline

## Whole-program analysis report: symbol table + call graph stats and
## every finding (pre-baseline) as JSON under docs/ (docs/devtools.md,
## "Whole-program analysis").
analyze:
	$(PYTHON) -m tools.lint src/repro --flow --json docs/flow_report.json

## Runtime virtual-synchrony sanitizer suite (VS001…VS006 hooks).
sanitize:
	$(PYTHON) -m pytest tests/test_sanitizer.py -q

## Wall-clock smoke: the hierarchical demo live on the asyncio engine,
## strict sanitizer attached, under a hard timeout (a wall-clock run can
## hang in ways the simulator cannot — never let CI wait on it).
smoke-asyncio:
	timeout 60 $(PYTHON) -m repro live --workers 6 --time-scale 0.1

## Deployment smoke: both parity scenarios as three real OS processes
## over loopback UDP (tracker bootstrap, wire codec, per-node
## sanitizers), each checked against the sim reference and under the
## same hard timeout (docs/deployment.md).
smoke-socket:
	timeout 60 $(PYTHON) -m repro deploy --nodes 3 --scenario flat
	timeout 60 $(PYTHON) -m repro deploy --nodes 3 --scenario hier

## Causal-trace demo: one request + one treecast through a hierarchical
## service, audited against E1 (2n messages) and E8 (log-depth stages);
## writes a Chrome trace-event JSON (chrome://tracing / perfetto).
trace:
	$(PYTHON) -m tools.trace_report --out trace_demo.json

## Paper experiments + event-core perf scenarios under pytest-benchmark.
## (The thousand-node claim tables take minutes each — run those with
## `make bench-claims`.)
bench:
	$(PYTHON) -m pytest benchmarks -q --benchmark-only -m "not scale_claims"

## E2/E3/E7 re-measured at n=1024 (bench_scale_claims.py — the flat
## 1024-member reference group alone takes several minutes to
## bootstrap).  Tables recorded in EXPERIMENTS.md "Claim tables at
## n=1024".
bench-claims:
	$(PYTHON) -m pytest benchmarks/bench_scale_claims.py -q --benchmark-only -s -m scale_claims

## Wall-clock perf suite: re-measures the current tree and merges the
## numbers into BENCH_core.json next to the recorded baseline.  The
## --lint preflight refuses to benchmark a nondeterministic tree.
bench-report:
	$(PYTHON) -m tools.perf_report --lint --label optimized --out BENCH_core.json --merge
	$(PYTHON) -m tools.perf_report --guard --update

## Perf regression gate: flow-clean lint preflight, then rerun the
## quick guard scenarios against the reference recorded in
## BENCH_core.json — fails on any behaviour-fingerprint change or a
## >10% events/sec regression.  Suitable as a CI preflight alongside
## `make lint`.
bench-guard:
	$(PYTHON) -m tools.lint src/repro --flow
	$(PYTHON) -m tools.perf_report --guard

## Fast variant of the perf suite for local iteration (no JSON merge).
bench-quick:
	$(PYTHON) -m tools.perf_report --quick --label quick --out /dev/null

## Scaling-curve report (docs/hierarchy.md): the load-driven recursive
## hierarchy at n=1024/2048/4096 with heartbeats off — events/sec, tree
## shape, reorg counts and routing-disruption windows per size, plus the
## sanitized n=1024 acceptance run and the n=256 guard reference that
## `make bench-guard` re-measures whenever BENCH_scale.json is present.
bench-scale:
	$(PYTHON) -m tools.perf_report --scale

## Wire-packing/piggyback report (docs/comms.md): packing on vs off over
## byte-identical hierarchical steady-state windows, the comms-off
## fingerprint guard against BENCH_core.json, and the sanitizer sweep on
## both engines.  Writes BENCH_comm.json.
bench-comm:
	$(PYTHON) -m tools.perf_report --comm

## Multi-core parallel-engine report (docs/simulator.md, "Parallel
## execution"): the statically placed hierarchy at n=2048 across
## W ∈ {1,2,4} worker processes vs the serial sharded baseline —
## digest parity at every W, per-worker CPU seconds and events/sec,
## the sanitized parallel run, and the W=4 speedup gate (>= 2.5x;
## wall-clock on a >= 5-core host, critical-path otherwise).  Writes
## BENCH_para.json, whose guard fingerprints `make bench-guard`
## re-checks whenever the file is present.
bench-parallel:
	$(PYTHON) -m tools.perf_report --parallel --out BENCH_para.json

## Real-UDP wire report (docs/deployment.md): the hierarchical parity
## scenario (16 workers) as a 4-node loopback cluster, frames/bytes on
## the wire per checked delivery, gated on parity with the sim
## reference.  Writes BENCH_wire.json.
bench-wire:
	$(PYTHON) -m tools.perf_report --wire

## Regenerate the experiment-table capture under docs/ (single pass,
## timing loop disabled, hash seed pinned).  A root-level
## bench_tables.txt from a raw pytest redirect is scratch — gitignored.
bench-tables:
	$(PYTHON) -m tools.perf_report --tables docs/bench_tables.txt

## Just the event-core perf benchmarks (marker: perf).
perf-smoke:
	$(PYTHON) -m pytest benchmarks -q --benchmark-only -m perf

clean:
	rm -rf .pytest_cache .benchmarks
	find . -name __pycache__ -type d -prune -exec rm -rf {} +
