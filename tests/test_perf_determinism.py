"""Determinism digest: the guard that perf work changes nothing observable.

The event-core optimisations (scheduler fast paths, timer re-arming,
envelope reuse, counter rewrites) must be *behaviour-preserving*: for a
fixed seed the simulation must produce the same messages, between the
same endpoints, in the same order, at the same simulated times.  This
module pins that down three ways:

1. same-seed reruns of a mid-size hierarchical scenario (with churn)
   produce identical stats snapshots, event counts and delivery digests;
2. the digest of a flat churn scenario that consumes *no* randomness
   (fixed latency, no loss — the flat stack draws nothing from the RNG)
   matches a constant frozen from the pre-optimisation code, so it is
   stable across machines, processes and hash seeds;
3. different seeds diverge (the digest actually discriminates).

Note the hierarchical scenario is compared within one process only: the
hierarchy layer consumes forked ``SimRandom`` streams whose seeds are
derived with ``hash()``, so its exact trace varies with Python's
per-process hash randomization (pin ``PYTHONHASHSEED`` to compare across
processes — ``tools/perf_report.py`` does exactly that).
"""

from repro.core import (
    LargeGroupParams,
    build_large_group,
    build_leader_group,
)
from repro.failure.detector import HeartbeatDetector
from repro.membership import build_group
from repro.metrics.digest import DeliveryDigest
from repro.net import FixedLatency, LanLatency
from repro.proc import Environment


def _hb(node):
    return HeartbeatDetector(node, interval=0.2, suspect_after=1.0)


def run_hier_churn_scenario(
    seed: int, latency=None, drop: float = 0.0, instrument=None, sim=None
):
    """A mid-size hierarchical service with heartbeats, gossip, a crash
    and a recovery — exercising every path the perf rewrite touched.

    ``instrument``, if given, is called with the environment before the
    run starts — how tests bolt observation-only instrumentation (e.g.
    ``repro.trace.attach``) onto the frozen scenario to prove it changes
    nothing.  ``sim`` (a :class:`repro.sim.SimParams`) selects the engine
    flavour — the sharded-scheduler parity tests run the same scenario at
    ``shards=1`` and ``shards=2`` and demand identical tuples.
    """
    env = Environment(
        seed=seed,
        latency=latency if latency is not None else FixedLatency(0.002),
        drop_probability=drop,
        sim=sim,
    )
    params = LargeGroupParams(resiliency=3, fanout=6)
    leaders = build_leader_group(
        env, "svc", params, detector_factory=_hb, gossip_interval=0.5
    )
    contacts = tuple(r.node.address for r in leaders)
    build_large_group(
        env,
        "svc",
        40,
        params,
        contacts,
        join_stagger=0.05,
        detector_factory=_hb,
        gossip_interval=0.5,
    )
    digest = DeliveryDigest(env.network)
    if instrument is not None:
        instrument(env)
    env.run_for(4.0)
    env.crash("svc-w-3")
    env.run_for(2.0)
    env.process("svc-w-3").recover()
    env.run_for(4.0)
    return (
        digest.hexdigest(),
        digest.count,
        env.network.stats.snapshot(),
        env.scheduler.events_processed,
        env.now,
    )


def run_flat_churn_scenario(seed: int = 23, instrument=None):
    """A flat heartbeat-monitored group with a crash and a recovery.

    Fixed latency, no loss, no duplicates: the run consumes zero RNG
    draws, so its aggregate counters are machine-independent constants —
    frozen below from the seed code.  The exact delivery *order* still
    varies with Python's per-process hash randomization (set iteration in
    the flush protocol), so the frozen order digest is checked in a
    ``PYTHONHASHSEED=0`` subprocess.
    """
    env = Environment(seed=seed, latency=FixedLatency(0.002))
    _nodes, _members = build_group(
        env, "svc", 32, detector_factory=_hb, gossip_interval=0.5
    )
    digest = DeliveryDigest(env.network)
    if instrument is not None:
        instrument(env)
    env.run_for(3.0)
    env.crash("svc-5")
    env.run_for(2.0)
    env.process("svc-5").recover()
    env.run_for(3.0)
    return (
        digest.hexdigest(),
        digest.count,
        env.network.stats.snapshot(),
        env.scheduler.events_processed,
        env.now,
    )


# Frozen from the pre-optimisation event core (PR 1 baseline).  If an
# "optimisation" changes these, the optimisation changed simulation
# behaviour — that is a bug, not a baseline refresh.
FROZEN_DIGEST = "2223771b75816b6c31653ec0dc3247d4d766b9af5c8e2160e15732eb87c8d849"
FROZEN_DELIVERIES = 103067
FROZEN_MESSAGES = 104773
FROZEN_BYTES = 9151824
FROZEN_EVENTS = 110588


def test_same_seed_identical_digest_and_stats():
    a = run_hier_churn_scenario(23)
    b = run_hier_churn_scenario(23)
    assert a[0] == b[0]  # delivery digest (order-sensitive)
    assert a[1] == b[1]  # delivery count
    assert a[2] == b[2]  # full StatsSnapshot (messages, bytes, categories)
    assert a[3] == b[3]  # events processed
    assert a[4] == b[4]  # final simulated time


def test_same_seed_identical_under_lossy_lan():
    a = run_hier_churn_scenario(29, latency=LanLatency(), drop=0.03)
    b = run_hier_churn_scenario(29, latency=LanLatency(), drop=0.03)
    assert a == b


def test_counts_match_pre_optimisation_baseline():
    """Aggregate counters are hash-independent; compare them directly."""
    _digest, deliveries, snapshot, events, now = run_flat_churn_scenario(23)
    assert deliveries == FROZEN_DELIVERIES
    assert snapshot.messages == FROZEN_MESSAGES
    assert snapshot.bytes == FROZEN_BYTES
    assert events == FROZEN_EVENTS
    assert now == 8.0


def test_digest_matches_pre_optimisation_baseline():
    """Delivery *order* digest, compared under a pinned hash seed."""
    import os
    import subprocess
    import sys

    code = (
        "from tests.test_perf_determinism import run_flat_churn_scenario;"
        "print(run_flat_churn_scenario(23)[0])"
    )
    env = dict(os.environ, PYTHONHASHSEED="0")
    repo_root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    env["PYTHONPATH"] = (
        os.path.join(repo_root, "src") + os.pathsep + repo_root
        + (os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
    )
    out = subprocess.run(
        [sys.executable, "-c", code],
        env=env,
        cwd=repo_root,
        capture_output=True,
        text=True,
        check=True,
    )
    assert out.stdout.strip() == FROZEN_DIGEST


def test_different_seeds_diverge():
    # With fixed latency and no loss these scenarios draw nothing from the
    # RNG, so different seeds coincide by construction; under a sampled
    # latency model the seed must matter.
    a = run_hier_churn_scenario(23, latency=LanLatency())
    b = run_hier_churn_scenario(31, latency=LanLatency())
    assert a[0] != b[0]


# -- recycling lifecycle edge cases ------------------------------------------
#
# The free-list discipline (docs/simulator.md) has two sharp edges: an
# event cancelled *while its timestamp is already being drained*, and a
# handle held after its event returned to the pool.  Both must stay
# safe, not just fast.


def test_cancel_during_callback_same_timestamp():
    """A callback cancels a later event at the SAME timestamp: the victim
    must not fire, and its (recyclable) event must reach the free list."""
    from repro.sim import Scheduler

    sched = Scheduler()
    fired = []
    handles = {}

    def killer(_arg):
        fired.append("killer")
        handles["victim"].cancel()

    sched.at_call(1.0, killer, None)
    handles["victim"] = sched.at_call_once(1.0, fired.append, "victim")
    sched.run()
    assert fired == ["killer"]
    assert sched.pending == 0
    assert sched.alloc_stats["pooled_events"] >= 1


def test_rearm_after_recycle_raises():
    """Re-arming a fired one-shot is rejected: its event object may
    already be serving an unrelated caller from the free list."""
    import pytest

    from repro.sim import Scheduler, SimulationError

    sched = Scheduler()
    fired = []
    handle = sched.after_call_once(0.1, fired.append, "x")
    sched.run()
    assert fired == ["x"]
    with pytest.raises(SimulationError):
        sched.rearm(handle, 0.1)


def test_envelope_reuse_across_packed_wire_packets():
    """With wire packing on, envelopes held by the packer across flushes
    still return to the free list: after warm-up a steady-state window
    constructs zero fresh envelopes."""
    from repro.net.packer import CommsParams

    env = Environment(
        seed=7,
        latency=FixedLatency(0.002),
        comms=CommsParams.enabled(latency_floor=0.002),
    )
    build_group(env, "svc", 8, detector_factory=_hb, gossip_interval=0.5)
    env.run_for(3.0)  # warm-up: pools grow to the steady-state peak
    stats = env.network.alloc_stats
    fresh_before = stats["fresh_envelopes"]
    assert stats["pooled_envelopes"] > 0
    env.run_for(3.0)
    assert env.network.alloc_stats["fresh_envelopes"] == fresh_before


# -- sharded scheduler parity ------------------------------------------------


def test_sharded_scheduler_digest_parity():
    """shards=2 must replay the exact shards=1 run: same delivery digest,
    same counts, same event total, same final time."""
    from repro.sim import SimParams

    base = run_hier_churn_scenario(23)
    sharded = run_hier_churn_scenario(23, sim=SimParams(shards=2))
    assert sharded == base


def test_sharded_scheduler_sanitizer_clean():
    """A small flat group on shards=2 passes the virtual-synchrony
    sanitizer (strict mode raises on any VS violation)."""
    from repro.membership import FIFO
    from repro.metrics.sanitizer import install_sanitizer
    from repro.sim import SimParams

    env = Environment(
        seed=7, latency=FixedLatency(0.002), sim=SimParams(shards=2)
    )
    _nodes, members = build_group(
        env, "g", 4, detector_factory=_hb, gossip_interval=0.5
    )
    sanitizer = install_sanitizer(members)
    for start, member, payloads in (
        (0.1, members[0], ("a0", "a1")),
        (0.2, members[2], ("b0", "b1")),
    ):
        def burst(member=member, payloads=payloads):
            for payload in payloads:
                member.multicast(payload, FIFO)

        env.scheduler.after(start, burst)
    env.run_for(2.0)
    report = sanitizer.check(at_quiescence=True)
    assert report["deliveries_checked"] > 0
