"""Edge-case tests for the leader replica, runtime multi-group support and
membership corner cases."""

from repro.core import (
    GetHierarchyInfo,
    GetLeafAssignment,
    JoinLarge,
    LargeGroupParams,
    ReportLeafStatus,
    build_large_group,
    build_leader_group,
)
from repro.membership import FIFO, GroupNode, NotMemberError, build_group
from repro.net import FixedLatency
from repro.proc import Environment

import pytest


def build_service(n=8, seed=1, resiliency=3, fanout=4):
    env = Environment(seed=seed, latency=FixedLatency(0.002))
    params = LargeGroupParams(resiliency=resiliency, fanout=fanout)
    leaders = build_leader_group(env, "svc", params)
    contacts = tuple(r.node.address for r in leaders)
    members = build_large_group(env, "svc", n, params, contacts)
    env.run_for(5.0 + 0.3 * n)
    return env, params, leaders, members


def rpc_once(env, node, target, body, timeout=1.0):
    replies = []
    node.runtime.rpc.call(
        target, body, on_reply=lambda v, s: replies.append(v), timeout=timeout
    )
    env.run_for(timeout + 1.0)
    return replies


# -- leader RPC behaviour -------------------------------------------------------------


def test_non_manager_replica_redirects_joins():
    env, params, leaders, members = build_service()
    probe = GroupNode(env, "probe")
    replica = leaders[1]  # not the manager
    assert not replica.is_manager
    replies = rpc_once(
        env, probe, replica.node.address, JoinLarge(service="svc", joiner="probe")
    )
    assert replies and replies[0][0] == "redirect"
    assert replies[0][1] == leaders[0].node.address


def test_non_manager_redirects_assignment_and_reports():
    env, params, leaders, members = build_service()
    probe = GroupNode(env, "probe")
    target = leaders[2].node.address
    r1 = rpc_once(env, probe, target, GetLeafAssignment(service="svc"))
    assert r1 and r1[0][0] == "redirect"
    r2 = rpc_once(
        env,
        probe,
        target,
        ReportLeafStatus(service="svc", leaf_id="x", size=1, contacts=("probe",)),
    )
    assert r2 and r2[0][0] == "redirect"


def test_stale_leaf_report_acknowledged_as_stale():
    env, params, leaders, members = build_service()
    probe = GroupNode(env, "probe")
    manager = leaders[0]
    replies = rpc_once(
        env,
        probe,
        manager.node.address,
        ReportLeafStatus(
            service="svc", leaf_id="never-existed", size=3, contacts=("probe",)
        ),
    )
    assert replies == [("stale",)]
    assert "never-existed" not in manager.state.leaves


def test_hierarchy_info_served_by_any_replica():
    env, params, leaders, members = build_service()
    probe = GroupNode(env, "probe")
    # info is read-only; even a cohort replica answers from its replica
    replies = rpc_once(
        env, probe, leaders[1].node.address, GetHierarchyInfo(service="svc")
    )
    assert replies and replies[0]["total_size"] == 8


def test_assignment_round_robin_cursor():
    env, params, leaders, members = build_service(n=12, fanout=2, resiliency=2)
    probe = GroupNode(env, "probe")
    manager = next(r for r in leaders if r.is_manager)
    seen = []
    for _ in range(4):
        replies = rpc_once(
            env, probe, manager.node.address, GetLeafAssignment(service="svc")
        )
        seen.append(replies[0][1])
    assert len(set(seen)) >= 2  # rotates across leaves


def test_assignment_fails_when_no_members():
    env = Environment(seed=3, latency=FixedLatency(0.002))
    params = LargeGroupParams(resiliency=2, fanout=4)
    leaders = build_leader_group(env, "svc", params)
    env.run_for(2.0)
    probe = GroupNode(env, "probe")
    replies = rpc_once(
        env, probe, leaders[0].node.address, GetLeafAssignment(service="svc")
    )
    assert replies == [None]  # RpcError surfaced as error reply


def test_leader_events_record_ops_and_manager():
    env, params, leaders, members = build_service()
    manager = leaders[0]
    kinds = {e[0] for e in manager.events}
    assert "manager" in kinds
    assert "op" in kinds


# -- runtime multi-group behaviour -----------------------------------------------------


def test_one_process_in_two_groups_routes_independently():
    env = Environment(seed=5, latency=FixedLatency(0.002))
    shared = GroupNode(env, "shared")
    others_a = [GroupNode(env, f"a{i}") for i in range(2)]
    others_b = [GroupNode(env, f"b{i}") for i in range(2)]
    ga_members = ["shared", "a0", "a1"]
    gb_members = ["shared", "b0", "b1"]
    ga = [shared.runtime.create_group("ga", ga_members)] + [
        n.runtime.create_group("ga", ga_members) for n in others_a
    ]
    gb = [shared.runtime.create_group("gb", gb_members)] + [
        n.runtime.create_group("gb", gb_members) for n in others_b
    ]
    got_a, got_b = [], []
    ga[1].add_delivery_listener(lambda e: got_a.append(e.payload))
    gb[1].add_delivery_listener(lambda e: got_b.append(e.payload))

    from dataclasses import dataclass

    @dataclass
    class Note:
        category = "note"
        text: str = ""

    ga[0].multicast(Note("to-a"), FIFO)
    gb[0].multicast(Note("to-b"), FIFO)
    env.run_for(1.0)
    assert [n.text for n in got_a] == ["to-a"]
    assert [n.text for n in got_b] == ["to-b"]
    assert shared.runtime.has_group("ga") and shared.runtime.has_group("gb")
    assert len(shared.runtime.groups) == 2


def test_forget_group_stops_participation():
    env = Environment(seed=6, latency=FixedLatency(0.002))
    nodes, members = build_group(env, "g", 3)
    nodes[2].runtime.forget_group("g")
    assert not nodes[2].runtime.has_group("g")
    # the others eventually exclude the silent member on flush timeout;
    # in the meantime their multicasts still flow to each other
    from dataclasses import dataclass

    @dataclass
    class Note:
        category = "note"
        text: str = ""

    got = []
    members[1].add_delivery_listener(lambda e: got.append(e.payload.text))
    members[0].multicast(Note("still-works"), FIFO)
    env.run_for(1.0)
    assert got == ["still-works"]


def test_create_group_requires_self_in_membership():
    env = Environment(seed=7)
    node = GroupNode(env, "x")
    with pytest.raises(ValueError):
        node.runtime.create_group("g", ["someone-else"])


def test_duplicate_group_membership_rejected():
    env = Environment(seed=8)
    node = GroupNode(env, "x")
    node.runtime.create_group("g", ["x"])
    with pytest.raises(ValueError):
        node.runtime.create_group("g", ["x"])
    with pytest.raises(ValueError):
        node.runtime.join_group("g", contact="y")


def test_left_member_cannot_multicast():
    env = Environment(seed=9, latency=FixedLatency(0.002))
    nodes, members = build_group(env, "g", 3)
    members[2].leave()
    env.run_for(3.0)
    assert members[2].left
    with pytest.raises(NotMemberError):
        members[2].multicast("nope", FIFO)
