"""Tests for the name service and client-side service router."""

from repro.core import (
    LargeGroupParams,
    LookupName,
    NameClient,
    RegisterName,
    ServiceRouter,
    UnregisterName,
    build_large_group,
    build_leader_group,
    build_name_service,
)
from repro.membership import GroupNode
from repro.net import FixedLatency
from repro.proc import Environment, Rpc


def env_with_ns(seed=1, replicas=3):
    env = Environment(seed=seed, latency=FixedLatency(0.002))
    servers = build_name_service(env, replicas=replicas)
    return env, servers


def test_register_lookup_roundtrip():
    env, servers = env_with_ns()
    client = GroupNode(env, "c0")
    results = []
    client.runtime.rpc.call(
        "ns-0",
        RegisterName(name="svc", contacts=("a", "b")),
        on_reply=lambda v, s: None,
    )
    env.run_for(0.5)
    client.runtime.rpc.call(
        "ns-1",  # replicated to peers
        LookupName(name="svc"),
        on_reply=lambda v, s: results.append(v),
    )
    env.run_for(0.5)
    assert results == [("a", "b")]


def test_lookup_unknown_name_errors():
    env, servers = env_with_ns()
    client = GroupNode(env, "c0")
    results = []
    client.runtime.rpc.call(
        "ns-0", LookupName(name="ghost"), on_reply=lambda v, s: results.append(v)
    )
    env.run_for(0.5)
    assert results == [None]


def test_unregister_propagates():
    env, servers = env_with_ns()
    client = GroupNode(env, "c0")
    client.runtime.rpc.call(
        "ns-0", RegisterName(name="svc", contacts=("a",)), on_reply=lambda v, s: None
    )
    env.run_for(0.5)
    client.runtime.rpc.call(
        "ns-0", UnregisterName(name="svc"), on_reply=lambda v, s: None
    )
    env.run_for(0.5)
    results = []
    client.runtime.rpc.call(
        "ns-2", LookupName(name="svc"), on_reply=lambda v, s: results.append(v)
    )
    env.run_for(0.5)
    assert results == [None]


def test_name_client_caches_and_fails_over():
    env, servers = env_with_ns()
    client = GroupNode(env, "c0")
    client.runtime.rpc.call(
        "ns-0", RegisterName(name="svc", contacts=("x",)), on_reply=lambda v, s: None
    )
    env.run_for(0.5)
    nc = NameClient(client, client.runtime.rpc, ("ns-0", "ns-1", "ns-2"))
    got = []
    nc.resolve("svc", got.append)
    env.run_for(1.0)
    assert got == [("x",)]
    # kill the first server; cached resolution needs no traffic
    servers[0].crash()
    nc.resolve("svc", got.append)
    assert got[-1] == ("x",)
    # invalidate -> must fail over to a live replica
    nc.invalidate("svc")
    nc.resolve("svc", got.append)
    env.run_for(3.0)
    assert got[-1] == ("x",)


def test_name_client_reports_unresolvable():
    env, servers = env_with_ns()
    client = GroupNode(env, "c0")
    nc = NameClient(client, client.runtime.rpc, ("ns-0",))
    got = []
    nc.resolve("ghost", got.append)
    env.run_for(2.0)
    assert got == [None]


def test_leader_registers_service_name():
    env, servers = env_with_ns()
    params = LargeGroupParams(resiliency=2, fanout=4)
    leaders = build_leader_group(
        env, "svc", params, name_servers=("ns-0", "ns-1", "ns-2")
    )
    env.run_for(2.0)
    assert "svc" in servers[0].known_names()
    assert "svc" in servers[2].known_names()


def test_router_full_path_via_name_service():
    env, servers = env_with_ns()
    params = LargeGroupParams(resiliency=2, fanout=4)
    leaders = build_leader_group(
        env, "svc", params, name_servers=("ns-0", "ns-1", "ns-2")
    )
    contacts = tuple(r.node.address for r in leaders)
    members = build_large_group(env, "svc", 8, params, contacts)
    env.run_for(8.0)

    client = GroupNode(env, "client")
    nc = NameClient(client, client.runtime.rpc, ("ns-0", "ns-1", "ns-2"))
    router = ServiceRouter(
        client, "svc", rpc=client.runtime.rpc, name_client=nc
    )
    got = []
    router.assignment(got.append)
    env.run_for(2.0)
    assert got and got[0] is not None
    leaf_group, leaf_contacts = got[0]
    assert leaf_group.startswith("svc::")
    assert leaf_contacts
    # cache hit requires no new lookup
    lookups_before = router.lookups
    router.assignment(got.append)
    assert router.lookups == lookups_before
    assert got[-1] == got[0]


def test_router_static_contacts_and_invalidation():
    env = Environment(seed=2, latency=FixedLatency(0.002))
    params = LargeGroupParams(resiliency=2, fanout=4)
    leaders = build_leader_group(env, "svc", params)
    contacts = tuple(r.node.address for r in leaders)
    members = build_large_group(env, "svc", 6, params, contacts)
    env.run_for(8.0)
    client = GroupNode(env, "client")
    router = ServiceRouter(
        client, "svc", rpc=client.runtime.rpc, leader_contacts=contacts
    )
    got = []
    router.assignment(got.append)
    env.run_for(2.0)
    assert got[0] is not None
    router.invalidate()
    assert router.cached_assignment is None
    router.assignment(got.append)
    env.run_for(2.0)
    assert got[-1] is not None


def test_resolve_hierarchical_falls_back_to_longest_prefix():
    """Deep subtree names aren't registered — only the service root is;
    resolution strips one path component at a time and caches the hit
    under the queried deep name."""
    env, servers = env_with_ns()
    client = GroupNode(env, "c0")
    client.runtime.rpc.call(
        "ns-0", RegisterName(name="svc", contacts=("root",)), on_reply=lambda v, s: None
    )
    env.run_for(0.5)
    nc = NameClient(client, client.runtime.rpc, ("ns-0", "ns-1", "ns-2"))
    got = []
    nc.resolve_hierarchical("svc/b3/b7", got.append)
    env.run_for(3.0)
    assert got == [("root",)]
    # The prefix hit was cached under the deep name: with every server
    # dead, the same query is still answered locally.
    for server in servers:
        server.crash()
    nc.resolve_hierarchical("svc/b3/b7", got.append)
    assert got[-1] == ("root",)


def test_resolve_hierarchical_prefers_exact_match():
    env, servers = env_with_ns()
    client = GroupNode(env, "c0")
    client.runtime.rpc.call(
        "ns-0", RegisterName(name="svc", contacts=("root",)), on_reply=lambda v, s: None
    )
    client.runtime.rpc.call(
        "ns-0",
        RegisterName(name="svc/b3", contacts=("deep",)),
        on_reply=lambda v, s: None,
    )
    env.run_for(0.5)
    nc = NameClient(client, client.runtime.rpc, ("ns-0", "ns-1", "ns-2"))
    got = []
    nc.resolve_hierarchical("svc/b3", got.append)
    env.run_for(2.0)
    assert got == [("deep",)]


def test_resolve_hierarchical_reports_unresolvable():
    env, servers = env_with_ns()
    client = GroupNode(env, "c0")
    nc = NameClient(client, client.runtime.rpc, ("ns-0",))
    got = []
    nc.resolve_hierarchical("ghost/x/y", got.append)
    env.run_for(5.0)
    assert got == [None]


def test_invalidate_prefix_drops_whole_subtree():
    """A reorg that moves a subtree invalidates the service root and
    every cached name under it — but not lookalike prefixes."""
    env, servers = env_with_ns()
    client = GroupNode(env, "c0")
    for name in ("svc", "svc/b3", "svcetera"):
        client.runtime.rpc.call(
            "ns-0",
            RegisterName(name=name, contacts=(name + "-c",)),
            on_reply=lambda v, s: None,
        )
    env.run_for(0.5)
    nc = NameClient(client, client.runtime.rpc, ("ns-0", "ns-1", "ns-2"))
    got = []
    for name in ("svc", "svc/b3", "svcetera"):
        nc.resolve(name, got.append)
    nc.resolve_hierarchical("svc/b3/b9", got.append)
    env.run_for(3.0)
    assert None not in got

    nc.invalidate_prefix("svc")
    # Behavioural check: with the servers dead, only names outside the
    # invalidated subtree still resolve (from cache).
    for server in servers:
        server.crash()
    hits = []
    nc.resolve("svcetera", hits.append)
    assert hits == [("svcetera-c",)]
    misses = []
    for name in ("svc", "svc/b3", "svc/b3/b9"):
        nc.resolve(name, misses.append, timeout=0.2)
    env.run_for(5.0)
    assert misses == [None, None, None]


def test_router_round_robins_across_leaves():
    env = Environment(seed=3, latency=FixedLatency(0.002))
    params = LargeGroupParams(resiliency=2, fanout=2)  # small leaves
    leaders = build_leader_group(env, "svc", params)
    contacts = tuple(r.node.address for r in leaders)
    members = build_large_group(env, "svc", 10, params, contacts)
    env.run_for(20.0)
    seen_leaves = set()
    for i in range(6):
        client = GroupNode(env, f"client-{i}")
        router = ServiceRouter(
            client, "svc", rpc=client.runtime.rpc, leader_contacts=contacts
        )
        got = []
        router.assignment(got.append)
        env.run_for(1.0)
        if got and got[0]:
            seen_leaves.add(got[0][0])
    assert len(seen_leaves) >= 2
