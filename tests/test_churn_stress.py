"""Randomised churn stress tests: virtual synchrony under crash/join/
multicast interleavings across many seeds.

Each scenario drives a group through a random event schedule, then checks
the invariants the substrate promises:

* all live members converge to an identical final view;
* abcast deliveries form the same sequence at every member that
  delivered them (prefix-closed per view);
* fbcast deliveries respect per-sender order;
* no message is delivered twice at any member;
* virtual synchrony: two members that both pass from view v to view v+1
  delivered exactly the same set of view-v messages.
"""

from dataclasses import dataclass

from repro.membership import CAUSAL, FIFO, TOTAL, GroupNode, build_group
from repro.net import FixedLatency
from repro.proc import Environment
from repro.sim import SimRandom


@dataclass
class Msg:
    category = "app"
    uid: str = ""


class Recorder:
    """Per-member delivery/view log for invariant checking."""

    def __init__(self, member):
        self.member = member
        self.me = member.me
        self.deliveries = []  # (view_seq, uid, ordering)
        self.views = []  # list of GroupView
        member.add_delivery_listener(self._on_delivery)
        member.add_view_listener(lambda e: self.views.append(e.view))

    def _on_delivery(self, event):
        self.deliveries.append((event.view_seq, event.payload.uid, event.ordering))

    def per_view(self, ordering=None):
        out = {}
        for view_seq, uid, kind in self.deliveries:
            if ordering is None or kind == ordering:
                out.setdefault(view_seq, []).append(uid)
        return out

    def transitions(self):
        """Pairs (v, v+1) of consecutive view seqs this member installed."""
        seqs = [v.seq for v in self.views]
        return {(a, b) for a, b in zip(seqs, seqs[1:]) if b == a + 1}


def run_scenario(seed: int):
    rng = SimRandom(seed)
    env = Environment(seed=seed, latency=FixedLatency(0.002))
    nodes, members = build_group(env, "g", 6, gossip_interval=0.5)
    recorders = {m.me: Recorder(m) for m in members}
    counter = [0]

    def multicast(index, ordering):
        member = members[index]
        if member.is_member and member.runtime.process.alive:
            counter[0] += 1
            member.multicast(Msg(uid=f"{member.me}#{counter[0]}"), ordering)

    # random schedule: bursts of multicasts, up to two crashes, one joiner
    t = 0.5
    crashes = 0
    joined = []
    for _ in range(rng.randint(15, 25)):
        t += rng.uniform(0.05, 0.4)
        action = rng.random()
        if action < 0.70:
            index = rng.randint(0, 5)
            ordering = rng.choice([FIFO, FIFO, CAUSAL, TOTAL])
            env.scheduler.at(t, lambda i=index, o=ordering: multicast(i, o))
        elif action < 0.85 and crashes < 2:
            crashes += 1
            index = rng.randint(0, 5)
            env.scheduler.at(t, lambda i=index: nodes[i].crash())
        elif not joined:
            node = GroupNode(env, "late")
            member = node.runtime.join_group("g", contact="g-3")
            joined.append(member)
            recorders["late"] = Recorder(member)
    env.run_for(t + 15.0)
    return env, nodes, members, recorders, joined


def check_invariants(seed, env, nodes, members, recorders, joined):
    pool = list(members) + joined
    live = [m for m in pool if m.runtime.process.alive and m.is_member]
    assert live, f"seed {seed}: everyone died?"

    # 1. converged final views
    finals = {m.view for m in live}
    assert len(finals) == 1, f"seed {seed}: divergent final views {finals}"

    # 2. identical abcast sequence per view
    for view_seq in range(1, live[0].view.seq + 1):
        sequences = {}
        for m in live:
            rec = recorders[m.me]
            per = rec.per_view(TOTAL)
            if view_seq in per:
                sequences.setdefault(tuple(per[view_seq]), set()).add(m.me)
        # all members that delivered total messages in this view must have
        # delivered the same prefix-closed sequence; allow sequences where
        # one is a prefix of another (a member may have joined mid-view —
        # impossible here, so require strict equality)
        assert len(sequences) <= 1, (
            f"seed {seed}: view {view_seq} abcast divergence {sequences}"
        )

    # 3. fbcast per-sender order
    for m in live:
        rec = recorders[m.me]
        last_by_sender = {}
        for view_seq, uid, kind in rec.deliveries:
            if kind != FIFO:
                continue
            sender, _, num = uid.partition("#")
            num = int(num)
            key = (view_seq, sender)
            assert last_by_sender.get(key, 0) < num, (
                f"seed {seed}: {m.me} fifo order broken for {sender}"
            )
            last_by_sender[key] = num

    # 4. no duplicate deliveries
    for m in pool:
        rec = recorders[m.me]
        uids = [(v, u) for v, u, _ in rec.deliveries]
        assert len(uids) == len(set(uids)), f"seed {seed}: duplicate at {m.me}"

    # 5. virtual synchrony across shared transitions
    for a in pool:
        for b in pool:
            if a.me >= b.me:
                continue
            shared = recorders[a.me].transitions() & recorders[b.me].transitions()
            for v, _next in shared:
                set_a = set(recorders[a.me].per_view().get(v, []))
                set_b = set(recorders[b.me].per_view().get(v, []))
                assert set_a == set_b, (
                    f"seed {seed}: vsync violated in view {v} between "
                    f"{a.me} ({set_a}) and {b.me} ({set_b})"
                )


def test_churn_stress_many_seeds():
    for seed in range(12):
        env, nodes, members, recorders, joined = run_scenario(seed)
        check_invariants(seed, env, nodes, members, recorders, joined)


def test_churn_stress_with_message_loss():
    for seed in (100, 101, 102, 103):
        rng = SimRandom(seed)
        env = Environment(
            seed=seed, latency=FixedLatency(0.002), drop_probability=0.15
        )
        nodes, members = build_group(env, "g", 5, gossip_interval=0.5)
        recorders = {m.me: Recorder(m) for m in members}
        counter = [0]
        t = 0.5
        for _ in range(15):
            t += rng.uniform(0.05, 0.3)
            index = rng.randint(0, 4)
            ordering = rng.choice([FIFO, TOTAL])

            def cast(i=index, o=ordering):
                if members[i].is_member and nodes[i].alive:
                    counter[0] += 1
                    members[i].multicast(Msg(uid=f"g-{i}#{counter[0]}"), o)

            env.scheduler.at(t, cast)
        env.scheduler.at(t / 2, lambda: nodes[2].crash())
        env.run_for(t + 25.0)
        check_invariants(seed, env, nodes, members, recorders, [])


def test_churn_stress_rapid_sequential_crashes():
    for seed in (200, 201, 202):
        env = Environment(seed=seed, latency=FixedLatency(0.002))
        nodes, members = build_group(env, "g", 8, gossip_interval=None)
        recorders = {m.me: Recorder(m) for m in members}
        for i in range(8):
            members[i].multicast(Msg(uid=f"g-{i}#{i}"), TOTAL)
        # three crashes in quick succession, including the sequencer
        env.scheduler.at(0.01, lambda: nodes[0].crash())
        env.scheduler.at(0.05, lambda: nodes[1].crash())
        env.scheduler.at(0.30, lambda: nodes[4].crash())
        env.run_for(20.0)
        check_invariants(seed, env, nodes, members, recorders, [])
