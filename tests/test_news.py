"""Tests for the news (publish/subscribe) facility."""

import pytest

from repro.membership import GroupNode, build_group
from repro.net import FixedLatency
from repro.proc import Environment
from repro.toolkit import News


def build(n=3, back_issues=64, seed=1):
    env = Environment(seed=seed, latency=FixedLatency(0.002))
    nodes, members = build_group(env, "news", n)
    services = [News(m, back_issues=back_issues) for m in members]
    return env, nodes, members, services


def test_post_reaches_subscribers_everywhere():
    env, nodes, members, services = build()
    got = {s.member.me: [] for s in services}
    for s in services:
        s.subscribe("sports", lambda subj, body, poster, me=s.member.me: got[me].append(body))
    services[0].post("sports", "score: 3-1")
    env.run_for(1.0)
    assert all(v == ["score: 3-1"] for v in got.values())


def test_subjects_are_isolated():
    env, nodes, members, services = build()
    sports, money = [], []
    services[1].subscribe("sports", lambda s, b, p: sports.append(b))
    services[1].subscribe("money", lambda s, b, p: money.append(b))
    services[0].post("money", "IBM up 2")
    env.run_for(1.0)
    assert sports == []
    assert money == ["IBM up 2"]


def test_posts_from_one_publisher_stay_ordered():
    env, nodes, members, services = build()
    got = []
    services[2].subscribe("feed", lambda s, b, p: got.append(b))
    for i in range(5):
        services[0].post("feed", i)
    env.run_for(1.0)
    assert got == [0, 1, 2, 3, 4]


def test_back_file_and_late_subscriber_replay():
    env, nodes, members, services = build()
    services[0].post("hist", "one")
    services[0].post("hist", "two")
    env.run_for(1.0)
    assert [b for b, _ in services[1].back_file("hist")] == ["one", "two"]
    late = []
    services[1].subscribe("hist", lambda s, b, p: late.append(b), replay_back_issues=True)
    assert late == ["one", "two"]
    services[0].post("hist", "three")
    env.run_for(1.0)
    assert late == ["one", "two", "three"]


def test_back_file_bounded():
    env, nodes, members, services = build(back_issues=3)
    for i in range(10):
        services[0].post("s", i)
    env.run_for(2.0)
    assert [b for b, _ in services[1].back_file("s")] == [7, 8, 9]


def test_zero_back_issues_keeps_nothing():
    env, nodes, members, services = build(back_issues=0)
    services[0].post("s", "gone")
    env.run_for(1.0)
    assert services[1].back_file("s") == []


def test_unsubscribe_stops_delivery():
    env, nodes, members, services = build()
    got = []
    fn = lambda s, b, p: got.append(b)  # noqa: E731
    services[1].subscribe("x", fn)
    services[0].post("x", 1)
    env.run_for(1.0)
    services[1].unsubscribe("x", fn)
    services[0].post("x", 2)
    env.run_for(1.0)
    assert got == [1]


def test_joiner_receives_back_files_via_state_transfer():
    env, nodes, members, services = build()
    services[0].post("archive", "old-news")
    env.run_for(1.0)
    node = GroupNode(env, "late-reader")
    member = node.runtime.join_group("news", contact="news-0")
    late_news = News(member)
    env.run_for(4.0)
    assert member.is_member
    assert [b for b, _ in late_news.back_file("archive")] == ["old-news"]


def test_poster_identity_passed_to_subscribers():
    env, nodes, members, services = build()
    got = []
    services[2].subscribe("who", lambda s, b, p: got.append(p))
    services[1].post("who", "hi")
    env.run_for(1.0)
    assert got == ["news-1"]


def test_subjects_listing():
    env, nodes, members, services = build()
    services[0].post("a", 1)
    services[0].post("b", 2)
    env.run_for(1.0)
    assert services[1].subjects() == ["a", "b"]


def test_invalid_back_issues_rejected():
    env, nodes, members, _ = build()
    with pytest.raises(ValueError):
        News(members[0], back_issues=-1, claim_state_hooks=False)
