"""False-suspicion handling: the excluded-but-alive member learns of its
exclusion and can rejoin."""

from dataclasses import dataclass

from repro.membership import FIFO, build_group
from repro.net import FixedLatency
from repro.proc import Environment


@dataclass
class App:
    category = "app"
    tag: str = ""


def make(n, seed=1):
    env = Environment(seed=seed, latency=FixedLatency(0.002))
    nodes, members = build_group(env, "g", n)
    return env, nodes, members


def falsely_suspect(members, victim_address):
    """Inject suspicion of a perfectly healthy member at everyone else."""
    for m in members:
        if m.me != victim_address:
            m._on_suspect(victim_address)


def test_falsely_suspected_member_learns_of_exclusion():
    env, nodes, members, = make(4)
    falsely_suspect(members, "g-2")
    env.run_for(5.0)
    assert members[2].excluded
    assert not members[2].is_member
    survivors = [members[i] for i in (0, 1, 3)]
    for m in survivors:
        assert m.view.members == ("g-0", "g-1", "g-3")


def test_excluded_member_rejoins_cleanly():
    env, nodes, members = make(4)
    falsely_suspect(members, "g-2")
    env.run_for(5.0)
    assert members[2].excluded
    rejoined = nodes[2].runtime.rejoin_group("g", contact="g-0")
    env.run_for(5.0)
    assert rejoined.is_member
    assert rejoined.excluded is False
    final = members[0].view
    assert set(final.members) == {"g-0", "g-1", "g-2", "g-3"}
    # and it participates normally again
    got = []
    rejoined.add_delivery_listener(lambda e: got.append(e.payload.tag))
    members[1].multicast(App("welcome-back"), FIFO)
    env.run_for(2.0)
    assert got == ["welcome-back"]


def test_excluded_member_cannot_multicast_meanwhile():
    import pytest

    from repro.membership import NotMemberError

    env, nodes, members = make(3)
    falsely_suspect(members, "g-1")
    env.run_for(5.0)
    assert members[1].excluded
    with pytest.raises(NotMemberError):
        members[1].multicast(App("nope"), FIFO)


def test_view_event_signals_departed_self():
    env, nodes, members = make(3)
    events = []
    members[1].add_view_listener(events.append)
    falsely_suspect(members, "g-1")
    env.run_for(5.0)
    assert events
    last = events[-1]
    assert last.departed == ("g-1",)
    assert not last.view.contains("g-1")
