"""Unit tests for the simulated datagram network."""

from dataclasses import dataclass

import pytest

from repro.net import FixedLatency, LanLatency, Network, UniformLatency
from repro.sim import Scheduler, SimRandom


@dataclass
class Ping:
    category = "ping"
    size_bytes = 32
    n: int = 0


def make_net(**kwargs):
    sched = Scheduler()
    net = Network(sched, SimRandom(1), **kwargs)
    return sched, net


def collector(inbox):
    return lambda env: inbox.append((env.payload, env.src, env.deliver_time))


def test_send_delivers_after_latency():
    sched, net = make_net(latency=FixedLatency(0.5))
    inbox = []
    net.register("a", collector([]))
    net.register("b", collector(inbox))
    net.send("a", "b", Ping(1))
    sched.run()
    assert len(inbox) == 1
    payload, src, at = inbox[0]
    assert payload.n == 1 and src == "a" and at == 0.5


def test_send_to_unregistered_is_dropped():
    sched, net = make_net()
    net.register("a", collector([]))
    net.send("a", "ghost", Ping())
    sched.run()
    assert net.stats.dropped == 1
    assert net.stats.messages == 1


def test_unregister_drops_in_flight():
    sched, net = make_net(latency=FixedLatency(1.0))
    inbox = []
    net.register("a", collector([]))
    net.register("b", collector(inbox))
    net.send("a", "b", Ping())
    net.unregister("b")
    sched.run()
    assert inbox == []
    assert net.stats.dropped == 1


def test_multicast_counts_one_message_per_destination():
    sched, net = make_net()
    boxes = {name: [] for name in "bcd"}
    net.register("a", collector([]))
    for name, box in boxes.items():
        net.register(name, collector(box))
    net.multicast("a", ["b", "c", "d"], Ping())
    sched.run()
    assert net.stats.messages == 3
    assert net.stats.wire_packets == 3
    assert all(len(box) == 1 for box in boxes.values())


def test_hardware_multicast_single_wire_packet():
    sched, net = make_net(hardware_multicast=True)
    boxes = {name: [] for name in "bcd"}
    net.register("a", collector([]))
    for name, box in boxes.items():
        net.register(name, collector(box))
    net.multicast("a", ["b", "c", "d"], Ping())
    sched.run()
    assert net.stats.messages == 3
    assert net.stats.wire_packets == 1
    assert all(len(box) == 1 for box in boxes.values())


def test_empty_multicast_is_free():
    sched, net = make_net()
    net.multicast("a", [], Ping())
    sched.run()
    assert net.stats.messages == 0
    assert net.stats.wire_packets == 0


def test_drop_probability_loses_messages():
    sched, net = make_net(drop_probability=0.5)
    inbox = []
    net.register("a", collector([]))
    net.register("b", collector(inbox))
    for _ in range(500):
        net.send("a", "b", Ping())
    sched.run()
    assert 150 < len(inbox) < 350
    assert net.stats.dropped == 500 - len(inbox)


def test_duplicate_probability_duplicates():
    sched, net = make_net(duplicate_probability=0.5)
    inbox = []
    net.register("a", collector([]))
    net.register("b", collector(inbox))
    for _ in range(200):
        net.send("a", "b", Ping())
    sched.run()
    assert 250 < len(inbox) < 350


def test_partition_blocks_cross_island_traffic():
    sched, net = make_net()
    box_b, box_c = [], []
    net.register("a", collector([]))
    net.register("b", collector(box_b))
    net.register("c", collector(box_c))
    net.partitions.partition({"a", "b"}, {"c"})
    net.send("a", "b", Ping())
    net.send("a", "c", Ping())
    sched.run()
    assert len(box_b) == 1
    assert box_c == []
    net.partitions.heal()
    net.send("a", "c", Ping())
    sched.run()
    assert len(box_c) == 1


def test_stats_by_category_and_endpoint():
    sched, net = make_net()
    net.register("a", collector([]))
    net.register("b", collector([]))
    net.send("a", "b", Ping())
    net.send("a", "b", Ping())
    sched.run()
    assert net.stats.by_category["ping"] == 2
    assert net.stats.sent_by["a"] == 2
    assert net.stats.received_by["b"] == 2


def test_stats_since_snapshot():
    sched, net = make_net()
    net.register("a", collector([]))
    net.register("b", collector([]))
    net.send("a", "b", Ping())
    sched.run()
    before = net.stats.snapshot()
    net.send("a", "b", Ping())
    net.send("a", "b", Ping())
    sched.run()
    delta = net.stats.since(before)
    assert delta.messages == 2
    assert delta.by_category == {"ping": 2}


def test_bytes_counted_with_header():
    sched, net = make_net()
    net.register("a", collector([]))
    net.register("b", collector([]))
    net.send("a", "b", Ping())
    sched.run()
    assert net.stats.bytes == 32 + 64


def test_invalid_probabilities_rejected():
    sched = Scheduler()
    with pytest.raises(ValueError):
        Network(sched, SimRandom(0), drop_probability=1.0)
    with pytest.raises(ValueError):
        Network(sched, SimRandom(0), duplicate_probability=-0.1)


def test_latency_models_sample_in_bounds():
    rng = SimRandom(3)
    assert FixedLatency(0.01).sample(rng, "a", "b", 100) == 0.01
    for _ in range(50):
        assert 0.001 <= UniformLatency(0.001, 0.002).sample(rng, "a", "b", 0) <= 0.002
    lan = LanLatency(base=0.001, per_byte=1e-6, jitter=0.1)
    nominal = 0.001 + 1e-6 * 200
    for _ in range(50):
        sample = lan.sample(rng, "a", "b", 200)
        assert nominal * 0.9 <= sample <= nominal * 1.1


def test_latency_model_validation():
    with pytest.raises(ValueError):
        FixedLatency(-1.0)
    with pytest.raises(ValueError):
        UniformLatency(0.5, 0.1)
    with pytest.raises(ValueError):
        LanLatency(jitter=1.5)


def test_taps_observe_send_deliver_drop():
    sched, net = make_net(latency=FixedLatency(0.001))
    events = []
    net.add_tap(lambda kind, env: events.append((kind, env.src, env.dst)))
    net.register("a", collector([]))
    net.register("b", collector([]))
    net.send("a", "b", Ping())
    net.send("a", "ghost", Ping())  # delivery-time drop
    sched.run()
    kinds = [k for k, *_ in events]
    assert kinds.count("send") == 2
    assert kinds.count("deliver") == 1
    assert kinds.count("drop") == 1
    assert ("deliver", "a", "b") in events


def test_taps_observe_partition_drops():
    sched, net = make_net()
    events = []
    net.add_tap(lambda kind, env: events.append(kind))
    net.register("a", collector([]))
    net.register("b", collector([]))
    net.partitions.partition({"a"}, {"b"})
    net.send("a", "b", Ping())
    sched.run()
    assert events == ["send", "drop"]


def test_tap_removal():
    sched, net = make_net()
    events = []
    tap = lambda kind, env: events.append(kind)  # noqa: E731
    net.add_tap(tap)
    net.register("a", collector([]))
    net.register("b", collector([]))
    net.send("a", "b", Ping())
    net.remove_tap(tap)
    net.send("a", "b", Ping())
    sched.run()
    # only the first send (and its delivery may occur after removal)
    assert events.count("send") == 1
