"""End-to-end tests of hierarchical large groups: leader replication, join
routing, split/merge, bounded failure handling, total-failure detection."""

from repro.core import (
    GetHierarchyInfo,
    LargeGroupMember,
    LargeGroupParams,
    build_large_group,
    build_leader_group,
)
from repro.membership import GroupNode
from repro.net import FixedLatency
from repro.proc import Environment, Rpc


def build_service(
    n_workers,
    resiliency=2,
    fanout=4,
    seed=1,
    join_stagger=0.05,
    settle=None,
    **params_kw,
):
    env = Environment(seed=seed, latency=FixedLatency(0.002))
    params = LargeGroupParams(resiliency=resiliency, fanout=fanout, **params_kw)
    leaders = build_leader_group(env, "svc", params)
    contacts = tuple(r.node.address for r in leaders)
    members = build_large_group(
        env, "svc", n_workers, params, contacts, join_stagger=join_stagger
    )
    env.run_for(settle if settle is not None else 5.0 + 0.2 * n_workers)
    return env, params, leaders, members


def manager(leaders):
    for replica in leaders:
        if replica.is_manager and replica.node.alive:
            return replica
    raise AssertionError("no live manager")


def check_consistency(params, leaders, members):
    """Cross-check replicated leader state against actual leaf views."""
    mgr = manager(leaders)
    state = mgr.state
    placed = [m for m in members if m.is_member]
    # every placed member's leaf is known to the leader
    leaf_ids = set(state.leaves)
    for m in placed:
        assert m.leaf_id in leaf_ids, f"{m.me} in unknown leaf {m.leaf_id}"
    # leader's size accounting matches reality
    actual = {}
    for m in placed:
        actual.setdefault(m.leaf_id, set()).add(m.me)
    for leaf_id, members_set in actual.items():
        assert state.leaf(leaf_id).size == len(members_set)
    # every member of a leaf agrees on that leaf's view
    for leaf_id, members_set in actual.items():
        views = {
            tuple(m.leaf_member.view.members)
            for m in placed
            if m.leaf_id == leaf_id
        }
        assert len(views) == 1
    return state, actual


def test_leader_group_elects_manager():
    env = Environment(seed=1, latency=FixedLatency(0.002))
    params = LargeGroupParams(resiliency=3, fanout=4)
    leaders = build_leader_group(env, "svc", params)
    env.run_for(1.0)
    managers = [r for r in leaders if r.is_manager]
    assert len(managers) == 1
    assert managers[0].node.address == leaders[0].node.address


def test_single_worker_creates_first_leaf():
    env, params, leaders, members = build_service(1)
    assert members[0].is_member
    assert members[0].leaf_size == 1
    state, actual = check_consistency(params, leaders, members)
    assert len(state.leaves) == 1


def test_workers_fill_leaves_within_bounds():
    env, params, leaders, members = build_service(12, resiliency=2, fanout=4)
    assert all(m.is_member for m in members)
    state, actual = check_consistency(params, leaders, members)
    # no leaf beyond the split threshold once things settle
    for leaf in state.leaves.values():
        assert leaf.size <= params.leaf_split_threshold


def test_split_happens_when_leaf_overflows():
    env, params, leaders, members = build_service(
        10, resiliency=2, fanout=2, settle=20.0
    )  # leaf_min=2, split at >4
    state, actual = check_consistency(params, leaders, members)
    assert len(state.leaves) >= 2
    for leaf in state.leaves.values():
        assert leaf.size <= params.leaf_split_threshold


def test_leader_replicas_converge():
    env, params, leaders, members = build_service(8)
    env.run_for(3.0)
    states = [(r.state.leaves, len(r.state.branches)) for r in leaders]
    for leaves, branches in states[1:]:
        assert leaves == states[0][0]
        assert branches == states[0][1]


def test_member_failure_contained_to_leaf():
    env, params, leaders, members = build_service(16, resiliency=2, fanout=4)
    state, actual = check_consistency(params, leaders, members)
    victim = members[3]
    victim_leaf = victim.leaf_id
    peers = [m for m in members if m.leaf_id == victim_leaf and m is not victim]
    others = [m for m in members if m.leaf_id != victim_leaf and m.is_member]
    other_views_before = {m.me: m.leaf_member.view.seq for m in others}
    victim.node.crash()
    env.run_for(5.0)
    # leaf-mates ran a view change
    for peer in peers:
        assert not peer.leaf_member.view.contains(victim.me)
    # members of other leaves saw no view change at all
    for m in others:
        if m.is_member:
            assert m.leaf_member.view.seq == other_views_before[m.me]
    # leader's summary updated
    mgr = manager(leaders)
    assert mgr.state.leaf(victim_leaf).size == len(peers)


def test_leaf_coordinator_failure_recovers():
    env, params, leaders, members = build_service(8, resiliency=2, fanout=4)
    state, actual = check_consistency(params, leaders, members)
    # crash a leaf coordinator specifically
    coordinators = [m for m in members if m.is_leaf_coordinator]
    victim = coordinators[0]
    leaf_id = victim.leaf_id
    victim.node.crash()
    env.run_for(8.0)
    mgr = manager(leaders)
    if leaf_id in mgr.state.leaves:
        leaf = mgr.state.leaf(leaf_id)
        assert victim.me not in leaf.contacts
        survivors = [
            m for m in members if m.leaf_id == leaf_id and m.node.alive
        ]
        assert leaf.size == len(survivors)


def test_total_leaf_failure_detected_and_removed():
    env, params, leaders, members = build_service(12, resiliency=2, fanout=4)
    state, actual = check_consistency(params, leaders, members)
    # kill every member of one leaf "simultaneously"
    leaf_id = sorted(actual)[0]
    victims = [m for m in members if m.leaf_id == leaf_id]
    for v in victims:
        v.node.crash()
    env.run_for(10.0)
    mgr = manager(leaders)
    assert leaf_id not in mgr.state.leaves
    assert ("leaf-lost", leaf_id) in mgr.events
    # the rest of the service is untouched
    survivors = [m for m in members if m.node.alive and m.is_member]
    assert len(survivors) == 12 - len(victims)


def test_manager_failure_promotes_replica():
    env, params, leaders, members = build_service(8, resiliency=3)
    old_manager = manager(leaders)
    old_manager.node.crash()
    env.run_for(5.0)
    new_manager = manager(leaders)
    assert new_manager is not old_manager
    # the new manager can still place joiners
    node = GroupNode(env, "late-worker")
    late = LargeGroupMember(
        node, "svc", tuple(r.node.address for r in leaders)
    )
    late.join()
    env.run_for(8.0)
    assert late.is_member


def test_merge_after_shrinkage():
    env, params, leaders, members = build_service(
        8, resiliency=2, fanout=4, settle=15.0
    )  # leaf_min=4
    state, actual = check_consistency(params, leaders, members)
    if len(state.leaves) < 2:
        # force two leaves by crashing nothing; skip if layout is single-leaf
        return
    # shrink one leaf below the minimum by crashing members
    leaf_id = sorted(actual, key=lambda l: len(actual[l]))[0]
    leaf_members = [m for m in members if m.leaf_id == leaf_id]
    for victim in leaf_members[: len(leaf_members) - 1]:
        victim.node.crash()
    env.run_for(20.0)
    mgr = manager(leaders)
    # the undersized leaf was merged away (or all members moved)
    live = [m for m in members if m.node.alive]
    assert all(m.is_member for m in live)
    sizes = [leaf.size for leaf in mgr.state.leaves.values()]
    assert all(s >= 1 for s in sizes)
    assert any(kind == "merge-directed" for kind, *_ in mgr.events)


def test_hierarchy_info_rpc():
    env, params, leaders, members = build_service(8)
    probe = GroupNode(env, "prober")
    rpc = probe.runtime.rpc
    infos = []
    rpc.call(
        manager(leaders).node.address,
        GetHierarchyInfo(service="svc"),
        on_reply=lambda value, sender: infos.append(value),
    )
    env.run_for(1.0)
    assert infos and infos[0]["total_size"] == 8
    assert infos[0]["depth"] >= 2


def test_larger_scale_hundred_workers():
    env, params, leaders, members = build_service(
        100, resiliency=3, fanout=8, settle=40.0
    )
    placed = [m for m in members if m.is_member]
    assert len(placed) == 100
    state, actual = check_consistency(params, leaders, members)
    for leaf in state.leaves.values():
        assert leaf.size <= params.leaf_split_threshold
    assert state.max_branch_children() <= 8
