"""Tests for symbol-partitioned market-data dissemination."""

from repro.workloads import SymbolPartitionedTrading


def build(analysts=20, seed=3, fanout=4, resiliency=2, tick_rate=2.0):
    return SymbolPartitionedTrading(
        analysts=analysts,
        feeds=2,
        tick_rate=tick_rate,
        seed=seed,
        fanout=fanout,
        resiliency=resiliency,
    )


def test_ticks_delivered_only_within_owner_leaf():
    workload = build()
    result = workload.run(duration=5.0)
    assert result.events_published > 0
    per_tick = result.extra["avg_deliveries_per_tick"]
    max_leaf = workload.cluster.params.leaf_split_threshold
    assert per_tick <= max_leaf
    assert per_tick < result.extra["analysts"], "must not reach everyone"


def test_each_tick_reaches_entire_owner_leaf():
    workload = build(analysts=16, seed=4)
    manager = workload.cluster.manager_root.replica
    result = workload.run(duration=4.0)
    # delivered = sum over ticks of the owning leaf's size; verify against
    # the leader's accounting of leaf sizes
    sizes = {l.leaf_id: l.size for l in manager.state.leaves.values()}
    assert result.events_delivered > 0
    assert result.events_delivered <= result.events_published * max(sizes.values())
    assert result.events_delivered >= result.events_published * min(sizes.values())


def test_latency_stays_small():
    workload = build(analysts=24, seed=5)
    result = workload.run(duration=5.0)
    assert result.latency.count > 0
    assert result.latency.p99 < 0.5


def test_per_analyst_load_unbalanced_by_symbol_ownership():
    workload = build(analysts=24, seed=6, tick_rate=6.0)
    result = workload.run(duration=5.0)
    loads = workload.deliveries_by_analyst
    # leaves that own popular symbols see traffic; the design's point is
    # that no analyst sees *all* traffic
    assert max(loads.values()) <= result.events_published
    total_seen = sum(loads.values())
    assert total_seen == result.events_delivered


def test_feed_acks_match_sends():
    workload = build(analysts=12, seed=7)
    workload.run(duration=4.0)
    for feed in workload.feeds:
        assert feed.ticks_acked == feed.ticks_sent > 0
