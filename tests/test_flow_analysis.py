"""Whole-program passes (RL012/RL013/RL014): each fires on its seeded
fixture with a full source→sink chain, clean idioms stay quiet, the
live tree is flow-clean, and the CLI/report plumbing works."""

import json
import subprocess
import sys
from pathlib import Path

from tools.lint.flow import FLOW_CODES, analyze_paths, analyze_sources

REPO_ROOT = Path(__file__).resolve().parent.parent


def _codes(findings):
    return [f.code for f in findings]


# ------------------------------------------------------ RL012 taint chains


def test_rl012_taint_through_three_deep_helper_chain():
    # A wall-clock read laundered through two cross-module helpers must
    # still be caught at the scheduler sink, with every hop rendered.
    helpers = (
        "import time\n"
        "\n"
        "\n"
        "def read_clock():\n"
        "    t = time.monotonic()  # repro-lint: disable=RL001\n"
        "    # per-file RL001 is silenced above: only the flow pass sees\n"
        "    # the laundering\n"
        "    return t\n"
    )
    mid = (
        "from repro.util.helpers import read_clock\n"
        "\n"
        "\n"
        "def jitter():\n"
        "    return read_clock() * 0.5\n"
    )
    proto = (
        "from repro.util.mid import jitter\n"
        "\n"
        "\n"
        "class Pinger:\n"
        "    def arm(self, scheduler, cb):\n"
        "        delay = jitter()\n"
        "        scheduler.after_call(delay, cb)\n"
    )
    findings, _ = analyze_sources(
        [
            ("src/repro/util/helpers.py", helpers),
            ("src/repro/util/mid.py", mid),
            ("src/repro/membership/proto.py", proto),
        ]
    )
    assert _codes(findings) == ["RL012"]
    message = findings[0].message
    assert "wall-clock" in message
    assert "time.monotonic()" in message
    # every hop of the chain is rendered with its location
    assert "read_clock()" in message and "helpers.py" in message
    assert "jitter()" in message and "mid.py" in message
    assert "scheduler deadline argument" in message
    assert message.count("->") >= 3


def test_rl012_sanitizers_and_ordered_views_stay_quiet():
    # sorted() launders set-order taint; dict .items() iteration is
    # insertion-ordered and is not a source at all.
    clean = (
        "class View:\n"
        "    def __init__(self):\n"
        "        self.members = {}\n"
        "\n"
        "    def roster(self, scheduler, cb):\n"
        "        order = sorted(set(self.members))\n"
        "        for name, state in self.members.items():\n"
        "            self.last = name\n"
        "        scheduler.after_call(len(order), cb)\n"
    )
    findings, _ = analyze_sources([("src/repro/membership/view.py", clean)])
    assert findings == []


def test_rl012_set_order_reaching_protocol_state():
    tainted = (
        "class View:\n"
        "    def pick(self):\n"
        "        for peer in set(self.peers):\n"
        "            self.leader = peer\n"
        "            break\n"
    )
    findings, _ = analyze_sources([("src/repro/membership/view.py", tainted)])
    assert _codes(findings) == ["RL012"]
    assert "set-order" in findings[0].message
    assert "protocol state" in findings[0].message


# -------------------------------------------------- RL013 handler census


_KINDS = (
    "class PingProbe:\n"
    "    def __init__(self, n):\n"
    "        self.n = n\n"
    "\n"
    "\n"
    "class RetiredMsg:\n"
    "    pass\n"
)


def test_rl013_unhandled_kind_and_dead_handler():
    layer = (
        "from repro.proto.kinds import PingProbe, RetiredMsg\n"
        "\n"
        "\n"
        "class Prober:\n"
        "    def __init__(self, process):\n"
        "        self._process = process\n"
        "        process.on(RetiredMsg, self._on_retired)\n"
        "\n"
        "    def probe(self, dst):\n"
        "        self._process.send(dst, PingProbe(1))\n"
        "\n"
        "    def _on_retired(self, payload, sender):\n"
        "        pass\n"
    )
    findings, _ = analyze_sources(
        [("src/repro/proto/kinds.py", _KINDS), ("src/repro/proto/layer.py", layer)]
    )
    assert _codes(findings) == ["RL013", "RL013"]
    by_message = sorted(f.message for f in findings)
    assert "dead handler: RetiredMsg" in by_message[0]
    assert "PingProbe has no registered handler" in by_message[1]
    # the census cites both the construction and the send site
    assert "constructed at" in by_message[1] and "sent at" in by_message[1]


def test_rl013_registered_and_sent_kind_is_quiet():
    layer = (
        "from repro.proto.kinds import PingProbe\n"
        "\n"
        "\n"
        "class Prober:\n"
        "    def __init__(self, process):\n"
        "        self._process = process\n"
        "        process.on(PingProbe, self._on_probe)\n"
        "\n"
        "    def probe(self, dst):\n"
        "        self._process.send(dst, PingProbe(1))\n"
        "\n"
        "    def _on_probe(self, payload, sender):\n"
        "        pass\n"
    )
    findings, _ = analyze_sources(
        [("src/repro/proto/kinds.py", _KINDS), ("src/repro/proto/layer.py", layer)]
    )
    assert _codes(findings) == []


def test_rl013_census_covers_control_endpoint_sends():
    # The deploy tracker's UDP control plane dispatches by payload class
    # exactly like Process: a kind sent through a ControlEndpoint with no
    # handler registered anywhere is the same silent protocol hole.
    kinds = "class StatusPing:\n    pass\n"
    unhandled = (
        "from repro.proto.kinds import StatusPing\n"
        "\n"
        "\n"
        "class Reporter:\n"
        "    def __init__(self, endpoint):\n"
        "        self._endpoint = endpoint\n"
        "\n"
        "    def ping(self, peer):\n"
        "        self._endpoint.send(peer, StatusPing())\n"
    )
    findings, _ = analyze_sources(
        [
            ("src/repro/proto/kinds.py", kinds),
            ("src/repro/proto/reporter.py", unhandled),
        ]
    )
    assert _codes(findings) == ["RL013"]
    assert "StatusPing has no registered handler" in findings[0].message

    handled = unhandled.replace(
        "        self._endpoint = endpoint\n",
        "        self._endpoint = endpoint\n"
        "        endpoint.on(StatusPing, self._on_ping)\n",
    ) + "\n    def _on_ping(self, payload, sender):\n        pass\n"
    findings, _ = analyze_sources(
        [
            ("src/repro/proto/kinds.py", kinds),
            ("src/repro/proto/reporter.py", handled),
        ]
    )
    assert _codes(findings) == []


# --------------------------------------------------- RL014 await atomicity


def test_rl014_read_modify_write_across_await():
    backend = (
        "class Fabric:\n"
        "    def __init__(self):\n"
        "        self._in_flight = 0\n"
        "\n"
        "    async def drain_one(self):\n"
        "        n = self._in_flight\n"
        "        await self._pump()\n"
        "        self._in_flight = n - 1\n"
        "\n"
        "    async def _pump(self):\n"
        "        pass\n"
    )
    findings, _ = analyze_sources(
        [("src/repro/runtime/asyncio_backend.py", backend)]
    )
    assert _codes(findings) == ["RL014"]
    message = findings[0].message
    assert "read-modify-write of shared self._in_flight" in message
    assert "read (" in message and "await (" in message
    assert "stale write (" in message


def test_rl014_fresh_reread_and_load_only_polling_are_quiet():
    backend = (
        "class Fabric:\n"
        "    def __init__(self):\n"
        "        self._in_flight = 0\n"
        "\n"
        "    async def drain_one(self):\n"
        "        await self._pump()\n"
        "        n = self._in_flight\n"
        "        self._in_flight = n - 1\n"
        "\n"
        "    async def poll(self):\n"
        "        while self._in_flight > 0:\n"
        "            await self._sleep()\n"
        "\n"
        "    async def _pump(self):\n"
        "        pass\n"
        "\n"
        "    async def _sleep(self):\n"
        "        pass\n"
    )
    findings, _ = analyze_sources(
        [("src/repro/runtime/asyncio_backend.py", backend)]
    )
    assert _codes(findings) == []


def test_flow_findings_respect_per_line_suppression():
    backend = (
        "class Fabric:\n"
        "    async def drain_one(self):\n"
        "        n = self._in_flight\n"
        "        await self._pump()\n"
        "        self._in_flight = n - 1  # repro-lint: disable=RL014\n"
        "\n"
        "    async def _pump(self):\n"
        "        pass\n"
    )
    findings, _ = analyze_sources(
        [("src/repro/runtime/asyncio_backend.py", backend)]
    )
    assert findings == []


# ------------------------------------------------------------- live tree


def test_live_tree_is_flow_clean_and_fast():
    findings, stats = analyze_paths(
        [str(REPO_ROOT / "src" / "repro")], repo_root=REPO_ROOT
    )
    rendered = "\n".join(f.render() for f in findings)
    assert findings == [], f"flow findings on the live tree:\n{rendered}"
    # non-vacuity: the model actually resolved the tree
    assert stats["functions"] > 500
    assert stats["call_edges"] > 400
    # acceptance bound: whole-program pass stays well under 10s
    assert stats["elapsed_seconds"] < 10.0


def test_cli_flow_smoke():
    proc = subprocess.run(
        [sys.executable, "-m", "tools.lint", "src/repro", "--flow",
         "--check-baseline"],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "flow:" in proc.stdout
    assert "call edges" in proc.stdout


def test_cli_json_and_sarif_reports(tmp_path):
    json_path = tmp_path / "flow.json"
    sarif_path = tmp_path / "flow.sarif"
    proc = subprocess.run(
        [
            sys.executable,
            "-m",
            "tools.lint",
            "src/repro",
            "--json",
            str(json_path),
            "--sarif",
            str(sarif_path),
        ],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
    report = json.loads(json_path.read_text())
    assert set(FLOW_CODES) == {"RL012", "RL013", "RL014"}
    assert report["stats"]["functions"] > 0
    assert isinstance(report["findings"], list)
    sarif = json.loads(sarif_path.read_text())
    assert sarif["version"] == "2.1.0"
    rules = sarif["runs"][0]["tool"]["driver"]["rules"]
    assert {r["id"] for r in rules} >= set(FLOW_CODES)
