"""Tests for the `python -m repro` command-line interface."""

import subprocess
import sys

from repro.__main__ import main


def test_demo_subcommand(capsys):
    assert main(["demo", "--seed", "3"]) == 0
    out = capsys.readouterr().out
    assert "view after one crash" in out


def test_scale_subcommand(capsys):
    assert main(["scale", "--workers", "16"]) == 0
    out = capsys.readouterr().out
    assert "processes disturbed by one failure" in out
    assert "hierarchical" in out


def test_trading_subcommand(capsys):
    assert main(["trading", "--analysts", "16", "--duration", "3"]) == 0
    out = capsys.readouterr().out
    assert "trading room, 16 analysts" in out
    assert "tick p99" in out


def test_factory_subcommand(capsys):
    assert main(["factory", "--cells", "12", "--duration", "3"]) == 0
    out = capsys.readouterr().out
    assert "factory, 12 work cells" in out


def test_no_command_prints_help(capsys):
    assert main([]) == 2
    assert "usage" in capsys.readouterr().out.lower()


def test_module_invocation():
    result = subprocess.run(
        [sys.executable, "-m", "repro", "--version"],
        capture_output=True,
        text=True,
        timeout=60,
    )
    assert result.returncode == 0
    assert result.stdout.strip()
