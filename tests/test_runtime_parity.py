"""Backend parity: the same protocol scenarios on every engine.

The engine contract (:mod:`repro.runtime.api`) promises that the
protocol stack above it is engine-agnostic.  This suite holds the
promise to account with **one parity matrix over all three engines**:

* the scenario *plans* live in :mod:`repro.deploy.scenarios` — a flat
  four-member group and a small hierarchical service, each a schedule of
  absolute logical times;
* the **sim** engine runs each plan once as the reference;
* the **asyncio** engine runs the identical plan in one wall-clock
  Environment;
* the **socket** engine runs it as a loopback cluster — three
  SocketRuntimes with real UDP sockets between them, every cross-node
  message a codec-encoded wire frame;
* every run must finish sanitizer-clean (VS001–VS006 strict mode — a
  violation raises inside a callback and all engines surface it), and
  all engines must agree on the *protocol-level* outcomes: final views,
  leaf placement, and the per-sender delivery sequence seen by every
  receiver (:meth:`scenario.check`).

What is deliberately **not** compared is the global interleaving of
deliveries across senders: the wall-clock engines race the OS, so only
the orders the protocols themselves enforce (per-sender FIFO, causal,
total) are stable across engines.  The sim backend additionally must
reproduce the frozen determinism baselines of ``test_perf_determinism``
— the adapter is required to be a zero-behaviour-change wrapper.

The full multi-OS-process rung of the same ladder is exercised by the
``socket_smoke`` CLI test below and ``make smoke-socket``.
"""

import os
import subprocess
import sys

import pytest

from repro.deploy.cluster import LoopbackCluster
from repro.deploy.scenarios import (
    LATENCY,
    make_scenario,
    run_reference,
)
from repro.membership import CAUSAL, TOTAL, build_group
from repro.metrics.digest import DeliveryDigest
from repro.net import FixedLatency
from repro.proc import Environment
from repro.runtime import AsyncioRuntime, SimRuntime

from tests.test_perf_determinism import (
    FROZEN_BYTES,
    FROZEN_DELIVERIES,
    FROZEN_EVENTS,
    FROZEN_MESSAGES,
    run_flat_churn_scenario,
)

# Wall seconds per logical second for the live engines under test; small
# enough to keep the matrix fast, large enough that barrier/arrival
# jitter stays far inside the plans' scheduled gaps.
_TEST_TIME_SCALE = 0.05

_references = {}


def reference_for(name):
    """Sim-engine outcome for a scenario plan, computed once per run."""
    if name not in _references:
        _references[name] = run_reference(make_scenario(name))
    return _references[name]


def run_on_asyncio(scenario):
    """The identical plan in one wall-clock Environment."""
    runtime = AsyncioRuntime(seed=scenario.seed, time_scale=_TEST_TIME_SCALE)
    try:
        env = Environment(latency=LATENCY, runtime=runtime)
        state = scenario.build(env, scenario.addresses())
        env.run_for(scenario.duration)
        return scenario.results(state)
    finally:
        runtime.close()


def run_on_socket(scenario):
    """The identical plan as a three-node loopback UDP cluster."""
    results, wire = LoopbackCluster(
        scenario, nodes=3, time_scale=_TEST_TIME_SCALE
    ).run()
    # Parity must be earned over the wire, not via the local fast path.
    assert wire["frames_received"] > 0, "no frames crossed the loopback"
    assert wire["decode_errors"] == 0, wire
    assert wire["encode_drops"] == 0, wire
    return results


_ENGINES = {"asyncio": run_on_asyncio, "socket": run_on_socket}


# ------------------------------------------------------ the parity matrix


@pytest.mark.parametrize("engine", sorted(_ENGINES))
@pytest.mark.parametrize("name", ["flat", "hier", "hier-reorg"])
def test_engine_parity(name, engine):
    scenario = make_scenario(name)
    reference = reference_for(name)
    live = _ENGINES[engine](scenario)
    errors = scenario.check(reference, live)
    assert not errors, "\n".join(errors)
    # Both sides actually tracked deliveries (sanitizers were live).
    assert reference["counters"]["deliveries_checked"] > 0
    assert live["counters"]["deliveries_checked"] > 0
    assert live["counters"].get("violations", 0) == 0


def test_flat_reference_content():
    """The flat plan exercises what the matrix claims it does: all four
    members in the final view and every burst delivered in send order."""
    scenario = make_scenario("flat")
    reference = reference_for("flat")
    assert set(reference["views"]) == set(scenario.addresses())
    for receiver, seqs in reference["seqs"].items():
        assert seqs["g-0"] == ["g-0/m0", "g-0/m1", "g-0/m2"], receiver
        assert seqs["g-3"] == ["g-3/m0", "g-3/m1"], receiver


def test_hier_reference_content():
    """The hier plan places every worker and both leaf bursts land on the
    sender's own leaf peers in send order."""
    scenario = make_scenario("hier")
    reference = reference_for("hier")
    placement = reference["placement"]
    assert len(placement) == scenario.workers
    assert all(slot is not None for slot in placement.values())
    for sender in (scenario.worker_addresses()[0],
                   scenario.worker_addresses()[-1]):
        _leaf, peers = placement[sender]
        expected = [f"{sender}/m{i}" for i in range(3)]
        for peer in peers:
            if peer in reference["seqs"]:
                assert reference["seqs"][peer].get(sender) == expected, peer


# ------------------------------------------------------ wall-clock smoke


def _run_cli(args, timeout=60):
    repo_root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(repo_root, "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    return subprocess.run(
        [sys.executable, "-m", "repro"] + args,
        cwd=repo_root,
        env=env,
        capture_output=True,
        text=True,
        timeout=timeout,
    )


@pytest.mark.asyncio_smoke
def test_live_demo_cli_smoke():
    """Tier-1 gate for `make smoke-asyncio`: the wall-clock hierarchical
    demo completes sanitizer-clean well inside the 60 s hard timeout."""
    proc = _run_cli(["live", "--workers", "6"])
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "sanitizer-clean" in proc.stdout


@pytest.mark.socket_smoke
@pytest.mark.parametrize("scenario", ["flat", "hier"])
def test_deploy_cli_smoke(scenario):
    """Tier-1 gate for `make smoke-socket`: a real deployment — three OS
    processes exchanging UDP wire frames — matches the sim reference and
    reports itself sanitizer-clean inside the 60 s hard timeout."""
    proc = _run_cli(["deploy", "--nodes", "3", "--scenario", scenario])
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "sanitizer-clean" in proc.stdout
    assert "0 decode errors" in proc.stdout


# ------------------------------------------------- sim adapter is exact


def test_sim_runtime_is_the_default_engine():
    """Environment(seed=s) and Environment(runtime=SimRuntime(s)) are the
    same machine: identical delivery digests for a non-trivial run."""

    def digest_for(**env_kwargs):
        env = Environment(latency=FixedLatency(0.002), **env_kwargs)
        _nodes, members = build_group(env, "g", 5)
        digest = DeliveryDigest(env.network)
        env.scheduler.after(0.1, lambda: members[1].multicast("a", TOTAL))
        env.scheduler.after(0.2, lambda: members[3].multicast("b", CAUSAL))
        env.run_for(2.0)
        return digest.hexdigest(), digest.count, env.scheduler.events_processed

    assert digest_for(seed=13) == digest_for(runtime=SimRuntime(seed=13))


def test_sim_runtime_reproduces_frozen_baselines():
    """The adapter must not perturb the PR-1 frozen determinism guard:
    the flat churn scenario's machine-independent counters still match."""
    _digest, deliveries, snapshot, events, now = run_flat_churn_scenario(23)
    assert deliveries == FROZEN_DELIVERIES
    assert snapshot.messages == FROZEN_MESSAGES
    assert snapshot.bytes == FROZEN_BYTES
    assert events == FROZEN_EVENTS
    assert now == 8.0
