"""Backend parity: the same protocol scenarios on both engines.

The engine contract (:mod:`repro.runtime.api`) promises that the
protocol stack above it is engine-agnostic.  This suite holds the
promise to account:

* a flat four-member group and a small hierarchical service each run
  once on :class:`SimRuntime` and once on :class:`AsyncioRuntime`;
* both runs must finish sanitizer-clean (VS001–VS006 strict mode — a
  violation raises inside a timer callback and both engines surface it);
* both runs must agree on the *protocol-level* outcomes: final views,
  leaf placement, and the per-sender delivery sequence seen by every
  receiver.

What is deliberately **not** compared is the global interleaving of
deliveries across senders: the wall-clock engine races the OS, so only
the orders the protocols themselves enforce (per-sender FIFO, causal,
total) are stable across engines.  The sim backend additionally must
reproduce the frozen determinism baselines of ``test_perf_determinism``
— the adapter is required to be a zero-behaviour-change wrapper.
"""

import os
import subprocess
import sys

import pytest

from repro.core import LargeGroupParams, build_large_group, build_leader_group
from repro.membership import CAUSAL, FIFO, TOTAL, build_group
from repro.metrics.digest import DeliveryDigest
from repro.metrics.sanitizer import install_sanitizer
from repro.net import FixedLatency
from repro.proc import Environment
from repro.runtime import AsyncioRuntime, SimRuntime

from tests.test_perf_determinism import (
    FROZEN_BYTES,
    FROZEN_DELIVERIES,
    FROZEN_EVENTS,
    FROZEN_MESSAGES,
    run_flat_churn_scenario,
)


def per_sender(deliveries):
    """Collapse a receiver's delivery log to {sender: [payloads]}."""
    out = {}
    for sender, payload in deliveries:
        out.setdefault(sender, []).append(payload)
    return out


# ------------------------------------------------------------- flat group


def run_flat_scenario(runtime):
    """Four members, traffic in all three orderings, staggered senders.

    Returns (final views, {receiver: {sender: [payloads]}}, sanitizer
    counters).  The runtime is closed by the caller.
    """
    env = Environment(latency=FixedLatency(0.002), runtime=runtime)
    _nodes, members = build_group(env, "g", 4)
    sanitizer = install_sanitizer(members)

    logs = {m.me: [] for m in members}

    def record(me):
        return lambda event: logs[me].append((event.sender, event.payload))

    for member in members:
        member.add_delivery_listener(record(member.me))

    # Each sender's burst is FIFO-ordered by the protocol, so its
    # sequence is engine-independent even though bursts interleave.
    traffic = [
        (0.10, members[0], FIFO, ("f0", "f1", "f2")),
        (0.15, members[1], CAUSAL, ("c0", "c1")),
        (0.20, members[2], TOTAL, ("t0", "t1")),
        (0.25, members[3], FIFO, ("g0", "g1")),
    ]
    for start, member, ordering, payloads in traffic:
        def burst(member=member, ordering=ordering, payloads=payloads):
            for payload in payloads:
                member.multicast(payload, ordering)
        env.scheduler.after(start, burst)

    env.run_for(2.0)
    counters = sanitizer.check(at_quiescence=True)
    views = {m.me: m.members for m in members}
    return views, {me: per_sender(log) for me, log in logs.items()}, counters


def test_flat_group_parity():
    sim_views, sim_seqs, sim_counters = run_flat_scenario(SimRuntime(seed=7))

    runtime = AsyncioRuntime(seed=7, time_scale=0.05)
    try:
        live_views, live_seqs, live_counters = run_flat_scenario(runtime)
    finally:
        runtime.close()

    assert sim_views == live_views
    assert set(sim_views) == {"g-0", "g-1", "g-2", "g-3"}
    assert sim_seqs == live_seqs
    # Every receiver saw every burst, in sender order.
    for receiver, seqs in sim_seqs.items():
        assert seqs["g-0"] == ["f0", "f1", "f2"], receiver
        assert seqs["g-3"] == ["g0", "g1"], receiver
    # Both engines actually tracked deliveries (sanitizer was live).
    assert sim_counters["deliveries_checked"] > 0
    assert live_counters["deliveries_checked"] > 0


# ---------------------------------------------------------- hierarchical


def run_hier_scenario(runtime):
    """A small hierarchical service: 2 leaders, 6 workers, leaf traffic.

    Joins are staggered far apart (0.2 logical seconds) so placement —
    which depends on the order the leader processes joins — is the same
    under wall-clock arrival jitter as under the simulator.
    """
    env = Environment(latency=FixedLatency(0.002), runtime=runtime)
    params = LargeGroupParams(resiliency=2, fanout=3)
    leaders = build_leader_group(env, "svc", params)
    contacts = tuple(r.node.address for r in leaders)
    members = build_large_group(
        env, "svc", 6, params, contacts, join_stagger=0.2
    )
    env.run_for(4.0)

    placed = [m for m in members if m.is_member]
    sanitizer = install_sanitizer(m.leaf_member for m in placed)

    logs = {m.me: [] for m in placed}

    def record(me):
        return lambda event: logs[me].append((event.sender, event.payload))

    for member in placed:
        member.add_delivery_listener(record(member.me))

    # One sender per leaf half: each burst fans out to that leaf only.
    senders = [placed[0], placed[-1]]
    for offset, sender in enumerate(senders):
        def burst(sender=sender, offset=offset):
            for i in range(3):
                sender.leaf_multicast(f"{sender.me}/m{i}", FIFO)
        env.scheduler.after(0.1 + 0.2 * offset, burst)

    env.run_for(3.0)
    counters = sanitizer.check(at_quiescence=True)
    placement = {
        m.me: (m.leaf_member.group, m.leaf_member.members) for m in placed
    }
    return placement, {me: per_sender(log) for me, log in logs.items()}, counters


def test_hierarchical_parity():
    sim_place, sim_seqs, sim_counters = run_hier_scenario(SimRuntime(seed=11))

    runtime = AsyncioRuntime(seed=11, time_scale=0.1)
    try:
        live_place, live_seqs, live_counters = run_hier_scenario(runtime)
    finally:
        runtime.close()

    # All six workers were placed, identically, on both engines.
    assert len(sim_place) == 6
    assert sim_place == live_place
    assert sim_seqs == live_seqs
    # Each sender's leaf peers saw its burst in send order.
    for placement, seqs in ((sim_place, sim_seqs), (live_place, live_seqs)):
        for sender in (min(placement), max(placement)):
            _leaf, peers = placement[sender]
            expected = [f"{sender}/m{i}" for i in range(3)]
            senders_burst = [
                seqs[p].get(sender) for p in peers if p in seqs
            ]
            assert all(got == expected for got in senders_burst), sender
    assert sim_counters["deliveries_checked"] > 0
    assert live_counters["deliveries_checked"] > 0


# ------------------------------------------------------ wall-clock smoke


@pytest.mark.asyncio_smoke
def test_live_demo_cli_smoke():
    """Tier-1 gate for `make smoke-asyncio`: the wall-clock hierarchical
    demo completes sanitizer-clean well inside the 60 s hard timeout."""
    repo_root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(repo_root, "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    proc = subprocess.run(
        [sys.executable, "-m", "repro", "live", "--workers", "6"],
        cwd=repo_root,
        env=env,
        capture_output=True,
        text=True,
        timeout=60,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "sanitizer-clean" in proc.stdout


# ------------------------------------------------- sim adapter is exact


def test_sim_runtime_is_the_default_engine():
    """Environment(seed=s) and Environment(runtime=SimRuntime(s)) are the
    same machine: identical delivery digests for a non-trivial run."""

    def digest_for(**env_kwargs):
        env = Environment(latency=FixedLatency(0.002), **env_kwargs)
        _nodes, members = build_group(env, "g", 5)
        digest = DeliveryDigest(env.network)
        env.scheduler.after(0.1, lambda: members[1].multicast("a", TOTAL))
        env.scheduler.after(0.2, lambda: members[3].multicast("b", CAUSAL))
        env.run_for(2.0)
        return digest.hexdigest(), digest.count, env.scheduler.events_processed

    assert digest_for(seed=13) == digest_for(runtime=SimRuntime(seed=13))


def test_sim_runtime_reproduces_frozen_baselines():
    """The adapter must not perturb the PR-1 frozen determinism guard:
    the flat churn scenario's machine-independent counters still match."""
    _digest, deliveries, snapshot, events, now = run_flat_churn_scenario(23)
    assert deliveries == FROZEN_DELIVERIES
    assert snapshot.messages == FROZEN_MESSAGES
    assert snapshot.bytes == FROZEN_BYTES
    assert events == FROZEN_EVENTS
    assert now == 8.0
