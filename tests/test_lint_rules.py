"""repro-lint: every rule catches its seeded violation fixture, clean
idioms stay quiet, suppression and baseline work, and the live tree is
clean modulo the checked-in baseline."""

import subprocess
import sys
import textwrap
from pathlib import Path

from tools.lint import lint_source, load_baseline, new_findings, run
from tools.lint.engine import DEFAULT_BASELINE
from tools.lint.rules import ALL_RULES

REPO_ROOT = Path(__file__).resolve().parent.parent

PROTO = "src/repro/membership/fixture.py"  # a protocol-package path
PLAIN = "src/repro/metrics/fixture.py"  # a non-protocol path


def codes(source, path=PROTO):
    return [f.code for f in lint_source(textwrap.dedent(source), path)]


# ----------------------------------------------------------- rule fixtures


def test_rl001_wall_clock_sources():
    assert "RL001" in codes("import time\nt = time.time()\n")
    assert "RL001" in codes("from time import monotonic\nmonotonic()\n")
    assert "RL001" in codes(
        "from datetime import datetime\nstamp = datetime.now()\n"
    )
    assert "RL001" in codes("import datetime\nd = datetime.date.today()\n")
    # Simulated time is the approved clock.
    assert codes("now = env.scheduler.now\n") == []


def test_rl002_stdlib_random():
    assert "RL002" in codes("import random\n")
    assert "RL002" in codes("from random import choice\n")
    assert "RL002" in codes("import secrets\n")
    # sim/rand.py is the one sanctioned home.
    assert codes("import random\n", path="src/repro/sim/rand.py") == []


def test_rl003_unordered_iteration_in_protocol_code():
    assert "RL003" in codes("for x in set(items):\n    use(x)\n")
    assert "RL003" in codes("for a in set(wanted) - watched:\n    pass\n")
    assert "RL003" in codes("out = [f(x) for x in {1, 2, 3}]\n")
    assert "RL003" in codes("members = tuple(set(alive))\n")
    assert "RL003" in codes("for k in d.keys() - other:\n    pass\n")
    assert "RL003" in codes("for m in alive.difference(dead):\n    pass\n")
    # sorted() fixes the order; order-insensitive consumers are fine.
    assert codes("for x in sorted(set(items)):\n    use(x)\n") == []
    assert codes("n = len(set(items))\n") == []
    assert codes("ok = x in set(items)\n") == []
    # Outside protocol packages the rule is silent.
    assert codes("for x in set(items):\n    use(x)\n", path=PLAIN) == []


def test_rl004_identity_keys():
    assert "RL004" in codes("table[id(process)] = x\n")
    assert "RL004" in codes("existing = table.get(id(process))\n")
    assert "RL004" in codes("order[hash(view)] = 1\n")
    assert "RL004" in codes("first = hash(a) < hash(b)\n")
    # hash() as a return value (defining __hash__) is fine.
    assert codes("def f(self):\n    return hash(frozenset(s))\n") == []


def test_rl005_mutable_defaults():
    assert "RL005" in codes("def f(x, acc=[]):\n    pass\n")
    assert "RL005" in codes("def f(x, acc={}):\n    pass\n")
    assert "RL005" in codes("def f(x, acc=set()):\n    pass\n")
    assert "RL005" in codes("def f(x, *, acc=dict()):\n    pass\n")
    assert codes("def f(x, acc=None):\n    pass\n") == []
    assert codes("def f(x, acc=()):\n    pass\n") == []


def test_rl006_float_equality_on_time():
    assert "RL006" in codes("if deadline == scheduler.now:\n    pass\n")
    assert "RL006" in codes("ready = t != self._now\n")
    assert codes("late = scheduler.now >= deadline\n") == []
    assert codes("if self._join_timer == None:\n    pass\n", path=PLAIN) == []


def test_rl007_scheduler_internals():
    assert "RL007" in codes("import heapq\n")
    assert "RL007" in codes("from heapq import heappush\n")
    assert "RL007" in codes("evts = env.scheduler._heap\n")
    assert "RL007" in codes("n = scheduler._seq\n")
    # The scheduler itself owns its heap.
    assert codes("import heapq\n", path="src/repro/sim/scheduler.py") == []
    assert codes("t = env.scheduler.now\n") == []


def test_rl008_trace_internals_in_protocol_code():
    assert "RL008" in codes("import repro.trace\n")
    assert "RL008" in codes("import repro.trace.collector\n")
    assert "RL008" in codes("from repro.trace import TraceCollector\n")
    assert "RL008" in codes("from repro.trace.collector import TraceCollector\n")
    assert "RL008" in codes("from repro import trace\n")
    assert "RL008" in codes("span = collector.new_span('x', 'y', 'z')\n")
    assert "RL008" in codes("spans = network.trace.collector.spans()\n")
    # The guarded-sink idiom is the approved hook surface.
    assert codes(
        "trace = self.process.env.network.trace\n"
        "if trace is not None:\n"
        "    trace.local('suspect', category='membership', process=me)\n"
    ) == []
    # Outside protocol packages (the trace package itself, metrics,
    # tools, tests) the rule is silent.
    assert codes("from repro.trace import TraceCollector\n", path=PLAIN) == []
    assert codes(
        "span = self.collector.new_span('a', 'b', 'c')\n",
        path="src/repro/trace/api.py",
    ) == []


def test_rl009_sim_imports_outside_runtime():
    # The engine boundary: protocol packages must not import repro.sim.
    assert "RL009" in codes("from repro.sim.rand import SimRandom\n")
    assert "RL009" in codes("from repro.sim.scheduler import Scheduler\n")
    assert "RL009" in codes("from repro.sim import Scheduler, SimRandom\n")
    assert "RL009" in codes("import repro.sim\n", path=PLAIN)
    assert "RL009" in codes("import repro.sim.scheduler\n", path=PLAIN)
    assert "RL009" in codes("from repro import sim\n", path=PLAIN)
    assert "RL009" in codes(
        "from repro.sim.scheduler import EventHandle\n",
        path="src/repro/proc/process.py",
    )
    # The simulator itself and the runtime backends are the two homes.
    assert codes(
        "from repro.sim.rand import SimRandom\n", path="src/repro/sim/__init__.py"
    ) == []
    assert codes(
        "from repro.sim.scheduler import Scheduler\n",
        path="src/repro/runtime/sim_backend.py",
    ) == []
    # The engine-contract idiom is the approved import surface.
    assert codes("from repro.runtime.api import SimRandom, TimerService\n") == []
    assert codes("from repro.runtime import AsyncioRuntime, SimRuntime\n") == []
    # Per-line disable still works for judged exceptions.
    assert codes(
        "from repro.sim import Scheduler  # repro-lint: disable=RL009\n"
    ) == []


def test_rl010_segment_ack_outside_transport():
    # Acks are the transport's private wire protocol: no layer above may
    # construct one (it would bypass the delayed/piggybacked-ack
    # bookkeeping of docs/comms.md).
    assert "RL010" in codes(
        "from repro.transport.channel import SegmentAck\n"
        "process.send(peer, SegmentAck(cum_seq=5))\n"
    )
    assert "RL010" in codes(
        "import repro.transport.channel as channel\n"
        "ack = channel.SegmentAck(cum_seq=1, epoch=2)\n",
        path=PLAIN,
    )
    # The transport itself is the one approved home.
    assert codes(
        "ack = SegmentAck(cum_seq=state.cum_seq)\n",
        path="src/repro/transport/reliable.py",
    ) == []
    # Receiving/forwarding an ack object is fine — only construction is
    # the transport's privilege.
    assert codes("def _on_ack(self, ack, sender):\n    log(ack.cum_seq)\n") == []
    # Per-line disable still works for judged exceptions.
    assert codes(
        "ack = SegmentAck(cum_seq=0)  # repro-lint: disable=RL010\n"
    ) == []


HOT = "src/repro/net/network.py"  # a hot-event-loop path


def test_rl011_hot_loop_allocation_escapes():
    # Per-event allocations that *escape* the iteration defeat the
    # zero-allocation discipline: a closure handed to the scheduler …
    assert "RL011" in codes(
        "for e in batch:\n    fabric.at_call(t, lambda: deliver(e))\n",
        path=HOT,
    )
    # … a container stored onto an attribute or shipped out through a
    # call (directly or via a local name the call-graph pass traces) …
    assert "RL011" in codes(
        "for e in batch:\n    self._pending = [e]\n", path=HOT
    )
    assert "RL011" in codes(
        "for e in batch:\n"
        "    dsts = [x.dst for x in group]\n"
        "    fabric.send_many(dsts, e)\n",
        path=HOT,
    )
    assert "RL011" in codes(
        "for e in batch:\n    out.append({e.src: e})\n", path=HOT
    )
    # … or one stored into an attribute-held container or returned.
    assert "RL011" in codes(
        "for e in batch:\n    self.q[e.dst] = [e]\n", path=HOT
    )
    assert "RL011" in codes("for e in batch:\n    return [e]\n", path=HOT)


def test_rl011_non_escaping_allocations_stay_quiet():
    # Immediately-invoked nested defs die with their iteration: the old
    # syntactic rule needed a disable comment here, the escape analysis
    # does not.
    assert codes(
        "while heap:\n"
        "    def fire():\n"
        "        pop()\n"
        "    fire()\n",
        path=HOT,
    ) == []
    # Loop-local scratch that never leaves the iteration.
    assert codes(
        "for e in batch:\n    meta = []\n    meta.append(e)\n", path=HOT
    ) == []
    # Arguments consumed in place (sorted/len/heapify …), including the
    # key= lambda sorted itself consumes.
    assert codes(
        "for e in batch:\n    n = len([x for x in group])\n", path=HOT
    ) == []
    assert codes(
        "for e in batch:\n    order = sorted(group, key=lambda m: m.node)\n",
        path=HOT,
    ) == []
    # The amortised compaction idiom — rebuild a list and swap it into
    # an existing local slot (sim/sharded.py _compact) — is the escape
    # analysis's headline false-positive kill.
    assert codes(
        "for i in range(n):\n"
        "    live = []\n"
        "    live.append(x)\n"
        "    heapq.heapify(live)\n"
        "    heaps[i] = live\n",
        path=HOT,
    ) == []
    # Allocation-free loop bodies stay quiet.
    assert codes("for e in batch:\n    pool.append(e)\n", path=HOT) == []
    # Outside a loop, allocation is setup cost, not per-event cost.
    assert codes("meta = {}\nbatch = []\n", path=HOT) == []
    # The rule only polices the event core's hot files.
    assert codes("for e in batch:\n    self.q = [e]\n", path=PLAIN) == []
    # Judged deliberate escapes are waved through explicitly.
    assert codes(
        "for e in batch:\n"
        "    self.q = [e]  # repro-lint: disable=RL011\n",
        path=HOT,
    ) == []


def test_rl015_wire_serialization_outside_the_wire_layer():
    # One frame format, one place it is written: protocol code that
    # reaches for raw sockets or byte-level serializers is inventing a
    # second, unversioned wire format (docs/deployment.md).
    assert "RL015" in codes("import socket\n")
    assert "RL015" in codes("import struct\n")
    assert "RL015" in codes("from struct import pack\n")
    assert "RL015" in codes("import pickle\n", path=PLAIN)
    assert "RL015" in codes("import marshal\n")
    assert "RL015" in codes("from json import dumps\n", path=PLAIN)
    assert "RL015" in codes("import socket.timeout\n")
    # The wire codec, the socket backend and the deploy control plane
    # are the three approved homes.
    assert codes("import struct\n", path="src/repro/net/wire/codec.py") == []
    assert codes(
        "import socket\n", path="src/repro/runtime/socket_backend.py"
    ) == []
    assert codes("import socket\n", path="src/repro/deploy/tracker.py") == []
    # Speaking payload objects through the network is the approved idiom.
    assert codes("process.send(peer, GroupData(*fields))\n") == []
    # Per-line disable still works for judged exceptions.
    assert codes("import json  # repro-lint: disable=RL015\n") == []


def test_every_rule_has_a_code_and_hint():
    seen = set()
    for rule in ALL_RULES:
        assert rule.code.startswith("RL") and len(rule.code) == 5
        assert rule.code not in seen
        assert rule.hint
        seen.add(rule.code)


# ------------------------------------------------- suppression & baseline


def test_per_line_suppression():
    src = "for x in set(items):  # repro-lint: disable=RL003\n    use(x)\n"
    assert codes(src) == []
    # Suppressing a different code does not silence the finding.
    src = "for x in set(items):  # repro-lint: disable=RL004\n    use(x)\n"
    assert codes(src) == ["RL003"]


def test_suppression_covers_multiline_statements():
    # A disable comment on the first physical line of a wrapped statement
    # silences findings reported on its continuation lines — rules anchor
    # findings at the offending sub-expression, which after black-style
    # wrapping is rarely the line carrying the comment.
    src = (
        "table = {  # repro-lint: disable=RL004\n"
        "    id(member): member\n"
        "}\n"
    )
    assert codes(src) == []
    # Without the comment the continuation line still fires.
    src = "table = {\n    id(member): member\n}\n"
    assert codes(src) == ["RL004"]
    # The spread stops at the statement: the next statement is not
    # covered by the previous one's comment.
    src = (
        "table = {  # repro-lint: disable=RL004\n"
        "    id(member): member\n"
        "}\n"
        "other = id(peer)\n"
    )
    assert codes(src) == ["RL004"]
    # Compound statements spread only over their own header, never into
    # the body.
    src = (
        "for x in (  # repro-lint: disable=RL003\n"
        "    set(items)\n"
        "):\n"
        "    y = id(x)\n"
        "    use(y)\n"
    )
    assert codes(src) == ["RL004"]


def test_baseline_grandfathers_existing_findings(tmp_path):
    bad = tmp_path / "src" / "repro" / "membership" / "old.py"
    bad.parent.mkdir(parents=True)
    bad.write_text("for x in set(items):\n    use(x)\n")
    root = [str(tmp_path / "src" / "repro")]
    # No baseline: the finding is a failure.
    code, report = run(root, baseline_path=tmp_path / "b.json", repo_root=tmp_path)
    assert code == 1 and "RL003" in report
    # Record it, then the same tree passes...
    code, _ = run(
        root,
        baseline_path=tmp_path / "b.json",
        update_baseline=True,
        repo_root=tmp_path,
    )
    assert code == 0
    code, report = run(root, baseline_path=tmp_path / "b.json", repo_root=tmp_path)
    assert code == 0 and "grandfathered" in report
    # ...until the bucket grows: a second violation in the file fails.
    bad.write_text(
        "for x in set(items):\n    use(x)\nfor y in set(more):\n    use(y)\n"
    )
    code, report = run(root, baseline_path=tmp_path / "b.json", repo_root=tmp_path)
    assert code == 1


def test_check_baseline_fails_on_stale_entries(tmp_path):
    # Grandfathered debt that has been paid off must leave the baseline,
    # or the bucket could silently regrow back up to its stale count.
    bad = tmp_path / "src" / "repro" / "membership" / "old.py"
    bad.parent.mkdir(parents=True)
    bad.write_text("for x in set(items):\n    use(x)\n")
    root = [str(tmp_path / "src" / "repro")]
    run(
        root,
        baseline_path=tmp_path / "b.json",
        update_baseline=True,
        repo_root=tmp_path,
    )
    # Pay off the debt: the plain run passes, but --check-baseline
    # demands the baseline shrink too.
    bad.write_text("for x in ordered(items):\n    use(x)\n")
    code, _ = run(root, baseline_path=tmp_path / "b.json", repo_root=tmp_path)
    assert code == 0
    code, report = run(
        root,
        baseline_path=tmp_path / "b.json",
        repo_root=tmp_path,
        check_baseline=True,
    )
    assert code == 1
    assert "stale baseline entry" in report
    assert "membership/old.py::RL003" in report
    # Regenerating the baseline clears the staleness.
    run(
        root,
        baseline_path=tmp_path / "b.json",
        update_baseline=True,
        repo_root=tmp_path,
    )
    code, _ = run(
        root,
        baseline_path=tmp_path / "b.json",
        repo_root=tmp_path,
        check_baseline=True,
    )
    assert code == 0


# ------------------------------------------------------------- live tree


def test_live_tree_is_clean_modulo_baseline():
    code, report = run(
        [str(REPO_ROOT / "src" / "repro")],
        baseline_path=DEFAULT_BASELINE,
        repo_root=REPO_ROOT,
    )
    assert code == 0, f"repro-lint regressions:\n{report}"


def test_checked_in_baseline_is_empty():
    """The tree was scrubbed in this PR; keep it that way.  If you must
    grandfather a finding, document it in docs/devtools.md."""
    assert load_baseline(DEFAULT_BASELINE) == {}


def test_cli_smoke():
    """Tier-1 gate: `python -m tools.lint src/repro` must exit 0."""
    proc = subprocess.run(
        [sys.executable, "-m", "tools.lint", "src/repro"],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "repro-lint" in proc.stdout
