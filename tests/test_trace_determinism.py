"""Tracing is observation-only: enabling it changes no behaviour
fingerprint, and for a fixed seed the trace itself is reproducible.

Three guarantees, each the regression guard for one acceptance claim:

1. a traced run's delivery digest, counters and event counts are
   byte-identical to the untraced run (the sink draws no randomness and
   schedules nothing);
2. the frozen flat-scenario constants from tests/test_perf_determinism.py
   still hold with tracing enabled;
3. two same-seed traced runs record identical spans, and ring-buffer
   capacity changes what is *retained*, never what *happens*.
"""

from repro import trace
from repro.metrics import TimeSeriesRecorder

from tests.test_perf_determinism import (
    FROZEN_BYTES,
    FROZEN_DELIVERIES,
    FROZEN_EVENTS,
    FROZEN_MESSAGES,
    run_flat_churn_scenario,
    run_hier_churn_scenario,
)


class _Tracer:
    """Instrument hook that keeps a handle on the attached sink."""

    def __init__(self, capacity=None):
        self.capacity = capacity
        self.sink = None

    def __call__(self, env):
        self.sink = trace.attach(env, capacity=self.capacity)


def test_traced_flat_run_keeps_frozen_counters():
    tracer = _Tracer()
    _digest, deliveries, snapshot, events, now = run_flat_churn_scenario(
        23, instrument=tracer
    )
    assert deliveries == FROZEN_DELIVERIES
    assert snapshot.messages == FROZEN_MESSAGES
    assert snapshot.bytes == FROZEN_BYTES
    assert events == FROZEN_EVENTS  # tracing schedules zero events
    assert now == 8.0
    # ...and the run was actually traced, heavily.
    assert tracer.sink.collector.recorded > 2 * FROZEN_DELIVERIES


def test_traced_and_untraced_flat_digests_identical():
    untraced = run_flat_churn_scenario(23)
    traced = run_flat_churn_scenario(23, instrument=_Tracer())
    assert traced == untraced  # digest, count, stats, events, sim time


def test_traced_and_untraced_hier_digests_identical():
    untraced = run_hier_churn_scenario(23)
    traced = run_hier_churn_scenario(23, instrument=_Tracer())
    assert traced == untraced


def test_same_seed_traced_runs_record_identical_spans():
    a, b = _Tracer(), _Tracer()
    run_flat_churn_scenario(23, instrument=a)
    run_flat_churn_scenario(23, instrument=b)
    spans_a = [s.to_tuple() for s in a.sink.collector.spans]
    spans_b = [s.to_tuple() for s in b.sink.collector.spans]
    assert spans_a and spans_a == spans_b


def test_ring_buffer_capacity_does_not_perturb_behaviour():
    full = run_flat_churn_scenario(23, instrument=_Tracer())
    ringed_tracer = _Tracer(capacity=256)
    ringed = run_flat_churn_scenario(23, instrument=ringed_tracer)
    assert ringed == full
    collector = ringed_tracer.sink.collector
    assert len(collector) == 256
    assert collector.evicted == collector.recorded - 256


def test_recorder_probe_trace_samples_span_counts():
    tracer = _Tracer(capacity=128)
    recorder_box = {}

    def instrument(env):
        tracer(env)
        recorder = TimeSeriesRecorder(env, interval=0.5)
        recorder.probe_trace(tracer.sink.collector)
        recorder.start()
        recorder_box["recorder"] = recorder

    result = run_flat_churn_scenario(23, instrument=instrument)
    assert result[1] == FROZEN_DELIVERIES  # recording changed nothing
    recorder = recorder_box["recorder"]
    recorded_series = recorder.values("trace.recorded")
    assert recorded_series == sorted(recorded_series)  # monotone
    assert recorded_series[-1] <= tracer.sink.collector.recorded
    assert recorder.last("trace.retained") == 128.0
