"""tools/trace_report.py: the traced hierarchy demo audits E1's 2n
message claim, exports valid Chrome trace-event JSON, and is
reproducible from the seed alone."""

import hashlib
import json
import os
import subprocess
import sys
from pathlib import Path

from tools.trace_report import CC_CATEGORIES, main, run_demo

REPO_ROOT = Path(__file__).resolve().parent.parent


def test_demo_audits_e1_and_e8():
    report = run_demo(seed=7, workers=12)
    request = report["request"]
    # E1: a coordinator-cohort request to an n-member leaf costs exactly
    # 2n messages (n requests + 1 reply + n-1 result copies).
    assert request["leaf_size"] >= 2
    assert request["cc_messages"] == 2 * request["leaf_size"]
    assert request["e1_match"] is True
    by_category = request["sends_by_category"]
    assert by_category["cc-request"] == request["leaf_size"]
    assert by_category["cc-reply"] == 1
    assert by_category["cc-result"] == request["leaf_size"] - 1
    assert set(by_category) <= set(CC_CATEGORIES)
    # The request's critical path is client -> coordinator -> fan-out.
    assert request["hops"] == 2

    # E8: the treecast reaches everyone in the planned number of stages;
    # the critical path walks down the tree and back up the ack path.
    treecast = report["treecast"]
    assert treecast["stages"] >= 1
    assert treecast["hops"] >= 2
    assert treecast["sends"] >= 12  # every worker hears the broadcast


def test_demo_chrome_export_is_valid():
    report = run_demo(seed=7, workers=12)
    doc = report["chrome"]
    # Round-trips through JSON (the CLI writes exactly this).
    reparsed = json.loads(json.dumps(doc))
    events = reparsed["traceEvents"]
    assert events
    phases = {e["ph"] for e in events}
    assert {"M", "X"} <= phases
    for event in events:
        assert {"name", "ph", "pid", "tid"} <= set(event)
        if event["ph"] == "X":
            assert event["dur"] >= 0


def test_cli_writes_export_and_reports_match(tmp_path, capsys):
    out = tmp_path / "demo.json"
    code = main(["--workers", "12", "--seed", "7", "--out", str(out)])
    assert code == 0
    printed = capsys.readouterr().out
    assert "MATCH" in printed and "MISMATCH" not in printed
    assert "critical path" in printed
    doc = json.loads(out.read_text())
    assert doc["traceEvents"]


def test_same_seed_demo_exports_identical():
    """Two fresh processes, same seed, pinned hash seed: byte-identical
    Chrome exports (the acceptance criterion for trace determinism)."""
    code = (
        "import hashlib, json;"
        "from tools.trace_report import run_demo;"
        "doc = run_demo(seed=11, workers=10)['chrome'];"
        "blob = json.dumps(doc, sort_keys=True).encode();"
        "print(hashlib.sha256(blob).hexdigest())"
    )
    env = dict(os.environ, PYTHONHASHSEED="0")
    env["PYTHONPATH"] = (
        str(REPO_ROOT / "src") + os.pathsep + str(REPO_ROOT)
        + (os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
    )
    digests = []
    for _ in range(2):
        out = subprocess.run(
            [sys.executable, "-c", code],
            env=env,
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
            check=True,
        )
        digests.append(out.stdout.strip())
    assert digests[0] == digests[1]
    assert len(digests[0]) == 64
