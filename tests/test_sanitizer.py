"""Virtual-synchrony sanitizer: clean runs stay silent, injected
violations raise with the right VS code."""

from dataclasses import dataclass

import pytest

from repro.clocks.vector import VectorClock
from repro.membership import CAUSAL, FIFO, TOTAL, GroupData, build_group
from repro.membership.events import ViewEvent
from repro.membership.view import GroupView
from repro.metrics.sanitizer import (
    VirtualSynchronySanitizer,
    VirtualSynchronyViolation,
    install_sanitizer,
)
from repro.net import FixedLatency
from repro.proc import Environment

from tests.test_hierarchy_integration import build_service, manager


@dataclass
class App:
    category = "app"
    tag: str = ""


def make_group(n, seed=1):
    env = Environment(seed=seed, latency=FixedLatency(0.002))
    nodes, members = build_group(env, "g", n)
    return env, nodes, members


# ------------------------------------------------------------- clean runs


def test_clean_flat_run_passes_all_orderings():
    env, nodes, members = make_group(4)
    sanitizer = install_sanitizer(members)
    for i in range(5):
        members[i % 4].multicast(App(f"f{i}"), FIFO)
        members[(i + 1) % 4].multicast(App(f"c{i}"), CAUSAL)
        members[(i + 2) % 4].multicast(App(f"t{i}"), TOTAL)
    env.run_for(2.0)
    summary = sanitizer.check(at_quiescence=True)
    assert summary["violations"] == 0
    # 15 multicasts x 4 members, every one inspected.
    assert summary["deliveries_checked"] >= 60


def test_clean_run_across_view_change():
    """Crash a member mid-traffic: the flush must keep survivors'
    view-1 delivery sets identical (the virtual-synchrony guarantee)."""
    env, nodes, members = make_group(5)
    sanitizer = install_sanitizer(members)
    for i, m in enumerate(members):
        m.multicast(App(f"pre{i}"), CAUSAL)
    nodes[2].crash()
    env.run_for(3.0)
    survivors = [m for m in members if m.me != nodes[2].address]
    assert all(m.view.seq >= 2 for m in survivors)
    for i, m in enumerate(survivors):
        m.multicast(App(f"post{i}"), TOTAL)
    env.run_for(2.0)
    summary = sanitizer.check(at_quiescence=True)
    assert summary["violations"] == 0
    assert sanitizer.views_checked >= len(survivors)


def test_clean_hierarchy_run_with_hooks_enabled():
    """The paper's hierarchy scenario with sanitizer hooks on every leaf
    member: steady-state traffic plus a leaf view change stays clean."""
    env, params, leaders, members = build_service(9, fanout=3)
    sanitizer = VirtualSynchronySanitizer()
    placed = [m for m in members if m.leaf_member is not None]
    assert placed, "no members were placed into leaves"
    sanitizer.attach_all(m.leaf_member for m in placed)
    # Leaf-local traffic through the hooked members.
    for i, m in enumerate(placed):
        if m.is_member:
            m.leaf_member.multicast(App(f"leaf{i}"), CAUSAL)
    env.run_for(2.0)
    # Force a leaf view change under the hooks.
    placed[-1].node.crash()
    env.run_for(5.0)
    for i, m in enumerate(placed[:-1]):
        if m.is_member:
            m.leaf_member.multicast(App(f"after{i}"), TOTAL)
    env.run_for(2.0)
    summary = sanitizer.check(at_quiescence=True)
    assert summary["violations"] == 0
    assert summary["deliveries_checked"] > 0
    assert manager(leaders) is not None


# ------------------------------------------------------- injected violations


def _data(sender, seq, ordering=FIFO, view_seq=1, group="g", stamp=None):
    return GroupData(
        group=group,
        view_seq=view_seq,
        sender=sender,
        sender_seq=seq,
        ordering=ordering,
        payload=App("x"),
        stamp=stamp,
    )


def test_injected_out_of_order_delivery_in_live_group_raises():
    """Forge deliveries through a real member's hooked delivery path:
    sender seq 3 then seq 2 is a per-stream reordering and raises at the
    second delivery."""
    env, nodes, members = make_group(3)
    install_sanitizer(members)
    members[0].multicast(App("ok"), FIFO)
    env.run_for(1.0)
    members[1]._deliver(_data(members[0].me, 3))  # increasing: tolerated
    with pytest.raises(VirtualSynchronyViolation) as excinfo:
        members[1]._deliver(_data(members[0].me, 2))
    assert excinfo.value.code == "VS002"


def test_injected_gap_is_caught_when_the_run_drains():
    """A hole in one sender's sequence (seq 3 delivered, seq 2 never) is
    a VS002 gap at quiescence."""
    env, nodes, members = make_group(3)
    sanitizer = VirtualSynchronySanitizer(strict=False)
    sanitizer.attach_all(members)
    members[0].multicast(App("ok"), FIFO)
    env.run_for(1.0)
    members[1]._deliver(_data(members[0].me, 3))  # seq 2 never existed
    with pytest.raises(VirtualSynchronyViolation):
        sanitizer.check(at_quiescence=True)
    assert any(v.code == "VS002" and "gap" in v.detail for v in sanitizer.violations)


def test_injected_causal_violation_raises():
    """A causal message whose stamp names an undelivered dependency must
    trip the Birman–Schiper–Stephenson check."""
    sanitizer = VirtualSynchronySanitizer()
    view = GroupView("g", 1, ("a", "b", "c"))
    for member in view.members:
        sanitizer.observe_view(member, ViewEvent(view=view, joined=view.members, departed=()))
    # b delivers a's message which claims a causal past {a:1, c:2} — but
    # nothing from c was ever delivered at b.
    stamp = VectorClock({"a": 1, "c": 2})
    with pytest.raises(VirtualSynchronyViolation) as excinfo:
        sanitizer.observe_delivery("b", _data("a", 1, ordering=CAUSAL, stamp=stamp))
    assert excinfo.value.code == "VS003"


def test_injected_divergent_view_raises():
    """Two members installing different memberships for the same view
    seq is the canonical view-agreement violation."""
    sanitizer = VirtualSynchronySanitizer()
    view_a = GroupView("g", 2, ("a", "b", "c"))
    view_b = GroupView("g", 2, ("a", "b"))
    sanitizer.observe_view("a", ViewEvent(view=view_a, joined=(), departed=()))
    with pytest.raises(VirtualSynchronyViolation) as excinfo:
        sanitizer.observe_view("b", ViewEvent(view=view_b, joined=(), departed=()))
    assert excinfo.value.code == "VS001"


def test_injected_delivery_set_divergence_raises():
    """Survivors of a view change that delivered different view-1 sets
    break virtual synchrony (VS004)."""
    sanitizer = VirtualSynchronySanitizer(strict=False)
    view1 = GroupView("g", 1, ("a", "b"))
    for member in ("a", "b"):
        sanitizer.observe_view(member, ViewEvent(view=view1, joined=view1.members, departed=()))
    sanitizer.observe_delivery("a", _data("a", 1))
    sanitizer.observe_delivery("b", _data("a", 1))
    sanitizer.observe_delivery("a", _data("b", 1))  # b never sees this one
    view2 = GroupView("g", 2, ("a", "b"))
    for member in ("a", "b"):
        sanitizer.observe_view(member, ViewEvent(view=view2, joined=(), departed=()))
    assert any(v.code == "VS004" for v in sanitizer.violations)
    with pytest.raises(VirtualSynchronyViolation):
        sanitizer.check()


def test_injected_duplicate_and_total_order_divergence():
    sanitizer = VirtualSynchronySanitizer(strict=False)
    view = GroupView("g", 1, ("a", "b"))
    for member in ("a", "b"):
        sanitizer.observe_view(member, ViewEvent(view=view, joined=view.members, departed=()))
    sanitizer.observe_delivery("a", _data("a", 1))
    sanitizer.observe_delivery("a", _data("a", 1))  # duplicate
    assert any(v.code == "VS005" for v in sanitizer.violations)
    # a delivers TOTAL messages x then y; b delivers y then x.
    sanitizer.observe_delivery("a", _data("x", 1, ordering=TOTAL))
    sanitizer.observe_delivery("a", _data("y", 1, ordering=TOTAL))
    sanitizer.observe_delivery("b", _data("y", 1, ordering=TOTAL))
    sanitizer.observe_delivery("b", _data("x", 1, ordering=TOTAL))
    with pytest.raises(VirtualSynchronyViolation):
        sanitizer.check()
    assert any(v.code == "VS006" for v in sanitizer.violations)


def test_detach_restores_delivery_path():
    env, nodes, members = make_group(3)
    sanitizer = install_sanitizer(members)
    members[0].multicast(App("one"), FIFO)
    env.run_for(1.0)
    checked = sanitizer.deliveries_checked
    assert checked >= 3
    sanitizer.detach_all()
    members[0].multicast(App("two"), FIFO)
    env.run_for(1.0)
    assert sanitizer.deliveries_checked == checked


# --------------------------------------------------- trace context wiring


def test_violation_carries_trace_context_when_traced():
    """With the causal tracer attached, a violation detected inside a
    real (network-routed) delivery records the offending delivery's
    trace and span ids, so the report points at causal history."""
    from repro import trace

    env, nodes, members = make_group(3)
    sink = trace.attach(env)
    sanitizer = VirtualSynchronySanitizer(strict=False)
    sanitizer.attach_all(members)
    # Poison the watermark so the next genuine FIFO delivery at g-1
    # registers as a per-sender reordering (VS002) *during* a traced
    # delivery callback.
    view = members[1].view
    state = sanitizer._state[(view.group, view.seq)][members[1].me]
    state.watermarks[(members[0].me, FIFO)] = 99
    members[0].multicast(App("x"), FIFO)
    env.run_for(1.0)

    vs = [v for v in sanitizer.violations if v.code == "VS002"]
    assert vs, "poisoned watermark should have fired VS002"
    violation = vs[0]
    assert violation.member == members[1].me
    assert violation.trace_id is not None
    assert violation.span_id is not None
    span = sink.collector.span(violation.span_id)
    assert span is not None
    assert span.kind == "deliver"
    assert span.trace_id == violation.trace_id
    assert span.process == members[1].me  # the offending delivery


def test_violation_trace_context_none_when_untraced():
    env, nodes, members = make_group(3)
    sanitizer = VirtualSynchronySanitizer(strict=False)
    sanitizer.attach_all(members)
    view = members[1].view
    state = sanitizer._state[(view.group, view.seq)][members[1].me]
    state.watermarks[(members[0].me, FIFO)] = 99
    members[0].multicast(App("x"), FIFO)
    env.run_for(1.0)
    vs = [v for v in sanitizer.violations if v.code == "VS002"]
    assert vs and vs[0].trace_id is None and vs[0].span_id is None


def test_strict_violation_message_names_trace_ids():
    from repro import trace

    env, nodes, members = make_group(3)
    trace.attach(env)
    sanitizer = VirtualSynchronySanitizer(strict=True)
    sanitizer.attach_all(members)
    view = members[1].view
    state = sanitizer._state[(view.group, view.seq)][members[1].me]
    state.watermarks[(members[0].me, FIFO)] = 99
    members[0].multicast(App("x"), FIFO)
    with pytest.raises(VirtualSynchronyViolation) as excinfo:
        env.run_for(1.0)
    assert excinfo.value.code == "VS002"
    assert "trace " in str(excinfo.value)
