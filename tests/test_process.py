"""Unit tests for the process runtime (environment, actors, timers, crash)."""

from dataclasses import dataclass

import pytest

from repro.net import FixedLatency
from repro.proc import Environment, Process


@dataclass
class Note:
    category = "note"
    text: str = ""


@dataclass
class Other:
    category = "other"


class Echoer(Process):
    def __init__(self, env, address):
        super().__init__(env, address)
        self.inbox = []
        self.on(Note, self._on_note)

    def _on_note(self, note, sender):
        self.inbox.append((note.text, sender))


def test_processes_exchange_messages():
    env = Environment(seed=1, latency=FixedLatency(0.01))
    a = Echoer(env, "a")
    b = Echoer(env, "b")
    a.send("b", Note("hi"))
    b.send("a", Note("yo"))
    env.run()
    assert b.inbox == [("hi", "a")]
    assert a.inbox == [("yo", "b")]


def test_duplicate_address_rejected():
    env = Environment()
    Echoer(env, "a")
    with pytest.raises(ValueError):
        Echoer(env, "a")


def test_multicast_reaches_all():
    env = Environment(seed=1)
    sender = Echoer(env, "s")
    receivers = [Echoer(env, f"r{i}") for i in range(4)]
    sender.multicast([r.address for r in receivers], Note("fan"))
    env.run()
    assert all(r.inbox == [("fan", "s")] for r in receivers)


def test_unhandled_payload_recorded():
    env = Environment(seed=1)
    a = Echoer(env, "a")
    b = Echoer(env, "b")
    a.send("b", Other())
    env.run()
    assert len(b.unhandled_messages) == 1


def test_duplicate_handler_registration_rejected():
    env = Environment()
    a = Echoer(env, "a")
    with pytest.raises(ValueError):
        a.on(Note, lambda m, s: None)
    a.replace_handler(Note, lambda m, s: None)  # explicit replacement ok


def test_one_shot_timer():
    env = Environment()
    a = Echoer(env, "a")
    fired = []
    a.set_timer(1.5, lambda: fired.append(env.now))
    env.run()
    assert fired == [1.5]


def test_periodic_timer_and_cancel():
    env = Environment()
    a = Echoer(env, "a")
    fired = []
    timer = a.every(1.0, lambda: fired.append(env.now))
    env.run(until=3.5)
    assert fired == [1.0, 2.0, 3.0]
    timer.cancel()
    env.run(until=6.0)
    assert fired == [1.0, 2.0, 3.0]


def test_crash_stops_receiving_and_timers():
    env = Environment(seed=1, latency=FixedLatency(0.01))
    a = Echoer(env, "a")
    b = Echoer(env, "b")
    ticks = []
    b.every(1.0, lambda: ticks.append(env.now))
    b.crash()
    a.send("b", Note("lost"))
    env.run(until=5.0)
    assert b.inbox == []
    assert ticks == []
    assert not b.alive


def test_crashed_process_does_not_send():
    env = Environment(seed=1)
    a = Echoer(env, "a")
    b = Echoer(env, "b")
    a.crash()
    a.send("b", Note("never"))
    env.run()
    assert b.inbox == []
    assert env.network.stats.messages == 0


def test_crash_is_idempotent_and_notifies_once():
    env = Environment()
    crashes = []
    env.on_crash(crashes.append)
    a = Echoer(env, "a")
    a.crash()
    a.crash()
    assert crashes == ["a"]


def test_recover_restores_delivery():
    env = Environment(seed=1, latency=FixedLatency(0.01))
    a = Echoer(env, "a")
    b = Echoer(env, "b")
    b.crash()
    b.recover()
    a.send("b", Note("back"))
    env.run()
    assert b.inbox == [("back", "a")]


def test_message_to_crashed_process_dropped_then_flows_after_recover():
    env = Environment(seed=1, latency=FixedLatency(0.01))
    a = Echoer(env, "a")
    b = Echoer(env, "b")
    b.crash()
    a.send("b", Note("while-down"))
    env.run()
    assert b.inbox == []
    b.recover()
    a.send("b", Note("after"))
    env.run()
    assert [t for t, _ in b.inbox] == ["after"]


def test_live_addresses_tracks_crashes():
    env = Environment()
    Echoer(env, "a")
    b = Echoer(env, "b")
    b.crash()
    assert env.live_addresses() == ["a"]


def test_env_crash_helper():
    env = Environment()
    a = Echoer(env, "a")
    env.crash("a")
    assert not a.alive
    env.crash("missing")  # no-op, must not raise


def test_timer_cancelled_by_crash_does_not_fire_after_recover():
    env = Environment()
    a = Echoer(env, "a")
    fired = []
    a.set_timer(2.0, lambda: fired.append("x"))
    a.crash()
    a.recover()
    env.run(until=5.0)
    assert fired == []
