"""Remaining substrate corners: environment accessors, payload helpers,
envelopes, and stats edge cases."""

from dataclasses import dataclass

import pytest

from repro.net import (
    DEFAULT_PAYLOAD_BYTES,
    Envelope,
    HEADER_BYTES,
    payload_category,
    payload_size,
)
from repro.net.stats import NetworkStats
from repro.proc import Environment, Process


@dataclass
class Tagged:
    category = "tagged"
    size_bytes = 50


@dataclass
class Bare:
    pass


def test_payload_category_defaults_to_class_name():
    assert payload_category(Tagged()) == "tagged"
    assert payload_category(Bare()) == "Bare"


def test_payload_size_defaults():
    assert payload_size(Tagged()) == 50
    assert payload_size(Bare()) == DEFAULT_PAYLOAD_BYTES


def test_envelope_totals():
    env = Envelope(
        src="a", dst="b", payload=Tagged(), send_time=0.0, size_bytes=50
    )
    assert env.total_bytes == 50 + HEADER_BYTES
    assert env.category == "tagged"


def test_environment_process_registry():
    env = Environment(seed=1)
    p = Process(env, "p1")
    q = Process(env, "p2")
    assert env.has_process("p1")
    assert env.process("p2") is q
    assert {x.address for x in env.processes} == {"p1", "p2"}
    env.remove_process("p1")
    assert not env.has_process("p1")
    env.remove_process("missing")  # no-op


def test_environment_run_until_and_now():
    env = Environment(seed=1)
    marks = []
    env.scheduler.at(2.0, lambda: marks.append(env.now))
    env.run(until=1.0)
    assert env.now == 1.0 and marks == []
    env.run(until=3.0)
    assert marks == [2.0]


def test_stats_reset():
    stats = NetworkStats()
    stats.record_send("a", "x", 100)
    stats.record_wire(1)
    stats.record_drop()
    stats.reset()
    assert stats.messages == 0
    assert stats.wire_packets == 0
    assert stats.dropped == 0
    assert not stats.by_category


def test_stats_diff_drops_zero_entries():
    stats = NetworkStats()
    stats.record_send("a", "x", 10)
    before = stats.snapshot()
    stats.record_send("b", "y", 10)
    delta = stats.since(before)
    assert delta.by_category == {"y": 1}
    assert "x" not in delta.sent_by.get("a", {}) if isinstance(delta.sent_by, dict) else True
    assert delta.sent_by == {"b": 1}


def test_process_repr_and_unhandled():
    env = Environment(seed=1)
    p = Process(env, "p")
    assert "p" in repr(p)
    p.deliver(Bare(), "ghost")
    assert len(p.unhandled_messages) == 1


def test_timer_pruning_keeps_active_timers():
    env = Environment(seed=1)
    p = Process(env, "p")
    fired = []
    # create enough timers to trigger pruning of cancelled ones
    for i in range(80):
        t = p.set_timer(1.0 + i * 0.01, lambda i=i: fired.append(i))
        if i % 2 == 0:
            t.cancel()
    env.run_for(5.0)
    assert fired == [i for i in range(80) if i % 2 == 1]


def test_crashed_process_timer_does_not_fire_via_every():
    env = Environment(seed=1)
    p = Process(env, "p")
    ticks = []
    p.every(0.5, lambda: ticks.append(env.now))
    env.run_for(1.2)
    assert len(ticks) == 2
    p.crash()
    env.run_for(3.0)
    assert len(ticks) == 2


def test_multicast_by_dead_process_is_silent():
    env = Environment(seed=1)
    p = Process(env, "p")
    q = Process(env, "q")
    p.crash()
    p.multicast(["q"], Tagged())
    env.run_for(1.0)
    assert env.network.stats.messages == 0
