"""Integration tests: group bootstrap, multicast orderings, basic delivery."""

from dataclasses import dataclass

import pytest

from repro.membership import CAUSAL, FIFO, TOTAL, NotMemberError, build_group
from repro.net import FixedLatency
from repro.proc import Environment


@dataclass
class App:
    category = "app"
    tag: str = ""


def make(n, seed=1, **kwargs):
    env = Environment(seed=seed, latency=FixedLatency(0.002))
    nodes, members = build_group(env, "g", n, **kwargs)
    logs = {m.me: [] for m in members}
    views = {m.me: [] for m in members}
    for m in members:
        m.add_delivery_listener(
            lambda e, me=m.me: logs[me].append((e.payload.tag, e.sender))
        )
        m.add_view_listener(lambda e, me=m.me: views[me].append(e))
    return env, nodes, members, logs, views


def test_bootstrap_installs_common_view():
    env, nodes, members, logs, views = make(4)
    assert all(m.view.seq == 1 for m in members)
    assert all(m.view.members == members[0].view.members for m in members)
    assert members[0].view.coordinator == "g-0"
    assert all(m.is_member for m in members)
    assert all(m.view.rank_of(m.me) == i for i, m in enumerate(members))


def test_fifo_multicast_reaches_everyone_including_sender():
    env, nodes, members, logs, views = make(3)
    members[1].multicast(App("x"), FIFO)
    env.run_for(1.0)
    for m in members:
        assert logs[m.me] == [("x", "g-1")]


def test_fifo_per_sender_order():
    env, nodes, members, logs, views = make(3)
    for i in range(5):
        members[0].multicast(App(f"m{i}"), FIFO)
    env.run_for(1.0)
    for m in members:
        assert [t for t, _ in logs[m.me]] == [f"m{i}" for i in range(5)]


def test_causal_multicast_basic_order():
    env, nodes, members, logs, views = make(3)
    members[0].multicast(App("a"), CAUSAL)
    env.run_for(1.0)
    members[1].multicast(App("b"), CAUSAL)  # causally after "a"
    env.run_for(1.0)
    for m in members:
        assert [t for t, _ in logs[m.me]] == ["a", "b"]


def test_total_order_identical_everywhere():
    env, nodes, members, logs, views = make(5)
    # Concurrent abcasts from several senders.
    for i, m in enumerate(members):
        m.multicast(App(f"t{i}"), TOTAL)
    env.run_for(2.0)
    sequences = [tuple(logs[m.me]) for m in members]
    assert len(set(sequences)) == 1
    assert len(sequences[0]) == 5


def test_total_order_interleaved_rounds():
    env, nodes, members, logs, views = make(4)
    for round_no in range(4):
        for m in members:
            m.multicast(App(f"r{round_no}-{m.me}"), TOTAL)
        env.run_for(0.05)
    env.run_for(2.0)
    sequences = [tuple(logs[m.me]) for m in members]
    assert len(set(sequences)) == 1
    assert len(sequences[0]) == 16


def test_mixed_orderings_all_delivered():
    env, nodes, members, logs, views = make(3)
    members[0].multicast(App("f"), FIFO)
    members[1].multicast(App("c"), CAUSAL)
    members[2].multicast(App("t"), TOTAL)
    env.run_for(2.0)
    for m in members:
        assert sorted(t for t, _ in logs[m.me]) == ["c", "f", "t"]


def test_multicast_requires_membership():
    env = Environment(seed=1)
    from repro.membership import GroupNode

    node = GroupNode(env, "lonely")
    member = node.runtime.join_group("g", contact="nobody")
    with pytest.raises(NotMemberError):
        member.multicast(App("x"))


def test_invalid_ordering_rejected():
    env, nodes, members, logs, views = make(2)
    with pytest.raises(ValueError):
        members[0].multicast(App("x"), "bogus")


def test_singleton_group_self_delivery():
    env, nodes, members, logs, views = make(1)
    members[0].multicast(App("solo"), FIFO)
    members[0].multicast(App("solo-t"), TOTAL)
    env.run_for(1.0)
    assert [t for t, _ in logs["g-0"]] == ["solo", "solo-t"]


def test_delivery_under_message_loss():
    env = Environment(seed=3, latency=FixedLatency(0.002), drop_probability=0.25)
    nodes, members = build_group(env, "g", 4)
    logs = {m.me: [] for m in members}
    for m in members:
        m.add_delivery_listener(lambda e, me=m.me: logs[me].append(e.payload.tag))
    for i in range(10):
        members[i % 4].multicast(App(f"m{i}"), FIFO)
    env.run_for(20.0)
    for m in members:
        assert sorted(logs[m.me]) == sorted(f"m{i}" for i in range(10))


def test_total_order_under_message_loss():
    env = Environment(seed=4, latency=FixedLatency(0.002), drop_probability=0.2)
    nodes, members = build_group(env, "g", 4)
    logs = {m.me: [] for m in members}
    for m in members:
        m.add_delivery_listener(lambda e, me=m.me: logs[me].append(e.payload.tag))
    for i in range(8):
        members[i % 4].multicast(App(f"m{i}"), TOTAL)
    env.run_for(30.0)
    sequences = [tuple(logs[m.me]) for m in members]
    assert len(set(sequences)) == 1
    assert len(sequences[0]) == 8


def test_stability_gossip_truncates_logs():
    env, nodes, members, logs, views = make(3, gossip_interval=0.2)
    for i in range(5):
        members[0].multicast(App(f"m{i}"), FIFO)
    env.run_for(3.0)
    for m in members:
        assert m._stability.log_size() == 0
