"""Causal tracing subsystem: span capture, causal parenting through the
network, queries, critical-path analysis, exporters, and the guarded
protocol hooks (suspicions, flushes, view installs, ordering events)."""

from dataclasses import dataclass

from repro import trace
from repro.membership import FIFO, TOTAL, build_group
from repro.net import FixedLatency
from repro.proc import Environment, Process


@dataclass
class Ping:
    category = "ping"
    tag: str = ""


@dataclass
class Pong:
    category = "pong"
    tag: str = ""


def make_pair():
    """Two processes; b answers every Ping with a Pong."""
    env = Environment(seed=1, latency=FixedLatency(0.002))
    a = Process(env, "a")
    b = Process(env, "b")
    b.on(Ping, lambda msg, sender: b.send(sender, Pong(msg.tag)))
    a.on(Pong, lambda msg, sender: None)
    return env, a, b


# ------------------------------------------------------------ installation


def test_attach_is_idempotent_and_detach_disables():
    env, a, b = make_pair()
    sink = trace.attach(env)
    assert trace.attach(env) is sink
    assert env.network.trace is sink
    collector = trace.detach(env)
    assert collector is sink.collector
    assert env.network.trace is None
    a.send("b", Ping("quiet"))
    env.run_for(1.0)
    assert len(collector) == 0  # nothing recorded once detached


def test_untraced_run_records_nothing_and_costs_no_state():
    env, a, b = make_pair()
    a.send("b", Ping("x"))
    env.run_for(1.0)
    assert env.network.trace is None


# ---------------------------------------------------- causal propagation


def test_send_deliver_spans_parent_causally():
    env, a, b = make_pair()
    sink = trace.attach(env)
    with sink.root("request", process="a") as root:
        a.send("b", Ping("x"))
    env.run_for(1.0)

    spans = sink.collector.trace(root.trace_id)
    kinds = [(s.kind, s.name) for s in spans]
    assert kinds == [
        ("local", "request"),
        ("send", "ping"),
        ("deliver", "ping"),
        ("send", "pong"),
        ("deliver", "pong"),
    ]
    send_ping, deliver_ping, send_pong, deliver_pong = spans[1:]
    # Parent edges follow causality: root -> send -> deliver -> send -> ...
    assert send_ping.parent_id == root.span_id
    assert deliver_ping.parent_id == send_ping.span_id
    assert send_pong.parent_id == deliver_ping.span_id
    assert deliver_pong.parent_id == send_pong.span_id
    # Send spans cover the wire flight: closed at delivery time.
    assert send_ping.begin == 0.0 and send_ping.end == 0.002
    assert deliver_pong.begin == 0.004
    # Charged processes: delivers to the receiver, sends to the sender.
    assert send_ping.process == "a" and deliver_ping.process == "b"


def test_sends_outside_any_span_start_fresh_traces():
    env, a, b = make_pair()
    sink = trace.attach(env)
    a.send("b", Ping("one"))
    env.run_for(1.0)
    a.send("b", Ping("two"))
    env.run_for(1.0)
    # Two unparented requests -> two distinct traces (ping+pong each).
    assert len(sink.collector.trace_ids()) == 2


def test_drop_spans_record_lost_datagrams():
    env, a, b = make_pair()
    sink = trace.attach(env)
    env.network.partitions.partition({"a"}, {"b"})
    with sink.root("doomed", process="a") as root:
        a.send("b", Ping("lost"))
    env.run_for(1.0)
    drops = sink.collector.by_kind(trace.KIND_DROP)
    assert len(drops) == 1
    assert drops[0].trace_id == root.trace_id
    assert drops[0].attrs is None or True  # instant span, no duration
    assert drops[0].begin == drops[0].end


def test_mid_run_attach_traces_only_later_traffic():
    env, a, b = make_pair()
    a.send("b", Ping("before"))
    env.run_for(1.0)
    sink = trace.attach(env)
    a.send("b", Ping("after"))
    env.run_for(1.0)
    categories = {s.name for s in sink.collector.spans if s.kind == "send"}
    assert categories == {"ping", "pong"}
    assert sink.collector.recorded == 4  # one ping+pong round only


# ------------------------------------------------------------ ring buffer


def test_ring_buffer_keeps_newest_and_counts_evictions():
    env, a, b = make_pair()
    sink = trace.attach(env, capacity=4)
    for i in range(5):
        a.send("b", Ping(str(i)))
    env.run_for(2.0)
    collector = sink.collector
    assert collector.recorded == 20  # 5 x (2 sends + 2 delivers)
    assert len(collector) == 4
    assert collector.evicted == 16
    # The retained window is the newest spans, ids still increasing.
    ids = [s.span_id for s in collector.spans]
    assert ids == sorted(ids) and ids[-1] == 20


# ---------------------------------------------------------------- queries


def test_query_api_walks_the_causal_tree():
    env, a, b = make_pair()
    sink = trace.attach(env)
    with sink.root("request", process="a") as root:
        a.send("b", Ping("x"))
    env.run_for(1.0)
    collector = sink.collector

    roots = collector.roots(root.trace_id)
    assert [s.span_id for s in roots] == [root.span_id]
    children = collector.children(root.span_id)
    assert [s.name for s in children] == ["ping"]
    descendants = collector.descendants(root.span_id)
    assert len(descendants) == 4  # everything below the root
    leaf = descendants[-1]
    chain = collector.ancestors(leaf.span_id)
    assert chain[-1].span_id == root.span_id  # walks up to the root
    assert collector.counts() == {"local": 1, "send": 2, "deliver": 2}
    assert {s.span_id for s in collector.by_process("b")} >= {
        s.span_id for s in collector.by_kind("deliver") if s.dst == "b"
    }


# ------------------------------------------------------ analysis & export


def test_critical_path_and_summary_on_a_round_trip():
    env, a, b = make_pair()
    sink = trace.attach(env)
    with sink.root("request", process="a") as root:
        a.send("b", Ping("x"))
    env.run_for(1.0)

    path = trace.critical_path(sink.collector, root.trace_id)
    assert path.hops == 2  # ping out, pong back
    assert path.duration == 0.004
    assert [s.kind for s in path.steps] == [
        "local", "send", "deliver", "send", "deliver"
    ]
    assert "2 message hops" in path.describe()

    summary = trace.summarize(sink.collector, root.trace_id)
    assert summary.sends == 2 and summary.delivers == 2
    assert summary.messages(("ping",)) == 1
    assert summary.messages() == 2
    assert summary.duration == 0.004


def test_render_tree_shows_causal_depth_and_elides():
    env, a, b = make_pair()
    sink = trace.attach(env)
    with sink.root("request", process="a") as root:
        a.send("b", Ping("x"))
    env.run_for(1.0)
    text = trace.render_tree(sink.collector, root.trace_id)
    lines = text.splitlines()
    assert "trace 1" in lines[0]
    assert "[local] request" in lines[1]
    # Indentation tracks causal depth: deliver sits under its send.
    send_line = next(l for l in lines if "[send] ping" in l)
    deliver_line = next(l for l in lines if "[deliver] ping" in l)
    assert len(deliver_line) - len(deliver_line.lstrip()) > len(
        send_line
    ) - len(send_line.lstrip())
    elided = trace.render_tree(sink.collector, root.trace_id, max_spans=2)
    assert "more span" in elided


def test_chrome_export_structure():
    env, a, b = make_pair()
    sink = trace.attach(env)
    with sink.root("request", process="a"):
        a.send("b", Ping("x"))
    env.run_for(1.0)
    doc = trace.to_chrome_trace(sink.collector.spans, clock_end=env.now)
    events = doc["traceEvents"]
    phases = {e["ph"] for e in events}
    assert "M" in phases  # process/thread naming metadata
    assert "X" in phases  # complete spans with duration
    assert "i" in phases  # instantaneous events
    for event in events:
        assert {"name", "ph", "pid", "tid"} <= set(event)
    # Timestamps are microseconds of simulated time.
    ping_send = next(
        e for e in events if e["ph"] == "X" and e["name"] == "ping"
        and e["args"]["kind"] == "send"
    )
    assert ping_send["ts"] == 0.0 and ping_send["dur"] == 2000.0


# ------------------------------------------------- protocol-layer spans


def test_group_protocol_emits_membership_and_failure_spans():
    env = Environment(seed=3, latency=FixedLatency(0.002))
    nodes, members = build_group(env, "g", 4, gossip_interval=None)
    sink = trace.attach(env)
    env.run_for(1.0)
    members[0].multicast(Ping("t"), TOTAL)
    members[1].multicast(Ping("f"), FIFO)
    env.run_for(1.0)
    nodes[3].crash()
    env.run_for(5.0)

    names = {s.name for s in sink.collector.by_kind(trace.KIND_LOCAL)}
    # The ordering engine stamped the TOTAL assignment; the crash walked
    # suspicion -> flush -> view install, each leaving a span.
    assert "order-assign" in names
    assert "suspicion" in names
    assert "flush-start" in names
    assert "view-install" in names
    installs = [
        s for s in sink.collector.by_kind(trace.KIND_LOCAL)
        if s.name == "view-install"
    ]
    assert all(s.attrs["seq"] == 2 for s in installs)
    assert {s.attrs["size"] for s in installs} == {3}
