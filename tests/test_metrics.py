"""Unit tests for the metrics helpers and table rendering."""

import math

import pytest

from repro.metrics import (
    LatencySample,
    data_messages,
    fit_power_law,
    format_table,
    processes_touched,
    view_storage_entries,
)
from repro.net.stats import NetworkStats


def make_delta(categories=None, received=None):
    stats = NetworkStats()
    for category, count in (categories or {}).items():
        for _ in range(count):
            stats.record_send("x", category, 10)
    for addr, count in (received or {}).items():
        for _ in range(count):
            stats.record_delivery(addr)
    return stats.snapshot()


def test_data_messages_sums_categories():
    delta = make_delta({"a": 3, "b": 2, "c": 9})
    assert data_messages(delta, ["a", "b"]) == 5
    assert data_messages(delta, ["missing"]) == 0


def test_processes_touched():
    delta = make_delta(received={"p1": 2, "p2": 1})
    assert processes_touched(delta) == 2


def test_latency_sample_percentiles():
    sample = LatencySample()
    for v in range(1, 101):
        sample.add(v / 100)
    assert sample.count == 100
    assert sample.p50 == 0.5
    assert sample.p99 == 0.99
    assert sample.max == 1.0
    assert abs(sample.mean - 0.505) < 1e-9


def test_latency_sample_empty():
    sample = LatencySample()
    assert sample.p50 == 0.0 and sample.mean == 0.0 and sample.max == 0.0


def test_view_storage_entries():
    assert view_storage_entries(["a", "b", "c"]) == 3


def test_fit_power_law_recovers_exponents():
    xs = [2, 4, 8, 16]
    assert abs(fit_power_law(xs, [x * 3 for x in xs]) - 1.0) < 1e-9
    assert abs(fit_power_law(xs, [x * x for x in xs]) - 2.0) < 1e-9
    assert abs(fit_power_law(xs, [5.0] * 4) - 0.0) < 1e-9


def test_fit_power_law_validation():
    with pytest.raises(ValueError):
        fit_power_law([1], [1])
    with pytest.raises(ValueError):
        fit_power_law([2, 2], [1, 4])  # degenerate x
    with pytest.raises(ValueError):
        fit_power_law([0, 0], [0, 0])  # no positive points


def test_format_table_alignment_and_note():
    text = format_table(
        "demo", ["col", "value"], [["aa", 1], ["b", 22.5]], note="hello"
    )
    lines = text.splitlines()
    assert lines[0] == "== demo =="
    assert "col" in lines[1] and "value" in lines[1]
    assert lines[2].startswith("---")
    assert "22.50" in text
    assert lines[-1] == "note: hello"


def test_format_table_float_formats():
    text = format_table("t", ["v"], [[0.00123], [1234.5], [3.14159], [0]])
    assert "0.0012" in text
    assert "1234" in text  # large floats keep no decimals
    assert "3.14" in text


def test_format_table_empty_rows():
    text = format_table("t", ["a", "b"], [])
    assert "== t ==" in text


# -- time-series recorder --------------------------------------------------------


def test_recorder_samples_at_interval():
    from repro.metrics import TimeSeriesRecorder
    from repro.proc import Environment

    env = Environment(seed=1)
    recorder = TimeSeriesRecorder(env, interval=0.5)
    clock = {"n": 0}
    recorder.probe("n", lambda: clock["n"])
    recorder.start()
    for step in range(6):
        env.scheduler.at(step * 0.5 + 0.01, lambda: clock.__setitem__("n", clock["n"] + 1))
    env.run(until=3.0)
    values = recorder.values("n")
    assert len(values) == 6
    assert values == sorted(values)
    assert recorder.last("n") == 6


def test_recorder_summary_and_rate():
    from repro.metrics import TimeSeriesRecorder
    from repro.proc import Environment

    env = Environment(seed=1)
    recorder = TimeSeriesRecorder(env, interval=1.0)
    total = {"v": 0}
    recorder.probe("total", lambda: total["v"])
    recorder.start()
    env.scheduler.at(0.5, lambda: total.__setitem__("v", 10))
    env.scheduler.at(1.5, lambda: total.__setitem__("v", 30))
    env.run(until=3.0)
    summary = recorder.summary("total")
    assert summary["count"] == 3
    assert summary["min"] == 10 and summary["max"] == 30
    rates = recorder.rate_series("total")
    assert [r for _t, r in rates] == [20, 0]


def test_recorder_stop_and_validation():
    import pytest
    from repro.metrics import TimeSeriesRecorder
    from repro.proc import Environment

    env = Environment(seed=1)
    with pytest.raises(ValueError):
        TimeSeriesRecorder(env, interval=0)
    recorder = TimeSeriesRecorder(env, interval=0.5)
    recorder.probe("x", lambda: 1.0)
    with pytest.raises(ValueError):
        recorder.probe("x", lambda: 2.0)
    recorder.start()
    env.run(until=1.2)
    recorder.stop()
    env.run(until=5.0)
    assert recorder.summary("x")["count"] == 2
    assert recorder.summary("missing")["count"] == 0


def test_recorder_broken_probe_does_not_kill_run():
    from repro.metrics import TimeSeriesRecorder
    from repro.proc import Environment

    env = Environment(seed=1)
    recorder = TimeSeriesRecorder(env, interval=0.5)
    recorder.probe("bad", lambda: 1 / 0)
    recorder.probe("good", lambda: 7.0)
    recorder.start()
    env.run(until=2.0)
    assert recorder.values("bad") == []
    assert recorder.values("good") == [7.0] * 4
