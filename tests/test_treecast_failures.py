"""Failure injection for the tree broadcast: relay crashes, leaf crashes,
atomicity under partial dissemination, and determinism properties."""

from repro.core import (
    LargeGroupParams,
    TreecastRoot,
    attach_treecast,
    build_large_group,
    build_leader_group,
    build_spec,
)
from repro.net import FixedLatency
from repro.proc import Environment


def build_service(n_workers, fanout=3, resiliency=2, seed=1, settle=None):
    env = Environment(seed=seed, latency=FixedLatency(0.002))
    params = LargeGroupParams(resiliency=resiliency, fanout=fanout)
    leaders = build_leader_group(env, "svc", params)
    contacts = tuple(r.node.address for r in leaders)
    members = build_large_group(env, "svc", n_workers, params, contacts)
    participants = attach_treecast(members, resiliency=resiliency)
    roots = [TreecastRoot(r, ack_timeout=3.0) for r in leaders]
    env.run_for(settle if settle is not None else 5.0 + 0.3 * n_workers)
    root = next(r for r in roots if r.replica.is_manager)
    return env, params, leaders, members, participants, root


def find_relay(root):
    """A relay process for some branch subtree (None if single level)."""
    spec = build_spec(root.replica.state)
    for child in spec.children:
        return child.relay
    return None


def test_relay_crash_non_atomic_still_covers_other_subtrees():
    env, params, leaders, members, participants, root = build_service(
        30, fanout=3, settle=25.0
    )
    relay = find_relay(root)
    assert relay is not None, "need a multi-level tree for this test"
    env.crash(relay)
    root.broadcast("partial-cover")
    env.run_for(8.0)
    assert root.completed and root.completed[0]["timed_out"]
    delivered = sum(
        1
        for p in participants
        if p.member.node.alive and ("partial-cover" in [x for _b, x in p.delivered])
    )
    live = sum(1 for p in participants if p.member.node.alive and p.member.is_member)
    # some subtrees are lost with the relay, the rest still deliver
    assert 0 < delivered < live


def test_relay_crash_atomic_broadcast_never_commits():
    env, params, leaders, members, participants, root = build_service(
        30, fanout=3, settle=25.0
    )
    relay = find_relay(root)
    assert relay is not None
    env.crash(relay)
    root.broadcast("must-not-commit", atomic=True)
    env.run_for(10.0)
    info = root.completed[0]
    assert info["timed_out"] and not info["committed"]
    # atomicity: nobody delivered (payload stays buffered, never committed)
    for p in participants:
        assert all(payload != "must-not-commit" for _b, payload in p.delivered)


def test_atomic_broadcast_with_healthy_tree_commits_everywhere():
    env, params, leaders, members, participants, root = build_service(
        30, fanout=3, settle=25.0
    )
    root.broadcast("all-or-nothing", atomic=True)
    env.run_for(8.0)
    info = root.completed[0]
    assert info["committed"] and not info["timed_out"]
    live = [p for p in participants if p.member.is_member]
    assert all(
        [payload for _b, payload in p.delivered] == ["all-or-nothing"]
        for p in live
    )


def test_leaf_member_crash_mid_broadcast_leaf_still_acks_with_resiliency():
    env, params, leaders, members, participants, root = build_service(
        12, fanout=4, resiliency=2
    )
    # crash one non-coordinator member of some leaf just before broadcast
    victim = next(
        m for m in members if m.is_member and not m.is_leaf_coordinator
    )
    victim.node.crash()
    root.broadcast("resilient", atomic=True)
    env.run_for(10.0)
    info = root.completed[0]
    assert info["committed"], "r=2 acks available despite one member down"
    live = [p for p in participants if p.member.node.alive and p.member.is_member]
    assert all(
        "resilient" in [payload for _b, payload in p.delivered] for p in live
    )


def test_broadcasts_deterministic_across_reruns():
    def run(seed):
        env, params, leaders, members, participants, root = build_service(
            18, fanout=3, seed=seed, settle=15.0
        )
        root.broadcast("det-1")
        root.broadcast("det-2")
        env.run_for(8.0)
        return [
            (p.member.me, tuple(payload for _b, payload in p.delivered))
            for p in participants
        ], env.network.stats.messages

    first = run(99)
    second = run(99)
    assert first == second


def test_sequential_atomic_broadcasts_ordered_per_leaf_sender():
    env, params, leaders, members, participants, root = build_service(12)
    for i in range(4):
        root.broadcast(f"cfg-{i}", atomic=True)
    env.run_for(15.0)
    live = [p for p in participants if p.member.is_member]
    for p in live:
        payloads = [payload for _b, payload in p.delivered]
        assert sorted(payloads) == [f"cfg-{i}" for i in range(4)]
