"""Load-driven reorganisation under churn (the PR 9 tentpole).

One deterministic scenario exercises the whole recursive-hierarchy arc:
a service grows to four full leaves (the explicit tree overflows the
fanout-3 root, so depth reaches 3 without any load), one leaf is driven
*hot* and splits on rate rather than size, traffic stops, the cooled
split halves are detected as a cold sibling pair and merge back — all
sanitizer-clean (VS001–VS006, strict), on both the sim and asyncio
engines, and byte-for-byte repeatable on the sim engine.
"""

import pytest

from repro.core import (
    LargeGroupParams,
    ReorgPolicy,
    ServiceRouter,
    build_large_group,
    build_leader_group,
)
from repro.membership import GroupNode
from repro.metrics.sanitizer import VirtualSynchronySanitizer
from repro.net import FixedLatency
from repro.proc import Environment
from repro.runtime import AsyncioRuntime

POLICY = ReorgPolicy(
    mode="load",
    report_interval=0.5,
    cooldown=6.0,
    ewma_alpha=0.6,
    hot_delivery_rate=8.0,
    hot_request_rate=6.0,
    cold_delivery_rate=0.5,
    cold_request_rate=0.5,
)
PARAMS = LargeGroupParams(resiliency=2, fanout=3, reorg=POLICY)
WORKERS = 24  # four full leaves of six (leaf_min=3, split threshold 6)


def run_scenario(seed=11, runtime=None):
    """Grow, heat one leaf, cool down; return everything worth asserting."""
    env = Environment(seed=seed, latency=FixedLatency(0.002), runtime=runtime)
    leaders = build_leader_group(env, "svc", PARAMS)
    contacts = tuple(r.node.address for r in leaders)
    members = build_large_group(env, "svc", WORKERS, PARAMS, contacts)
    env.run_for(10.0)

    manager = next(r for r in leaders if r.is_manager)
    # The sim engine settles within 10s; the asyncio engine's wall-clock
    # jitter can stretch joins, so extend the grow phase until everyone
    # is placed (no-op under sim, keeping its timeline byte-identical).
    for _ in range(20):
        if sum(1 for m in members if m.is_member) == WORKERS:
            break
        env.run_for(5.0)
    placed = [m for m in members if m.is_member]
    assert len(placed) == WORKERS, "every worker must be placed before churn"
    depth_grown = manager.state.depth()

    sanitizer = VirtualSynchronySanitizer(strict=True)
    for member in placed:
        # Re-attach across splits/merges: the listener fires immediately
        # for the current leaf and again for every later leaf change.
        member.add_leaf_change_listener(sanitizer.attach)

    # Heat exactly one leaf: 20 deliveries/sec against hot thresholds of
    # 8/sec, for 2.5s — long enough for the EWMA to cross and the leader
    # to direct a hot split; the 6s cooldown outlasts the heat so the
    # still-hot halves cannot split again before their rates decay.
    # Heat the highest-sorted leaf: split-born ids sort after existing
    # ones, so if the attach overflows the parent branch the sorted
    # redistribution keeps origin and offspring adjacent — siblings —
    # which is what the cold-merge rail later pairs up.
    target_leaf = sorted(manager.state.leaves)[-1]
    sender = next(m for m in placed if m.leaf_id == target_leaf)
    start = env.now
    def tick(i):
        # The sender may transiently be mid-move (split in progress, not
        # yet placed in the new leaf); skip rather than raise.
        if sender.is_member:
            sender.leaf_multicast(("tick", i))

    for i in range(50):
        env.scheduler.at(start + (i + 1) * 0.05, lambda i=i: tick(i))
    env.run_for(5.0)
    depth_hot = manager.state.depth()

    # Quiet phase: rates decay below the cold floor, the cooldown
    # expires, and the split halves (sizes 3+3 <= threshold 6 — the only
    # mergeable sibling pair) merge back.
    env.run_for(12.0)

    live = [m for m in members if m.node.alive]
    return {
        "summary": manager.state.summary(),
        "depth_grown": depth_grown,
        "depth_hot": depth_hot,
        "reorgs": [
            (e["event"], e.get("reason"), e["leaf"])
            for e in manager.reorg_log
        ],
        "windows": [
            round(e["window"], 6)
            for e in manager.reorg_log
            if e["event"] == "routing-converged"
        ],
        "epoch": manager.reorg_epoch,
        "deliveries_checked": sanitizer.deliveries_checked,
        "violations": len(sanitizer.violations),
        "members_settled": all(m.is_member for m in live),
        "leaf_levels": sorted(
            {m.leaf_level for m in live if m.leaf_level}
        ),
        "env": env,
        "manager": manager,
        "contacts": contacts,
    }


def _assert_full_arc(result):
    events = result["reorgs"]
    assert any(
        e == "split-directed" and r == "hot" for e, r, _ in events
    ), f"no hot split in {events}"
    assert any(
        e == "merge-directed" and r == "cold" for e, r, _ in events
    ), f"no cold merge in {events}"
    assert result["depth_grown"] >= 3, "explicit tree must outgrow 2 levels"
    assert result["depth_hot"] >= 3
    assert result["summary"]["depth"] >= 3
    assert result["violations"] == 0
    assert result["deliveries_checked"] > 0, "sanitizer must have been live"
    assert result["members_settled"]
    # Members learned level-tagged placements from the directives; the
    # tree is legitimately irregular (a leaf may hang directly off the
    # root), but its deepest members must know they sit at level >= 3.
    assert result["leaf_levels"] and max(result["leaf_levels"]) >= 3
    # Every hot split's routing disruption was measured and closed.
    splits = sum(1 for e, _, _ in events if e == "split-directed")
    assert len(result["windows"]) == splits
    assert all(w > 0.0 for w in result["windows"])


def test_load_driven_reorg_full_arc_sim():
    result = run_scenario()
    _assert_full_arc(result)


def test_load_driven_reorg_deterministic():
    first = run_scenario()
    second = run_scenario()
    assert first["summary"] == second["summary"]
    assert first["reorgs"] == second["reorgs"]
    assert first["windows"] == second["windows"]
    assert first["epoch"] == second["epoch"]
    assert first["deliveries_checked"] == second["deliveries_checked"]


def test_router_placement_cache_invalidated_by_reorg():
    """resolve_key caches subtree placement per reorg epoch; a split
    moves the epoch and the next resolve drops the stale cache."""
    result = run_scenario()
    env, manager = result["env"], result["manager"]
    node = GroupNode(env, "placement-client")
    router = ServiceRouter(
        node, "svc", rpc=node.runtime.rpc, leader_contacts=result["contacts"]
    )
    got = []
    router.resolve_key("orders/17", got.append)
    env.run_for(1.0)
    assert got and got[0] is not None
    group, leaf_contacts = got[0]
    assert group.startswith("svc::") and leaf_contacts
    # Warm cache: a second resolve is answered locally.
    lookups_before = router.placement_lookups
    router.resolve_key("orders/17", got.append)
    assert router.placement_hits == 1
    assert router.placement_lookups == lookups_before
    assert got[1] == got[0]

    # Force a structural change directly through the replicated op
    # stream (the protocol-driven path is exercised by the full-arc
    # test); any applied AddLeaf/RemoveLeaf moves the reorg epoch.
    from repro.core import RemoveLeaf

    victim_leaf = sorted(manager.state.leaves)[0]
    epoch_before = manager.reorg_epoch
    manager._propose(RemoveLeaf(leaf_id=victim_leaf))
    env.run_for(1.0)
    assert manager.reorg_epoch > epoch_before

    # The next placement resolve observes the new epoch and drops the
    # entire cached subtree placement.
    router.resolve_key("a-different-key", got.append)
    env.run_for(1.0)
    assert router.placement_invalidations == 1
    assert "orders/17" not in router.cached_placements
    # ...and the old key re-resolves against the new tree.
    router.resolve_key("orders/17", got.append)
    env.run_for(1.0)
    assert got[-1] is not None


@pytest.mark.asyncio_smoke
def test_load_driven_reorg_asyncio_engine():
    """The identical scenario live on the asyncio engine: wall-clock
    jitter may reorder unrelated deliveries, but the reorg arc and the
    sanitizer guarantees must hold."""
    # A generous time scale: the heat phase spaces ticks 0.05 sim-seconds
    # apart, and at 0.05x that is 2.5ms wall — within scheduler/GC jitter,
    # which flattens the measured rates below the hot threshold. 0.2x
    # gives every timer 4x the headroom and keeps the run under ~10s.
    runtime = AsyncioRuntime(seed=11, time_scale=0.2)
    try:
        result = run_scenario(runtime=runtime)
        assert result["violations"] == 0
        assert result["deliveries_checked"] > 0
        assert result["members_settled"]
        assert result["summary"]["depth"] >= 3
        assert any(
            e == "split-directed" and r == "hot"
            for e, r, _ in result["reorgs"]
        )
    finally:
        runtime.close()
