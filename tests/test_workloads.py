"""Tests for the trading-room and manufacturing workload generators."""

from repro.workloads import (
    ManufacturingWorkload,
    TradingRoomWorkload,
    build_service_cluster,
)


def test_service_cluster_builder_places_everyone():
    cluster = build_service_cluster("svc", 20, resiliency=2, fanout=4, seed=5)
    assert len(cluster.live_members()) == 20
    assert cluster.manager_root.replica.is_manager


def test_trading_room_ticks_reach_all_analysts():
    workload = TradingRoomWorkload(analysts=20, feeds=2, tick_rate=1.0, seed=3)
    result = workload.run(duration=5.0, query_clients=2)
    assert result.events_published > 0
    # every published tick reached every live analyst
    assert result.events_delivered == result.events_published * int(
        result.extra["analysts"]
    )
    assert result.delivery_ratio == 1.0


def test_trading_room_sub_second_latency():
    workload = TradingRoomWorkload(analysts=30, feeds=2, tick_rate=1.0, seed=4)
    result = workload.run(duration=5.0)
    assert result.latency.count > 0
    assert result.latency.p99 < 1.0  # the paper's sub-second demand


def test_trading_room_queries_answered():
    workload = TradingRoomWorkload(analysts=16, feeds=1, tick_rate=0.5, seed=5)
    result = workload.run(duration=5.0, query_clients=3)
    assert result.requests_sent > 0
    assert result.requests_answered == result.requests_sent
    assert result.request_latency.p99 < 1.0


def test_manufacturing_orders_and_inventory_consistency():
    workload = ManufacturingWorkload(
        cells=16, status_rate=0.5, order_rate=2.0, seed=6
    )
    result = workload.run(duration=5.0)
    assert result.requests_answered == result.requests_sent > 0
    assert result.extra["inventory_consistent"] == 1.0
    # inventory actually decremented
    total_stock = sum(workload.inventory[0].snapshot().values())
    assert total_stock == 5 * 1000 - result.requests_answered


def test_manufacturing_reconfiguration_atomic_everywhere():
    workload = ManufacturingWorkload(cells=12, order_rate=1.0, seed=7)
    result = workload.run(duration=4.0, reconfigure_at=1.0)
    applied = workload.recipes_applied
    live = [m.node.address for m in workload.cluster.live_members()]
    assert all(applied.get(addr) == [1] for addr in live)


def test_manufacturing_cell_status_stays_leaf_local():
    workload = ManufacturingWorkload(cells=16, status_rate=1.0, order_rate=0.5, seed=8)
    before = workload.env.network.stats.snapshot()
    result = workload.run(duration=4.0)
    delta = workload.env.network.stats.since(before)
    # status chatter happened, and each status multicast's logical fan-out
    # is bounded by the leaf size, far below the cell count
    statuses = delta.by_category.get("group-data", 0)
    assert result.events_published > 0
    max_leaf = workload.cluster.params.leaf_split_threshold
    assert statuses <= result.events_published * max_leaf * 2
