"""Property tests for the wire codec (repro.net.wire).

Three obligations, per docs/deployment.md:

* **Round-trip** — every registered payload kind survives
  encode -> decode across seeded fuzzing (values generated from each
  dataclass's field type hints), as do envelope batches through the
  data-frame packer.
* **Rejection** — truncated, corrupted, or alien bytes raise
  :class:`CodecError` and nothing else; no exception escapes the socket
  fabric's receive path (a byte-flipped datagram is a counted drop).
* **Census** — every payload class registered with a typed wire
  receiver anywhere in ``src/repro`` (``.on(Kind, ...)``) has a wire id,
  so a deployment can carry every message the sim can.
"""

from __future__ import annotations

import dataclasses
import re
from pathlib import Path

import pytest

import repro.deploy.messages  # noqa: F401  -- registers control kinds 64-68
import repro.net.wire.parallel  # noqa: F401  -- parallel-engine kinds 91-95
from repro.clocks.vector import VectorClock
from repro.core.treecast import LeafTarget, RelaySpec
from repro.membership.events import GroupData
from repro.membership.view import GroupView
from repro.net.message import Envelope
from repro.net.wire import (
    CodecError,
    FRAME_CONTROL,
    FRAME_DATA,
    MAX_FRAME_BYTES,
    WIRE_VERSION,
    decode_frame,
    encode_control_frame,
    encode_data_frames,
    registered_kinds,
)
from repro.net.wire.registry import ensure_registered
from repro.sim.rand import SimRandom

ensure_registered()

SRC = Path(__file__).resolve().parent.parent / "src" / "repro"


# -- fuzz value generation ----------------------------------------------------


def _primitive(rng: SimRandom, depth: int = 0):
    """A random encodable value; containers nest up to two levels."""
    roll = rng.randint(0, 9 if depth < 2 else 6)
    if roll == 0:
        return None
    if roll == 1:
        return rng.chance(0.5)
    if roll == 2:
        # Cover zero, small negatives, and ints past one varint chunk.
        return rng.choice(
            [0, -1, 1, 127, -128, 2**40, -(2**40), rng.randint(-10**6, 10**6)]
        )
    if roll == 3:
        return rng.uniform(-1e9, 1e9)
    if roll == 4:
        return "".join(
            rng.choice("abcXYZ-/Ω💡") for _ in range(rng.randint(0, 12))
        )
    if roll == 5:
        return bytes(rng.randint(0, 255) for _ in range(rng.randint(0, 16)))
    if roll == 6:
        return rng.uniform(0.0, 1.0)
    if roll == 7:
        return tuple(
            _primitive(rng, depth + 1) for _ in range(rng.randint(0, 3))
        )
    if roll == 8:
        return [_primitive(rng, depth + 1) for _ in range(rng.randint(0, 3))]
    return {
        f"k{i}": _primitive(rng, depth + 1) for i in range(rng.randint(0, 3))
    }


def _address(rng: SimRandom) -> str:
    return f"{rng.choice('svc grp node'.split())}-{rng.randint(0, 99)}"


def _group_view(rng: SimRandom) -> GroupView:
    # __post_init__ wants unique members and seq >= 1.
    count = rng.randint(1, 4)
    return GroupView(
        group=f"g{rng.randint(0, 9)}",
        seq=rng.randint(1, 50),
        members=tuple(f"m-{i}-{rng.randint(0, 9)}" for i in range(count)),
    )


def _relay_spec(rng: SimRandom, depth: int = 0) -> RelaySpec:
    children = (
        tuple(_relay_spec(rng, depth + 1) for _ in range(rng.randint(0, 2)))
        if depth < 2
        else ()
    )
    return RelaySpec(
        relay=_address(rng),
        leaf_targets=tuple(
            LeafTarget(f"leaf{i}", _address(rng), rng.randint(1, 8))
            for i in range(rng.randint(0, 2))
        ),
        children=children,
    )


def _group_data(rng: SimRandom) -> GroupData:
    return GroupData(
        group=f"g{rng.randint(0, 9)}",
        view_seq=rng.randint(1, 20),
        sender=_address(rng),
        sender_seq=rng.randint(1, 100),
        ordering=rng.choice(["fifo", "causal", "total"]),
        payload=_primitive(rng),
        stamp=None if rng.chance(0.5) else _vector_clock(rng),
        gossip=None
        if rng.chance(0.5)
        else {_address(rng): rng.randint(0, 20) for _ in range(2)},
    )


def _vector_clock(rng: SimRandom) -> VectorClock:
    return VectorClock(
        {_address(rng): rng.randint(0, 50) for _ in range(rng.randint(0, 4))}
    )


_SPECIAL = {
    "GroupView": _group_view,
    "VectorClock": _vector_clock,
    "RelaySpec": _relay_spec,
    "GroupData": _group_data,
    "LeafTarget": lambda rng: LeafTarget(
        f"leaf{rng.randint(0, 9)}", _address(rng), rng.randint(1, 8)
    ),
    "MessageId": lambda rng: (_address(rng), rng.randint(1, 99)),
}


def _value_for(rng: SimRandom, type_str: str):
    """Generate a field value from a dataclass type-hint string."""
    type_str = type_str.strip().strip("'\"")
    fn = _SPECIAL.get(type_str)
    if fn is not None:
        return fn(rng)
    if type_str.startswith("Optional["):
        inner = type_str[len("Optional["):-1]
        return None if rng.chance(0.3) else _value_for(rng, inner)
    if type_str.startswith("Tuple["):
        inner = type_str[len("Tuple["):-1]
        if inner.endswith(", ..."):
            item = inner[: -len(", ...")]
            return tuple(
                _value_for(rng, item) for _ in range(rng.randint(0, 3))
            )
        return tuple(_value_for(rng, part) for part in _split_args(inner))
    if type_str.startswith("List["):
        inner = type_str[len("List["):-1]
        return [_value_for(rng, inner) for _ in range(rng.randint(0, 3))]
    if type_str.startswith("Dict["):
        key_t, value_t = _split_args(type_str[len("Dict["):-1])
        return {
            _value_for(rng, key_t): _value_for(rng, value_t)
            for _ in range(rng.randint(0, 3))
        }
    if type_str in ("str", "Address"):
        return _address(rng)
    if type_str == "bytes":
        return bytes(
            rng.randint(0, 255) for _ in range(rng.randint(0, 64))
        )
    if type_str == "int":
        return rng.randint(-(2**40), 2**40)
    if type_str == "float":
        return rng.uniform(-1e6, 1e6)
    if type_str == "bool":
        return rng.chance(0.5)
    if type_str == "Any":
        return _primitive(rng)
    raise AssertionError(
        f"no fuzz generator for field type {type_str!r} — "
        "extend _SPECIAL in tests/test_wire_codec.py"
    )


def _split_args(inner: str):
    """Split 'A, B' at top-level commas (brackets nest)."""
    parts, depth, start = [], 0, 0
    for i, ch in enumerate(inner):
        if ch == "[":
            depth += 1
        elif ch == "]":
            depth -= 1
        elif ch == "," and depth == 0:
            parts.append(inner[start:i].strip())
            start = i + 1
    parts.append(inner[start:].strip())
    return parts


def _instance(rng: SimRandom, cls: type):
    fn = _SPECIAL.get(cls.__name__)
    if fn is not None:
        return fn(rng)
    assert dataclasses.is_dataclass(cls), cls
    kwargs = {
        f.name: _value_for(rng, f.type) for f in dataclasses.fields(cls)
    }
    return cls(**kwargs)


def _round_trip(payload):
    frame = encode_control_frame(payload)
    frame_kind, decoded = decode_frame(frame)
    assert frame_kind == FRAME_CONTROL
    return decoded


# -- round-trip properties ----------------------------------------------------


@pytest.mark.parametrize(
    "kind_id", sorted(registered_kinds()), ids=lambda k: f"kind{k}"
)
def test_every_registered_kind_round_trips(kind_id):
    cls = registered_kinds()[kind_id]
    rng = SimRandom(1000 + kind_id)
    for _ in range(25):
        original = _instance(rng, cls)
        decoded = _round_trip(original)
        assert decoded.__class__ is cls
        assert decoded == original, f"{cls.__name__} diverged on round-trip"


def test_primitive_values_round_trip():
    rng = SimRandom(42)
    for _ in range(300):
        original = _primitive(rng)
        assert _round_trip(original) == original


def test_tuple_and_list_stay_distinct():
    assert _round_trip((1, 2)) == (1, 2)
    assert _round_trip([1, 2]) == [1, 2]
    assert isinstance(_round_trip((1,)), tuple)
    assert isinstance(_round_trip([1]), list)


def test_extreme_ints_round_trip():
    for value in (0, -1, 1, 2**400, -(2**400), 2**63 - 1, -(2**63)):
        assert _round_trip(value) == value


def test_level_tagged_hierarchy_payloads_round_trip():
    """The recursive-hierarchy fields (wire v2): levels, branch paths,
    load-rate samples and explicit attach points survive the wire with
    non-default values."""
    from repro.core.hierarchy import MergeCmd, SplitCmd
    from repro.core.leader import (
        GetHierarchyInfo,
        MergeDirective,
        ReportLeafStatus,
        ResolvePlacement,
        SplitDirective,
    )
    from repro.core.views import AddLeaf, UpdateLeaf

    payloads = [
        SplitDirective(
            service="svc", leaf_id="leaf-a", new_leaf_id="leaf-b",
            new_group="svc::leaf-b", level=3,
            parent_path=("branch-root", "svc/b2", "svc/b7"),
        ),
        MergeDirective(
            service="svc", leaf_id="leaf-a", target_group="svc::leaf-c",
            target_contacts=("svc-w-0", "svc-w-1"), level=4,
            target_path=("branch-root", "svc/b1"),
        ),
        SplitCmd(
            new_leaf_id="leaf-b", new_group="svc::leaf-b",
            movers=("svc-w-2",), level=3,
            parent_path=("branch-root", "svc/b2"),
        ),
        MergeCmd(
            target_group="svc::leaf-c", target_contacts=("svc-w-0",),
            level=2, target_path=("branch-root",),
        ),
        ReportLeafStatus(
            service="svc", leaf_id="leaf-a", size=9,
            contacts=("svc-w-0",), level=3,
            path=("branch-root", "svc/b2"),
            delivery_rate=41.5, request_rate=12.25,
        ),
        AddLeaf(
            leaf_id="leaf-b", size=4, contacts=("svc-w-2",),
            under="svc/b2",
        ),
        UpdateLeaf(
            leaf_id="leaf-a", size=9, contacts=("svc-w-0",),
            delivery_rate=33.0, request_rate=0.5,
        ),
        GetHierarchyInfo(service="svc", subtree="svc/b2"),
        ResolvePlacement(service="svc", key="orders/EU/1234"),
    ]
    for original in payloads:
        decoded = _round_trip(original)
        assert decoded == original, f"{type(original).__name__} diverged"


def test_envelope_batch_round_trips():
    rng = SimRandom(7)
    envelopes = [
        Envelope(
            _address(rng),
            _address(rng),
            _instance(rng, registered_kinds()[10]),  # GroupData
            send_time=rng.uniform(0, 10),
            deliver_time=rng.uniform(0, 10),
            size_bytes=rng.randint(1, 4096),
        )
        for _ in range(8)
    ]
    frames, rejects = encode_data_frames(envelopes)
    assert not rejects
    assert len(frames) == 1  # packer output stays one frame
    frame_kind, decoded = decode_frame(frames[0])
    assert frame_kind == FRAME_DATA
    assert len(decoded) == len(envelopes)
    for original, copy in zip(envelopes, decoded):
        assert (copy.src, copy.dst) == (original.src, original.dst)
        assert copy.send_time == original.send_time
        assert copy.deliver_time == original.deliver_time
        assert copy.size_bytes == original.size_bytes
        assert copy.payload == original.payload


def test_oversized_batch_splits_into_frames():
    big = "x" * 9000
    envelopes = [
        Envelope("a", "b", big, send_time=0.0, deliver_time=0.0)
        for _ in range(10)
    ]
    frames, rejects = encode_data_frames(envelopes, max_bytes=30000)
    assert not rejects
    assert len(frames) > 1
    total = sum(len(decode_frame(f)[1]) for f in frames)
    assert total == len(envelopes)
    assert all(len(f) <= 30000 for f in frames)


def test_unencodable_and_oversized_records_reject_without_poisoning():
    class Alien:
        pass

    envelopes = [
        Envelope("a", "b", "fine", send_time=0.0, deliver_time=0.0),
        Envelope("a", "b", Alien(), send_time=0.0, deliver_time=0.0),
        Envelope("a", "b", "x" * 70000, send_time=0.0, deliver_time=0.0),
        Envelope("a", "b", "also fine", send_time=0.0, deliver_time=0.0),
    ]
    frames, rejects = encode_data_frames(envelopes)
    assert len(rejects) == 2
    decoded = [e for f in frames for e in decode_frame(f)[1]]
    assert [e.payload for e in decoded] == ["fine", "also fine"]


# -- rejection properties -----------------------------------------------------


def test_truncated_frames_raise_codec_error_only():
    frame = encode_control_frame({"k": [1, 2.5, "three", None]})
    for cut in range(len(frame)):
        with pytest.raises(CodecError):
            decode_frame(frame[:cut])


def test_corrupted_frames_never_raise_anything_else():
    rng = SimRandom(99)
    frame = bytearray(
        encode_control_frame(
            {"view": _group_view(rng), "clock": _vector_clock(rng)}
        )
    )
    flips = 0
    for _ in range(400):
        index = rng.randint(0, len(frame) - 1)
        old = frame[index]
        frame[index] ^= 1 << rng.randint(0, 7)
        try:
            decode_frame(bytes(frame))
        except CodecError:
            flips += 1
        frame[index] = old
    assert flips > 0  # corruption was actually detected, not ignored


def test_random_garbage_rejected():
    rng = SimRandom(5)
    for _ in range(200):
        blob = bytes(
            rng.randint(0, 255) for _ in range(rng.randint(0, 64))
        )
        with pytest.raises(CodecError):
            decode_frame(blob)


def test_bad_magic_version_kind_and_length():
    good = encode_control_frame(1)
    with pytest.raises(CodecError):
        decode_frame(b"XX" + good[2:])
    bumped = bytes([good[0], good[1], WIRE_VERSION + 1]) + good[3:]
    with pytest.raises(CodecError):
        decode_frame(bumped)
    with pytest.raises(CodecError):
        decode_frame(good[:3] + b"\x07" + good[4:])  # unknown frame kind
    with pytest.raises(CodecError):
        decode_frame(good + b"\x00")  # length mismatch
    with pytest.raises(CodecError):
        decode_frame(b"")


def test_control_frame_oversize_raises():
    from repro.net.wire import FrameTooLarge

    with pytest.raises(FrameTooLarge):
        encode_control_frame("x" * (MAX_FRAME_BYTES + 1))


def test_corrupted_kind_fields_stay_codec_errors():
    # A decoded field combination that violates __post_init__ must read
    # as bad input, not crash: GroupView with a duplicate member.
    frame = bytearray(encode_control_frame(GroupView("g", 2, ("a", "bb"))))
    payload = frame[frame.index(b"bb") : frame.index(b"bb") + 2]
    frame[frame.index(b"bb") : frame.index(b"bb") + 2] = b"a\x00"[:len(payload)]
    try:
        decode_frame(bytes(frame))
    except CodecError:
        pass  # either verdict is fine; anything else would have raised


def test_no_exception_escapes_the_fabric_receive_path():
    from repro.proc.env import Environment
    from repro.net.latency import FixedLatency
    from repro.runtime.socket_backend import SocketRuntime

    runtime = SocketRuntime(seed=3)
    try:
        env = Environment(latency=FixedLatency(0.001), runtime=runtime)
        fabric = runtime.fabric
        rng = SimRandom(11)
        before = env.network.stats.dropped
        blobs = [
            b"",
            b"garbage",
            encode_control_frame("control on the data plane"),
            bytes(rng.randint(0, 255) for _ in range(64)),
            encode_data_frames(
                [Envelope("a", "b", "ok", send_time=0.0, deliver_time=0.0)]
            )[0][0][:-3],  # truncated data frame
        ]
        for blob in blobs:
            fabric._on_datagram(blob, ("127.0.0.1", 1))
        assert fabric.decode_errors == len(blobs)
        assert env.network.stats.dropped - before == len(blobs)
        assert runtime.timers.take_error() is None
    finally:
        runtime.close()


# -- census -------------------------------------------------------------------


def test_every_wire_handler_kind_is_registered():
    """Grep src/repro for typed receiver registrations ``.on(Kind, ...)``
    and require each kind to carry a wire id: if the sim can route it, a
    deployment must be able to encode it."""
    registered = {cls.__name__ for cls in registered_kinds().values()}
    registered.add("Kind")  # the docstring placeholder, not a class
    pattern = re.compile(r"\.on\(\s*([A-Z]\w+)\s*,")
    missing = {}
    for path in SRC.rglob("*.py"):
        for name in pattern.findall(path.read_text()):
            if name not in registered:
                missing.setdefault(name, []).append(
                    str(path.relative_to(SRC))
                )
    assert not missing, (
        f"payload kinds handled but not wire-registered: {missing} — "
        "add them to src/repro/net/wire/registry.py"
    )


def test_wire_ids_are_unique_and_stable():
    kinds = registered_kinds()
    assert len(kinds) == len(set(kinds.values())), "class registered twice"
    # Anchor a few ids that are on the wire today: renumbering them is a
    # format break (docs/deployment.md) and must bump WIRE_VERSION.
    assert kinds[1].__name__ == "Segment"
    assert kinds[10].__name__ == "GroupData"
    assert kinds[64].__name__ == "NodeRegister"
    assert kinds[90].__name__ == "ResolvePlacement"
    assert kinds[91].__name__ == "WindowData"
    assert kinds[95].__name__ == "WorkerFault"
    # v2: the recursive-hierarchy refactor evolved the hierarchy kinds'
    # field lists (a format change even with ids unchanged).
    assert WIRE_VERSION == 2
