"""Direct tests for the generic ReplicatedStateMachine (beyond the dict
and counter wrappers)."""

from repro.membership import GroupNode, build_group
from repro.net import FixedLatency
from repro.proc import Environment
from repro.toolkit import ReplicatedStateMachine


def apply_banking(state, command):
    kind, account, amount = command
    balances = state["balances"]
    if kind == "deposit":
        balances[account] = balances.get(account, 0) + amount
        return balances[account]
    if kind == "withdraw":
        current = balances.get(account, 0)
        if current < amount:
            state["rejected"] += 1
            return None  # deterministic rejection
        balances[account] = current - amount
        return balances[account]
    raise ValueError(command)


def build(n=3, seed=1):
    env = Environment(seed=seed, latency=FixedLatency(0.002))
    nodes, members = build_group(env, "bank", n)
    machines = [
        ReplicatedStateMachine(
            m,
            machine="bank",
            initial_state=lambda: {"balances": {}, "rejected": 0},
            apply_fn=apply_banking,
            snapshot_fn=lambda s: {"balances": dict(s["balances"]), "rejected": s["rejected"]},
            restore_fn=lambda s: {"balances": dict(s["balances"]), "rejected": s["rejected"]},
        )
        for m in members
    ]
    return env, nodes, members, machines


def test_commands_apply_identically_everywhere():
    env, nodes, members, machines = build()
    machines[0].submit(("deposit", "alice", 100))
    machines[1].submit(("deposit", "bob", 50))
    machines[2].submit(("withdraw", "alice", 30))
    env.run_for(3.0)
    states = [m.state for m in machines]
    assert all(s == states[0] for s in states)
    assert states[0]["balances"] == {"alice": 70, "bob": 50}
    assert all(m.commands_applied == 3 for m in machines)


def test_deterministic_rejection_consistent():
    env, nodes, members, machines = build()
    # concurrent: two withdrawals racing a deposit; whatever the total
    # order, every replica must agree on which was rejected
    machines[0].submit(("deposit", "carol", 10))
    machines[1].submit(("withdraw", "carol", 8))
    machines[2].submit(("withdraw", "carol", 8))
    env.run_for(3.0)
    states = {str(m.state) for m in machines}
    assert len(states) == 1
    assert machines[0].state["rejected"] == 1


def test_listeners_see_command_and_result():
    env, nodes, members, machines = build()
    seen = []
    machines[1].add_listener(lambda cmd, result: seen.append((cmd, result)))
    machines[0].submit(("deposit", "dora", 5))
    env.run_for(2.0)
    assert seen == [(("deposit", "dora", 5), 5)]


def test_two_machines_on_one_group_do_not_interfere():
    env = Environment(seed=2, latency=FixedLatency(0.002))
    nodes, members = build_group(env, "g", 3)
    audit = [
        ReplicatedStateMachine(
            m, "audit", initial_state=list,
            apply_fn=lambda s, c: (s.append(c), len(s))[1],
        )
        for m in members
    ]
    tally = [
        ReplicatedStateMachine(
            m, "tally", initial_state=lambda: {"n": 0},
            apply_fn=lambda s, c: s.__setitem__("n", s["n"] + c) or s["n"],
        )
        for m in members
    ]
    audit[0].submit("event-1")
    tally[1].submit(7)
    env.run_for(2.0)
    assert all(m.state == ["event-1"] for m in audit)
    assert all(m.state["n"] == 7 for m in tally)


def test_state_transfer_via_machine_snapshot():
    env, nodes, members, machines = build()
    machines[0].submit(("deposit", "erin", 42))
    env.run_for(2.0)
    joiner = GroupNode(env, "late")
    late_member = joiner.runtime.join_group("bank", contact="bank-0")
    late_machine = ReplicatedStateMachine(
        late_member,
        machine="bank",
        initial_state=lambda: {"balances": {}, "rejected": 0},
        apply_fn=apply_banking,
    )
    env.run_for(5.0)
    assert late_member.is_member
    assert late_machine.state["balances"] == {"erin": 42}
    machines[1].submit(("withdraw", "erin", 2))
    env.run_for(2.0)
    assert late_machine.state["balances"] == {"erin": 40}
