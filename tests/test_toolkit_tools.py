"""Tests for replication, mutex, parallel computation, transactions and
state transfer."""

from repro.membership import GroupNode, build_group
from repro.net import FixedLatency
from repro.proc import Environment
from repro.toolkit import (
    DistributedMutex,
    ParallelExecutor,
    ReplicatedCounter,
    ReplicatedDict,
    StateTransferHub,
    TransactionCoordinator,
    TransactionResource,
    partition,
)

import pytest


def make_group(n, name="g", seed=1, env=None):
    env = env if env is not None else Environment(seed=seed, latency=FixedLatency(0.002))
    nodes, members = build_group(env, name, n)
    return env, nodes, members


# -- replicated dict ---------------------------------------------------------------


def test_replicated_dict_converges():
    env, nodes, members = make_group(4)
    dicts = [ReplicatedDict(m) for m in members]
    dicts[0].put("a", 1)
    dicts[2].put("b", 2)
    env.run_for(2.0)
    for d in dicts:
        assert d.get("a") == 1 and d.get("b") == 2
        assert len(d) == 2


def test_replicated_dict_concurrent_writes_same_key_agree():
    env, nodes, members = make_group(5)
    dicts = [ReplicatedDict(m) for m in members]
    for i, d in enumerate(dicts):
        d.put("k", i)  # five concurrent writers
    env.run_for(3.0)
    final = {d.get("k") for d in dicts}
    assert len(final) == 1  # total order -> same last-writer everywhere
    assert all(d.commands_applied == 5 for d in dicts)


def test_replicated_dict_delete_and_clear():
    env, nodes, members = make_group(3)
    dicts = [ReplicatedDict(m) for m in members]
    dicts[0].put("a", 1)
    dicts[0].put("b", 2)
    env.run_for(1.0)
    dicts[1].delete("a")
    env.run_for(1.0)
    assert all("a" not in d and d.get("b") == 2 for d in dicts)
    dicts[2].clear()
    env.run_for(1.0)
    assert all(len(d) == 0 for d in dicts)


def test_replicated_dict_survives_member_crash():
    env, nodes, members = make_group(4)
    dicts = [ReplicatedDict(m) for m in members]
    dicts[0].put("k", "v")
    env.run_for(1.0)
    nodes[0].crash()
    env.run_for(5.0)
    dicts[1].put("k2", "v2")
    env.run_for(2.0)
    for d in dicts[1:]:
        assert d.get("k") == "v" and d.get("k2") == "v2"


def test_replicated_dict_state_transfer_to_joiner():
    env, nodes, members = make_group(3)
    dicts = [ReplicatedDict(m) for m in members]
    dicts[0].put("seed", 123)
    env.run_for(1.0)
    joiner_node = GroupNode(env, "joiner")
    joiner_member = joiner_node.runtime.join_group("g", contact="g-0")
    joiner_dict = ReplicatedDict(joiner_member)
    env.run_for(5.0)
    assert joiner_member.is_member
    assert joiner_dict.get("seed") == 123
    dicts[1].put("post", 9)
    env.run_for(2.0)
    assert joiner_dict.get("post") == 9


def test_replicated_counter():
    env, nodes, members = make_group(3)
    counters = [ReplicatedCounter(m) for m in members]
    counters[0].add(5)
    counters[1].add(-2)
    env.run_for(2.0)
    assert all(c.value == 3 for c in counters)
    counters[2].set(100)
    env.run_for(2.0)
    assert all(c.value == 100 for c in counters)


# -- mutex -------------------------------------------------------------------------


def test_mutex_grants_in_request_order():
    env, nodes, members = make_group(3)
    locks = [DistributedMutex(m) for m in members]
    order = []
    locks[1].acquire(lambda: order.append("g-1"))
    env.run_for(1.0)
    locks[0].acquire(lambda: order.append("g-0"))
    locks[2].acquire(lambda: order.append("g-2"))
    env.run_for(1.0)
    assert order == ["g-1"]  # held; others queued
    locks[1].release()
    env.run_for(1.0)
    assert len(order) == 2
    [l for l in locks if l.held_by_me][0].release()
    env.run_for(1.0)
    assert sorted(order[1:]) == ["g-0", "g-2"]


def test_mutex_queues_identical_across_members():
    env, nodes, members = make_group(4)
    locks = [DistributedMutex(m) for m in members]
    for lock in locks:
        lock.acquire(lambda: None)
    env.run_for(2.0)
    queues = {tuple(lock.queue) for lock in locks}
    assert len(queues) == 1
    assert len(locks[0].queue) == 4


def test_mutex_holder_crash_releases_lock():
    env, nodes, members = make_group(3)
    locks = [DistributedMutex(m) for m in members]
    got = []
    locks[0].acquire(lambda: got.append("g-0"))
    env.run_for(1.0)
    locks[1].acquire(lambda: got.append("g-1"))
    env.run_for(1.0)
    assert got == ["g-0"]
    nodes[0].crash()
    env.run_for(5.0)
    assert got == ["g-0", "g-1"]
    assert locks[1].held_by_me


def test_mutex_double_acquire_rejected():
    env, nodes, members = make_group(2)
    lock = DistributedMutex(members[0])
    lock.acquire(lambda: None)
    with pytest.raises(RuntimeError):
        lock.acquire(lambda: None)


def test_mutex_release_requires_holding():
    env, nodes, members = make_group(2)
    lock = DistributedMutex(members[0])
    with pytest.raises(RuntimeError):
        lock.release()


def test_two_named_locks_independent():
    env, nodes, members = make_group(2)
    a0 = DistributedMutex(members[0], "lock-a")
    a1 = DistributedMutex(members[1], "lock-a")
    b0 = DistributedMutex(members[0], "lock-b")
    b1 = DistributedMutex(members[1], "lock-b")
    got = []
    a0.acquire(lambda: got.append("a@0"))
    b1.acquire(lambda: got.append("b@1"))
    env.run_for(2.0)
    assert sorted(got) == ["a@0", "b@1"]


# -- parallel ----------------------------------------------------------------------


def test_partition_covers_all_indices():
    indices = set()
    for rank in range(4):
        indices.update(partition(10, 4, rank))
    assert indices == set(range(10))


def test_parallel_scatter_gather():
    env, nodes, members = make_group(4)
    execs = [ParallelExecutor(m, lambda x: x * x) for m in members]
    results = []
    execs[0].run(list(range(10)), results.append)
    env.run_for(3.0)
    assert results == [[i * i for i in range(10)]]
    # work was actually subdivided
    assert all(e.items_processed > 0 for e in execs)


def test_parallel_worker_crash_reassigned():
    env, nodes, members = make_group(4)
    execs = [ParallelExecutor(m, lambda x: x + 100) for m in members]
    results = []
    execs[0].run(list(range(12)), results.append)
    nodes[2].crash()  # before its partials can arrive
    env.run_for(10.0)
    assert results == [[i + 100 for i in range(12)]]


def test_parallel_single_member_does_everything():
    env, nodes, members = make_group(1)
    ex = ParallelExecutor(members[0], lambda x: -x)
    results = []
    ex.run([1, 2, 3], results.append)
    env.run_for(2.0)
    assert results == [[-1, -2, -3]]


# -- transactions -------------------------------------------------------------------


def build_tx(env=None, seed=1):
    env = env if env is not None else Environment(seed=seed, latency=FixedLatency(0.002))
    nodes_a, members_a = build_group(env, "res-a", 3, prefix="ra")
    nodes_b, members_b = build_group(env, "res-b", 3, prefix="rb")
    res_a = [TransactionResource(m, "A") for m in members_a]
    res_b = [TransactionResource(m, "B") for m in members_b]
    tc_node = GroupNode(env, "txc")
    coordinator = TransactionCoordinator(tc_node, rpc=tc_node.runtime.rpc)
    return env, (nodes_a, res_a), (nodes_b, res_b), coordinator


def test_transaction_commits_across_two_resources():
    env, (na, ra), (nb, rb), tc = build_tx()
    outcome = []
    tc.execute(
        {"ra-0": [("x", 1)], "rb-0": [("y", 2)]},
        on_done=outcome.append,
    )
    env.run_for(5.0)
    assert outcome == [True]
    assert all(r.get("x") == 1 for r in ra)
    assert all(r.get("y") == 2 for r in rb)


def test_transaction_conflict_aborts():
    env, (na, ra), (nb, rb), tc = build_tx()
    first, second = [], []
    tc.execute({"ra-0": [("k", "v1")]}, on_done=first.append)
    env.run_for(0.003)  # first prepare voted yes; stage still replicating
    tc.execute({"ra-0": [("k", "v2")], "rb-0": [("z", 1)]}, on_done=second.append)
    env.run_for(10.0)
    assert first == [True]
    assert second == [False]
    assert all(r.get("k") == "v1" for r in ra)
    assert all(r.get("z") is None for r in rb)
    # locks released after both transactions decided
    assert all(not r.locked_keys for r in ra + rb)


def test_transaction_staged_state_replicated_to_cohorts():
    env, (na, ra), (nb, rb), tc = build_tx()
    outcome = []
    tc.execute({"ra-0": [("p", 7)]}, on_done=outcome.append)
    env.run_for(5.0)
    assert outcome == [True]
    # every cohort of the resource group applied the commit
    assert [r.get("p") for r in ra] == [7, 7, 7]


def test_transaction_survives_resource_coordinator_crash_after_prepare():
    env, (na, ra), (nb, rb), tc = build_tx()
    outcome = []
    tc.execute({"ra-0": [("q", 1)]}, on_done=outcome.append)
    env.run_for(0.05)  # prepared & replicated, decision not yet delivered

    def crash_then_check():
        na[0].crash()

    env.scheduler.after(0.0, crash_then_check)
    env.run_for(10.0)
    # decision RPC redirects to the new group coordinator
    assert outcome == [True]
    for r in ra[1:]:
        assert r.get("q") == 1


def test_transaction_timeout_participant_dead_aborts():
    env, (na, ra), (nb, rb), tc = build_tx()
    for node in nb:
        node.crash()
    outcome = []
    tc.execute(
        {"ra-0": [("m", 1)], "rb-0": [("n", 2)]},
        on_done=outcome.append,
    )
    env.run_for(10.0)
    assert outcome == [False]
    assert all(r.get("m") is None for r in ra)
    assert all(not r.locked_keys for r in ra)


# -- state transfer hub --------------------------------------------------------------


def test_state_transfer_hub_multiplexes_sections():
    env, nodes, members = make_group(2)
    hubs = [StateTransferHub(m) for m in members]
    tables = [{"x": 1}, {"x": 1}]
    logs = [[10], [10]]
    for hub, table, log in zip(hubs, tables, logs):
        hub.register("table", lambda t=table: dict(t), lambda s, t=table: t.update(s))
        hub.register("log", lambda l=log: list(l), lambda s, l=log: l.extend(s))
    joiner_node = GroupNode(env, "joiner")
    joiner = joiner_node.runtime.join_group("g", contact="g-0")
    jt, jl = {}, []
    hub_j = StateTransferHub(joiner)
    hub_j.register("table", lambda: dict(jt), jt.update)
    hub_j.register("log", lambda: list(jl), jl.extend)
    env.run_for(5.0)
    assert joiner.is_member
    assert jt == {"x": 1}
    assert jl == [10]
    assert hub_j.transfers_received == 1


def test_state_transfer_hub_claims_hooks_exclusively():
    env, nodes, members = make_group(2)
    StateTransferHub(members[0])
    with pytest.raises(ValueError):
        StateTransferHub(members[0])


def test_state_transfer_hub_duplicate_section_rejected():
    env, nodes, members = make_group(2)
    hub = StateTransferHub(members[0])
    hub.register("s", dict, lambda s: None)
    with pytest.raises(ValueError):
        hub.register("s", dict, lambda s: None)
