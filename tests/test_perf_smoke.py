"""Quick smoke test over the perf harness scenarios.

Runs miniature versions of the ``tools/perf_report.py`` scenarios inside
the default test suite so the harness itself cannot rot.  Deliberately no
wall-clock assertions — CI machines vary; timing claims live in
``BENCH_core.json`` (written by ``make bench-report``).  What *is*
asserted is structural: each scenario completes, processes a plausible
number of events, reports a behaviour fingerprint, and keeps the event
heap bounded.
"""

import os
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent.parent))

from tools.perf_report import build_scenarios, compute_speedups, run_suite


def test_quick_suite_runs_all_scenarios():
    scenarios = build_scenarios(quick=True)
    results = run_suite(quick=True)
    assert set(results) == set(scenarios)
    for name, result in results.items():
        assert result["events"] > 1000, name
        assert result["wall_s"] > 0.0, name
        assert result["fingerprint"]["events_processed"] > 0, name


def test_scenarios_keep_heap_bounded():
    results = run_suite(quick=True, only=["hier_steady_n64", "churn"])
    for name, result in results.items():
        # The heap watermark must stay far below the number of events
        # processed — cancelled timers are compacted, not accumulated.
        assert result["peak_heap"] < result["events"] / 10, name


def test_scenario_fingerprints_are_deterministic():
    a = run_suite(quick=True, only=["churn"])["churn"]["fingerprint"]
    b = run_suite(quick=True, only=["churn"])["churn"]["fingerprint"]
    assert a == b


def test_compute_speedups_shape():
    quick = run_suite(quick=True, only=["scheduler_micro"])
    report = {
        "runs": {
            "baseline": {"scenarios": quick, "quick": True},
            "optimized": {"scenarios": quick, "quick": True},
        }
    }
    compute_speedups(report)
    assert report["speedup"]["scheduler_micro"] == 1.0
    assert report["fingerprints_identical"] == {"scheduler_micro": True}


def test_bench_core_json_records_the_claimed_speedup():
    """The committed BENCH_core.json must back the >=1.5x headline."""
    import json

    path = Path(__file__).parent.parent / "BENCH_core.json"
    if not path.exists() or os.environ.get("REPRO_SKIP_BENCH_CHECK"):
        return  # fresh checkout mid-rebaseline
    report = json.loads(path.read_text())
    assert {"baseline", "optimized"} <= set(report["runs"])
    assert all(report["fingerprints_identical"].values())
    hier = [v for k, v in report["speedup"].items() if k.startswith("hier_steady")]
    assert hier and max(hier) >= 1.5
