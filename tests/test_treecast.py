"""Tests for the tree-structured (atomic) broadcast over the hierarchy."""

from repro.core import (
    LargeGroupParams,
    TreecastRoot,
    attach_treecast,
    build_large_group,
    build_leader_group,
    build_spec,
)
from repro.core.views import AddLeaf, HierarchyState
from repro.net import FixedLatency
from repro.proc import Environment


def build_service(n_workers, resiliency=2, fanout=4, seed=1, settle=None):
    env = Environment(seed=seed, latency=FixedLatency(0.002))
    params = LargeGroupParams(resiliency=resiliency, fanout=fanout)
    leaders = build_leader_group(env, "svc", params)
    contacts = tuple(r.node.address for r in leaders)
    members = build_large_group(env, "svc", n_workers, params, contacts)
    participants = attach_treecast(members, resiliency=resiliency)
    roots = [TreecastRoot(r) for r in leaders]
    env.run_for(settle if settle is not None else 5.0 + 0.2 * n_workers)
    manager_root = next(r for r in roots if r.replica.is_manager)
    return env, leaders, members, participants, manager_root


# -- spec construction (pure) ---------------------------------------------------------


def test_build_spec_empty_hierarchy():
    state = HierarchyState("svc", LargeGroupParams(resiliency=2, fanout=4))
    assert build_spec(state) is None


def test_build_spec_single_level():
    state = HierarchyState("svc", LargeGroupParams(resiliency=2, fanout=4))
    for i in range(3):
        state.apply(AddLeaf(f"l{i}", size=4, contacts=(f"c{i}", f"d{i}")))
    spec = build_spec(state)
    assert len(spec.leaf_targets) == 3
    assert spec.children == ()
    assert spec.stage_count() == 1


def test_build_spec_multi_level_fanout_bound():
    state = HierarchyState("svc", LargeGroupParams(resiliency=2, fanout=3))
    for i in range(20):
        state.apply(AddLeaf(f"l{i:02d}", size=4, contacts=(f"c{i}",)))
    spec = build_spec(state)

    def check(node):
        assert len(node.leaf_targets) + len(node.children) <= 3
        for child in node.children:
            check(child)

    check(spec)
    assert spec.stage_count() >= 2


def test_build_spec_skips_contactless_leaves():
    state = HierarchyState("svc", LargeGroupParams(resiliency=2, fanout=4))
    state.apply(AddLeaf("l0", size=0, contacts=()))
    assert build_spec(state) is None


# -- end-to-end -----------------------------------------------------------------------


def test_broadcast_reaches_every_member():
    env, leaders, members, participants, root = build_service(12)
    done = []
    root.broadcast({"cmd": "refresh"}, on_complete=done.append)
    env.run_for(3.0)
    for p in participants:
        assert len(p.delivered) == 1
        assert p.delivered[0][1] == {"cmd": "refresh"}
    assert done and not done[0]["timed_out"]


def test_broadcast_exactly_once_per_member():
    env, leaders, members, participants, root = build_service(10)
    for i in range(3):
        root.broadcast(f"msg-{i}")
    env.run_for(5.0)
    for p in participants:
        payloads = [payload for _bid, payload in p.delivered]
        assert sorted(payloads) == ["msg-0", "msg-1", "msg-2"]


def test_atomic_broadcast_commits_after_acks():
    env, leaders, members, participants, root = build_service(12)
    root.broadcast("atomic-payload", atomic=True)
    env.run_for(5.0)
    for p in participants:
        assert [payload for _b, payload in p.delivered] == ["atomic-payload"]
    assert root.completed and root.completed[0]["committed"]


def test_atomic_broadcast_buffers_until_commit():
    env, leaders, members, participants, root = build_service(8)
    root.broadcast("held", atomic=True)
    # Immediately after the leaf stage but before the root can have
    # collected acks, nothing must be delivered.
    env.run_for(0.004)  # two network hops only
    assert all(len(p.delivered) == 0 for p in participants)
    env.run_for(5.0)
    assert all(len(p.delivered) == 1 for p in participants)


def test_broadcast_via_rpc_request():
    from repro.core.treecast import TreeBroadcastRequest
    from repro.membership import GroupNode

    env, leaders, members, participants, root = build_service(8)
    client = GroupNode(env, "client-x")
    replies = []
    client.runtime.rpc.call(
        root.node.address,
        TreeBroadcastRequest(service="svc", payload="from-client"),
        on_reply=lambda value, sender: replies.append(value),
    )
    env.run_for(3.0)
    assert replies and replies[0][0] == "started"
    for p in participants:
        assert [payload for _b, payload in p.delivered] == ["from-client"]


def test_listener_callbacks_fire():
    env, leaders, members, participants, root = build_service(6)
    heard = []
    participants[0].add_listener(lambda payload, bid: heard.append(payload))
    root.broadcast("ping")
    env.run_for(3.0)
    assert heard == ["ping"]


def test_per_process_direct_fanout_bounded():
    """The E8 property: during a tree broadcast no process unicasts
    tree-stage messages to more destinations than the branch fanout."""
    fanout = 3
    env, leaders, members, participants, root = build_service(
        30, resiliency=2, fanout=fanout, settle=25.0
    )
    before = env.network.stats.snapshot()
    root.broadcast("bounded")
    env.run_for(5.0)
    delta = env.network.stats.since(before)
    tree_cats = {"treecast-relay", "treecast-leaf"}
    # Count tree-stage sends per process from the category-agnostic
    # sent_by counter is too coarse; instead verify via spec shape.
    state = root.replica.state
    spec = build_spec(state)

    def max_out(node):
        own = len(node.leaf_targets) + len(node.children)
        return max([own] + [max_out(c) for c in node.children])

    assert max_out(spec) <= fanout
    # and the broadcast still reached everyone
    placed = [p for p in participants if p.member.is_member]
    assert all(len(p.delivered) == 1 for p in placed)


def test_broadcast_with_crashed_leaf_times_out_but_covers_rest():
    env, leaders, members, participants, root = build_service(12)
    # kill one whole leaf an instant before broadcasting, before the
    # leader can have noticed
    leaf_id = members[0].leaf_id
    victims = [m for m in members if m.leaf_id == leaf_id]
    for v in victims:
        v.node.crash()
    root.ack_timeout = 2.0
    root.broadcast("partial")
    env.run_for(10.0)
    live = [p for p in participants if p.member.node.alive and p.member.is_member]
    for p in live:
        assert [payload for _b, payload in p.delivered] == ["partial"]
    assert root.completed
