"""Unit tests for the reliable FIFO transport over a lossy network."""

from dataclasses import dataclass

from repro.net import FixedLatency
from repro.proc import Environment, Process
from repro.transport import ReliableTransport


@dataclass
class AppMsg:
    category = "app"
    n: int = 0


class Peer(Process):
    def __init__(self, env, address, rto=0.05):
        super().__init__(env, address)
        self.transport = ReliableTransport(self, rto=rto)
        self.inbox = []
        self.on(AppMsg, lambda m, s: self.inbox.append((m.n, s)))


def make_pair(drop=0.0, dup=0.0, seed=1):
    env = Environment(
        seed=seed,
        latency=FixedLatency(0.005),
        drop_probability=drop,
        duplicate_probability=dup,
    )
    return env, Peer(env, "a"), Peer(env, "b")


def test_delivery_on_clean_network():
    env, a, b = make_pair()
    a.transport.send("b", AppMsg(1))
    env.run_for(1.0)
    assert b.inbox == [(1, "a")]


def test_fifo_order_preserved():
    env, a, b = make_pair()
    for i in range(20):
        a.transport.send("b", AppMsg(i))
    env.run_for(2.0)
    assert [n for n, _ in b.inbox] == list(range(20))


def test_all_messages_arrive_despite_heavy_loss():
    env, a, b = make_pair(drop=0.4)
    for i in range(30):
        a.transport.send("b", AppMsg(i))
    env.run_for(20.0)
    assert [n for n, _ in b.inbox] == list(range(30))


def test_duplicates_suppressed():
    env, a, b = make_pair(dup=0.5)
    for i in range(30):
        a.transport.send("b", AppMsg(i))
    env.run_for(20.0)
    assert [n for n, _ in b.inbox] == list(range(30))


def test_loss_and_duplication_together():
    env, a, b = make_pair(drop=0.3, dup=0.3, seed=7)
    for i in range(25):
        a.transport.send("b", AppMsg(i))
    env.run_for(30.0)
    assert [n for n, _ in b.inbox] == list(range(25))


def test_bidirectional_channels_are_independent():
    env, a, b = make_pair()
    a.transport.send("b", AppMsg(1))
    b.transport.send("a", AppMsg(2))
    env.run_for(1.0)
    assert b.inbox == [(1, "a")]
    assert a.inbox == [(2, "b")]


def test_unacked_drains_to_zero():
    env, a, b = make_pair(drop=0.3)
    for i in range(10):
        a.transport.send("b", AppMsg(i))
    env.run_for(20.0)
    assert a.transport.unacked_count("b") == 0


def test_retransmit_stops_after_forget_peer():
    env, a, b = make_pair()
    b.crash()
    a.transport.send("b", AppMsg(1))
    env.run_for(1.0)
    assert a.transport.unacked_count("b") == 1
    a.transport.forget_peer("b")
    before = env.network.stats.snapshot()
    env.run_for(1.0)
    delta = env.network.stats.since(before)
    assert delta.by_category.get("app", 0) == 0


def test_send_many_delivers_to_all():
    env = Environment(seed=3, latency=FixedLatency(0.005), drop_probability=0.2)
    sender = Peer(env, "s")
    receivers = [Peer(env, f"r{i}") for i in range(5)]
    sender.transport.send_many([r.address for r in receivers], AppMsg(9))
    env.run_for(10.0)
    assert all(r.inbox == [(9, "s")] for r in receivers)


def test_send_many_uses_hardware_multicast_when_aligned():
    env = Environment(seed=3, latency=FixedLatency(0.005), hardware_multicast=True)
    sender = Peer(env, "s")
    receivers = [Peer(env, f"r{i}") for i in range(4)]
    before = env.network.stats.snapshot()
    sender.transport.send_many([r.address for r in receivers], AppMsg(1))
    env.run_for(0.01)  # before any ack/retransmit traffic
    delta = env.network.stats.since(before)
    assert delta.by_category["app"] == 4  # segments report inner category
    # one wire packet for the 4-way multicast (plus one per unicast ack)
    acks = delta.by_category.get("transport-ack", 0)
    assert delta.wire_packets - acks == 1


def test_crashed_receiver_messages_not_delivered_but_flow_resumes_to_others():
    env, a, b = make_pair()
    b.crash()
    a.transport.send("b", AppMsg(1))
    env.run_for(0.5)
    assert b.inbox == []
