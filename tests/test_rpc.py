"""Unit tests for the RPC helper."""

from dataclasses import dataclass

import pytest

from repro.net import FixedLatency
from repro.proc import Environment, Process, Rpc, RpcError


@dataclass
class Add:
    a: int = 0
    b: int = 0


@dataclass
class Boom:
    pass


@dataclass
class Unserved:
    pass


class Server(Process):
    def __init__(self, env, address):
        super().__init__(env, address)
        self.rpc = Rpc(self)
        self.rpc.serve(Add, lambda body, sender: body.a + body.b)
        self.rpc.serve(Boom, self._boom)

    def _boom(self, body, sender):
        raise RpcError("kaboom")


class Client(Process):
    def __init__(self, env, address):
        super().__init__(env, address)
        self.rpc = Rpc(self)
        self.replies = []
        self.timeouts = 0

    def ask(self, dst, body, timeout=None):
        self.rpc.call(
            dst,
            body,
            on_reply=lambda value, sender: self.replies.append(value),
            timeout=timeout,
            on_timeout=self._on_timeout,
        )

    def _on_timeout(self):
        self.timeouts += 1


def setup():
    env = Environment(seed=1, latency=FixedLatency(0.01))
    return env, Server(env, "server"), Client(env, "client")


def test_basic_request_reply():
    env, server, client = setup()
    client.ask("server", Add(2, 3))
    env.run()
    assert client.replies == [5]


def test_concurrent_calls_correlate_correctly():
    env, server, client = setup()
    for i in range(10):
        client.ask("server", Add(i, i))
    env.run()
    assert sorted(client.replies) == [2 * i for i in range(10)]


def test_timeout_fires_when_server_dead():
    env, server, client = setup()
    server.crash()
    client.ask("server", Add(1, 1), timeout=0.5)
    env.run()
    assert client.replies == []
    assert client.timeouts == 1


def test_no_timeout_after_reply():
    env, server, client = setup()
    client.ask("server", Add(1, 1), timeout=5.0)
    env.run()
    assert client.replies == [2]
    assert client.timeouts == 0


def test_unserved_body_times_out():
    env, server, client = setup()
    client.ask("server", Unserved(), timeout=0.5)
    env.run()
    assert client.timeouts == 1


def test_server_error_returns_error_reply():
    env, server, client = setup()
    errors = []
    client.rpc.call(
        "server",
        Boom(),
        on_reply=lambda value, sender: errors.append(value),
    )
    env.run()
    assert errors == [None]


def test_duplicate_serve_rejected():
    env, server, client = setup()
    with pytest.raises(ValueError):
        server.rpc.serve(Add, lambda b, s: 0)


def test_unserve_then_reserve():
    env, server, client = setup()
    server.rpc.unserve(Add)
    server.rpc.serve(Add, lambda body, sender: 99)
    client.ask("server", Add(1, 1))
    env.run()
    assert client.replies == [99]


def test_two_clients_do_not_cross_replies():
    env = Environment(seed=2, latency=FixedLatency(0.01))
    server = Server(env, "server")
    c1 = Client(env, "c1")
    c2 = Client(env, "c2")
    c1.ask("server", Add(1, 0))
    c2.ask("server", Add(2, 0))
    env.run()
    assert c1.replies == [1]
    assert c2.replies == [2]
