"""Tests for the coordinator-cohort tool (flat groups)."""

from repro.membership import GroupNode, build_group
from repro.net import FixedLatency
from repro.proc import Environment
from repro.toolkit import CoordinatorCohortClient, attach_service


def build(n, seed=1, cohort_limit=None, handler=None):
    env = Environment(seed=seed, latency=FixedLatency(0.002))
    nodes, members = build_group(env, "svc", n)
    handler = handler if handler else lambda payload, client: ("done", payload)
    servers = attach_service(members, handler, cohort_limit=cohort_limit)
    client_node = GroupNode(env, "client")
    client = CoordinatorCohortClient(
        client_node,
        "svc",
        contacts=tuple(f"svc-{i}" for i in range(n)),
        rpc=client_node.runtime.rpc,
    )
    return env, nodes, members, servers, client


def test_request_gets_reply():
    env, nodes, members, servers, client = build(4)
    replies = []
    client.request({"op": "read"}, replies.append)
    env.run_for(3.0)
    assert replies == [("done", {"op": "read"})]


def test_coordinator_executes_exactly_once_normally():
    env, nodes, members, servers, client = build(5)
    replies = []
    for i in range(6):
        client.request(i, replies.append)
    env.run_for(5.0)
    assert sorted(r[1] for r in replies) == list(range(6))
    assert servers[0].requests_executed == 6
    assert all(s.requests_executed == 0 for s in servers[1:])


def test_cohorts_store_results():
    env, nodes, members, servers, client = build(4)
    client.request("x", lambda r: None)
    env.run_for(3.0)
    for server in servers[1:]:
        assert len(server._results) == 1


def test_cohort_limit_bounds_result_copies():
    env, nodes, members, servers, client = build(6, cohort_limit=3)
    before = env.network.stats.snapshot()
    client.request("x", lambda r: None)
    env.run_for(3.0)
    delta = env.network.stats.since(before)
    assert delta.by_category["cc-result"] == 2  # limit-1 cohorts
    holders = sum(1 for s in servers if len(s._results) == 1)
    assert holders == 3  # coordinator + 2 cohorts


def test_message_count_is_2n():
    """The paper's claim: a request costs 2n messages (n requests in,
    1 reply, n-1 result copies)."""
    for n in (3, 5, 9):
        env, nodes, members, servers, client = build(n)
        env.run_for(1.0)
        before = env.network.stats.snapshot()
        done = []
        client.request("w", done.append)
        env.run_for(3.0)
        delta = env.network.stats.since(before)
        data_messages = (
            delta.by_category.get("cc-request", 0)
            + delta.by_category.get("cc-reply", 0)
            + delta.by_category.get("cc-result", 0)
        )
        assert done
        assert data_messages == 2 * n, f"n={n}: {delta.by_category}"


def test_coordinator_crash_cohort_takes_over():
    env, nodes, members, servers, client = build(4)
    slow = []

    # The first executor crashes mid-request, before sending its reply or
    # the result copies: the cohorts must detect and take over.
    def killer_handler(payload, client_addr):
        slow.append(payload)
        if len(slow) == 1:
            nodes[0].crash()  # synchronous: reply send below is suppressed
        return ("served", payload)

    for server in servers:
        server.handler = killer_handler
    replies = []
    client.request("critical", replies.append)
    env.run_for(10.0)
    assert replies, "cohort must take over and reply"
    assert any(s.takeovers >= 1 for s in servers[1:])


def test_coordinator_crash_before_any_processing():
    env, nodes, members, servers, client = build(4)
    nodes[0].crash()
    replies = []
    client.request("after-crash", replies.append)
    env.run_for(10.0)
    assert replies == [("done", "after-crash")]
    assert servers[1].requests_executed == 1


def test_client_failure_callback_when_group_gone():
    env, nodes, members, servers, client = build(2)
    for node in nodes:
        node.crash()
    replies, failures = [], []
    client.request("void", replies.append, on_failure=lambda: failures.append(1))
    env.run_for(30.0)
    assert replies == []
    assert failures == [1]


def test_duplicate_request_not_reexecuted():
    env, nodes, members, servers, client = build(3)
    executions = []

    def handler(payload, client_addr):
        executions.append(payload)
        return payload

    for server in servers:
        server.handler = handler
    replies = []
    rid = client.request("once", replies.append)
    env.run_for(2.0)
    # simulate a client retransmission of the same request id
    from repro.toolkit import CCRequest

    client.process.multicast(
        tuple(members[0].view.members),
        CCRequest(group="svc", request_id=rid, payload="once", client="client"),
    )
    env.run_for(2.0)
    assert executions == ["once"]


def test_two_clients_independent():
    env, nodes, members, servers, client = build(3)
    other_node = GroupNode(env, "client2")
    other = CoordinatorCohortClient(
        other_node, "svc", contacts=("svc-1", "svc-2"), rpc=other_node.runtime.rpc
    )
    r1, r2 = [], []
    client.request("a", r1.append)
    other.request("b", r2.append)
    env.run_for(3.0)
    assert r1 == [("done", "a")]
    assert r2 == [("done", "b")]
