"""Property-based tests for the reliable transport and channel state."""

from dataclasses import dataclass

from hypothesis import given, settings, strategies as st

from repro.net import FixedLatency
from repro.proc import Environment, Process
from repro.transport import ReceiveState, ReliableTransport, Segment, SendState


@dataclass
class AppMsg:
    category = "app"
    n: int = 0


class Peer(Process):
    def __init__(self, env, address):
        super().__init__(env, address)
        self.transport = ReliableTransport(self, rto=0.05)
        self.inbox = []
        self.on(AppMsg, lambda m, s: self.inbox.append(m.n))


# -- pure channel state properties ---------------------------------------------------


@given(st.permutations(list(range(1, 9))))
def test_property_receive_state_reorders_any_arrival(order):
    state = ReceiveState(channel_id=(0, 0))
    delivered = []
    for seq in order:
        delivered += state.accept(Segment(seq=seq, payload=seq))
    assert delivered == list(range(1, 9))
    assert state.cum_seq == 8


@given(
    st.lists(st.integers(min_value=1, max_value=8), min_size=1, max_size=30)
)
def test_property_receive_state_duplicates_never_redeliver(seqs):
    state = ReceiveState(channel_id=(0, 0))
    delivered = []
    for seq in seqs:
        delivered += state.accept(Segment(seq=seq, payload=seq))
    assert delivered == sorted(set(delivered))
    assert len(delivered) == len(set(delivered))


@given(st.integers(min_value=0, max_value=20))
def test_property_send_state_ack_prefix(acked):
    state = SendState()
    now = 0.0
    for i in range(10):
        state.admit(f"p{i}", now)
    state.acknowledge(acked)
    expected_remaining = max(0, 10 - acked)
    assert len(state.unacked) == expected_remaining
    assert all(seq > acked for seq in state.unacked)


def test_send_state_restart_preserves_payload_order():
    state = SendState()
    for i in range(5):
        state.admit(f"p{i}", 0.0)
    state.acknowledge(2)
    pending = state.restart(1.0)
    assert pending == ["p2", "p3", "p4"]
    assert state.epoch == 1 and state.next_seq == 1 and not state.unacked


# -- end-to-end properties over random loss schedules ---------------------------------


@settings(max_examples=15, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    drop=st.floats(min_value=0.0, max_value=0.45),
    count=st.integers(min_value=1, max_value=25),
)
def test_property_exactly_once_in_order_under_loss(seed, drop, count):
    env = Environment(
        seed=seed, latency=FixedLatency(0.003), drop_probability=drop
    )
    a = Peer(env, "a")
    b = Peer(env, "b")
    for i in range(count):
        a.transport.send("b", AppMsg(i))
    env.run_for(30.0)
    assert b.inbox == list(range(count))


@settings(max_examples=10, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    dup=st.floats(min_value=0.0, max_value=0.45),
)
def test_property_duplication_never_causes_redelivery(seed, dup):
    env = Environment(
        seed=seed, latency=FixedLatency(0.003), duplicate_probability=dup
    )
    a = Peer(env, "a")
    b = Peer(env, "b")
    for i in range(15):
        a.transport.send("b", AppMsg(i))
    env.run_for(20.0)
    assert b.inbox == list(range(15))


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_property_bidirectional_loss_and_reboot(seed):
    env = Environment(
        seed=seed, latency=FixedLatency(0.003), drop_probability=0.2
    )
    a = Peer(env, "a")
    b = Peer(env, "b")
    for i in range(8):
        a.transport.send("b", AppMsg(i))
        b.transport.send("a", AppMsg(100 + i))
    env.run_for(10.0)
    b.crash()
    b.recover()
    for i in range(8, 12):
        a.transport.send("b", AppMsg(i))
    env.run_for(30.0)
    # a's view: everything b sent before its crash, in order
    assert a.inbox == [100 + i for i in range(8)]
    # b's post-reboot inbox continues the stream without duplicates of
    # what the *new incarnation* received
    post = b.inbox
    assert post == sorted(post)
    assert set(range(8, 12)) <= set(post)
