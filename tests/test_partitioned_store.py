"""Tests for the partitioned replicated store over hierarchical groups."""

from repro.core import LargeGroupParams, build_large_group, build_leader_group
from repro.membership import GroupNode
from repro.net import FixedLatency
from repro.proc import Environment
from repro.toolkit import (
    PartitionedStoreClient,
    PartitionedStoreServer,
    owner_of,
)

import pytest


def build_store(workers=12, seed=1, fanout=4, resiliency=2, settle=None):
    env = Environment(seed=seed, latency=FixedLatency(0.002))
    params = LargeGroupParams(resiliency=resiliency, fanout=fanout)
    leaders = build_leader_group(env, "svc", params)
    contacts = tuple(r.node.address for r in leaders)
    members = build_large_group(env, "svc", workers, params, contacts)
    servers = [PartitionedStoreServer(m) for m in members]
    env.run_for(settle if settle is not None else 5.0 + 0.3 * workers)
    node = GroupNode(env, "store-client")
    client = PartitionedStoreClient(
        node, node.runtime.rpc, contacts, service="svc"
    )
    return env, params, leaders, members, servers, client


# -- owner_of (pure) ----------------------------------------------------------------


def test_owner_of_stable_and_order_independent():
    leaves = ["l2", "l0", "l1"]
    assert owner_of("k", leaves) == owner_of("k", list(reversed(leaves)))
    assert owner_of("k", leaves) == owner_of("k", leaves)


def test_owner_of_distributes_keys():
    leaves = [f"l{i}" for i in range(4)]
    owners = {owner_of(f"key-{i}", leaves) for i in range(100)}
    assert len(owners) == 4  # all partitions used


def test_owner_of_requires_leaves():
    with pytest.raises(ValueError):
        owner_of("k", [])


# -- end to end ----------------------------------------------------------------------


def test_put_then_get_roundtrip():
    env, params, leaders, members, servers, client = build_store()
    done, got = [], []
    client.put("alpha", 1, done.append)
    env.run_for(3.0)
    client.get("alpha", got.append)
    env.run_for(3.0)
    assert done == [True]
    assert got == [1]


def test_keys_spread_across_leaves():
    env, params, leaders, members, servers, client = build_store(workers=16)
    oks = []
    keys = [f"key-{i}" for i in range(20)]
    for key in keys:
        client.put(key, key.upper(), oks.append)
    env.run_for(8.0)
    assert oks == [True] * 20
    owners = {client.owner_leaf(key) for key in keys}
    assert len(owners) >= 2, "keys should be partitioned across leaves"


def test_get_missing_key_returns_none():
    env, params, leaders, members, servers, client = build_store()
    got = []
    client.get("ghost", got.append)
    env.run_for(3.0)
    assert got == [None]


def test_delete_removes_key():
    env, params, leaders, members, servers, client = build_store()
    client.put("k", 9, lambda ok: None)
    env.run_for(2.0)
    client.delete("k", lambda ok: None)
    env.run_for(2.0)
    got = []
    client.get("k", got.append)
    env.run_for(2.0)
    assert got == [None]


def test_value_replicated_within_owner_leaf():
    env, params, leaders, members, servers, client = build_store(workers=12)
    client.put("replicated-key", 42, lambda ok: None)
    env.run_for(4.0)
    leaf_id = client.owner_leaf("replicated-key")
    replicas = [
        s for s, m in zip(servers, members) if m.leaf_id == leaf_id and m.is_member
    ]
    assert len(replicas) >= 2
    assert all(s.local_value("replicated-key") == 42 for s in replicas)


def test_value_survives_owner_leaf_coordinator_crash():
    env, params, leaders, members, servers, client = build_store(workers=12)
    client.put("durable", "v1", lambda ok: None)
    env.run_for(4.0)
    leaf_id = client.owner_leaf("durable")
    leaf_members = [m for m in members if m.leaf_id == leaf_id and m.is_member]
    coordinator = next(m for m in leaf_members if m.is_leaf_coordinator)
    coordinator.node.crash()
    env.run_for(6.0)
    got = []
    client.get("durable", got.append)
    env.run_for(8.0)
    assert got == ["v1"]


def test_concurrent_writers_converge():
    env, params, leaders, members, servers, client = build_store(workers=8)
    node2 = GroupNode(env, "store-client-2")
    contacts = tuple(r.node.address for r in leaders)
    client2 = PartitionedStoreClient(node2, node2.runtime.rpc, contacts, "svc")
    for i in range(5):
        client.put(f"shared-{i}", f"a{i}", lambda ok: None)
        client2.put(f"shared-{i}", f"b{i}", lambda ok: None)
    env.run_for(8.0)
    # whatever won, every replica of the owning leaf agrees
    for i in range(5):
        leaf_id = client.owner_leaf(f"shared-{i}")
        values = {
            s.local_value(f"shared-{i}")
            for s, m in zip(servers, members)
            if m.leaf_id == leaf_id and m.is_member
        }
        assert len(values) == 1
        assert values.pop() in (f"a{i}", f"b{i}")
