"""Integration tests: joins, leaves, failures, virtual synchrony."""

from dataclasses import dataclass

from repro.membership import FIFO, TOTAL, GroupNode, build_group
from repro.net import FixedLatency
from repro.proc import Environment


@dataclass
class App:
    category = "app"
    tag: str = ""


def make(n, seed=1, **kwargs):
    env = Environment(seed=seed, latency=FixedLatency(0.002))
    nodes, members = build_group(env, "g", n, **kwargs)
    logs = {m.me: [] for m in members}
    views = {m.me: [] for m in members}
    for m in members:
        m.add_delivery_listener(lambda e, me=m.me: logs[me].append(e.payload.tag))
        m.add_view_listener(lambda e, me=m.me: views[me].append(e))
    return env, nodes, members, logs, views


# -- joins ---------------------------------------------------------------------


def test_dynamic_join_installs_next_view():
    env, nodes, members, logs, views = make(3)
    joiner_node = GroupNode(env, "newbie")
    joiner = joiner_node.runtime.join_group("g", contact="g-1")  # non-coordinator
    env.run_for(3.0)
    assert joiner.is_member
    assert joiner.view.seq == 2
    assert joiner.view.members == ("g-0", "g-1", "g-2", "newbie")
    for m in members:
        assert m.view.seq == 2
        assert views[m.me][-1].joined == ("newbie",)


def test_joiner_receives_state_transfer():
    env, nodes, members, logs, views = make(2)
    members[0].state_provider = lambda: {"counter": 42}
    joiner_node = GroupNode(env, "newbie")
    received = []
    joiner = joiner_node.runtime.join_group("g", contact="g-0")
    joiner.state_receiver = received.append
    env.run_for(3.0)
    assert joiner.is_member
    assert received == [{"counter": 42}]


def test_multiple_joiners_eventually_all_members():
    env, nodes, members, logs, views = make(2)
    joiners = []
    for i in range(4):
        node = GroupNode(env, f"j{i}")
        joiners.append(node.runtime.join_group("g", contact="g-0"))
    env.run_for(10.0)
    assert all(j.is_member for j in joiners)
    final = members[0].view
    assert final.size == 6
    assert all(j.view == final for j in joiners)
    assert all(m.view == final for m in members)


def test_join_then_multicast_reaches_joiner():
    env, nodes, members, logs, views = make(2)
    node = GroupNode(env, "j0")
    joiner = node.runtime.join_group("g", contact="g-0")
    env.run_for(3.0)
    got = []
    joiner.add_delivery_listener(lambda e: got.append(e.payload.tag))
    members[1].multicast(App("hello"), FIFO)
    env.run_for(1.0)
    assert got == ["hello"]


# -- graceful leaves ---------------------------------------------------------------


def test_leave_removes_member():
    env, nodes, members, logs, views = make(3)
    members[2].leave()
    env.run_for(3.0)
    assert members[2].left
    assert not members[2].is_member
    assert members[0].view.members == ("g-0", "g-1")
    assert members[1].view.members == ("g-0", "g-1")
    assert views["g-0"][-1].departed == ("g-2",)


def test_coordinator_leave_promotes_next_rank():
    env, nodes, members, logs, views = make(3)
    members[0].leave()
    env.run_for(3.0)
    assert members[0].left
    assert members[1].view.members == ("g-1", "g-2")
    assert members[1].view.coordinator == "g-1"
    # the new coordinator can run further view changes
    members[2].leave()
    env.run_for(3.0)
    assert members[1].view.members == ("g-1",)


# -- failures -----------------------------------------------------------------------


def test_member_crash_triggers_view_change():
    env, nodes, members, logs, views = make(4)
    nodes[2].crash()
    env.run_for(5.0)
    survivors = [members[i] for i in (0, 1, 3)]
    for m in survivors:
        assert m.view.seq == 2
        assert m.view.members == ("g-0", "g-1", "g-3")
        assert views[m.me][-1].departed == ("g-2",)


def test_coordinator_crash_successor_takes_over():
    env, nodes, members, logs, views = make(4)
    nodes[0].crash()
    env.run_for(5.0)
    survivors = [members[i] for i in (1, 2, 3)]
    for m in survivors:
        assert m.view.members == ("g-1", "g-2", "g-3")
        assert m.view.coordinator == "g-1"


def test_simultaneous_double_crash():
    env, nodes, members, logs, views = make(5)
    nodes[1].crash()
    nodes[3].crash()
    env.run_for(5.0)
    survivors = [members[i] for i in (0, 2, 4)]
    for m in survivors:
        assert m.view.members == ("g-0", "g-2", "g-4")


def test_coordinator_and_successor_crash_together():
    env, nodes, members, logs, views = make(5)
    nodes[0].crash()
    nodes[1].crash()
    env.run_for(5.0)
    survivors = [members[i] for i in (2, 3, 4)]
    for m in survivors:
        assert m.view.members == ("g-2", "g-3", "g-4")
        assert m.view.coordinator == "g-2"


def test_cascading_crashes_during_view_changes():
    env, nodes, members, logs, views = make(6)
    env.scheduler.at(0.5, lambda: nodes[0].crash())
    env.scheduler.at(0.7, lambda: nodes[1].crash())
    env.scheduler.at(0.9, lambda: nodes[2].crash())
    env.run_for(10.0)
    survivors = [members[i] for i in (3, 4, 5)]
    for m in survivors:
        assert m.view.members == ("g-3", "g-4", "g-5")


def test_group_shrinks_to_singleton():
    env, nodes, members, logs, views = make(3)
    nodes[1].crash()
    nodes[2].crash()
    env.run_for(5.0)
    assert members[0].view.members == ("g-0",)
    members[0].multicast(App("alone"), TOTAL)
    env.run_for(1.0)
    assert logs["g-0"][-1] == "alone"


def test_crash_and_join_interleaved():
    env, nodes, members, logs, views = make(3)
    env.scheduler.at(0.3, lambda: nodes[1].crash())
    node = GroupNode(env, "j0")
    joiner = node.runtime.join_group("g", contact="g-0")
    env.run_for(8.0)
    assert joiner.is_member
    final = members[0].view
    assert set(final.members) == {"g-0", "g-2", "j0"}
    assert joiner.view == final


# -- virtual synchrony ---------------------------------------------------------------


def test_vsync_sender_crash_mid_multicast_all_or_none_among_survivors():
    """A sender crashes right after multicasting: every survivor must
    deliver the same message set before the next view."""
    for seed in range(6):
        env = Environment(seed=seed, latency=FixedLatency(0.002))
        nodes, members = build_group(env, "g", 5)
        logs = {m.me: [] for m in members}
        view2_marker = {}
        for m in members:
            m.add_delivery_listener(
                lambda e, me=m.me: logs[me].append(e.payload.tag)
            )
            m.add_view_listener(
                lambda e, me=m.me: view2_marker.setdefault(me, len(logs[me]))
                if e.view.seq == 2
                else None
            )
        members[1].multicast(App("doomed"), FIFO)
        nodes[1].crash()  # crash before any datagram is necessarily processed
        env.run_for(5.0)
        survivor_names = ["g-0", "g-2", "g-3", "g-4"]
        in_view1 = {
            name: set(logs[name][: view2_marker.get(name, len(logs[name]))])
            for name in survivor_names
        }
        # all-or-nothing: identical view-1 delivery sets at every survivor
        assert len({frozenset(s) for s in in_view1.values()}) == 1


def test_vsync_total_order_survives_sequencer_crash():
    for seed in range(6):
        env = Environment(seed=seed, latency=FixedLatency(0.002))
        nodes, members = build_group(env, "g", 5)
        logs = {m.me: [] for m in members}
        for m in members:
            m.add_delivery_listener(
                lambda e, me=m.me: logs[me].append(e.payload.tag)
            )
        for i, m in enumerate(members):
            m.multicast(App(f"t{i}"), TOTAL)
        nodes[0].crash()  # the sequencer dies with orders possibly unsent
        env.run_for(8.0)
        survivor_names = ["g-1", "g-2", "g-3", "g-4"]
        sequences = [tuple(logs[name]) for name in survivor_names]
        assert len(set(sequences)) == 1, f"seed={seed}: {sequences}"
        # everything the survivors sent must be delivered
        delivered = set(sequences[0])
        assert {"t1", "t2", "t3", "t4"} <= delivered


def test_messages_from_before_crash_not_lost():
    env, nodes, members, logs, views = make(4)
    members[0].multicast(App("pre"), FIFO)
    env.run_for(1.0)
    nodes[0].crash()
    env.run_for(5.0)
    for name in ("g-1", "g-2", "g-3"):
        assert "pre" in logs[name]


def test_view_change_counter_and_metrics():
    env, nodes, members, logs, views = make(3)
    nodes[2].crash()
    env.run_for(5.0)
    assert members[0].view_changes == 2  # bootstrap + failure view
    members[0].multicast(App("x"), FIFO)
    env.run_for(1.0)
    assert members[0].deliveries >= 1
