"""Tests for the conservative-window parallel engine (repro.sim.parallel).

Three obligations, per docs/simulator.md ("Parallel execution"):

* **Plan** — :class:`PartitionPlan` hands every partition to exactly one
  worker, in contiguous blocks, and rejects unusable shapes.
* **Determinism** — for a fixed partitioning, per-partition delivery
  digests are byte-identical at every worker count; the merged
  fingerprint is W-independent (the W=1 run is the serial reference of
  the windowed protocol).
* **Failure** — a worker that dies mid-window surfaces as a clean
  :class:`ParallelError` at the barrier; the hub never hangs.

The cross-process cases are marked ``parallel_smoke`` (they spawn real
OS processes) and sized to finish well inside their 60s barrier budget.
"""

from __future__ import annotations

import pytest

from repro.deploy.scenarios import StaticHierScenario
from repro.sim.parallel import (
    ParallelError,
    PartitionPlan,
    _window_targets,
    merged_fingerprint,
    run_parallel,
)

SMOKE_TIMEOUT = 60.0


def _scenario(**overrides):
    """Small but non-trivial: 4 leaves of 8, real heartbeat/gossip/
    multicast traffic, enough windows for cross-partition envelopes."""
    knobs = dict(
        workers=32,
        leaf_size=8,
        sim_s=0.6,
        settle=0.4,
        multicast_interval=0.25,
    )
    knobs.update(overrides)
    return StaticHierScenario(**knobs)


# -- partition plan -----------------------------------------------------------


def test_plan_blocks_are_contiguous_and_cover_every_partition():
    for partitions in (1, 3, 4, 7, 8):
        for workers in range(1, partitions + 1):
            plan = PartitionPlan(partitions, workers, {})
            seen = []
            for worker in range(workers):
                block = plan.block(worker)
                seen.extend(block)
                for pid in block:
                    assert plan.worker_of(pid) == worker
            assert seen == list(range(partitions))


def test_plan_rejects_bad_shapes():
    with pytest.raises(ParallelError):
        PartitionPlan(0, 1, {})
    with pytest.raises(ParallelError):
        PartitionPlan(2, 3, {})  # more workers than partitions
    with pytest.raises(ParallelError):
        PartitionPlan(2, 0, {})
    with pytest.raises(ParallelError):
        PartitionPlan(2, 1, {"a": 5})  # owner outside [0, partitions)


def test_merged_fingerprint_folds_in_partition_order():
    digests = {1: "b" * 8, 0: "a" * 8}
    assert merged_fingerprint(digests) == merged_fingerprint(
        {0: "a" * 8, 1: "b" * 8}
    )
    assert merged_fingerprint(digests) != merged_fingerprint(
        {0: "b" * 8, 1: "a" * 8}
    )


def test_window_targets_end_exactly_at_duration():
    assert _window_targets(1.0, 0.25) == [0.25, 0.5, 0.75, 1.0]
    assert _window_targets(0.6, 0.25) == [0.25, 0.5, 0.6]
    assert _window_targets(0.1, 0.25) == [0.1]
    with pytest.raises(ParallelError):
        _window_targets(0.0, 0.25)


def test_static_scenario_owners_never_split_a_leaf():
    scn = _scenario()
    for partitions in (1, 2, 3, 4):
        owners = scn.owners(partitions)
        assert set(owners.values()) <= set(range(partitions))
        for leaf in range(scn.leaf_count):
            block_owners = {owners[a] for a in scn.leaf_block(leaf)}
            assert len(block_owners) == 1, f"leaf {leaf} split"


# -- determinism across worker counts -----------------------------------------


@pytest.mark.parallel_smoke
def test_digests_are_byte_identical_across_worker_counts():
    scn = _scenario()
    outcomes = {
        workers: run_parallel(
            scn,
            partitions=4,
            workers=workers,
            barrier_timeout=SMOKE_TIMEOUT,
        )
        for workers in (1, 2)
    }
    reference = outcomes[1]
    assert reference.ok, reference.errors
    assert reference.envelopes_crossed > 0  # parity is not vacuous
    assert reference.deliveries > 0
    assert scn.check({}, reference.results) == []
    for workers, outcome in outcomes.items():
        assert outcome.ok, outcome.errors
        assert outcome.digests == reference.digests, (
            f"per-partition digests diverge at W={workers}"
        )
        assert outcome.fingerprint == reference.fingerprint
        assert outcome.events == reference.events
        assert outcome.deliveries == reference.deliveries
        assert outcome.envelopes_crossed == reference.envelopes_crossed


@pytest.mark.parallel_smoke
def test_narrower_lookahead_adds_windows_without_changing_results():
    scn = _scenario()
    derived = run_parallel(
        scn, partitions=2, workers=1, barrier_timeout=SMOKE_TIMEOUT
    )
    narrow = run_parallel(
        scn,
        partitions=2,
        workers=1,
        lookahead=scn.latency_delay / 2,  # half the derived floor
        barrier_timeout=SMOKE_TIMEOUT,
    )
    assert narrow.windows > derived.windows
    assert narrow.fingerprint == derived.fingerprint
    assert narrow.deliveries == derived.deliveries


# -- failure handling ---------------------------------------------------------


@pytest.mark.parallel_smoke
def test_worker_crash_surfaces_as_clean_error_not_a_hang():
    scn = _scenario()
    with pytest.raises(
        ParallelError, match="died|faulted|closed its pipe"
    ):
        run_parallel(
            scn,
            partitions=4,
            workers=2,
            barrier_timeout=SMOKE_TIMEOUT,
            _fault=(0, 1),  # worker 0 exits hard inside window 1
        )


class _BrokenScenario(StaticHierScenario):
    """Module-level (spawn pickles the scenario): raises mid-run."""

    def build(self, env, local):
        state = super().build(env, local)
        env.scheduler.at(0.1, self._boom)
        return state

    @staticmethod
    def _boom():
        raise RuntimeError("scenario exploded on purpose")


@pytest.mark.parallel_smoke
def test_worker_fault_carries_the_traceback():
    scn = _BrokenScenario(workers=8, leaf_size=4, sim_s=0.3, settle=0.2)
    with pytest.raises(ParallelError, match="scenario exploded on purpose"):
        run_parallel(
            scn, partitions=2, workers=2, barrier_timeout=SMOKE_TIMEOUT
        )
