"""Unit tests for the ordering engines and stability tracker (pure logic)."""

from hypothesis import given, strategies as st

from repro.broadcast import (
    CausalEngine,
    FifoEngine,
    StabilityTracker,
    TotalEngine,
    causal_sort_key,
)
from repro.membership.events import GroupData, SetOrder
from repro.membership.view import GroupView


VIEW = GroupView("g", 1, ("a", "b", "c"))


def data(sender, seq, ordering="fifo"):
    return GroupData(
        group="g",
        view_seq=1,
        sender=sender,
        sender_seq=seq,
        ordering=ordering,
        payload=f"{sender}{seq}",
    )


# -- fifo --------------------------------------------------------------------------


def test_fifo_delivers_immediately():
    engine = FifoEngine(VIEW, "a")
    m = data("b", 1)
    assert engine.on_receive(m) == [m]
    assert engine.held() == []


# -- causal -------------------------------------------------------------------------


def test_causal_engine_stamps_and_orders():
    a = CausalEngine(VIEW, "a")
    b = CausalEngine(VIEW, "b")
    m1 = data("a", 1, "causal")
    a.stamp_outgoing(m1)
    assert m1.stamp is not None
    # b delivers m1, then sends m2 causally after it
    assert b.on_receive(m1) == [m1]
    m2 = data("b", 1, "causal")
    b.stamp_outgoing(m2)
    # a third party receiving m2 before m1 must hold it
    c = CausalEngine(VIEW, "c")
    assert c.on_receive(m2) == []
    assert c.held() == [m2]
    assert c.on_receive(m1) == [m1, m2]
    assert c.held() == []


def test_causal_engine_ignores_own_message_on_receive():
    a = CausalEngine(VIEW, "a")
    m = data("a", 1, "causal")
    a.stamp_outgoing(m)
    assert a.on_receive(m) == []


def test_causal_sort_key_is_linear_extension():
    a = CausalEngine(VIEW, "a")
    m1 = data("a", 1, "causal")
    a.stamp_outgoing(m1)
    b = CausalEngine(VIEW, "b")
    b.on_receive(m1)
    m2 = data("b", 1, "causal")
    b.stamp_outgoing(m2)
    assert causal_sort_key(m1) < causal_sort_key(m2)


# -- total --------------------------------------------------------------------------


def test_total_engine_sequencer_assigns_in_order():
    seq_engine = TotalEngine(VIEW, "a")  # rank 0 is the sequencer
    assert seq_engine.is_sequencer
    m1, m2 = data("b", 1, "total"), data("c", 1, "total")
    order1 = seq_engine.assign_order(m1)
    order2 = seq_engine.assign_order(m2)
    assert order1.orders == [(1, ("b", 1))]
    assert order2.orders == [(2, ("c", 1))]


def test_total_engine_non_sequencer_does_not_assign():
    engine = TotalEngine(VIEW, "b")
    assert not engine.is_sequencer
    assert engine.assign_order(data("b", 1, "total")) is None


def test_total_engine_delivers_only_with_data_and_order():
    engine = TotalEngine(VIEW, "b")
    m1 = data("a", 1, "total")
    assert engine.on_receive(m1) == []  # no order yet
    so = SetOrder(group="g", view_seq=1, orders=[(1, ("a", 1))])
    assert engine.on_set_order(so) == [m1]


def test_total_engine_order_before_data():
    engine = TotalEngine(VIEW, "b")
    so = SetOrder(group="g", view_seq=1, orders=[(1, ("a", 1))])
    assert engine.on_set_order(so) == []
    m1 = data("a", 1, "total")
    assert engine.on_receive(m1) == [m1]


def test_total_engine_gap_blocks_later_deliveries():
    engine = TotalEngine(VIEW, "b")
    m1, m2 = data("a", 1, "total"), data("a", 2, "total")
    engine.on_receive(m1)
    engine.on_receive(m2)
    # order for seq 2 arrives first: must hold until seq 1 resolves
    assert engine.on_set_order(
        SetOrder(group="g", view_seq=1, orders=[(2, ("a", 2))])
    ) == []
    assert engine.on_set_order(
        SetOrder(group="g", view_seq=1, orders=[(1, ("a", 1))])
    ) == [m1, m2]


def test_total_engine_history_reported_after_delivery():
    engine = TotalEngine(VIEW, "b")
    m1 = data("a", 1, "total")
    engine.on_receive(m1)
    engine.on_set_order(SetOrder(group="g", view_seq=1, orders=[(1, ("a", 1))]))
    # delivered, but flush must still see the assignment
    assert engine.known_orders() == [(1, ("a", 1))]
    assert engine.next_global_seq == 2


def test_total_engine_starts_from_given_global_seq():
    engine = TotalEngine(VIEW, "a", next_global_seq=7)
    m = data("b", 1, "total")
    order = engine.assign_order(m)
    assert order.orders == [(7, ("b", 1))]


def test_total_engine_duplicate_data_and_order_idempotent():
    engine = TotalEngine(VIEW, "b")
    m1 = data("a", 1, "total")
    engine.on_receive(m1)
    so = SetOrder(group="g", view_seq=1, orders=[(1, ("a", 1))])
    assert engine.on_set_order(so) == [m1]
    assert engine.on_receive(data("a", 1, "total")) == []
    assert engine.on_set_order(so) == []


@given(st.permutations(list(range(1, 7))))
def test_property_total_delivery_follows_global_sequence(order_arrival):
    """Whatever order data and SetOrders arrive in, delivery follows the
    global sequence exactly."""
    engine = TotalEngine(VIEW, "b")
    messages = {i: data("a", i, "total") for i in range(1, 7)}
    delivered = []
    for i in order_arrival:
        delivered += engine.on_receive(messages[i])
        delivered += engine.on_set_order(
            SetOrder(group="g", view_seq=1, orders=[(i, ("a", i))])
        )
    assert [d.sender_seq for d in delivered] == [1, 2, 3, 4, 5, 6]


# -- stability ----------------------------------------------------------------------


def test_stability_tracks_watermarks_and_unstable():
    tracker = StabilityTracker("a", ("a", "b", "c"))
    m1, m2 = data("b", 1), data("b", 2)
    tracker.record(m1)
    tracker.record(m2)
    assert tracker.watermarks()["b"] == 2
    # nobody else has confirmed: everything unstable
    assert len(tracker.unstable()) == 2
    assert tracker.stable_floor("b") == 0


def test_stability_gossip_truncates():
    tracker = StabilityTracker("a", ("a", "b", "c"))
    tracker.record(data("b", 1))
    tracker.record(data("b", 2))
    tracker.on_gossip("b", {"b": 2})
    tracker.on_gossip("c", {"b": 1})
    # min across peers: a=2 (self), b=2, c=1 -> floor 1
    assert tracker.stable_floor("b") == 1
    unstable = tracker.unstable()
    assert [d.sender_seq for d in unstable] == [2]
    assert tracker.log_size() == 1


def test_stability_fully_stable_empties_log():
    tracker = StabilityTracker("a", ("a", "b"))
    tracker.record(data("b", 1))
    tracker.on_gossip("b", {"b": 1})
    assert tracker.unstable() == []
    assert tracker.log_size() == 0


def test_stability_ignores_departed_sender_and_stranger_gossip():
    tracker = StabilityTracker("a", ("a", "b"))
    tracker.record(data("z", 1))  # not a member
    assert tracker.unstable() == []
    tracker.on_gossip("zz", {"b": 9})  # stranger gossip ignored
    assert tracker.stable_floor("b") == 0


def test_stability_own_sends_recorded():
    tracker = StabilityTracker("a", ("a", "b"))
    tracker.record(data("a", 1))
    assert [d.sender for d in tracker.unstable()] == ["a"]
