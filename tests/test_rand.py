"""Unit tests for the deterministic random stream."""

from repro.sim import SimRandom


def test_same_seed_same_stream():
    a = SimRandom(42)
    b = SimRandom(42)
    assert [a.random() for _ in range(20)] == [b.random() for _ in range(20)]


def test_different_seeds_differ():
    a = SimRandom(1)
    b = SimRandom(2)
    assert [a.random() for _ in range(5)] != [b.random() for _ in range(5)]


def test_fork_is_deterministic():
    a = SimRandom(7).fork("net")
    b = SimRandom(7).fork("net")
    assert [a.random() for _ in range(10)] == [b.random() for _ in range(10)]


def test_fork_independent_of_parent_draws():
    a = SimRandom(7)
    b = SimRandom(7)
    for _ in range(100):
        b.random()  # parent consumption must not affect forks
    assert a.fork("x").random() == b.fork("x").random()


def test_forks_with_different_labels_differ():
    parent = SimRandom(7)
    x = parent.fork("x")
    y = parent.fork("y")
    assert [x.random() for _ in range(5)] != [y.random() for _ in range(5)]


def test_successive_forks_differ():
    parent = SimRandom(7)
    first = parent.fork("same")
    second = parent.fork("same")
    assert [first.random() for _ in range(5)] != [second.random() for _ in range(5)]


def test_chance_extremes():
    rng = SimRandom(0)
    assert not rng.chance(0.0)
    assert rng.chance(1.0)
    assert not rng.chance(-0.5)
    assert rng.chance(1.5)


def test_chance_rate_roughly_matches():
    rng = SimRandom(123)
    hits = sum(rng.chance(0.3) for _ in range(10000))
    assert 2700 < hits < 3300


def test_uniform_in_range():
    rng = SimRandom(5)
    for _ in range(100):
        x = rng.uniform(2.0, 3.0)
        assert 2.0 <= x <= 3.0


def test_sample_and_choice():
    rng = SimRandom(9)
    pool = list(range(50))
    picked = rng.sample(pool, 10)
    assert len(picked) == 10
    assert len(set(picked)) == 10
    assert all(p in pool for p in picked)
    assert rng.choice(pool) in pool


def test_shuffle_is_permutation():
    rng = SimRandom(11)
    items = list(range(30))
    shuffled = list(items)
    rng.shuffle(shuffled)
    assert sorted(shuffled) == items


def test_expovariate_positive():
    rng = SimRandom(13)
    assert all(rng.expovariate(2.0) > 0 for _ in range(100))
