"""Failover tests for the hierarchical service client path: leaf death,
router invalidation, redirect handling."""

from repro.core import LargeGroupParams, ServiceRouter, build_large_group, build_leader_group
from repro.membership import GroupNode
from repro.net import FixedLatency
from repro.proc import Environment
from repro.toolkit import HierarchicalClient, attach_hierarchical_service
from repro.workloads.common import WorkloadResult, build_service_cluster


def build(workers=10, seed=1, fanout=2, resiliency=2):
    env = Environment(seed=seed, latency=FixedLatency(0.002))
    params = LargeGroupParams(resiliency=resiliency, fanout=fanout)
    leaders = build_leader_group(env, "svc", params)
    contacts = tuple(r.node.address for r in leaders)
    members = build_large_group(env, "svc", workers, params, contacts)
    servers = attach_hierarchical_service(
        members, lambda payload, client: ("served", payload)
    )
    env.run_for(5.0 + 0.4 * workers)
    node = GroupNode(env, "hclient")
    router = ServiceRouter(
        node, "svc", rpc=node.runtime.rpc, leader_contacts=contacts
    )
    client = HierarchicalClient(node, router, timeout=0.5, max_retries=2)
    return env, params, leaders, members, client, router


def test_request_served_normally():
    env, params, leaders, members, client, router = build()
    got = []
    client.request("x", got.append)
    env.run_for(3.0)
    assert got == [("served", "x")]


def test_client_fails_over_when_assigned_leaf_dies():
    env, params, leaders, members, client, router = build(workers=10)
    got = []
    client.request("warm-up", got.append)
    env.run_for(3.0)
    assert got, "warm-up request must succeed"
    leaf_group, _contacts = router.cached_assignment
    leaf_id = leaf_group.split("::", 1)[1]
    victims = [m for m in members if m.leaf_id == leaf_id]
    assert victims
    for victim in victims:
        victim.node.crash()
    env.run_for(8.0)  # leader notices the lost leaf
    client.request("after-leaf-death", got.append)
    env.run_for(20.0)
    assert got[-1] == ("served", "after-leaf-death")
    # the router was re-pointed at a different leaf
    new_leaf_group, _ = router.cached_assignment
    assert new_leaf_group != leaf_group


def test_client_failure_callback_when_service_gone():
    env, params, leaders, members, client, router = build(workers=4)
    for m in members:
        m.node.crash()
    for r in leaders:
        r.node.crash()
    env.run_for(3.0)
    got, failed = [], []
    client.request("void", got.append, on_failure=lambda: failed.append(1))
    env.run_for(60.0)
    assert got == []
    assert failed == [1]


def test_requests_spread_over_reassignments():
    env, params, leaders, members, client, router = build(workers=12)
    got = []
    for i in range(5):
        client.request(i, got.append)
    env.run_for(5.0)
    assert sorted(r[1] for r in got) == list(range(5))
    assert client.requests_sent == 5


# -- workloads/common ---------------------------------------------------------------


def test_workload_result_delivery_ratio_defaults():
    result = WorkloadResult(name="x", duration=1.0)
    assert result.delivery_ratio == 1.0
    result.events_published = 4
    result.events_delivered = 8
    result.extra["expected_deliveries"] = 16
    assert result.delivery_ratio == 0.5


def test_service_cluster_accessors():
    cluster = build_service_cluster("svc", 6, resiliency=2, fanout=4, seed=9)
    assert len(cluster.leader_contacts) == 2
    assert cluster.manager_root.replica.is_manager
    assert len(cluster.live_members()) == 6
    cluster.members[0].node.crash()
    assert len(cluster.live_members()) == 5
