"""Whole-stack determinism: identical seeds must give bit-identical runs.

This is the property that makes the benchmark tables reproducible and
debugging tractable — any divergence between two same-seed runs is a bug
(hidden global state, iteration-order dependence, wall-clock leakage).
"""

from dataclasses import dataclass

from repro.failure import CrashInjector
from repro.membership import CAUSAL, FIFO, TOTAL, GroupNode, build_group
from repro.net import LanLatency
from repro.proc import Environment
from repro.sim import SimRandom


@dataclass
class Msg:
    category = "app"
    uid: str = ""


def run_mixed_scenario(seed: int):
    """Groups + churn + crashes + all orderings + lossy LAN."""
    env = Environment(
        seed=seed, latency=LanLatency(), drop_probability=0.05
    )
    nodes, members = build_group(env, "g", 5, gossip_interval=0.5)
    trace = []
    for m in members:
        m.add_delivery_listener(
            lambda e, me=m.me: trace.append(
                ("deliver", me, e.view_seq, e.payload.uid, e.ordering)
            )
        )
        m.add_view_listener(
            lambda e, me=m.me: trace.append(
                ("view", me, e.view.seq, e.view.members)
            )
        )
    rng = SimRandom(seed).fork("driver")
    t = 0.2
    uid = [0]
    for _ in range(20):
        t += rng.uniform(0.02, 0.3)
        index = rng.randint(0, 4)
        ordering = rng.choice([FIFO, CAUSAL, TOTAL])

        def cast(i=index, o=ordering):
            if members[i].is_member and nodes[i].alive:
                uid[0] += 1
                members[i].multicast(Msg(uid=f"u{uid[0]}"), o)

        env.scheduler.at(t, cast)
    injector = CrashInjector(env)
    injector.crash_at(t * 0.4, "g-1")
    joiner = GroupNode(env, "late")
    member = joiner.runtime.join_group("g", contact="g-0")
    member.add_delivery_listener(
        lambda e: trace.append(("deliver", "late", e.view_seq, e.payload.uid, e.ordering))
    )
    env.run_for(t + 15.0)
    stats = env.network.stats
    return (
        tuple(trace),
        stats.messages,
        stats.wire_packets,
        stats.bytes,
        stats.dropped,
        env.scheduler.events_processed,
        env.now,
    )


def test_same_seed_identical_trace():
    assert run_mixed_scenario(31) == run_mixed_scenario(31)


def test_different_seeds_diverge():
    assert run_mixed_scenario(31) != run_mixed_scenario(32)


def test_three_seeds_all_internally_reproducible():
    for seed in (7, 8, 9):
        assert run_mixed_scenario(seed) == run_mixed_scenario(seed)
