"""Unit and property tests for logical clocks."""

from hypothesis import given, strategies as st

import pytest

from repro.clocks import CausalBuffer, LamportClock, LamportStamp, VectorClock


# -- Lamport ------------------------------------------------------------------


def test_lamport_tick_increments():
    clock = LamportClock()
    assert clock.tick() == 1
    assert clock.tick() == 2


def test_lamport_observe_jumps_ahead():
    clock = LamportClock()
    clock.tick()
    assert clock.observe(10) == 11
    assert clock.observe(3) == 12  # older stamp still advances locally


def test_lamport_negative_start_rejected():
    with pytest.raises(ValueError):
        LamportClock(-1)


def test_lamport_stamp_total_order():
    assert LamportStamp(1, "a") < LamportStamp(2, "a")
    assert LamportStamp(1, "a") < LamportStamp(1, "b")
    assert not LamportStamp(2, "a") < LamportStamp(1, "b")
    assert LamportStamp(1, "a") == LamportStamp(1, "a")


# -- Vector clocks ---------------------------------------------------------------


def test_vector_zero_and_increment():
    vc = VectorClock.zero()
    assert vc.get("p") == 0
    vc2 = vc.incremented("p")
    assert vc2.get("p") == 1
    assert vc.get("p") == 0  # original unchanged


def test_vector_merge_is_componentwise_max():
    a = VectorClock({"p": 3, "q": 1})
    b = VectorClock({"q": 5, "r": 2})
    merged = a.merged(b)
    assert merged == VectorClock({"p": 3, "q": 5, "r": 2})


def test_vector_ordering():
    lo = VectorClock({"p": 1})
    hi = VectorClock({"p": 2, "q": 1})
    assert lo < hi
    assert lo <= hi
    assert not hi <= lo


def test_vector_concurrency():
    a = VectorClock({"p": 1})
    b = VectorClock({"q": 1})
    assert a.concurrent_with(b)
    assert not a.concurrent_with(a)


def test_vector_restricted_projects_sites():
    vc = VectorClock({"p": 1, "q": 2, "r": 3})
    assert vc.restricted(["p", "r"]) == VectorClock({"p": 1, "r": 3})


def test_vector_zero_counts_normalised_away():
    assert VectorClock({"p": 0}) == VectorClock.zero()
    assert hash(VectorClock({"p": 0})) == hash(VectorClock.zero())


sites = st.sampled_from(["p", "q", "r", "s"])
vectors = st.dictionaries(sites, st.integers(min_value=0, max_value=8)).map(VectorClock)


@given(vectors, vectors)
def test_property_merge_is_lub(a, b):
    m = a.merged(b)
    assert a <= m and b <= m
    for site in list(a.sites()) + list(b.sites()):
        assert m.get(site) == max(a.get(site), b.get(site))


@given(vectors, vectors, vectors)
def test_property_partial_order(a, b, c):
    assert a <= a
    if a <= b and b <= a:
        assert a == b
    if a <= b and b <= c:
        assert a <= c


@given(vectors, vectors)
def test_property_exactly_one_relation(a, b):
    relations = [a < b, b < a, a == b, a.concurrent_with(b)]
    assert sum(relations) == 1


# -- Causal buffer ---------------------------------------------------------------


def stamp_for(sender, history):
    """Build the BSS timestamp a sender attaches given its delivered clock."""
    return history.incremented(sender)


def test_causal_buffer_in_order_delivery():
    buf = CausalBuffer()
    s1 = VectorClock({"p": 1})
    s2 = VectorClock({"p": 2})
    assert buf.add("p", s1, "m1") == ["m1"]
    assert buf.add("p", s2, "m2") == ["m2"]


def test_causal_buffer_holds_out_of_order():
    buf = CausalBuffer()
    s1 = VectorClock({"p": 1})
    s2 = VectorClock({"p": 2})
    assert buf.add("p", s2, "m2") == []
    assert buf.held_count == 1
    assert buf.add("p", s1, "m1") == ["m1", "m2"]
    assert buf.held_count == 0


def test_causal_buffer_cross_sender_dependency():
    # q sends m2 after delivering p's m1: receiver must get m1 first.
    buf = CausalBuffer()
    m1_stamp = VectorClock({"p": 1})
    m2_stamp = VectorClock({"p": 1, "q": 1})
    assert buf.add("q", m2_stamp, "m2") == []
    assert buf.add("p", m1_stamp, "m1") == ["m1", "m2"]


def test_causal_buffer_concurrent_messages_deliver_in_any_arrival_order():
    buf = CausalBuffer()
    assert buf.add("p", VectorClock({"p": 1}), "mp") == ["mp"]
    assert buf.add("q", VectorClock({"q": 1}), "mq") == ["mq"]


def test_causal_buffer_reset_drops_departed_senders():
    buf = CausalBuffer()
    buf.add("p", VectorClock({"p": 2}), "future")  # held: needs p:1
    dropped = buf.reset_to(VectorClock({"q": 4}), sites=["q", "r"])
    assert dropped == ["future"]
    assert buf.delivered_clock == VectorClock({"q": 4})
    # delivery resumes relative to the reset clock
    assert buf.add("q", VectorClock({"q": 5}), "m") == ["m"]


@given(st.permutations(list(range(6))))
def test_property_single_sender_always_delivers_in_seq_order(order):
    stamps = [VectorClock({"p": i + 1}) for i in range(6)]
    buf = CausalBuffer()
    delivered = []
    for index in order:
        delivered.extend(buf.add("p", stamps[index], index))
    assert delivered == list(range(6))


@given(st.integers(min_value=0, max_value=2**32 - 1))
def test_property_random_interleaving_respects_causality(seed):
    """Simulate three gossiping senders; any delivery order the buffer
    produces must respect the happened-before relation of the stamps."""
    import random

    rng = random.Random(seed)
    clocks = {s: VectorClock.zero() for s in "pqr"}
    messages = []  # (sender, stamp, id)
    for i in range(12):
        sender = rng.choice("pqr")
        stamp = clocks[sender].incremented(sender)
        clocks[sender] = stamp
        # occasionally another site "delivers" this message immediately,
        # creating a causal chain across senders
        other = rng.choice("pqr")
        clocks[other] = clocks[other].merged(stamp)
        messages.append((sender, stamp, i))

    arrival = list(messages)
    rng.shuffle(arrival)
    buf = CausalBuffer()
    delivered = []
    for sender, stamp, mid in arrival:
        delivered.extend(buf.add(sender, stamp, (sender, stamp, mid)))
    assert len(delivered) == len(messages)
    for earlier_pos, (s1, st1, _) in enumerate(delivered):
        for s2, st2, _ in delivered[earlier_pos + 1 :]:
            assert not st2 < st1, "causal order violated"
