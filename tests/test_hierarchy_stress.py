"""Randomised churn stress for hierarchical groups: joins and crashes
interleaved at scale, checking leader/leaf consistency afterwards."""

from repro.core import (
    LargeGroupMember,
    LargeGroupParams,
    build_large_group,
    build_leader_group,
)
from repro.membership import GroupNode
from repro.net import FixedLatency
from repro.proc import Environment
from repro.sim import SimRandom


def run_churn(seed: int, initial: int = 24, extra_joins: int = 6, crashes: int = 6):
    rng = SimRandom(seed)
    env = Environment(seed=seed, latency=FixedLatency(0.002))
    params = LargeGroupParams(resiliency=2, fanout=4)
    leaders = build_leader_group(env, "svc", params)
    contacts = tuple(r.node.address for r in leaders)
    members = build_large_group(env, "svc", initial, params, contacts)
    env.run_for(5.0 + 0.3 * initial)

    # interleave late joins and crashes over ten simulated seconds
    t = env.now
    for j in range(extra_joins):
        node = GroupNode(env, f"late-{seed}-{j}")
        member = LargeGroupMember(node, "svc", contacts)
        members.append(member)
        env.scheduler.at(t + rng.uniform(0.0, 10.0), member.join)
    victims = rng.sample(range(initial), crashes)
    for index in victims:
        env.scheduler.at(
            t + rng.uniform(0.0, 10.0),
            lambda i=index: members[i].node.crash(),
        )
    env.run_for(40.0)
    return env, params, leaders, members


def check_hierarchy_invariants(seed, env, params, leaders, members):
    live_leaders = [r for r in leaders if r.node.alive]
    managers = [r for r in live_leaders if r.is_manager]
    assert len(managers) == 1, f"seed {seed}: managers={managers}"
    manager = managers[0]
    state = manager.state

    live = [m for m in members if m.node.alive]
    placed = [m for m in live if m.is_member]
    # every live worker ends up placed
    assert len(placed) == len(live), (
        f"seed {seed}: {len(live) - len(placed)} live workers unplaced"
    )

    # leader accounting matches reality
    actual = {}
    for m in placed:
        actual.setdefault(m.leaf_id, set()).add(m.me)
    assert set(actual) == set(state.leaves), (
        f"seed {seed}: leader leaves {set(state.leaves)} vs actual {set(actual)}"
    )
    for leaf_id, members_set in actual.items():
        assert state.leaf(leaf_id).size == len(members_set), (
            f"seed {seed}: size drift at {leaf_id}"
        )

    # each leaf's members agree on one view containing exactly them
    for leaf_id, members_set in actual.items():
        views = {
            tuple(m.leaf_member.view.members)
            for m in placed
            if m.leaf_id == leaf_id
        }
        assert len(views) == 1, f"seed {seed}: leaf {leaf_id} view split {views}"
        assert set(next(iter(views))) == members_set

    # leaf sizes within configured bounds (single remaining leaf may be
    # small; oversized leaves must not persist)
    for leaf in state.leaves.values():
        assert leaf.size <= params.leaf_split_threshold, (
            f"seed {seed}: leaf {leaf.leaf_id} oversized ({leaf.size})"
        )

    # replicated hierarchy state identical at all live leader replicas
    for replica in live_leaders:
        assert replica.state.leaves == state.leaves, (
            f"seed {seed}: leader replica divergence"
        )

    # branch tree invariants
    assert state.max_branch_children() <= params.fanout


def test_hierarchy_churn_across_seeds():
    for seed in range(6):
        env, params, leaders, members = run_churn(seed)
        check_hierarchy_invariants(seed, env, params, leaders, members)


def test_hierarchy_churn_with_manager_crash():
    for seed in (50, 51):
        env, params, leaders, members = run_churn(seed, crashes=4)
        # also kill the manager mid-flight and let a replica take over
        manager = next(r for r in leaders if r.is_manager)
        manager.node.crash()
        env.run_for(30.0)
        check_hierarchy_invariants(seed, env, params, leaders, members)


def test_hierarchy_whole_leaf_massacre():
    env, params, leaders, members = run_churn(77, crashes=0)
    manager = next(r for r in leaders if r.is_manager)
    # kill every member of two leaves simultaneously
    doomed_leaves = sorted(manager.state.leaves)[:2]
    for m in members:
        if m.leaf_id in doomed_leaves and m.node.alive:
            m.node.crash()
    env.run_for(30.0)
    check_hierarchy_invariants(77, env, params, leaders, members)
    manager = next(r for r in leaders if r.is_manager and r.node.alive)
    for leaf_id in doomed_leaves:
        assert leaf_id not in manager.state.leaves
