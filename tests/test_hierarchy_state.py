"""Unit + property tests for the hierarchy data model (pure logic)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import (
    AddLeaf,
    HierarchyError,
    HierarchyState,
    LargeGroupParams,
    ROOT_BRANCH,
    RemoveLeaf,
    UpdateLeaf,
)


def make(resiliency=3, fanout=4, **kw):
    params = LargeGroupParams(resiliency=resiliency, fanout=fanout, **kw)
    return HierarchyState("svc", params), params


def add(state, i, size=8):
    contacts = tuple(f"m{i}-{j}" for j in range(size))
    state.apply(AddLeaf(leaf_id=f"leaf-{i:03d}", size=size, contacts=contacts))


# -- params ------------------------------------------------------------------------


def test_params_defaults_follow_paper():
    p = LargeGroupParams(resiliency=3, fanout=8)
    assert p.leaf_min == 8  # max(resiliency, fanout)
    assert p.leaf_split_threshold == 16
    assert p.leader_group_size == 3


def test_params_overrides():
    p = LargeGroupParams(resiliency=5, fanout=2, min_leaf_size=4, leader_size=7)
    assert p.leaf_min == 4
    assert p.leader_group_size == 7


def test_params_validation():
    with pytest.raises(ValueError):
        LargeGroupParams(resiliency=0)
    with pytest.raises(ValueError):
        LargeGroupParams(fanout=0)
    with pytest.raises(ValueError):
        LargeGroupParams(split_factor=1.0)


# -- ops ---------------------------------------------------------------------------


def test_add_and_remove_leaf():
    state, _ = make()
    add(state, 0)
    assert state.total_size == 8
    assert state.leaf("leaf-000").size == 8
    state.apply(RemoveLeaf(leaf_id="leaf-000"))
    assert state.total_size == 0
    assert not state.leaves


def test_contacts_truncated_to_resiliency():
    state, params = make(resiliency=2)
    add(state, 0, size=8)
    assert len(state.leaf("leaf-000").contacts) == 2


def test_duplicate_add_rejected():
    state, _ = make()
    add(state, 0)
    with pytest.raises(HierarchyError):
        add(state, 0)


def test_update_unknown_leaf_rejected():
    state, _ = make()
    with pytest.raises(HierarchyError):
        state.apply(UpdateLeaf(leaf_id="nope", size=1, contacts=("a",)))


def test_update_changes_size_and_contacts():
    state, _ = make()
    add(state, 0)
    state.apply(UpdateLeaf(leaf_id="leaf-000", size=3, contacts=("x", "y", "z")))
    leaf = state.leaf("leaf-000")
    assert leaf.size == 3
    assert leaf.contacts == ("x", "y", "z")


# -- tree shape ---------------------------------------------------------------------


def test_small_leaf_count_hangs_off_root():
    state, _ = make(fanout=4)
    for i in range(4):
        add(state, i)
    assert len(state.branches) == 1
    assert state.depth() == 2
    assert set(state.branches[ROOT_BRANCH].children) == set(state.leaves)


def test_fanout_bound_always_respected():
    state, _ = make(fanout=4)
    for i in range(64):
        add(state, i)
    assert state.max_branch_children() <= 4
    assert state.depth() == 4  # 64 leaves = 16 branches = 4 under root


def test_depth_is_logarithmic():
    state, _ = make(fanout=8)
    for i in range(65):  # just past 8^2 -> depth 3 branches + leaf level
        add(state, i)
    assert state.depth() == 4


def test_parent_pointers_consistent_after_churn():
    state, _ = make(fanout=3)
    for i in range(30):
        add(state, i)
    for i in range(0, 30, 2):
        state.apply(RemoveLeaf(leaf_id=f"leaf-{i:03d}"))
    for leaf_id, leaf in state.leaves.items():
        assert leaf_id in state.branches[leaf.parent].children
    for branch_id, branch in state.branches.items():
        if branch.parent is not None:
            assert branch_id in state.branches[branch.parent].children
    assert set(state.leaf_ids_under(ROOT_BRANCH)) == set(state.leaves)


def test_replicas_agree_applying_same_ops():
    ops = [AddLeaf(f"l{i}", size=i + 1, contacts=(f"c{i}",)) for i in range(12)]
    ops += [RemoveLeaf("l3"), RemoveLeaf("l7")]
    ops += [UpdateLeaf("l5", size=99, contacts=("zz",))]
    a, _ = make(fanout=3)
    b, _ = make(fanout=3)
    for op in ops:
        a.apply(op)
        b.apply(op)
    assert a.branches == b.branches
    assert a.leaves == b.leaves


# -- policy queries ---------------------------------------------------------------


def test_smallest_leaf_deterministic_tiebreak():
    state, _ = make()
    add(state, 1, size=5)
    add(state, 0, size=5)
    assert state.smallest_leaf().leaf_id == "leaf-000"


def test_split_and_merge_detection():
    state, params = make(resiliency=2, fanout=4)  # leaf_min=4, split at >8
    add(state, 0, size=9)
    add(state, 1, size=3)
    add(state, 2, size=5)
    assert [l.leaf_id for l in state.leaves_needing_split()] == ["leaf-000"]
    assert [l.leaf_id for l in state.leaves_needing_merge()] == ["leaf-001"]


def test_single_leaf_never_merges():
    state, _ = make(resiliency=2, fanout=4)
    add(state, 0, size=1)
    assert state.leaves_needing_merge() == []


def test_merge_target_is_smallest_other():
    state, _ = make()
    add(state, 0, size=2)
    add(state, 1, size=9)
    add(state, 2, size=5)
    assert state.merge_target_for("leaf-000").leaf_id == "leaf-002"
    assert state.merge_target_for("leaf-000").leaf_id != "leaf-000"


def test_storage_entries_bounded_per_leaf():
    state, params = make(resiliency=3, fanout=8)
    for i in range(40):
        add(state, i, size=12)
    # each leaf contributes at most 2 + resiliency entries
    assert state.storage_entries() <= 40 * (2 + 3) + sum(
        1 + len(b.children) for b in state.branches.values()
    )


# -- properties --------------------------------------------------------------------


@settings(max_examples=60, deadline=None)
@given(
    st.lists(
        st.tuples(st.sampled_from(["add", "remove", "update"]), st.integers(0, 19)),
        max_size=60,
    ),
    st.integers(2, 6),
)
def test_property_tree_invariants_under_random_ops(ops, fanout):
    params = LargeGroupParams(resiliency=2, fanout=fanout)
    state = HierarchyState("svc", params)
    for kind, i in ops:
        leaf_id = f"leaf-{i:03d}"
        try:
            if kind == "add":
                state.apply(AddLeaf(leaf_id, size=i + 1, contacts=(f"c{i}",)))
            elif kind == "remove":
                state.apply(RemoveLeaf(leaf_id))
            else:
                state.apply(UpdateLeaf(leaf_id, size=i + 2, contacts=(f"d{i}",)))
        except HierarchyError:
            continue
        # invariants hold after every applied op
        assert state.max_branch_children() <= fanout
        assert set(state.leaf_ids_under(ROOT_BRANCH)) == set(state.leaves)
        for leaf_id2, leaf in state.leaves.items():
            assert leaf_id2 in state.branches[leaf.parent].children
        for branch_id, branch in state.branches.items():
            if branch.parent is not None:
                assert branch_id in state.branches[branch.parent].children


# -- reorg policy (load-adaptive trees) --------------------------------------------


from repro.core import ReorgPolicy  # noqa: E402


def make_load(fanout=3, resiliency=2, **kw):
    policy = ReorgPolicy(mode="load", **kw)
    params = LargeGroupParams(
        resiliency=resiliency, fanout=fanout, reorg=policy
    )
    return HierarchyState("svc", params), params


def test_reorg_policy_validation():
    with pytest.raises(ValueError):
        ReorgPolicy(mode="vibes")
    with pytest.raises(ValueError):
        ReorgPolicy(ewma_alpha=0.0)
    with pytest.raises(ValueError):
        ReorgPolicy(hot_delivery_rate=1.0, cold_delivery_rate=2.0)
    with pytest.raises(ValueError):
        ReorgPolicy(report_interval=0.0)
    with pytest.raises(ValueError):
        ReorgPolicy(max_depth=1)
    assert not ReorgPolicy().load_driven
    assert ReorgPolicy(mode="load").load_driven
    assert "reorg=load" in ReorgPolicy(mode="load").describe()


def test_default_policy_keeps_canonical_tree():
    """Size mode (the default) must keep deriving the canonical packed
    tree — byte-identical frozen behaviour — while load mode is free to
    diverge into an explicit shape."""
    canonical, _ = make(fanout=3)
    reference, _ = make(fanout=3)
    for i in range(10):
        add(canonical, i)
        add(reference, i)
    assert canonical.branches == reference.branches
    assert all(
        b.children == tuple(sorted(b.children))
        for b in canonical.branches.values()
    )


def test_explicit_tree_grows_depth_on_overflow():
    state, _ = make_load(fanout=3)
    for i in range(4):  # 4th attach overflows the fanout-3 root
        add(state, i)
    assert state.depth() == 3  # root -> two branches -> leaves
    assert state.max_branch_children() <= 3
    for i in range(4, 10):
        add(state, i)
    assert state.depth() >= 3
    assert state.max_branch_children() <= 3
    assert set(state.leaf_ids_under(ROOT_BRANCH)) == set(state.leaves)


def test_explicit_attach_under_named_branch():
    state, _ = make_load(fanout=3)
    for i in range(4):
        add(state, i)
    # Pick an interior branch and attach a new leaf directly under it.
    branch = state.leaf("leaf-000").parent
    assert branch != ROOT_BRANCH
    state.apply(
        AddLeaf(leaf_id="leaf-xxx", size=4, contacts=("cx",), under=branch)
    )
    assert state.leaf("leaf-xxx").parent == branch
    # Unknown attach points fall back to the root rather than failing.
    state.apply(
        AddLeaf(leaf_id="leaf-yyy", size=4, contacts=("cy",), under="gone")
    )
    assert "leaf-yyy" in state.leaves


def test_explicit_tree_collapses_on_removal():
    state, _ = make_load(fanout=3)
    for i in range(4):
        add(state, i)
    assert state.depth() == 3
    for i in range(1, 4):
        state.apply(RemoveLeaf(leaf_id=f"leaf-{i:03d}"))
    # One leaf left: every interior level collapsed back into the root.
    assert state.depth() == 2
    assert state.leaf("leaf-000").parent == ROOT_BRANCH
    assert len(state.branches) == 1


def test_update_leaf_folds_load_ewma():
    state, _ = make_load(ewma_alpha=0.5)
    add(state, 0)
    state.apply(
        UpdateLeaf("leaf-000", size=8, contacts=("c",), delivery_rate=40.0,
                   request_rate=10.0)
    )
    leaf = state.leaf("leaf-000")
    assert leaf.delivery_rate == pytest.approx(20.0)  # 0.5*40 + 0.5*0
    assert leaf.request_rate == pytest.approx(5.0)
    state.apply(
        UpdateLeaf("leaf-000", size=8, contacts=("c",), delivery_rate=40.0,
                   request_rate=10.0)
    )
    assert state.leaf("leaf-000").delivery_rate == pytest.approx(30.0)
    # Negative rates mean "no sample": the EWMA is left untouched.
    state.apply(UpdateLeaf("leaf-000", size=7, contacts=("c",)))
    assert state.leaf("leaf-000").delivery_rate == pytest.approx(30.0)


def test_hot_and_cold_queries():
    state, params = make_load(
        hot_delivery_rate=10.0, cold_delivery_rate=1.0,
        hot_request_rate=10.0, cold_request_rate=1.0, ewma_alpha=1.0,
    )
    for i in range(3):
        add(state, i, size=4)
    state.apply(
        UpdateLeaf("leaf-000", size=4, contacts=("c",), delivery_rate=50.0,
                   request_rate=0.0)
    )
    assert [l.leaf_id for l in state.hot_leaves(params.reorg)] == ["leaf-000"]
    cold = state.cold_sibling_pairs(params.reorg)
    # leaf-001/leaf-002 both have zero rates -> cold pair (if siblings).
    assert all(
        a.leaf_id != "leaf-000" and b.leaf_id != "leaf-000" for a, b in cold
    )
    for a, b in cold:
        assert state.leaf(a.leaf_id).parent == state.leaf(b.leaf_id).parent


def test_replicas_agree_in_load_mode():
    ops = [
        AddLeaf(f"l{i}", size=i + 1, contacts=(f"c{i}",), under="")
        for i in range(9)
    ]
    ops += [
        UpdateLeaf("l2", size=5, contacts=("x",), delivery_rate=33.0,
                   request_rate=3.0),
        RemoveLeaf("l4"),
        AddLeaf("l9", size=2, contacts=("c9",), under="svc/b1"),
        RemoveLeaf("l1"),
    ]
    a, _ = make_load(fanout=3)
    b, _ = make_load(fanout=3)
    for op in ops:
        a.apply(op)
        b.apply(op)
    assert a.branches == b.branches
    assert a.leaves == b.leaves
    assert a.depth() == b.depth()


def test_summary_reports_recursive_shape():
    """Regression for the old flat two-level _serve_info summary: the
    reply must carry true depth, per-level leaf counts, and per-leaf
    level/path."""
    state, _ = make_load(fanout=3)
    for i in range(7):
        add(state, i)
    info = state.summary()
    assert info["depth"] == state.depth() >= 3
    assert sum(info["levels"].values()) == len(state.leaves)
    for leaf_id, entry in info["leaves"].items():
        assert entry["level"] == state.level_of(leaf_id)
        assert entry["level"] == len(entry["path"]) + 1
        assert entry["path"][0] == ROOT_BRANCH
        assert entry["contacts"]
    # Subtree summaries restrict to one branch.
    branch = state.leaf("leaf-000").parent
    sub = state.summary(branch)
    assert set(sub["leaves"]) == set(state.leaf_ids_under(branch))
    assert sub["total_size"] <= info["total_size"]


def test_place_key_deterministic_and_total():
    state, _ = make_load(fanout=3)
    for i in range(9):
        add(state, i)
    other, _ = make_load(fanout=3)
    for i in range(9):
        add(other, i)
    for key in ("alpha", "beta", "orders/EU/17", "Ω"):
        leaf = state.place_key(key)
        assert leaf in state.leaves
        assert other.place_key(key) == leaf  # replica-agreement
        assert state.place_key(key) == leaf  # stable across calls
    assert make_load(fanout=3)[0].place_key("anything") is None


@settings(max_examples=60, deadline=None)
@given(
    st.lists(
        st.tuples(st.sampled_from(["add", "remove", "update"]), st.integers(0, 19)),
        max_size=60,
    ),
    st.integers(2, 6),
)
def test_property_explicit_tree_invariants(ops, fanout):
    """Load mode keeps the same structural invariants as the canonical
    packing: fanout bound, consistent parent pointers, full coverage."""
    params = LargeGroupParams(
        resiliency=2, fanout=fanout, reorg=ReorgPolicy(mode="load")
    )
    state = HierarchyState("svc", params)
    for kind, i in ops:
        leaf_id = f"leaf-{i:03d}"
        try:
            if kind == "add":
                state.apply(AddLeaf(leaf_id, size=i + 1, contacts=(f"c{i}",)))
            elif kind == "remove":
                state.apply(RemoveLeaf(leaf_id))
            else:
                state.apply(
                    UpdateLeaf(leaf_id, size=i + 2, contacts=(f"d{i}",),
                               delivery_rate=float(i), request_rate=1.0)
                )
        except HierarchyError:
            continue
        assert state.max_branch_children() <= fanout
        assert set(state.leaf_ids_under(ROOT_BRANCH)) == set(state.leaves)
        for leaf_id2, leaf in state.leaves.items():
            assert leaf_id2 in state.branches[leaf.parent].children
        seen = set()
        for branch_id, branch in state.branches.items():
            if branch.parent is not None:
                assert branch_id in state.branches[branch.parent].children
            for child in branch.children:
                assert child not in seen  # each node has one parent
                seen.add(child)
