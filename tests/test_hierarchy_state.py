"""Unit + property tests for the hierarchy data model (pure logic)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import (
    AddLeaf,
    HierarchyError,
    HierarchyState,
    LargeGroupParams,
    ROOT_BRANCH,
    RemoveLeaf,
    UpdateLeaf,
)


def make(resiliency=3, fanout=4, **kw):
    params = LargeGroupParams(resiliency=resiliency, fanout=fanout, **kw)
    return HierarchyState("svc", params), params


def add(state, i, size=8):
    contacts = tuple(f"m{i}-{j}" for j in range(size))
    state.apply(AddLeaf(leaf_id=f"leaf-{i:03d}", size=size, contacts=contacts))


# -- params ------------------------------------------------------------------------


def test_params_defaults_follow_paper():
    p = LargeGroupParams(resiliency=3, fanout=8)
    assert p.leaf_min == 8  # max(resiliency, fanout)
    assert p.leaf_split_threshold == 16
    assert p.leader_group_size == 3


def test_params_overrides():
    p = LargeGroupParams(resiliency=5, fanout=2, min_leaf_size=4, leader_size=7)
    assert p.leaf_min == 4
    assert p.leader_group_size == 7


def test_params_validation():
    with pytest.raises(ValueError):
        LargeGroupParams(resiliency=0)
    with pytest.raises(ValueError):
        LargeGroupParams(fanout=0)
    with pytest.raises(ValueError):
        LargeGroupParams(split_factor=1.0)


# -- ops ---------------------------------------------------------------------------


def test_add_and_remove_leaf():
    state, _ = make()
    add(state, 0)
    assert state.total_size == 8
    assert state.leaf("leaf-000").size == 8
    state.apply(RemoveLeaf(leaf_id="leaf-000"))
    assert state.total_size == 0
    assert not state.leaves


def test_contacts_truncated_to_resiliency():
    state, params = make(resiliency=2)
    add(state, 0, size=8)
    assert len(state.leaf("leaf-000").contacts) == 2


def test_duplicate_add_rejected():
    state, _ = make()
    add(state, 0)
    with pytest.raises(HierarchyError):
        add(state, 0)


def test_update_unknown_leaf_rejected():
    state, _ = make()
    with pytest.raises(HierarchyError):
        state.apply(UpdateLeaf(leaf_id="nope", size=1, contacts=("a",)))


def test_update_changes_size_and_contacts():
    state, _ = make()
    add(state, 0)
    state.apply(UpdateLeaf(leaf_id="leaf-000", size=3, contacts=("x", "y", "z")))
    leaf = state.leaf("leaf-000")
    assert leaf.size == 3
    assert leaf.contacts == ("x", "y", "z")


# -- tree shape ---------------------------------------------------------------------


def test_small_leaf_count_hangs_off_root():
    state, _ = make(fanout=4)
    for i in range(4):
        add(state, i)
    assert len(state.branches) == 1
    assert state.depth() == 2
    assert set(state.branches[ROOT_BRANCH].children) == set(state.leaves)


def test_fanout_bound_always_respected():
    state, _ = make(fanout=4)
    for i in range(64):
        add(state, i)
    assert state.max_branch_children() <= 4
    assert state.depth() == 4  # 64 leaves = 16 branches = 4 under root


def test_depth_is_logarithmic():
    state, _ = make(fanout=8)
    for i in range(65):  # just past 8^2 -> depth 3 branches + leaf level
        add(state, i)
    assert state.depth() == 4


def test_parent_pointers_consistent_after_churn():
    state, _ = make(fanout=3)
    for i in range(30):
        add(state, i)
    for i in range(0, 30, 2):
        state.apply(RemoveLeaf(leaf_id=f"leaf-{i:03d}"))
    for leaf_id, leaf in state.leaves.items():
        assert leaf_id in state.branches[leaf.parent].children
    for branch_id, branch in state.branches.items():
        if branch.parent is not None:
            assert branch_id in state.branches[branch.parent].children
    assert set(state.leaf_ids_under(ROOT_BRANCH)) == set(state.leaves)


def test_replicas_agree_applying_same_ops():
    ops = [AddLeaf(f"l{i}", size=i + 1, contacts=(f"c{i}",)) for i in range(12)]
    ops += [RemoveLeaf("l3"), RemoveLeaf("l7")]
    ops += [UpdateLeaf("l5", size=99, contacts=("zz",))]
    a, _ = make(fanout=3)
    b, _ = make(fanout=3)
    for op in ops:
        a.apply(op)
        b.apply(op)
    assert a.branches == b.branches
    assert a.leaves == b.leaves


# -- policy queries ---------------------------------------------------------------


def test_smallest_leaf_deterministic_tiebreak():
    state, _ = make()
    add(state, 1, size=5)
    add(state, 0, size=5)
    assert state.smallest_leaf().leaf_id == "leaf-000"


def test_split_and_merge_detection():
    state, params = make(resiliency=2, fanout=4)  # leaf_min=4, split at >8
    add(state, 0, size=9)
    add(state, 1, size=3)
    add(state, 2, size=5)
    assert [l.leaf_id for l in state.leaves_needing_split()] == ["leaf-000"]
    assert [l.leaf_id for l in state.leaves_needing_merge()] == ["leaf-001"]


def test_single_leaf_never_merges():
    state, _ = make(resiliency=2, fanout=4)
    add(state, 0, size=1)
    assert state.leaves_needing_merge() == []


def test_merge_target_is_smallest_other():
    state, _ = make()
    add(state, 0, size=2)
    add(state, 1, size=9)
    add(state, 2, size=5)
    assert state.merge_target_for("leaf-000").leaf_id == "leaf-002"
    assert state.merge_target_for("leaf-000").leaf_id != "leaf-000"


def test_storage_entries_bounded_per_leaf():
    state, params = make(resiliency=3, fanout=8)
    for i in range(40):
        add(state, i, size=12)
    # each leaf contributes at most 2 + resiliency entries
    assert state.storage_entries() <= 40 * (2 + 3) + sum(
        1 + len(b.children) for b in state.branches.values()
    )


# -- properties --------------------------------------------------------------------


@settings(max_examples=60, deadline=None)
@given(
    st.lists(
        st.tuples(st.sampled_from(["add", "remove", "update"]), st.integers(0, 19)),
        max_size=60,
    ),
    st.integers(2, 6),
)
def test_property_tree_invariants_under_random_ops(ops, fanout):
    params = LargeGroupParams(resiliency=2, fanout=fanout)
    state = HierarchyState("svc", params)
    for kind, i in ops:
        leaf_id = f"leaf-{i:03d}"
        try:
            if kind == "add":
                state.apply(AddLeaf(leaf_id, size=i + 1, contacts=(f"c{i}",)))
            elif kind == "remove":
                state.apply(RemoveLeaf(leaf_id))
            else:
                state.apply(UpdateLeaf(leaf_id, size=i + 2, contacts=(f"d{i}",)))
        except HierarchyError:
            continue
        # invariants hold after every applied op
        assert state.max_branch_children() <= fanout
        assert set(state.leaf_ids_under(ROOT_BRANCH)) == set(state.leaves)
        for leaf_id2, leaf in state.leaves.items():
            assert leaf_id2 in state.branches[leaf.parent].children
        for branch_id, branch in state.branches.items():
            if branch.parent is not None:
                assert branch_id in state.branches[branch.parent].children
