"""Smoke tests: every example script runs to completion and prints what
its docstring promises."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).parent.parent / "examples"


def run_example(name: str, timeout: int = 240) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert result.returncode == 0, (
        f"{name} failed:\n{result.stdout}\n{result.stderr}"
    )
    return result.stdout


def test_quickstart():
    out = run_example("quickstart.py")
    assert "three orderings" in out
    assert "installed view #2" in out
    assert "newcomer received application state" in out
    assert "delivery sequences observed: {(0, 1, 2)}" in out


def test_trading_room():
    out = run_example("trading_room.py")
    assert "leaf" in out
    assert "tick p99 latency" in out
    assert "leaf-lost" in out


def test_factory_control():
    out = run_example("factory_control.py")
    rows = {" ".join(line.split()) for line in out.splitlines()}
    assert "inventory replicas consistent yes" in rows
    assert "shift change applied atomically yes" in rows


def test_replicated_kv():
    out = run_example("replicated_kv.py")
    assert "users after two locked increments: 44" in out
    assert "transaction committed: True" in out


def test_partition_demo():
    out = run_example("partition_demo.py")
    assert "DIVERGED" in out
    assert "minority stalled" in out
    assert "no split brain" in out
    assert "coast to coast" not in out  # payload text should not leak
    assert "sfo.a" in out
