"""Availability through reorganisation: client requests keep succeeding
while leaves split (growth) and merge (shrinkage) under them — the §4
compatibility promise that applications keep working as the group scales.
"""

from repro.core import (
    LargeGroupMember,
    LargeGroupParams,
    ServiceRouter,
    build_large_group,
    build_leader_group,
)
from repro.membership import GroupNode
from repro.net import FixedLatency
from repro.proc import Environment
from repro.toolkit import HierarchicalClient, attach_hierarchical_service


def build(workers, seed=1):
    env = Environment(seed=seed, latency=FixedLatency(0.002))
    params = LargeGroupParams(resiliency=2, fanout=2)  # small leaves: churn
    leaders = build_leader_group(env, "svc", params)
    contacts = tuple(r.node.address for r in leaders)
    members = build_large_group(env, "svc", workers, params, contacts)
    servers = attach_hierarchical_service(
        members, lambda payload, client: ("ok", payload)
    )
    env.run_for(5.0 + 0.5 * workers)
    node = GroupNode(env, "steady-client")
    router = ServiceRouter(
        node, "svc", rpc=node.runtime.rpc, leader_contacts=contacts
    )
    client = HierarchicalClient(node, router, timeout=0.8, max_retries=4)
    return env, params, leaders, members, contacts, client


def steady_stream(env, client, start, duration, rate=4.0):
    got, failed = [], []
    count = int(duration * rate)
    for i in range(count):
        env.scheduler.at(
            start + (i + 1) / rate,
            lambda i=i: client.request(
                i,
                on_reply=lambda v: got.append(v),
                on_failure=lambda: failed.append(1),
            ),
        )
    return got, failed, count


def test_requests_survive_growth_splits():
    env, params, leaders, members, contacts, client = build(6)
    manager = next(r for r in leaders if r.is_manager)
    splits_before = sum(
        1 for e in manager.events if e[0] == "split-directed"
    )
    start = env.now
    got, failed, count = steady_stream(env, client, start, duration=12.0)
    # join 8 more workers during the stream: forces splits mid-traffic
    joiners = []
    for j in range(8):
        node = GroupNode(env, f"grow-{j}")
        member = LargeGroupMember(node, "svc", contacts)
        joiners.append(member)
        env.scheduler.at(start + 1.0 + j * 0.8, member.join)
    env.run_for(30.0)
    splits_after = sum(
        1 for e in manager.events if e[0] == "split-directed"
    )
    assert splits_after > splits_before, "growth must have caused a split"
    assert all(j.is_member for j in joiners)
    assert not failed
    assert len(got) == count


def test_requests_survive_shrinkage_merges():
    env, params, leaders, members, contacts, client = build(10, seed=3)
    manager = next(r for r in leaders if r.is_manager)
    start = env.now
    got, failed, count = steady_stream(env, client, start, duration=12.0)
    # crash workers one by one until leaves shrink below the floor
    victims = [m for m in members][:6]
    for index, victim in enumerate(victims):
        env.scheduler.at(start + 1.0 + index * 1.2, victim.node.crash)
    env.run_for(40.0)
    live = [m for m in members if m.node.alive]
    assert all(m.is_member for m in live)
    # the service stayed available throughout
    assert not failed
    assert len(got) == count
    # leader accounting consistent at the end
    actual = {}
    for m in live:
        actual.setdefault(m.leaf_id, set()).add(m.me)
    assert set(actual) == set(manager.state.leaves)
