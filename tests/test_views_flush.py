"""Unit tests for GroupView and the FlushController (pure protocol state)."""

import pytest
from hypothesis import given, strategies as st

from repro.membership import FlushController, GroupView, ViewId
from repro.membership.events import FlushOk, GroupData


# -- GroupView ---------------------------------------------------------------------


def make_view(*members, seq=1):
    return GroupView("g", seq, tuple(members))


def test_view_basics():
    view = make_view("a", "b", "c")
    assert view.size == 3
    assert view.coordinator == "a"
    assert view.rank_of("b") == 1
    assert view.contains("c")
    assert not view.contains("z")
    assert view.others("b") == ("a", "c")
    assert view.view_id == ViewId("g", 1)


def test_view_id_next():
    assert ViewId("g", 3).next() == ViewId("g", 4)


def test_view_rejects_duplicates_and_bad_seq():
    with pytest.raises(ValueError):
        make_view("a", "a")
    with pytest.raises(ValueError):
        GroupView("g", 0, ("a",))


def test_empty_view_has_no_coordinator():
    view = GroupView("g", 1, ())
    with pytest.raises(ValueError):
        view.coordinator


def test_successor_preserves_survivor_order():
    view = make_view("a", "b", "c", "d")
    nxt = view.successor(add=["e"], remove=["b"])
    assert nxt.members == ("a", "c", "d", "e")
    assert nxt.seq == 2


def test_successor_ranks_only_improve():
    view = make_view("a", "b", "c", "d")
    nxt = view.successor(remove=["a"])
    for member in nxt.members:
        assert nxt.rank_of(member) <= view.rank_of(member)


def test_successor_ignores_duplicate_add():
    view = make_view("a", "b")
    nxt = view.successor(add=["b", "c"])
    assert nxt.members == ("a", "b", "c")


def test_initial_view():
    view = GroupView.initial("g", ["x", "y"])
    assert view.seq == 1 and view.members == ("x", "y")


@given(
    st.lists(st.sampled_from("abcdef"), unique=True, min_size=1, max_size=6),
    st.lists(st.sampled_from("abcdef"), unique=True, max_size=3),
    st.lists(st.sampled_from("uvwxyz"), unique=True, max_size=3),
)
def test_property_successor_membership_algebra(members, removed, added):
    view = GroupView("g", 1, tuple(members))
    nxt = view.successor(add=added, remove=removed)
    expected = [m for m in members if m not in removed] + [
        a for a in added if a in removed or a not in members
    ]
    # ignore ordering of appended joiners beyond first occurrence semantics
    assert set(nxt.members) == set(m for m in members if m not in removed) | set(added)
    assert nxt.seq == 2
    assert len(set(nxt.members)) == len(nxt.members)


# -- FlushController ---------------------------------------------------------------


def data(sender, seq, ordering="fifo", view_seq=1):
    return GroupData(
        group="g",
        view_seq=view_seq,
        sender=sender,
        sender_seq=seq,
        ordering=ordering,
        payload=f"{sender}:{seq}",
    )


def ok(unstable=(), orders=(), next_seq=1, target=2):
    return FlushOk(
        group="g",
        target_seq=target,
        unstable=list(unstable),
        order_known=list(orders),
        next_global_seq=next_seq,
    )


def test_controller_completes_when_all_respond():
    fc = FlushController(2, ["a", "b"], ["a", "b"], [])
    assert not fc.complete
    fc.record_response("a", ok())
    assert fc.missing() == {"b"}
    fc.record_response("b", ok())
    assert fc.complete


def test_controller_ignores_wrong_target_and_stranger():
    fc = FlushController(2, ["a"], ["a"], [])
    fc.record_response("a", ok(target=99))
    assert not fc.complete
    fc.record_response("z", ok())
    assert not fc.complete


def test_drop_member_removes_everywhere():
    fc = FlushController(2, ["a", "b", "j"], ["a", "b"], ["j"])
    fc.record_response("b", ok())
    assert fc.drop_member("b")
    assert "b" not in fc.proposed
    assert "b" not in fc.targets
    assert "b" not in fc.responses
    assert fc.drop_member("j")
    assert fc.joiners == []
    assert not fc.drop_member("zz")


def test_merged_unstable_dedups_by_id():
    m1 = data("a", 1)
    m1_copy = data("a", 1)
    m2 = data("b", 1)
    fc = FlushController(2, ["a", "b"], ["a", "b"], [])
    fc.record_response("a", ok(unstable=[m1, m2]))
    fc.record_response("b", ok(unstable=[m1_copy]))
    merged = fc.merged_unstable()
    assert len(merged) == 2
    assert {(d.sender, d.sender_seq) for d in merged} == {("a", 1), ("b", 1)}


def test_merged_unstable_sorted_deterministically():
    fc = FlushController(2, ["a"], ["a"], [])
    fc.record_response(
        "a", ok(unstable=[data("b", 2), data("a", 1), data("b", 1)])
    )
    merged = fc.merged_unstable()
    assert [(d.sender, d.sender_seq) for d in merged] == [
        ("a", 1),
        ("b", 1),
        ("b", 2),
    ]


def test_merged_orders_keeps_known_assignments():
    total = data("a", 1, ordering="total")
    fc = FlushController(2, ["a", "b"], ["a", "b"], [])
    fc.record_response("a", ok(unstable=[total], orders=[(5, ("a", 1))], next_seq=6))
    fc.record_response("b", ok(unstable=[total]))
    orders, next_seq = fc.merged_orders()
    assert orders == [(5, ("a", 1))]
    assert next_seq == 6


def test_merged_orders_assigns_unordered_after_frontier():
    t1 = data("a", 1, ordering="total")
    t2 = data("b", 1, ordering="total")
    fc = FlushController(2, ["a"], ["a"], [])
    fc.record_response("a", ok(unstable=[t1, t2], orders=[(3, ("a", 1))], next_seq=4))
    orders, next_seq = fc.merged_orders()
    assert (3, ("a", 1)) in orders
    # t2 placed deterministically at the frontier
    assert (4, ("b", 1)) in orders
    assert next_seq == 5


def test_merged_orders_conflict_detected():
    from repro.broadcast import merge_flush_orders

    with pytest.raises(AssertionError):
        merge_flush_orders(
            [([(1, ("a", 1))], 2), ([(1, ("b", 9))], 2)],
            [],
        )
