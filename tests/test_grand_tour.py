"""Grand-tour integration test: every major subsystem composed in one
scenario, surviving churn.

A 24-worker hierarchical service runs simultaneously: per-symbol news
inside leaves, a partitioned replicated store, atomic whole-group
reconfiguration via treecast, and client request traffic — while workers
crash, a worker recovers and rejoins, and the leader manager fails over.
The test then checks every subsystem's invariants at once.
"""

from repro.core import (
    LargeGroupParams,
    TreecastRoot,
    attach_treecast,
    build_large_group,
    build_leader_group,
)
from repro.membership import GroupNode
from repro.net import FixedLatency
from repro.proc import Environment
from repro.toolkit import (
    News,
    PartitionedStoreClient,
    PartitionedStoreServer,
)


def test_grand_tour():
    env = Environment(seed=1234, latency=FixedLatency(0.002))
    params = LargeGroupParams(resiliency=2, fanout=4)
    leaders = build_leader_group(env, "svc", params)
    contacts = tuple(r.node.address for r in leaders)
    members = build_large_group(env, "svc", 24, params, contacts)
    participants = attach_treecast(members, resiliency=2)
    roots = [TreecastRoot(r) for r in leaders]
    stores = [PartitionedStoreServer(m) for m in members]
    env.run_for(15.0)

    # per-leaf news: attach to each worker's current leaf group
    news = {}
    heard = {}
    for m in members:
        service = News(m.leaf_member, claim_state_hooks=False)
        news[m.me] = service
        heard[m.me] = []
        service.subscribe(
            "status", lambda s, b, p, me=m.me: heard[me].append(b)
        )

    client_node = GroupNode(env, "tour-client")
    store_client = PartitionedStoreClient(
        client_node, client_node.runtime.rpc, contacts, "svc"
    )

    # phase 1: normal operation
    oks = []
    for i in range(10):
        store_client.put(f"key-{i}", i * i, oks.append)
    news[members[0].me].post("status", "leaf-0-hello")
    env.run_for(5.0)
    assert oks == [True] * 10

    # phase 2: churn — crash two workers and the manager, recover one
    members[5].node.crash()
    members[11].node.crash()
    old_manager = next(r for r in leaders if r.is_manager)
    old_manager.node.crash()
    env.run_for(10.0)
    members[5].node.recover()
    members[5].join()
    env.run_for(15.0)

    # phase 3: atomic reconfiguration through the new manager
    new_root = next(
        r for r in roots if r.replica.is_manager and r.node.alive
    )
    assert new_root.replica is not old_manager
    new_root.broadcast({"recipe": "tour"}, atomic=True)
    env.run_for(8.0)

    # phase 4: more store traffic after all the churn
    got = []
    for i in range(10):
        store_client.get(f"key-{i}", got.append)
    env.run_for(10.0)

    # ---- invariants across every subsystem ----
    live = [m for m in members if m.node.alive]
    assert all(m.is_member for m in live)
    assert members[5].is_member  # recovered and rejoined

    # leader state matches reality at the new manager
    manager = next(r for r in leaders if r.is_manager and r.node.alive)
    actual = {}
    for m in live:
        actual.setdefault(m.leaf_id, set()).add(m.me)
    assert set(actual) == set(manager.state.leaves)
    for leaf_id, who in actual.items():
        assert manager.state.leaf(leaf_id).size == len(who)

    # partitioned store: every key still readable (its leaf survived or
    # the data lived in a surviving leaf)
    survived = [v for v in got if v is not None]
    assert len(survived) >= 8  # at most the crashed workers' leaf lost data
    for i, value in enumerate(got):
        if value is not None:
            assert value == i * i

    # atomic reconfiguration reached every live participant exactly once
    for p in participants:
        if p.member.node.alive and p.member.is_member:
            payloads = [x for _b, x in p.delivered]
            assert payloads.count({"recipe": "tour"}) == 1

    # news stayed leaf-local: only leaf-0's original members heard it
    hearers = {me for me, msgs in heard.items() if "leaf-0-hello" in msgs}
    assert hearers  # someone heard it
    assert len(hearers) <= params.leaf_split_threshold
