"""Unit tests for failure detectors and crash injection."""

from repro.failure import CrashInjector, HeartbeatDetector, OracleDetector
from repro.net import FixedLatency
from repro.proc import Environment, Process


class Plain(Process):
    pass


def make_cluster(n, seed=1, drop=0.0):
    env = Environment(seed=seed, latency=FixedLatency(0.005), drop_probability=drop)
    return env, [Plain(env, f"p{i}") for i in range(n)]


def make_heartbeat_cluster(n, interval=0.1, suspect_after=0.5, seed=1):
    """Every node runs a detector daemon (so watched peers answer pings)."""
    env, procs = make_cluster(n, seed=seed)
    detectors = [
        HeartbeatDetector(p, interval=interval, suspect_after=suspect_after)
        for p in procs
    ]
    return env, procs, detectors


# -- heartbeat detector -----------------------------------------------------------


def test_heartbeat_detects_crash():
    env, procs, (detector, _) = make_heartbeat_cluster(2)
    suspects = []
    detector.add_listener(suspects.append)
    detector.watch("p1")
    env.run_for(1.0)
    assert suspects == []
    procs[1].crash()
    env.run_for(2.0)
    assert suspects == ["p1"]
    assert detector.is_suspected("p1")


def test_heartbeat_no_false_suspicion_on_clean_network():
    env, procs, (detector, _, __) = make_heartbeat_cluster(3)
    suspects = []
    detector.add_listener(suspects.append)
    detector.watch("p1")
    detector.watch("p2")
    env.run_for(10.0)
    assert suspects == []


def test_heartbeat_does_not_watch_self():
    env, procs = make_cluster(1)
    detector = HeartbeatDetector(procs[0], interval=0.1, suspect_after=0.5)
    detector.watch("p0")
    assert detector.watched() == set()


def test_heartbeat_unwatch_stops_suspicion():
    env, procs, (detector, _) = make_heartbeat_cluster(2)
    suspects = []
    detector.add_listener(suspects.append)
    detector.watch("p1")
    detector.unwatch("p1")
    procs[1].crash()
    env.run_for(3.0)
    assert suspects == []


def test_heartbeat_suspicion_fires_once():
    env, procs, (detector, _) = make_heartbeat_cluster(2, suspect_after=0.4)
    suspects = []
    detector.add_listener(suspects.append)
    detector.watch("p1")
    procs[1].crash()
    env.run_for(5.0)
    assert suspects == ["p1"]


def test_heartbeat_traffic_categorised():
    env, procs, (detector, _) = make_heartbeat_cluster(2)
    detector.watch("p1")
    env.run_for(1.0)
    assert env.network.stats.by_category["heartbeat"] > 0


# -- oracle detector ---------------------------------------------------------------


def test_oracle_detects_with_delay_and_no_traffic():
    env, procs = make_cluster(2)
    detector = OracleDetector(env, owner="p0", detection_delay=0.25)
    suspects = []
    detector.add_listener(lambda a: suspects.append((a, env.now)))
    detector.watch("p1")
    env.scheduler.at(1.0, lambda: procs[1].crash())
    env.run_for(2.0)
    assert suspects == [("p1", 1.25)]
    assert env.network.stats.messages == 0


def test_oracle_ignores_unwatched():
    env, procs = make_cluster(3)
    detector = OracleDetector(env, owner="p0")
    suspects = []
    detector.add_listener(suspects.append)
    detector.watch("p1")
    procs[2].crash()
    env.run_for(1.0)
    assert suspects == []


def test_oracle_detects_already_dead_peer_on_watch():
    env, procs = make_cluster(2)
    procs[1].crash()
    detector = OracleDetector(env, owner="p0", detection_delay=0.1)
    suspects = []
    detector.add_listener(suspects.append)
    detector.watch("p1")
    env.run_for(1.0)
    assert suspects == ["p1"]


def test_oracle_suppresses_report_if_owner_died():
    env, procs = make_cluster(2)
    detector = OracleDetector(env, owner="p0", detection_delay=0.5)
    suspects = []
    detector.add_listener(suspects.append)
    detector.watch("p1")
    procs[1].crash()
    procs[0].crash()  # owner dies before the detection delay elapses
    env.run_for(2.0)
    assert suspects == []


# -- crash injector ---------------------------------------------------------------


def test_scripted_crash_and_recovery():
    env, procs = make_cluster(1)
    injector = CrashInjector(env)
    injector.crash_at(1.0, "p0")
    injector.recover_at(2.0, "p0")
    env.run(until=1.5)
    assert not procs[0].alive
    env.run(until=2.5)
    assert procs[0].alive
    assert [(r.action, r.time) for r in injector.records] == [
        ("crash", 1.0),
        ("recover", 2.0),
    ]


def test_poisson_crashes_respect_horizon():
    env, procs = make_cluster(20)
    injector = CrashInjector(env)
    scheduled = injector.poisson_crashes(
        [p.address for p in procs], rate_per_process=0.5, horizon=10.0
    )
    env.run(until=20.0)
    crashed = sum(not p.alive for p in procs)
    assert crashed == len([r for r in injector.records if r.action == "crash"])
    assert all(r.time <= 10.0 for r in injector.records)
    assert scheduled >= crashed  # some scheduled crashes may hit dead procs


def test_poisson_zero_rate_schedules_nothing():
    env, procs = make_cluster(5)
    injector = CrashInjector(env)
    assert injector.poisson_crashes([p.address for p in procs], 0.0, 10.0) == 0


def test_poisson_with_recovery_brings_processes_back():
    env, procs = make_cluster(10)
    injector = CrashInjector(env)
    injector.poisson_crashes(
        [p.address for p in procs],
        rate_per_process=0.3,
        horizon=5.0,
        recover_after=1.0,
    )
    env.run(until=30.0)
    assert all(p.alive for p in procs)


def test_crash_fraction():
    env, procs = make_cluster(10)
    injector = CrashInjector(env)
    victims = injector.crash_fraction_at(1.0, [p.address for p in procs], 0.3)
    assert len(victims) == 3
    env.run(until=2.0)
    assert sum(not p.alive for p in procs) == 3


def test_injection_is_deterministic_per_seed():
    def run(seed):
        env, procs = make_cluster(10, seed=seed)
        injector = CrashInjector(env)
        injector.poisson_crashes([p.address for p in procs], 0.4, 5.0)
        env.run(until=10.0)
        return [(r.time, r.address) for r in injector.records]

    assert run(5) == run(5)
