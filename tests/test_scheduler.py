"""Unit tests for the discrete-event scheduler."""

import pytest
from hypothesis import given, strategies as st

from repro.sim import Scheduler, SimulationError


def test_starts_at_time_zero():
    assert Scheduler().now == 0.0


def test_events_fire_in_time_order():
    sched = Scheduler()
    fired = []
    sched.at(2.0, lambda: fired.append("b"))
    sched.at(1.0, lambda: fired.append("a"))
    sched.at(3.0, lambda: fired.append("c"))
    sched.run()
    assert fired == ["a", "b", "c"]


def test_equal_times_fire_fifo():
    sched = Scheduler()
    fired = []
    for name in "abcde":
        sched.at(1.0, lambda n=name: fired.append(n))
    sched.run()
    assert fired == list("abcde")


def test_now_advances_to_event_time():
    sched = Scheduler()
    seen = []
    sched.at(5.0, lambda: seen.append(sched.now))
    sched.run()
    assert seen == [5.0]
    assert sched.now == 5.0


def test_after_is_relative_to_now():
    sched = Scheduler()
    seen = []
    sched.at(1.0, lambda: sched.after(2.0, lambda: seen.append(sched.now)))
    sched.run()
    assert seen == [3.0]


def test_cannot_schedule_in_the_past():
    sched = Scheduler()
    sched.at(5.0, lambda: None)
    sched.run()
    with pytest.raises(SimulationError):
        sched.at(4.0, lambda: None)


def test_negative_delay_rejected():
    with pytest.raises(SimulationError):
        Scheduler().after(-0.1, lambda: None)


def test_cancelled_event_does_not_fire():
    sched = Scheduler()
    fired = []
    handle = sched.at(1.0, lambda: fired.append("x"))
    handle.cancel()
    sched.run()
    assert fired == []
    assert handle.cancelled


def test_cancel_after_firing_is_harmless():
    sched = Scheduler()
    handle = sched.at(1.0, lambda: None)
    sched.run()
    handle.cancel()  # must not raise


def test_run_until_is_inclusive():
    sched = Scheduler()
    fired = []
    sched.at(1.0, lambda: fired.append(1))
    sched.at(2.0, lambda: fired.append(2))
    sched.at(3.0, lambda: fired.append(3))
    sched.run(until=2.0)
    assert fired == [1, 2]
    assert sched.now == 2.0


def test_run_until_advances_clock_through_quiet_period():
    sched = Scheduler()
    sched.run(until=10.0)
    assert sched.now == 10.0


def test_run_for_runs_relative_window():
    sched = Scheduler()
    fired = []
    sched.at(1.0, lambda: fired.append(1))
    sched.at(5.0, lambda: fired.append(5))
    sched.run_for(2.0)
    assert fired == [1]
    assert sched.now == 2.0
    sched.run_for(3.0)
    assert fired == [1, 5]


def test_max_events_bound():
    sched = Scheduler()
    fired = []
    for i in range(10):
        sched.at(float(i), lambda i=i: fired.append(i))
    sched.run(max_events=4)
    assert fired == [0, 1, 2, 3]
    sched.run()
    assert fired == list(range(10))


def test_events_scheduled_during_run_fire_in_same_run():
    sched = Scheduler()
    fired = []

    def chain(n):
        fired.append(n)
        if n < 5:
            sched.after(1.0, lambda: chain(n + 1))

    sched.at(0.0, lambda: chain(0))
    sched.run()
    assert fired == [0, 1, 2, 3, 4, 5]


def test_step_fires_one_event():
    sched = Scheduler()
    fired = []
    sched.at(1.0, lambda: fired.append(1))
    sched.at(2.0, lambda: fired.append(2))
    assert sched.step()
    assert fired == [1]
    assert sched.step()
    assert not sched.step()


def test_events_processed_counter():
    sched = Scheduler()
    for i in range(7):
        sched.at(float(i), lambda: None)
    sched.run()
    assert sched.events_processed == 7


def test_pending_excludes_cancelled():
    sched = Scheduler()
    sched.at(1.0, lambda: None)
    handle = sched.at(2.0, lambda: None)
    handle.cancel()
    assert sched.pending == 1


def test_pending_is_a_counter_not_a_scan():
    sched = Scheduler()
    handles = [sched.at(float(i), lambda: None) for i in range(10)]
    assert sched.pending == 10
    for h in handles[:4]:
        h.cancel()
    assert sched.pending == 6
    sched.run(max_events=3)
    assert sched.pending == 3
    sched.run()
    assert sched.pending == 0


def test_cancel_after_fire_does_not_corrupt_pending():
    sched = Scheduler()
    handle = sched.at(1.0, lambda: None)
    sched.at(2.0, lambda: None)
    sched.run(until=1.0)
    assert sched.pending == 1
    handle.cancel()  # already fired: must not decrement live count
    handle.cancel()  # idempotent
    assert sched.pending == 1
    sched.run()
    assert sched.pending == 0


def test_double_cancel_counts_once():
    sched = Scheduler()
    handle = sched.at(1.0, lambda: None)
    sched.at(2.0, lambda: None)
    handle.cancel()
    handle.cancel()
    assert sched.pending == 1
    sched.run()
    assert sched.events_processed == 1


def test_run_max_events_resumption_preserves_order_and_clock():
    sched = Scheduler()
    fired = []
    for i in range(9):
        sched.at(float(i), lambda i=i: fired.append(i))
    sched.run(max_events=4)
    assert fired == [0, 1, 2, 3]
    assert sched.now == 3.0
    sched.run(max_events=2)
    assert fired == [0, 1, 2, 3, 4, 5]
    sched.run(until=100.0)
    assert fired == list(range(9))
    assert sched.now == 100.0


def test_run_for_through_quiet_periods_accumulates_time():
    sched = Scheduler()
    fired = []
    sched.at(7.5, lambda: fired.append(sched.now))
    for _ in range(5):
        sched.run_for(2.0)
    assert sched.now == 10.0
    assert fired == [7.5]


def test_at_call_passes_argument_without_closure():
    sched = Scheduler()
    seen = []
    sched.at_call(1.0, seen.append, "x")
    sched.after_call(2.0, seen.append, "y")
    handle = sched.at_call(3.0, seen.append, "z")
    handle.cancel()
    sched.run()
    assert seen == ["x", "y"]


def test_at_call_interleaves_fifo_with_at():
    sched = Scheduler()
    fired = []
    sched.at(1.0, lambda: fired.append("a"))
    sched.at_call(1.0, fired.append, "b")
    sched.at(1.0, lambda: fired.append("c"))
    sched.run()
    assert fired == ["a", "b", "c"]


def test_rearm_reuses_event_object():
    sched = Scheduler()
    fired = []
    handle = sched.at_call(1.0, fired.append, "tick")
    sched.run()
    assert fired == ["tick"]
    assert sched.rearm(handle, 2.0) is handle
    assert handle.time == 3.0
    assert not handle.cancelled
    sched.run()
    assert fired == ["tick", "tick"]
    assert sched.now == 3.0


def test_rearm_rejects_queued_event():
    sched = Scheduler()
    handle = sched.at(1.0, lambda: None)
    with pytest.raises(SimulationError):
        sched.rearm(handle, 1.0)
    sched.run()
    with pytest.raises(SimulationError):
        sched.rearm(handle, -0.5)


def test_rearm_after_cancel_reschedules():
    sched = Scheduler()
    fired = []
    handle = sched.at_call(1.0, fired.append, 1)
    sched.run()
    handle.cancel()  # cancel after fire
    sched.rearm(handle, 1.0)  # re-arming clears the cancelled flag
    assert not handle.cancelled
    sched.run()
    assert fired == [1, 1]


def test_heap_compaction_under_mass_cancellation():
    sched = Scheduler()
    fired = []
    keep = sched.at(10.0, lambda: fired.append("keep"))
    handles = [sched.at(5.0 + i * 1e-6, lambda: fired.append("bad")) for i in range(500)]
    assert sched.heap_size == 501
    for h in handles:
        h.cancel()
    # Lazily cancelled events must have been compacted away, not left to
    # linger until the clock reaches them.
    assert sched.heap_size < 500
    assert sched.pending == 1
    sched.run()
    assert fired == ["keep"]
    assert sched.events_processed == 1
    assert keep.time == 10.0


def test_compaction_preserves_order_and_survivors():
    sched = Scheduler()
    fired = []
    survivors = []
    doomed = []
    for i in range(300):
        t = 1.0 + (i % 7) * 0.1
        h = sched.at(t, lambda i=i: fired.append(i))
        (doomed if i % 3 else survivors).append((t, i, h))
    for _t, _i, h in doomed:
        h.cancel()
    sched.run()
    expected = [i for t, i, _h in sorted(survivors, key=lambda s: (s[0], s[1]))]
    assert fired == expected


def test_compaction_during_run_via_cancelling_event():
    sched = Scheduler()
    fired = []
    handles = [sched.at(5.0 + i * 1e-6, lambda: fired.append("bad")) for i in range(300)]

    def cancel_all():
        for h in handles:
            h.cancel()

    sched.at(1.0, cancel_all)
    sched.at(6.0, lambda: fired.append("end"))
    sched.run()
    assert fired == ["end"]


def test_cancelled_periodic_stream_does_not_leak_heap():
    sched = Scheduler()
    # Simulates heartbeat-timer churn: schedule+cancel in a rolling window.
    live = []
    count = [0]

    def tick():
        count[0] += 1
        if count[0] < 2000:
            live.append(sched.after(1.0, tick))
            handle = sched.after(5.0, lambda: None)
            handle.cancel()

    sched.after(1.0, tick)
    sched.run()
    assert count[0] == 2000
    # The heap must stay bounded, not accumulate 2000 cancelled events.
    assert sched.heap_size <= 200


def test_reentrant_run_rejected():
    sched = Scheduler()
    errors = []

    def reenter():
        try:
            sched.run()
        except SimulationError as exc:
            errors.append(exc)

    sched.at(1.0, reenter)
    sched.run()
    assert len(errors) == 1


@given(st.lists(st.floats(min_value=0, max_value=1e6), min_size=1, max_size=200))
def test_property_fire_order_is_sorted(times):
    sched = Scheduler()
    fired = []
    for t in times:
        sched.at(t, lambda t=t: fired.append(t))
    sched.run()
    assert fired == sorted(times)
    assert sched.events_processed == len(times)


@given(
    st.lists(
        st.tuples(st.floats(min_value=0, max_value=100), st.booleans()),
        min_size=1,
        max_size=100,
    )
)
def test_property_cancellation_removes_exactly_cancelled(events):
    sched = Scheduler()
    fired = []
    expected = []
    for index, (t, keep) in enumerate(events):
        handle = sched.at(t, lambda i=index: fired.append(i))
        if keep:
            expected.append((t, index))
        else:
            handle.cancel()
    sched.run()
    assert fired == [i for _, i in sorted(expected, key=lambda p: (p[0], p[1]))]
