"""Comms optimisations (docs/comms.md): wire-level packing, delayed and
piggybacked acks, gossip-on-data and heartbeat suppression.

The shared contract under test: logical message counts and delivery
semantics are unchanged — only wire packets, header bytes and standalone
control datagrams shrink.  Everything defaults off, which is the frozen
baseline behaviour (guarded separately by test_perf_determinism)."""

from dataclasses import dataclass

import pytest

from repro import trace
from repro.failure import HeartbeatDetector
from repro.membership import FIFO, build_group
from repro.metrics.sanitizer import install_sanitizer
from repro.net import FixedLatency, LanLatency, Network, UniformLatency
from repro.net.message import HEADER_BYTES
from repro.net.packer import CommsParams, Packer, default_pack_window
from repro.net.stats import NetworkStats
from repro.proc import Environment, Process
from repro.runtime import AsyncioRuntime
from repro.sim import Scheduler, SimRandom
from repro.transport import ReliableTransport


@dataclass
class App:
    category = "app"
    size_bytes = 32
    n: int = 0


@dataclass
class Ping:
    category = "ping"
    size_bytes = 32
    n: int = 0


def make_net(**kwargs):
    sched = Scheduler()
    net = Network(sched, SimRandom(1), **kwargs)
    return sched, net


def collector(inbox):
    return lambda env: inbox.append((env.payload, env.src, env.deliver_time))


# ------------------------------------------------------------ CommsParams


def test_comms_params_default_is_all_off():
    params = CommsParams()
    assert params.pack_window == 0.0
    assert params.delayed_ack == 0.0
    assert not params.gossip_piggyback
    assert not params.heartbeat_suppression


def test_comms_params_validation():
    with pytest.raises(ValueError):
        CommsParams(pack_window=-0.001)
    with pytest.raises(ValueError):
        CommsParams(delayed_ack=-0.001)


def test_enabled_tunes_pack_window_to_latency_floor():
    params = CommsParams.enabled(latency_floor=0.002)
    assert params.pack_window == pytest.approx(0.0005)
    assert params.delayed_ack > 0
    assert params.gossip_piggyback and params.heartbeat_suppression
    assert default_pack_window(0.0) == 0.0


def test_latency_models_expose_their_floor():
    assert FixedLatency(0.01).floor() == 0.01
    assert UniformLatency(0.001, 0.002).floor() == 0.001
    assert LanLatency(base=0.001, jitter=0.1).floor() == pytest.approx(0.0009)


# ----------------------------------------------------------- wire packing


def test_window_zero_means_no_packer():
    _sched, net = make_net()
    assert net.packer is None
    env = Environment(seed=1)  # default CommsParams: packing off
    assert env.network.packer is None
    assert env.comms == CommsParams()


def test_packer_rejects_nonpositive_window():
    sched = Scheduler()
    with pytest.raises(ValueError):
        Packer(0.0, sched, lambda src, dst, envs: None)


def test_packing_coalesces_same_destination():
    sched, net = make_net(pack_window=0.001, latency=FixedLatency(0.004))
    inbox = []
    net.register("a", collector([]))
    net.register("b", collector(inbox))
    net.send("a", "b", Ping(1))
    net.send("a", "b", Ping(2))
    assert net.packer.pending == 2  # held for the window, not yet on wire
    sched.run()
    # Two logical messages crossed in one wire packet, sharing a header.
    assert len(inbox) == 2
    assert [p.n for p, _, _ in inbox] == [1, 2]
    stats = net.stats.snapshot()
    assert stats.messages == 2
    assert stats.wire_packets == 1
    assert stats.packed_packets == 1
    assert stats.packed_messages == 2
    assert stats.bytes_saved == HEADER_BYTES
    assert stats.wire_bytes == stats.bytes - HEADER_BYTES
    # The batch shares a single latency draw: identical arrival instants,
    # offset by window + latency.
    assert inbox[0][2] == inbox[1][2] == pytest.approx(0.005)


def test_packing_keeps_destinations_separate():
    sched, net = make_net(pack_window=0.001)
    box_b, box_c = [], []
    net.register("a", collector([]))
    net.register("b", collector(box_b))
    net.register("c", collector(box_c))
    net.send("a", "b", Ping())
    net.send("a", "c", Ping())
    sched.run()
    assert len(box_b) == 1 and len(box_c) == 1
    # Different destinations cannot share a packet (or a header).
    assert net.stats.wire_packets == 2
    assert net.stats.packed_packets == 0
    assert net.stats.bytes_saved == 0


def test_lone_datagram_in_window_is_not_counted_as_packed():
    sched, net = make_net(pack_window=0.001)
    inbox = []
    net.register("a", collector([]))
    net.register("b", collector(inbox))
    net.send("a", "b", Ping())
    sched.run()
    assert len(inbox) == 1
    assert net.stats.wire_packets == 1
    assert net.stats.packed_packets == 0


def test_packing_respects_partitions():
    sched, net = make_net(pack_window=0.001)
    net.register("a", collector([]))
    net.register("b", collector([]))
    net.partitions.partition({"a"}, {"b"})
    net.send("a", "b", Ping())
    assert net.packer.pending == 0  # dropped before the queue
    sched.run()
    assert net.stats.dropped == 1
    assert net.stats.wire_packets == 0


def test_packing_under_loss_and_duplication():
    sched, net = make_net(
        pack_window=0.001, drop_probability=0.3, duplicate_probability=0.3
    )
    inbox = []
    net.register("a", collector([]))
    net.register("b", collector(inbox))
    for i in range(200):
        net.send("a", "b", Ping(i))
    sched.run()
    stats = net.stats.snapshot()
    assert stats.dropped > 0
    # Loss is per logical message (pre-queue), duplicates only add copies.
    assert len(inbox) >= 200 - stats.dropped
    assert len(inbox) == stats.received_by["b"]
    # Coalescing actually happened: fewer packets than surviving messages.
    assert stats.wire_packets < stats.messages - stats.dropped


def test_flush_all_drains_queues_immediately():
    sched, net = make_net(pack_window=0.5)
    inbox = []
    net.register("a", collector([]))
    net.register("b", collector(inbox))
    net.send("a", "b", Ping(1))
    net.send("a", "b", Ping(2))
    assert net.packer.pending == 2
    net.packer.flush_all()
    assert net.packer.pending == 0
    assert net.stats.wire_packets == 1
    sched.run()
    assert len(inbox) == 2


def test_packed_stats_appear_in_since_deltas():
    sched, net = make_net(pack_window=0.001)
    net.register("a", collector([]))
    net.register("b", collector([]))
    net.send("a", "b", Ping())
    net.send("a", "b", Ping())
    sched.run()
    before = net.stats.snapshot()
    net.send("a", "b", Ping())
    net.send("a", "b", Ping())
    net.send("a", "b", Ping())
    sched.run()
    delta = net.stats.since(before)
    assert delta.packed_packets == 1
    assert delta.packed_messages == 3
    assert delta.bytes_saved == 2 * HEADER_BYTES
    assert delta.wire_packets == 1


# ------------------------------------- trace invariant under packing (E1)


def test_packed_wire_packet_keeps_one_span_per_logical_message():
    env = Environment(
        seed=1,
        latency=FixedLatency(0.002),
        comms=CommsParams(pack_window=0.0005),
    )
    a = Process(env, "a")
    b = Process(env, "b")
    received = []
    b.on(Ping, lambda msg, sender: received.append(msg.n))
    sink = trace.attach(env)
    with sink.root("burst", process="a"):
        for i in range(3):
            a.send("b", Ping(i))
    env.run_for(1.0)
    assert received == [0, 1, 2]
    assert env.network.stats.wire_packets == 1  # one packed frame...
    spans = sink.collector.spans
    # ...but the tracer still sees every logical message individually, so
    # audits phrased in message counts (E1's 2n) are packing-agnostic.
    assert len([s for s in spans if s.kind == "send" and s.name == "ping"]) == 3
    assert len([s for s in spans if s.kind == "deliver" and s.name == "ping"]) == 3


# ----------------------------------------------------------- delayed acks


class Peer(Process):
    def __init__(self, env, address, rto=0.05):
        super().__init__(env, address)
        self.transport = ReliableTransport(self, rto=rto)
        self.inbox = []
        self.on(App, lambda m, s: self.inbox.append((m.n, s)))


def make_transport_pair(comms=None, seed=1):
    env = Environment(seed=seed, latency=FixedLatency(0.005), comms=comms)
    return env, Peer(env, "a"), Peer(env, "b")


def test_ack_delay_must_stay_below_rto():
    env = Environment(seed=1)
    p = Process(env, "p")
    with pytest.raises(ValueError):
        ReliableTransport(p, rto=0.05, ack_delay=0.05)
    q = Process(env, "q")
    with pytest.raises(ValueError):
        ReliableTransport(q, rto=0.05, ack_delay=-0.01)


def test_idle_reverse_path_falls_back_to_standalone_ack():
    env, a, b = make_transport_pair(comms=CommsParams(delayed_ack=0.01))
    a.transport.send("b", App(1))
    env.run_for(0.012)  # delivered, but the ack is still being held back
    assert b.inbox == [(1, "a")]
    assert env.network.stats.by_category["transport-ack"] == 0
    env.run_for(0.1)  # the idle fallback timer fired
    assert env.network.stats.by_category["transport-ack"] == 1
    assert a.transport.unacked_count("b") == 0


def test_ack_rides_on_reverse_segment():
    env, a, b = make_transport_pair(comms=CommsParams(delayed_ack=0.01))
    a.transport.send("b", App(1))
    # b answers within the ack window: its segment carries the ack.
    env.scheduler.after(0.01, lambda: b.transport.send("a", App(2)))
    env.run_for(0.5)
    assert b.inbox == [(1, "a")] and a.inbox == [(2, "b")]
    stats = env.network.stats
    assert stats.piggybacked["ack"] == 1
    # The only standalone ack is a's (nothing flowed a->b afterwards).
    assert stats.by_category["transport-ack"] == 1
    assert a.transport.unacked_count("b") == 0
    assert b.transport.unacked_count("a") == 0


def test_one_cumulative_ack_covers_a_burst():
    env, a, b = make_transport_pair(comms=CommsParams(delayed_ack=0.01))
    for i in range(10):
        a.transport.send("b", App(i))
    env.run_for(1.0)
    assert [n for n, _ in b.inbox] == list(range(10))
    stats = env.network.stats
    # All ten segments arrived inside one ack window: one standalone
    # cumulative ack absorbed the other nine.
    assert stats.by_category["transport-ack"] == 1
    assert stats.piggybacked["ack"] == 9
    assert a.transport.unacked_count("b") == 0


def test_delayed_acks_never_provoke_retransmission():
    env, a, b = make_transport_pair(comms=CommsParams(delayed_ack=0.01))
    for i in range(20):
        env.scheduler.after(0.02 * i, lambda i=i: a.transport.send("b", App(i)))
    env.run_for(3.0)
    assert [n for n, _ in b.inbox] == list(range(20))
    # Clean network + ack_delay << rto: every segment crossed exactly once.
    assert env.network.stats.by_category["app"] == 20


def test_pending_ack_dies_with_a_crashed_receiver():
    env, a, b = make_transport_pair(comms=CommsParams(delayed_ack=0.01))
    a.transport.send("b", App(1))
    env.scheduler.after(0.007, b.crash)  # after delivery, before the ack
    env.run_for(0.2)
    assert b.inbox == [(1, "a")]
    # The armed fallback timer fired into a dead process: no ack escaped.
    assert env.network.stats.by_category["transport-ack"] == 0


# ---------------------------------------------------- heartbeat suppression


class Plain(Process):
    pass


def make_watch_pair(suppression=None, comms=None, seed=1):
    env = Environment(seed=seed, latency=FixedLatency(0.005), comms=comms)
    a, b = Plain(env, "a"), Plain(env, "b")
    b.on(App, lambda m, s: None)
    detectors = [
        HeartbeatDetector(
            p, interval=0.2, suspect_after=1.0, suppression=suppression
        )
        for p in (a, b)
    ]
    detectors[0].watch("b")
    detectors[1].watch("a")
    return env, a, b, detectors


def test_ambient_traffic_suppresses_pings_without_false_suspicion():
    env, a, b, (det_a, det_b) = make_watch_pair(suppression=True)
    suspects_a, suspects_b = [], []
    det_a.add_listener(suspects_a.append)
    det_b.add_listener(suspects_b.append)
    # One-way flood: a talks, b only listens.  b's pings to a are
    # redundant (a's traffic proves it alive); a still pings the silent b
    # whenever its evidence goes stale, and b's acks keep it trusted.
    a.every(0.05, lambda: a.send("b", App()))
    env.run_for(5.0)
    assert suspects_a == [] and suspects_b == []
    stats = env.network.stats
    assert stats.heartbeats_suppressed > 0
    # The receive-only side still proved liveness with real heartbeats.
    assert stats.by_category["heartbeat"] > 0


def test_suppression_follows_environment_comms_params():
    env, a, b, (det_a, det_b) = make_watch_pair(
        comms=CommsParams(heartbeat_suppression=True)
    )
    a.every(0.05, lambda: a.send("b", App()))
    env.run_for(2.0)
    assert env.network.stats.heartbeats_suppressed > 0


def test_suppression_does_not_delay_crash_detection():
    env, a, b, (det_a, det_b) = make_watch_pair(suppression=True)
    suspects_a = []
    det_a.add_listener(suspects_a.append)
    a.every(0.05, lambda: a.send("b", App()))
    env.scheduler.after(2.0, b.crash)
    env.run_for(2.0)
    assert suspects_a == []
    # A crashed peer stops *all* traffic at once, so suppression adds
    # nothing to detection time: suspect_after plus one interval of slack.
    env.run_for(1.4)
    assert suspects_a == ["b"]


def test_suppression_off_is_the_default_and_pings_every_interval():
    env, a, b, (det_a, det_b) = make_watch_pair()
    a.every(0.05, lambda: a.send("b", App()))
    env.run_for(2.0)
    assert env.network.stats.heartbeats_suppressed == 0
    assert env.network.stats.by_category["heartbeat"] > 10


# ------------------------------------------------------- gossip piggyback


def run_gossiping_group(comms, seed=5):
    env = Environment(seed=seed, latency=FixedLatency(0.002), comms=comms)
    _nodes, members = build_group(env, "g", 4, gossip_interval=0.4)
    sanitizer = install_sanitizer(members)
    logs = {m.me: [] for m in members}
    for m in members:
        m.add_delivery_listener(
            lambda e, me=m.me: logs[me].append((e.sender, e.payload))
        )
    # Every member keeps sending, so watermarks always have a ride.
    def burst(k):
        for j, m in enumerate(members):
            m.multicast(f"m{k}-{j}", FIFO)
    for k in range(16):
        env.scheduler.after(0.1 + 0.15 * k, lambda k=k: burst(k))
    env.run_for(3.0)
    counters = sanitizer.check(at_quiescence=True)
    per_sender = {
        me: {
            sender: [p for s, p in log if s == sender]
            for sender in {s for s, _ in log}
        }
        for me, log in logs.items()
    }
    return env.network.stats.snapshot(), per_sender, counters


def test_gossip_rides_on_group_data():
    off, off_seqs, off_counters = run_gossiping_group(None)
    on, on_seqs, on_counters = run_gossiping_group(
        CommsParams(gossip_piggyback=True)
    )
    assert off_counters["violations"] == 0 and on_counters["violations"] == 0
    # Same logical deliveries, per sender, at every member.
    assert on_seqs == off_seqs
    # Watermarks rode on data; the standalone all-to-all round shrank.
    assert on.piggybacked["gossip"] > 0
    assert on.by_category["group-stability"] < off.by_category["group-stability"]


def test_idle_group_falls_back_to_standalone_gossip():
    env = Environment(
        seed=5,
        latency=FixedLatency(0.002),
        comms=CommsParams(gossip_piggyback=True),
    )
    _nodes, members = build_group(env, "g", 4, gossip_interval=0.4)
    members[0].multicast("only", FIFO)
    env.run_for(2.5)
    # With no data to ride on, stability still propagates periodically.
    assert env.network.stats.by_category["group-stability"] > 0


# ------------------------------------------- stats breakdown & accounting


def test_bytes_by_category_breakdown():
    sched, net = make_net()
    net.register("a", collector([]))
    net.register("b", collector([]))
    net.send("a", "b", Ping())
    net.send("a", "b", Ping())
    net.send("a", "b", App())
    sched.run()
    stats = net.stats.snapshot()
    assert stats.bytes_by_category["ping"] == 2 * (32 + HEADER_BYTES)
    assert stats.bytes_by_category["app"] == 32 + HEADER_BYTES
    assert sum(stats.bytes_by_category.values()) == stats.bytes
    # No packing: every byte counted was a wire byte.
    assert stats.wire_bytes == stats.bytes


def test_piggyback_ratio_accounting():
    stats = NetworkStats()
    # One standalone ping survived; one ping (and its ack) was suppressed.
    stats.record_send("a", "heartbeat", 80)
    stats.record_suppressed_heartbeat()
    # Three acks rode on segments for every standalone ack sent.
    stats.record_send("a", "transport-ack", 80)
    stats.record_piggyback("ack", 3)
    ratios = stats.piggyback_ratio()
    assert ratios["heartbeat"] == pytest.approx(2 / 3)
    assert ratios["ack"] == pytest.approx(3 / 4)
    assert "gossip" not in ratios  # no gossip traffic at all


# ---------------------------------------- hardware-multicast wire counting


def test_hardware_multicast_fully_partitioned_never_hits_the_wire():
    sched, net = make_net(hardware_multicast=True)
    net.register("a", collector([]))
    for name in "bcd":
        net.register(name, collector([]))
    net.partitions.partition({"a"}, {"b", "c", "d"})
    net.multicast("a", ["b", "c", "d"], Ping())
    sched.run()
    assert net.stats.messages == 3  # logical sends still counted...
    assert net.stats.dropped == 3
    assert net.stats.wire_packets == 0  # ...but no packet ever left a


def test_hardware_multicast_partial_partition_costs_one_packet():
    sched, net = make_net(hardware_multicast=True)
    box_b = []
    net.register("a", collector([]))
    net.register("b", collector(box_b))
    net.register("c", collector([]))
    net.register("d", collector([]))
    net.partitions.partition({"a", "b"}, {"c", "d"})
    net.multicast("a", ["b", "c", "d"], Ping())
    sched.run()
    assert len(box_b) == 1
    assert net.stats.dropped == 2
    assert net.stats.wire_packets == 1


# ----------------------------------- end-to-end: logical identity, parity


def run_flat_group(comms, seed=7, runtime=None):
    env = Environment(
        latency=FixedLatency(0.002),
        comms=comms,
        **({"runtime": runtime} if runtime is not None else {"seed": seed}),
    )
    _nodes, members = build_group(env, "g", 4)
    sanitizer = install_sanitizer(members)
    logs = {m.me: [] for m in members}
    for m in members:
        m.add_delivery_listener(
            lambda e, me=m.me: logs[me].append((e.sender, e.payload))
        )
    traffic = [
        (0.10, members[0], ("f0", "f1", "f2")),
        (0.15, members[1], ("c0", "c1")),
        (0.20, members[2], ("t0", "t1")),
        (0.25, members[3], ("g0", "g1")),
    ]
    for start, member, payloads in traffic:
        def burst(member=member, payloads=payloads):
            for payload in payloads:
                member.multicast(payload, FIFO)
        env.scheduler.after(start, burst)
    env.run_for(2.0)
    counters = sanitizer.check(at_quiescence=True)
    per_sender = {
        me: {
            sender: [p for s, p in log if s == sender]
            for sender in {s for s, _ in log}
        }
        for me, log in logs.items()
    }
    return env.network.stats.snapshot(), per_sender, counters


def test_packing_and_delayed_acks_preserve_logical_traffic():
    comms_on = CommsParams(
        pack_window=default_pack_window(0.002), delayed_ack=0.01
    )
    off, off_seqs, off_counters = run_flat_group(None)
    on, on_seqs, on_counters = run_flat_group(comms_on)
    assert off_counters["violations"] == 0 and on_counters["violations"] == 0
    assert on_seqs == off_seqs
    # Per-category logical identity: fold the acks that rode on segments
    # back into the ack category and the two runs must match exactly.
    logical = dict(on.by_category)
    logical["transport-ack"] = (
        logical.get("transport-ack", 0) + on.piggybacked.get("ack", 0)
    )
    assert logical == dict(off.by_category)
    # And the whole point: the same protocol run cost fewer wire packets.
    assert on.wire_packets < off.wire_packets
    assert on.wire_bytes < off.wire_bytes
    assert on.packed_packets > 0


def test_flat_group_sanitizer_clean_with_all_comms_on_asyncio():
    runtime = AsyncioRuntime(seed=7, time_scale=0.05)
    try:
        stats, seqs, counters = run_flat_group(
            CommsParams.enabled(latency_floor=0.002), runtime=runtime
        )
    finally:
        runtime.close()
    assert counters["violations"] == 0
    assert counters["deliveries_checked"] > 0
    # Every member saw every burst, in sender order, despite packing.
    for seqs_at in seqs.values():
        assert seqs_at["g-0"] == ["f0", "f1", "f2"]
        assert seqs_at["g-3"] == ["g0", "g1"]
    assert stats.packed_packets > 0
