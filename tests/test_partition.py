"""Unit tests for the partition manager."""

import pytest

from repro.net import PartitionManager


def test_fully_connected_by_default():
    pm = PartitionManager()
    assert pm.reachable("a", "b")
    assert not pm.partitioned


def test_islands_separate_traffic():
    pm = PartitionManager()
    pm.partition({"a", "b"}, {"c", "d"})
    assert pm.reachable("a", "b")
    assert pm.reachable("c", "d")
    assert not pm.reachable("a", "c")
    assert not pm.reachable("d", "b")
    assert pm.partitioned


def test_unlisted_addresses_form_implicit_island():
    pm = PartitionManager()
    pm.partition({"a"})
    assert pm.reachable("x", "y")  # both implicit
    assert not pm.reachable("a", "x")
    assert pm.island_index("a") == 0
    assert pm.island_index("x") is None


def test_address_in_two_islands_rejected():
    pm = PartitionManager()
    with pytest.raises(ValueError):
        pm.partition({"a", "b"}, {"b", "c"})


def test_heal_restores_connectivity():
    pm = PartitionManager()
    pm.partition({"a"}, {"b"})
    pm.heal()
    assert pm.reachable("a", "b")
    assert not pm.partitioned


def test_repartition_replaces_islands():
    pm = PartitionManager()
    pm.partition({"a"}, {"b"})
    pm.partition({"a", "b"}, {"c"})
    assert pm.reachable("a", "b")
    assert not pm.reachable("a", "c")


def test_cut_link_is_directional():
    pm = PartitionManager()
    pm.cut_link("a", "b")
    assert not pm.reachable("a", "b")
    assert pm.reachable("b", "a")
    pm.restore_link("a", "b")
    assert pm.reachable("a", "b")


def test_cut_links_survive_heal():
    pm = PartitionManager()
    pm.partition({"a"}, {"b"})
    pm.cut_link("a", "c")
    pm.heal()
    assert not pm.reachable("a", "c")
    pm.restore_all_links()
    assert pm.reachable("a", "c")


def test_islands_listing():
    pm = PartitionManager()
    pm.partition({"a", "b"}, {"c"})
    islands = pm.islands()
    assert islands == [{"a", "b"}, {"c"}]
