"""Crash-recovery tests: incarnations, channel epochs, and rejoining."""

from dataclasses import dataclass

from repro.core import LargeGroupMember, LargeGroupParams, build_large_group, build_leader_group
from repro.membership import FIFO, GroupNode, build_group
from repro.net import FixedLatency
from repro.proc import Environment, Process
from repro.transport import ReliableTransport


@dataclass
class AppMsg:
    category = "app"
    n: int = 0


class Peer(Process):
    def __init__(self, env, address):
        super().__init__(env, address)
        self.transport = ReliableTransport(self, rto=0.05)
        self.inbox = []
        self.on(AppMsg, lambda m, s: self.inbox.append(m.n))


def test_incarnation_bumps_on_each_recovery():
    env = Environment(seed=1)
    p = Peer(env, "p")
    assert p.incarnation == 0
    p.crash()
    p.recover()
    assert p.incarnation == 1
    p.crash()
    p.recover()
    assert p.incarnation == 2


def test_fast_reboot_receiver_not_blackholed():
    """The receiver reboots between two sends; without epochs its fresh
    state would treat the sender's next high-seq segment as a gap
    forever."""
    env = Environment(seed=2, latency=FixedLatency(0.005))
    a = Peer(env, "a")
    b = Peer(env, "b")
    for i in range(5):
        a.transport.send("b", AppMsg(i))
    env.run_for(1.0)
    assert b.inbox == [0, 1, 2, 3, 4]
    b.crash()
    b.recover()  # fast: a never suspects anything
    a.transport.send("b", AppMsg(99))
    env.run_for(3.0)
    assert 99 in b.inbox


def test_fast_reboot_sender_not_treated_as_duplicates():
    """The sender reboots and restarts sequence numbers; the receiver
    must not discard the new incarnation's seq 1 as an old duplicate."""
    env = Environment(seed=3, latency=FixedLatency(0.005))
    a = Peer(env, "a")
    b = Peer(env, "b")
    for i in range(4):
        a.transport.send("b", AppMsg(i))
    env.run_for(1.0)
    a.crash()
    a.recover()
    a.transport.send("b", AppMsg(77))
    env.run_for(3.0)
    assert b.inbox == [0, 1, 2, 3, 77]


def test_unacked_payloads_survive_receiver_reboot():
    """Payloads in flight when the receiver reboots are re-admitted in
    the new epoch and still arrive exactly once, in order."""
    env = Environment(seed=4, latency=FixedLatency(0.005))
    a = Peer(env, "a")
    b = Peer(env, "b")
    a.transport.send("b", AppMsg(1))
    env.run_for(0.5)
    b.crash()
    a.transport.send("b", AppMsg(2))  # vanishes at the dead endpoint
    a.transport.send("b", AppMsg(3))
    env.run_for(0.2)
    b.recover()
    env.run_for(5.0)
    assert b.inbox == [1, 2, 3]


def test_recovered_node_rejoins_flat_group():
    env = Environment(seed=5, latency=FixedLatency(0.002))
    nodes, members = build_group(env, "g", 4)
    nodes[2].crash()
    env.run_for(5.0)
    assert members[0].view.size == 3
    nodes[2].recover()
    # old group state was wiped by the recovery hook
    assert not nodes[2].runtime.has_group("g")
    rejoined = nodes[2].runtime.join_group("g", contact="g-0")
    env.run_for(5.0)
    assert rejoined.is_member
    assert members[0].view.size == 4
    got = []
    rejoined.add_delivery_listener(lambda e: got.append(e.payload.n))
    members[1].multicast(AppMsg(5), FIFO)
    env.run_for(2.0)
    assert got == [5]


def test_recovered_worker_rejoins_large_group():
    env = Environment(seed=6, latency=FixedLatency(0.002))
    params = LargeGroupParams(resiliency=2, fanout=4)
    leaders = build_leader_group(env, "svc", params)
    contacts = tuple(r.node.address for r in leaders)
    members = build_large_group(env, "svc", 8, params, contacts)
    env.run_for(10.0)
    victim = members[3]
    victim.node.crash()
    env.run_for(5.0)
    victim.node.recover()
    # the endpoint reset itself on recovery; just join again
    assert victim.leaf_member is None
    victim.join()
    env.run_for(15.0)
    assert victim.is_member
    manager = next(r for r in leaders if r.is_manager)
    assert manager.state.total_size == 8


def test_repeated_crash_recover_cycles():
    env = Environment(seed=7, latency=FixedLatency(0.002))
    a = Peer(env, "a")
    b = Peer(env, "b")
    expected = []
    n = 0
    for cycle in range(4):
        for _ in range(3):
            a.transport.send("b", AppMsg(n))
            expected.append(n)
            n += 1
        env.run_for(1.0)
        b.crash()
        b.recover()
    env.run_for(5.0)
    assert b.inbox == expected
