"""Tests for §5 future-work features: network partitions (primary
partition rule) and long-distance (multi-site) links."""

from dataclasses import dataclass

from repro.failure import HeartbeatDetector
from repro.membership import FIFO, GroupNode, build_group
from repro.net import FixedLatency, SiteLatency
from repro.proc import Environment
from repro.sim import SimRandom


@dataclass
class App:
    category = "app"
    tag: str = ""


def heartbeat_factory(node):
    return HeartbeatDetector(node, interval=0.1, suspect_after=0.5)


def build_partitionable(n, primary_partition, seed=1):
    """A group whose members use heartbeat detection, so a network
    partition converts into mutual suspicion between the islands."""
    env = Environment(seed=seed, latency=FixedLatency(0.002))
    nodes, members = build_group(
        env,
        "g",
        n,
        detector_factory=heartbeat_factory,
        primary_partition=primary_partition,
        gossip_interval=None,
    )
    env.run_for(1.0)
    return env, nodes, members


# -- split brain without the rule -----------------------------------------------------


def test_without_rule_partition_causes_split_brain():
    env, nodes, members = build_partitionable(5, primary_partition=False)
    minority = {"g-0", "g-1"}
    majority = {"g-2", "g-3", "g-4"}
    env.network.partitions.partition(minority, majority)
    env.run_for(10.0)
    minority_views = {tuple(members[i].view.members) for i in (0, 1)}
    majority_views = {tuple(members[i].view.members) for i in (2, 3, 4)}
    # both sides installed views excluding the other: divergence
    assert minority_views == {("g-0", "g-1")}
    assert majority_views == {("g-2", "g-3", "g-4")}


# -- primary-partition rule -------------------------------------------------------------


def test_primary_partition_only_majority_progresses():
    env, nodes, members = build_partitionable(5, primary_partition=True)
    minority = {"g-0", "g-1"}
    majority = {"g-2", "g-3", "g-4"}
    env.network.partitions.partition(minority, majority)
    env.run_for(10.0)
    # majority side excluded the minority and continues
    for i in (2, 3, 4):
        assert members[i].view.members == ("g-2", "g-3", "g-4")
    # minority side stalls at the old view rather than forming its own
    for i in (0, 1):
        assert members[i].view.seq == 1
        assert set(members[i].view.members) == {f"g-{j}" for j in range(5)}


def test_primary_partition_majority_keeps_serving():
    env, nodes, members = build_partitionable(5, primary_partition=True)
    env.network.partitions.partition({"g-0", "g-1"}, {"g-2", "g-3", "g-4"})
    env.run_for(10.0)
    delivered = []
    for i in (2, 3, 4):
        members[i].add_delivery_listener(
            lambda e, me=i: delivered.append((me, e.payload.tag))
        )
    members[2].multicast(App("still-alive"), FIFO)
    env.run_for(2.0)
    assert sorted(delivered) == [(2, "still-alive"), (3, "still-alive"), (4, "still-alive")]


def test_primary_partition_exact_half_stalls_both_sides():
    """With an even split neither side holds a strict majority: nobody
    may install a new view (safety over liveness)."""
    env, nodes, members = build_partitionable(4, primary_partition=True)
    env.network.partitions.partition({"g-0", "g-1"}, {"g-2", "g-3"})
    env.run_for(10.0)
    for m in members:
        assert m.view.seq == 1  # nobody moved


def test_minority_rejoins_after_heal():
    env, nodes, members = build_partitionable(5, primary_partition=True)
    env.network.partitions.partition({"g-0", "g-1"}, {"g-2", "g-3", "g-4"})
    env.run_for(10.0)
    env.network.partitions.heal()
    env.run_for(2.0)
    # stranded members discard their stale state and join afresh
    rejoined = [
        nodes[i].runtime.rejoin_group("g", contact="g-2") for i in (0, 1)
    ]
    env.run_for(10.0)
    assert all(m.is_member for m in rejoined)
    final = members[2].view
    assert set(final.members) == {"g-0", "g-1", "g-2", "g-3", "g-4"}
    assert all(m.view == final for m in rejoined)


def test_primary_partition_still_handles_real_crashes():
    """The quorum rule must not break ordinary minority-of-failures
    handling: 2 of 5 crash, the 3 survivors are a majority and proceed."""
    env, nodes, members = build_partitionable(5, primary_partition=True)
    nodes[1].crash()
    nodes[3].crash()
    env.run_for(10.0)
    for i in (0, 2, 4):
        assert members[i].view.members == ("g-0", "g-2", "g-4")


# -- long-distance links ------------------------------------------------------------


def test_site_latency_intra_vs_inter():
    model = SiteLatency(
        local=FixedLatency(0.001), wan_delay=0.05, wan_jitter=0.0
    )
    rng = SimRandom(1)
    assert model.sample(rng, "nyc.a", "nyc.b", 100) == 0.001
    assert abs(model.sample(rng, "nyc.a", "sfo.b", 100) - 0.051) < 1e-12
    # single-token addresses share the implicit site
    assert model.sample(rng, "a", "b", 100) == 0.001


def test_site_latency_jitter_bounds():
    model = SiteLatency(
        local=FixedLatency(0.001), wan_delay=0.04, wan_jitter=0.5
    )
    rng = SimRandom(2)
    for _ in range(50):
        sample = model.sample(rng, "x.a", "y.b", 100)
        assert 0.001 + 0.02 <= sample <= 0.001 + 0.06


def test_site_latency_custom_site_map():
    model = SiteLatency(
        local=FixedLatency(0.001),
        wan_delay=0.03,
        wan_jitter=0.0,
        site_of=lambda a: a[-1],
    )
    rng = SimRandom(3)
    assert model.sample(rng, "p1", "q1", 10) == 0.001
    assert abs(model.sample(rng, "p1", "p2", 10) - 0.031) < 1e-12


def test_group_spanning_sites_works_with_wan_latency():
    env = Environment(
        seed=4,
        latency=SiteLatency(local=FixedLatency(0.001), wan_delay=0.03, wan_jitter=0.0),
    )
    addresses = ["nyc.0", "nyc.1", "sfo.0", "sfo.1"]
    nodes = [GroupNode(env, a, gossip_interval=None) for a in addresses]
    members = [n.runtime.create_group("wan", addresses) for n in nodes]
    arrivals = {}
    for m in members:
        m.add_delivery_listener(
            lambda e, me=m.me: arrivals.setdefault(me, env.now)
        )
    members[0].multicast(App("cross-country"), FIFO)
    env.run_for(2.0)
    assert set(arrivals) == set(addresses)
    # same-site delivery is much earlier than cross-site delivery
    assert arrivals["nyc.1"] < 0.01
    assert arrivals["sfo.0"] >= 0.03
