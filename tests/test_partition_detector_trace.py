"""Partition + failure-detector interplay, observed through the causal
tracer: a partition turns into heartbeat drop spans on the wire and
suspicion spans on both islands, a heal stops the bleeding, and a single
failure's disturbance stays bounded (the E5 shape) with tracing on."""

from dataclasses import dataclass

from repro import trace
from repro.core import (
    LargeGroupParams,
    build_large_group,
    build_leader_group,
)
from repro.failure import HeartbeatDetector
from repro.membership import build_group
from repro.net import FixedLatency
from repro.proc import Environment


@dataclass
class App:
    category = "app"
    tag: str = ""


def _hb(node):
    return HeartbeatDetector(node, interval=0.1, suspect_after=0.5)


MINORITY = {"g-0", "g-1"}
MAJORITY = {"g-2", "g-3", "g-4"}


def build_partitionable(seed=1):
    env = Environment(seed=seed, latency=FixedLatency(0.002))
    nodes, members = build_group(
        env,
        "g",
        5,
        detector_factory=_hb,
        primary_partition=True,
        gossip_interval=None,
    )
    env.run_for(1.0)
    return env, nodes, members


def _island(address):
    return 0 if address in MINORITY else 1


def test_partition_shows_drops_and_suspicions_as_spans():
    env, nodes, members = build_partitionable()
    sink = trace.attach(env)
    env.network.partitions.partition(MINORITY, MAJORITY)
    env.run_for(10.0)

    # Every cut heartbeat leaves a drop span crossing the islands.
    drops = sink.collector.by_kind(trace.KIND_DROP)
    assert drops
    heartbeat_drops = [d for d in drops if d.category == "heartbeat"]
    assert heartbeat_drops
    assert all(_island(d.src) != _island(d.dst) for d in heartbeat_drops)
    # Each drop span hangs off the send span it terminated.
    send_ids = {s.span_id for s in sink.collector.by_kind(trace.KIND_SEND)}
    assert all(d.parent_id in send_ids for d in heartbeat_drops)

    # Both islands converted silence into suspicion spans about the
    # other side, never about a reachable peer.
    suspicions = [
        s for s in sink.collector.by_kind(trace.KIND_LOCAL)
        if s.name == "suspicion"
    ]
    assert suspicions
    suspecting_islands = set()
    for s in suspicions:
        assert _island(s.process) != _island(s.attrs["peer"])
        suspecting_islands.add(_island(s.process))
    assert suspecting_islands == {0, 1}

    # The majority flushed the minority out, leaving the view trail.
    installs = [
        s for s in sink.collector.by_kind(trace.KIND_LOCAL)
        if s.name == "view-install"
    ]
    assert any(s.attrs["size"] == 3 for s in installs)
    for i in (2, 3, 4):
        assert set(members[i].view.members) == MAJORITY


def test_heal_stops_drops_and_lets_the_minority_rejoin():
    env, nodes, members = build_partitionable()
    sink = trace.attach(env)
    env.network.partitions.partition(MINORITY, MAJORITY)
    env.run_for(10.0)
    heal_time = env.now
    env.network.partitions.heal()
    env.run_for(2.0)
    rejoined = [
        nodes[i].runtime.rejoin_group("g", contact="g-2") for i in (0, 1)
    ]
    env.run_for(10.0)

    assert all(m.is_member for m in rejoined)
    assert set(members[2].view.members) == MINORITY | MAJORITY
    # The wire healed: no datagram dropped after the heal.
    late_drops = [
        d for d in sink.collector.by_kind(trace.KIND_DROP)
        if d.begin > heal_time
    ]
    assert late_drops == []
    # The rejoin left its own view-install spans at the new size.
    installs = [
        s for s in sink.collector.by_kind(trace.KIND_LOCAL)
        if s.name == "view-install" and s.begin > heal_time
    ]
    assert any(s.attrs["size"] == 5 for s in installs)


def test_e5_disturbance_stays_bounded_under_tracing():
    """Crash one worker of a traced hierarchical service: the processes
    disturbed stay within the leaf + leader bound (paper §3, experiment
    E5), and the tracer shows the suspicion -> flush -> view-install
    cascade confined to the victim's leaf."""
    n = 24
    env = Environment(seed=5, latency=FixedLatency(0.002))
    params = LargeGroupParams(resiliency=2, fanout=4)
    leaders = build_leader_group(env, "svc", params, gossip_interval=None)
    contacts = tuple(r.node.address for r in leaders)
    members = build_large_group(
        env, "svc", n, params, contacts, gossip_interval=None
    )
    env.run_for(5.0 + 0.3 * n)
    sink = trace.attach(env)

    victim = members[n // 2]
    victim_address = victim.me
    leaf_group = victim.leaf_member.group
    before = env.stats_snapshot()
    victim.node.crash()
    env.run_for(5.0)

    delta = env.stats_since(before)
    touched = sum(1 for count in delta.received_by.values() if count > 0)
    bound = params.leaf_split_threshold + params.leader_group_size
    assert touched <= bound + 2, (
        f"{touched} processes disturbed, bound {bound}"
    )

    local = sink.collector.by_kind(trace.KIND_LOCAL)
    suspicions = [s for s in local if s.name == "suspicion"]
    assert suspicions
    assert all(s.attrs["peer"] == victim_address for s in suspicions)
    flushes = [s for s in local if s.name == "flush-start"]
    installs = [s for s in local if s.name == "view-install"]
    assert flushes and installs
    # The membership cascade never leaves the victim's leaf.
    assert {s.attrs["group"] for s in flushes} == {leaf_group}
    assert {s.attrs["group"] for s in installs} == {leaf_group}
