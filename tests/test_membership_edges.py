"""Edge cases in the membership layer: batched view changes, future-view
buffering, stale protocol messages, cross-view traffic, causal chains."""

from dataclasses import dataclass

from repro.membership import (
    CAUSAL,
    FIFO,
    TOTAL,
    Flush,
    GroupNode,
    NewView,
    GroupView,
    build_group,
)
from repro.net import FixedLatency
from repro.proc import Environment


@dataclass
class App:
    category = "app"
    tag: str = ""


def make(n, seed=1, **kwargs):
    env = Environment(seed=seed, latency=FixedLatency(0.002))
    nodes, members = build_group(env, "g", n, **kwargs)
    logs = {m.me: [] for m in members}
    for m in members:
        m.add_delivery_listener(lambda e, me=m.me: logs[me].append(e.payload.tag))
    return env, nodes, members, logs


def test_join_leave_crash_batched_into_view_changes():
    env, nodes, members, logs = make(5)
    joiner = GroupNode(env, "j0")
    jm = joiner.runtime.join_group("g", contact="g-0")
    members[3].leave()
    nodes[4].crash()
    env.run_for(8.0)
    final = members[0].view
    assert set(final.members) == {"g-0", "g-1", "g-2", "j0"}
    assert jm.view == final
    assert members[3].left
    # few view changes despite three simultaneous membership intents
    assert final.seq <= 4


def test_messages_sent_during_flush_go_out_in_next_view():
    env, nodes, members, logs = make(4)
    # trigger a view change, then multicast from a member that is blocked
    nodes[3].crash()
    env.scheduler.at(0.06, lambda: members[1].multicast(App("queued"), FIFO))
    env.run_for(8.0)
    for name in ("g-0", "g-1", "g-2"):
        assert "queued" in logs[name]
    # the message was delivered in view 2 (it was queued through the flush)
    assert members[1].view.seq == 2


def test_stale_flush_ignored():
    env, nodes, members, logs = make(3)
    # deliver a bogus flush for an old target seq directly
    bogus = Flush(group="g", target_seq=1, initiator="g-1", proposed=("g-1",))
    members[0]._on_flush(bogus, "g-1")
    env.run_for(1.0)
    assert members[0].view.seq == 1
    assert not members[0]._blocked


def test_stale_new_view_ignored():
    env, nodes, members, logs = make(3)
    nodes[2].crash()
    env.run_for(5.0)
    assert members[0].view.seq == 2
    stale = NewView(view=GroupView("g", 1, ("g-0",)))
    members[0]._on_new_view(stale, "g-1")
    assert members[0].view.seq == 2


def test_future_view_data_buffered_until_install():
    """A member that installs the new view late must not lose data that
    faster members already sent in it."""
    env, nodes, members, logs = make(4)
    nodes[3].crash()

    # as soon as any member reaches view 2, it multicasts immediately —
    # other members may still be in view 1 when the data arrives
    fired = []

    def on_view(event, m=members[0]):
        if event.view.seq == 2 and not fired:
            fired.append(True)
            m.multicast(App("early-v2"), FIFO)

    members[0].add_view_listener(on_view)
    env.run_for(8.0)
    for name in ("g-0", "g-1", "g-2"):
        assert "early-v2" in logs[name], f"{name} lost cross-view data"


def test_abcast_continues_across_view_changes():
    env, nodes, members, logs = make(5)
    for i in range(3):
        members[i].multicast(App(f"a{i}"), TOTAL)
    env.run_for(2.0)
    nodes[0].crash()  # sequencer change
    env.run_for(5.0)
    for i in range(1, 4):
        members[i].multicast(App(f"b{i}"), TOTAL)
    env.run_for(3.0)
    survivors = ["g-1", "g-2", "g-3", "g-4"]
    sequences = {tuple(logs[name]) for name in survivors}
    assert len(sequences) == 1
    assert len(sequences.pop()) == 6


def test_causal_chain_across_three_members():
    """m1 -> (delivered at B) -> m2 -> (delivered at C) -> m3: every member
    must deliver the chain in order, whatever the network does."""
    for seed in range(5):
        env = Environment(seed=seed, latency=FixedLatency(0.002), drop_probability=0.1)
        nodes, members = build_group(env, "g", 4)
        logs = {m.me: [] for m in members}
        for m in members:
            m.add_delivery_listener(
                lambda e, me=m.me: logs[me].append(e.payload.tag)
            )

        def chain_b(event):
            if event.payload.tag == "link-1":
                members[1].multicast(App("link-2"), CAUSAL)

        def chain_c(event):
            if event.payload.tag == "link-2":
                members[2].multicast(App("link-3"), CAUSAL)

        members[1].add_delivery_listener(chain_b)
        members[2].add_delivery_listener(chain_c)
        members[0].multicast(App("link-1"), CAUSAL)
        env.run_for(20.0)
        for m in members:
            chain = [t for t in logs[m.me] if t.startswith("link-")]
            assert chain == ["link-1", "link-2", "link-3"], (
                f"seed {seed}: {m.me} saw {chain}"
            )


def test_gossip_resumes_after_view_change():
    env, nodes, members, logs = make(4, gossip_interval=0.3)
    for i in range(4):
        members[0].multicast(App(f"m{i}"), FIFO)
    env.run_for(2.0)
    assert all(m._stability.log_size() == 0 for m in members)
    nodes[3].crash()
    env.run_for(5.0)
    survivors = members[:3]
    for i in range(3):
        survivors[1].multicast(App(f"n{i}"), FIFO)
    env.run_for(3.0)
    assert all(m._stability.log_size() == 0 for m in survivors)


def test_suspect_report_routed_to_acting_coordinator():
    env, nodes, members, logs = make(5)
    # g-4 suspects g-2 directly (simulate a local detector firing early)
    members[4]._on_suspect("g-2")
    env.run_for(5.0)
    # the acting coordinator (g-0) ran the exclusion for everyone
    for m in (members[0], members[1], members[3], members[4]):
        assert not m.view.contains("g-2")
    # g-2 itself was told (flush target) and is excluded, not left
    assert members[2].excluded


def test_view_listener_exception_isolation():
    """A bad application listener must not corrupt protocol state."""
    env, nodes, members, logs = make(3)
    calls = []

    def bad_listener(event):
        calls.append(event)
        raise RuntimeError("application bug")

    members[0].add_delivery_listener(bad_listener)
    try:
        members[0].multicast(App("boom"), FIFO)
    except RuntimeError:
        pass  # the local synchronous delivery propagates in this design
    env.run_for(2.0)
    # remote members unaffected
    assert "boom" in logs["g-1"] and "boom" in logs["g-2"]
