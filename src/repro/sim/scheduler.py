"""Discrete-event scheduler: the heart of the simulated cluster.

Every other subsystem (network, processes, timers, failure injection) is
driven by a single :class:`Scheduler`.  Events are callbacks scheduled at a
simulated time; the scheduler pops them in nondecreasing time order and, for
equal times, in scheduling (FIFO) order, so runs are fully deterministic for
a given seed and workload.

The scheduler deliberately knows nothing about networks or processes; it is
a minimal priority-queue event loop that the rest of the library composes.

Performance notes (see docs/simulator.md, "Sharded scheduler & allocation
discipline"):

* Heap entries are plain ``(time, seq, event)`` tuples.  ``(time, seq)``
  is unique per entry, so every heap sift comparison resolves inside the
  C tuple-compare loop without ever calling back into Python — roughly
  3x cheaper than ordering ``__lt__``-bearing event objects.
* :meth:`Scheduler.at_call` / :meth:`after_call` carry a single argument
  alongside the callback, letting hot callers avoid allocating a closure
  per event.  The event object doubles as its own cancellation handle.
* :meth:`Scheduler.at_call_grouped` batches same-timestamp calls to the
  same function into one *bucket*: one heap entry, one pop and one
  callback frame drain every delivery sharing a timestamp.  Buckets are
  sealed exactly when a seq-consuming schedule lands on the same
  timestamp, so the global (time, seq) order — and therefore every
  frozen delivery digest — is byte-identical to the unbatched engine.
* Bucket events and their argument lists, and the handle-free one-shot
  events behind :meth:`after_call_once`, are drawn from free lists and
  recycled on fire — the steady-state loop allocates ~nothing per event.
  Events whose handles escape (``at`` / ``at_call``) are never recycled:
  a retained handle may legally be cancelled or re-armed later, which
  would hijack a recycled event.
* :meth:`Scheduler.rearm` re-pushes a *fired* event object at a new time,
  so periodic timers reuse one event + handle for their whole life.
* Cancellation stays lazy (O(1)), but the scheduler counts cancelled
  events still sitting in the heap and compacts the heap when they exceed
  :data:`COMPACT_MIN` *and* outnumber the live events — long churn runs
  no longer accumulate dead heartbeat timers.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Dict, List, Optional


class SimulationError(RuntimeError):
    """Raised when the simulation is driven incorrectly (e.g. scheduling in
    the past or running a finished scheduler)."""


_NO_ARG = object()  # sentinel: "call fn with no argument"

# Compact the heap when more than COMPACT_MIN cancelled events are queued
# and they make up over half of the heap.
COMPACT_MIN = 64


class _Event:
    """One scheduled callback.  Doubles as its own cancellation handle —
    the object returned by ``at`` / ``at_call`` *is* the queued event.

    Cancellation is lazy: the event stays in the heap but is skipped when
    it reaches the front, which keeps cancellation O(1).  The scheduler
    tracks how many cancelled events are queued and compacts the heap
    when they dominate it.

    ``once`` marks recyclable events (bucket events and
    ``after_call_once`` one-shots): they return to the scheduler's free
    list when they fire, so their handle must not be touched afterwards.
    """

    __slots__ = ("time", "fn", "arg", "cancelled", "in_heap", "batch", "once", "_sched")

    def __init__(
        self,
        sched: "Scheduler",
        time: float,
        fn: Callable,
        arg: Any,
        batch: bool,
        once: bool,
    ) -> None:
        self._sched = sched
        self.time = time
        self.fn = fn
        self.arg = arg
        self.cancelled = False
        self.in_heap = True
        self.batch = batch
        self.once = once

    def cancel(self) -> None:
        """Prevent the event from firing.  Idempotent; safe after firing
        for non-``once`` events (a ``once`` handle is dead once fired)."""
        if self.cancelled:
            return
        self.cancelled = True
        if self.in_heap:
            self._sched._note_cancelled()


# Historical name: PR-1 returned a separate handle object; the event now
# *is* the handle, and the old name stays importable for callers/tests.
EventHandle = _Event


class Scheduler:
    """A deterministic discrete-event scheduler.

    Usage::

        sched = Scheduler()
        sched.after(1.0, lambda: print("one second"))
        sched.run()

    Time is a float in arbitrary units; the library convention is seconds.
    """

    def __init__(self) -> None:
        # Heap of (time, seq, event) tuples; (time, seq) is unique so the
        # event object is never compared.
        self._heap: List[tuple] = []
        self._now = 0.0
        self._seq = 0
        self._events_processed = 0
        self._running = False
        self._live = 0  # events queued and not cancelled
        self._cancelled_in_heap = 0  # lazily cancelled, awaiting pop/compact
        # The open bucket (at_call_grouped) — at most one per scheduler,
        # sealed by any same-timestamp seq assignment or by firing.
        self._bucket: Optional[_Event] = None
        self._bucket_time = -1.0
        # Free lists + fresh-construction counters (the allocation probe
        # in tools/perf_report.py reads alloc_stats).
        self._event_pool: List[_Event] = []
        self._arg_pool: List[list] = []
        self._fresh_events = 0
        self._fresh_lists = 0

    @property
    def now(self) -> float:
        """Current simulated time."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Total number of events that have fired.  Every call grouped
        into a bucket counts as one event, exactly as if scheduled via
        ``at_call`` — the batching is invisible to this counter."""
        return self._events_processed

    @property
    def pending(self) -> int:
        """Number of queued live events, excluding lazily cancelled ones.

        O(1): maintained as a counter rather than scanned from the heap.
        Each call held in an unfired bucket counts individually.
        """
        return self._live

    @property
    def heap_size(self) -> int:
        """Raw heap length, including lazily cancelled events.  A bucket
        of grouped same-timestamp calls occupies a single entry."""
        return len(self._heap)

    @property
    def alloc_stats(self) -> Dict[str, int]:
        """Free-list telemetry: fresh constructions vs pooled capacity.

        ``fresh_events`` / ``fresh_arg_lists`` only grow when a free list
        is empty, so a steady-state window in which they stay flat is a
        zero-allocation window — the probe in ``tools/perf_report.py``
        measures exactly that delta.
        """
        return {
            "fresh_events": self._fresh_events,
            "fresh_arg_lists": self._fresh_lists,
            "pooled_events": len(self._event_pool),
            "pooled_arg_lists": len(self._arg_pool),
        }

    # -- scheduling ----------------------------------------------------------

    def at(self, time: float, fn: Callable[[], None]) -> _Event:
        """Schedule ``fn`` to run at absolute simulated time ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule event at {time:.6f} < now {self._now:.6f}"
            )
        if self._bucket is not None and self._bucket_time == time:
            self._bucket = None  # seal: keep (time, seq) order exact
        event = _Event(self, time, fn, _NO_ARG, False, False)
        heapq.heappush(self._heap, (time, self._seq, event))
        self._seq += 1
        self._live += 1
        return event

    def after(self, delay: float, fn: Callable[[], None]) -> _Event:
        """Schedule ``fn`` to run ``delay`` time units from now."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay!r}")
        return self.at(self._now + delay, fn)

    def at_call(self, time: float, fn: Callable[[Any], None], arg: Any) -> _Event:
        """Fast path: schedule ``fn(arg)`` at ``time``.

        Storing the argument on the event (instead of closing over it)
        saves one closure allocation per event — the dominant allocation
        in message-heavy runs.
        """
        if time < self._now:
            raise SimulationError(
                f"cannot schedule event at {time:.6f} < now {self._now:.6f}"
            )
        if self._bucket is not None and self._bucket_time == time:
            self._bucket = None
        event = _Event(self, time, fn, arg, False, False)
        heapq.heappush(self._heap, (time, self._seq, event))
        self._seq += 1
        self._live += 1
        return event

    def after_call(self, delay: float, fn: Callable[[Any], None], arg: Any) -> _Event:
        """Fast path: schedule ``fn(arg)`` to run ``delay`` from now."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay!r}")
        return self.at_call(self._now + delay, fn, arg)

    def at_call_once(self, time: float, fn: Callable[[Any], None], arg: Any) -> _Event:
        """Like :meth:`at_call`, but the event is drawn from the free
        list and recycled when it fires (or when a cancellation is
        compacted away).

        Contract: the returned handle may be cancelled *before* the due
        time, but must never be touched after the event fires or after
        ``cancel()`` — the object is recycled and may already carry a
        different callback.  ``rearm`` rejects these events.  One-shot
        process timers (:class:`repro.proc.process.Timer`) follow this
        discipline, which makes timer churn allocation-free.
        """
        if time < self._now:
            raise SimulationError(
                f"cannot schedule event at {time:.6f} < now {self._now:.6f}"
            )
        if self._bucket is not None and self._bucket_time == time:
            self._bucket = None
        pool = self._event_pool
        if pool:
            event = pool.pop()
            event.time = time
            event.fn = fn
            event.arg = arg
            event.cancelled = False
            event.in_heap = True
            event.batch = False
        else:
            self._fresh_events += 1
            event = _Event(self, time, fn, arg, False, True)
        heapq.heappush(self._heap, (time, self._seq, event))
        self._seq += 1
        self._live += 1
        return event

    def after_call_once(
        self, delay: float, fn: Callable[[Any], None], arg: Any
    ) -> _Event:
        """Recyclable one-shot: ``fn(arg)`` after ``delay`` (see
        :meth:`at_call_once` for the handle contract)."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay!r}")
        return self.at_call_once(self._now + delay, fn, arg)

    def at_call_grouped(
        self, time: float, fn: Callable[[list], None], arg: Any, key: Any = None
    ) -> None:
        """Batch ``fn`` calls sharing a timestamp into one bucket event.

        All ``at_call_grouped(time, fn, ...)`` calls landing on the open
        bucket are drained by a *single* heap pop that invokes
        ``fn(args)`` once with the list of arguments, in scheduling
        order.  The bucket is sealed (subsequent grouped calls open a new
        one) whenever exactness demands a fresh seq: any ``at`` /
        ``at_call`` / ``rearm`` on the same timestamp, a grouped call
        with a different ``fn``, or the bucket firing.  Sealing keeps the
        global (time, seq) execution order identical to per-call
        ``at_call`` scheduling — batching is pure mechanics, invisible
        to fingerprints.

        No handle is returned: grouped events cannot be cancelled, which
        is what makes their bucket event and argument list recyclable.
        ``fn`` must consume ``args`` synchronously and not retain the
        list.  ``key`` is a locality hint ignored here (the sharded
        scheduler routes on it).
        """
        bucket = self._bucket
        if bucket is not None and self._bucket_time == time and bucket.fn is fn:
            bucket.arg.append(arg)
            self._live += 1
            return
        if time < self._now:
            raise SimulationError(
                f"cannot schedule event at {time:.6f} < now {self._now:.6f}"
            )
        pool = self._event_pool
        if pool:
            event = pool.pop()
            event.time = time
            event.fn = fn
            event.cancelled = False
            event.in_heap = True
            event.batch = True
        else:
            self._fresh_events += 1
            event = _Event(self, time, fn, None, True, True)
        arg_pool = self._arg_pool
        if arg_pool:
            args = arg_pool.pop()
        else:
            self._fresh_lists += 1
            args = []
        args.append(arg)
        event.arg = args
        heapq.heappush(self._heap, (time, self._seq, event))
        self._seq += 1
        self._live += 1
        self._bucket = event
        self._bucket_time = time

    def rearm(self, handle: _Event, delay: float) -> _Event:
        """Re-push a *fired* event at ``now + delay``, reusing its event
        object and handle (no allocation).  Periodic timers use this so a
        million ticks cost one event object, not a million.

        The event must not currently be queued; its cancelled flag is
        cleared (re-arming an event is scheduling it anew).  Recyclable
        (``once``) events are rejected: after firing they may already be
        serving another caller.
        """
        if delay < 0:
            raise SimulationError(f"negative delay {delay!r}")
        if handle.in_heap:
            raise SimulationError("cannot rearm an event that is still queued")
        if handle.once:
            raise SimulationError("cannot rearm a recycled one-shot event")
        time = self._now + delay
        if self._bucket is not None and self._bucket_time == time:
            self._bucket = None
        handle.time = time
        handle.cancelled = False
        handle.in_heap = True
        heapq.heappush(self._heap, (time, self._seq, handle))
        self._seq += 1
        self._live += 1
        return handle

    # -- cancellation bookkeeping --------------------------------------------

    def _note_cancelled(self) -> None:
        self._live -= 1
        self._cancelled_in_heap += 1
        if (
            self._cancelled_in_heap > COMPACT_MIN
            and self._cancelled_in_heap * 2 > len(self._heap)
        ):
            self._compact()

    def _compact(self) -> None:
        """Drop lazily cancelled events and re-heapify the survivors."""
        live: List[tuple] = []
        append = live.append
        pool = self._event_pool
        for entry in self._heap:
            event = entry[2]
            if event.cancelled:
                event.in_heap = False
                if event.once:
                    event.fn = None
                    event.arg = None
                    pool.append(event)
            else:
                append(entry)
        self._heap = live
        heapq.heapify(live)
        self._cancelled_in_heap = 0

    # -- running -------------------------------------------------------------

    def _dispatch(self, time: float, event: _Event) -> int:
        """Fire one popped heap entry; returns how many events it counted
        as (a bucket counts each grouped call).  Shared by step() and the
        bounded run loop; the unbounded loop inlines the same logic."""
        self._now = time
        arg = event.arg
        if event.batch:
            if self._bucket is event:
                self._bucket = None
            n = len(arg)
            self._events_processed += n
            self._live -= n
            event.fn(arg)
            arg.clear()
            self._arg_pool.append(arg)
            event.fn = None
            event.arg = None
            self._event_pool.append(event)
            return n
        self._events_processed += 1
        self._live -= 1
        if arg is _NO_ARG:
            event.fn()
        else:
            event.fn(arg)
        if event.once:
            event.fn = None
            event.arg = None
            self._event_pool.append(event)
        return 1

    def step(self) -> bool:
        """Fire the next event (an entire bucket counts as one step).
        Returns False when the queue is empty."""
        heap = self._heap
        pop = heapq.heappop
        while heap:
            entry = pop(heap)
            event = entry[2]
            event.in_heap = False
            if event.cancelled:
                self._cancelled_in_heap -= 1
                if event.once:
                    event.fn = None
                    event.arg = None
                    self._event_pool.append(event)
                continue
            self._dispatch(entry[0], event)
            return True
        return False

    def run(
        self,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
    ) -> None:
        """Run events until the queue drains, ``until`` is reached, or
        ``max_events`` have fired in this call.

        ``until`` is inclusive: an event scheduled exactly at ``until`` fires.
        After a bounded run, ``now`` advances to ``until`` if that is later
        than the last event fired, so repeated ``run(until=...)`` calls
        advance time monotonically even through quiet periods.
        ``max_events`` may overshoot by the tail of one bucket (a bucket
        fires atomically).
        """
        if self._running:
            raise SimulationError("scheduler re-entered from within an event")
        self._running = True
        heap = self._heap
        pop = heapq.heappop
        no_arg = _NO_ARG
        event_pool = self._event_pool
        arg_pool = self._arg_pool
        try:
            if until is None and max_events is None:
                # Hot unbounded loop: no bound checks per iteration.
                while heap:
                    entry = pop(heap)
                    event = entry[2]
                    if event.cancelled:
                        event.in_heap = False
                        self._cancelled_in_heap -= 1
                        if event.once:
                            event.fn = None
                            event.arg = None
                            event_pool.append(event)
                        continue
                    event.in_heap = False
                    self._now = entry[0]
                    arg = event.arg
                    if event.batch:
                        if self._bucket is event:
                            self._bucket = None
                        self._events_processed += len(arg)
                        self._live -= len(arg)
                        event.fn(arg)
                        arg.clear()
                        arg_pool.append(arg)
                        event.fn = None
                        event.arg = None
                        event_pool.append(event)
                    else:
                        self._events_processed += 1
                        self._live -= 1
                        if arg is no_arg:
                            event.fn()
                        else:
                            event.fn(arg)
                        if event.once:
                            event.fn = None
                            event.arg = None
                            event_pool.append(event)
                    # An event may cancel-and-compact, invalidating `heap`.
                    heap = self._heap
                return
            fired = 0
            while heap:
                if max_events is not None and fired >= max_events:
                    return
                entry = heap[0]
                event = entry[2]
                if event.cancelled:
                    pop(heap)
                    event.in_heap = False
                    self._cancelled_in_heap -= 1
                    if event.once:
                        event.fn = None
                        event.arg = None
                        event_pool.append(event)
                    continue
                if until is not None and entry[0] > until:
                    break
                pop(heap)
                event.in_heap = False
                fired += self._dispatch(entry[0], event)
                heap = self._heap
            if until is not None and until > self._now:
                self._now = until
        finally:
            self._running = False

    def run_for(self, duration: float, max_events: Optional[int] = None) -> None:
        """Run for ``duration`` simulated time units from now."""
        self.run(until=self._now + duration, max_events=max_events)
