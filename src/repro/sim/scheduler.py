"""Discrete-event scheduler: the heart of the simulated cluster.

Every other subsystem (network, processes, timers, failure injection) is
driven by a single :class:`Scheduler`.  Events are callbacks scheduled at a
simulated time; the scheduler pops them in nondecreasing time order and, for
equal times, in scheduling (FIFO) order, so runs are fully deterministic for
a given seed and workload.

The scheduler deliberately knows nothing about networks or processes; it is
a minimal priority-queue event loop that the rest of the library composes.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Callable, List, Optional


class SimulationError(RuntimeError):
    """Raised when the simulation is driven incorrectly (e.g. scheduling in
    the past or running a finished scheduler)."""


@dataclass(order=True)
class _Event:
    time: float
    seq: int
    fn: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)


class EventHandle:
    """Handle returned by :meth:`Scheduler.at`; allows cancellation.

    Cancellation is lazy: the event stays in the heap but is skipped when it
    reaches the front, which keeps cancellation O(1).
    """

    __slots__ = ("_event",)

    def __init__(self, event: _Event) -> None:
        self._event = event

    def cancel(self) -> None:
        """Prevent the event from firing.  Idempotent; safe after firing."""
        self._event.cancelled = True

    @property
    def cancelled(self) -> bool:
        return self._event.cancelled

    @property
    def time(self) -> float:
        """Simulated time at which the event is (or was) due."""
        return self._event.time


class Scheduler:
    """A deterministic discrete-event scheduler.

    Usage::

        sched = Scheduler()
        sched.after(1.0, lambda: print("one second"))
        sched.run()

    Time is a float in arbitrary units; the library convention is seconds.
    """

    def __init__(self) -> None:
        self._heap: List[_Event] = []
        self._now = 0.0
        self._seq = 0
        self._events_processed = 0
        self._running = False

    @property
    def now(self) -> float:
        """Current simulated time."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Total number of events that have fired."""
        return self._events_processed

    @property
    def pending(self) -> int:
        """Number of queued events, including lazily cancelled ones."""
        return sum(1 for e in self._heap if not e.cancelled)

    def at(self, time: float, fn: Callable[[], None]) -> EventHandle:
        """Schedule ``fn`` to run at absolute simulated time ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule event at {time:.6f} < now {self._now:.6f}"
            )
        event = _Event(time=time, seq=self._seq, fn=fn)
        self._seq += 1
        heapq.heappush(self._heap, event)
        return EventHandle(event)

    def after(self, delay: float, fn: Callable[[], None]) -> EventHandle:
        """Schedule ``fn`` to run ``delay`` time units from now."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay!r}")
        return self.at(self._now + delay, fn)

    def step(self) -> bool:
        """Fire the next event.  Returns False when the queue is empty."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self._now = event.time
            self._events_processed += 1
            event.fn()
            return True
        return False

    def run(
        self,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
    ) -> None:
        """Run events until the queue drains, ``until`` is reached, or
        ``max_events`` have fired in this call.

        ``until`` is inclusive: an event scheduled exactly at ``until`` fires.
        After a bounded run, ``now`` advances to ``until`` if that is later
        than the last event fired, so repeated ``run(until=...)`` calls
        advance time monotonically even through quiet periods.
        """
        if self._running:
            raise SimulationError("scheduler re-entered from within an event")
        self._running = True
        fired = 0
        try:
            while self._heap:
                if max_events is not None and fired >= max_events:
                    return
                head = self._heap[0]
                if head.cancelled:
                    heapq.heappop(self._heap)
                    continue
                if until is not None and head.time > until:
                    break
                heapq.heappop(self._heap)
                self._now = head.time
                self._events_processed += 1
                fired += 1
                head.fn()
            if until is not None and until > self._now:
                self._now = until
        finally:
            self._running = False

    def run_for(self, duration: float, max_events: Optional[int] = None) -> None:
        """Run for ``duration`` simulated time units from now."""
        self.run(until=self._now + duration, max_events=max_events)
