"""Discrete-event scheduler: the heart of the simulated cluster.

Every other subsystem (network, processes, timers, failure injection) is
driven by a single :class:`Scheduler`.  Events are callbacks scheduled at a
simulated time; the scheduler pops them in nondecreasing time order and, for
equal times, in scheduling (FIFO) order, so runs are fully deterministic for
a given seed and workload.

The scheduler deliberately knows nothing about networks or processes; it is
a minimal priority-queue event loop that the rest of the library composes.

Performance notes (see docs/simulator.md, "Event-loop internals"):

* Events are ``__slots__`` objects ordered by a precomputed ``(time, seq)``
  key, so heap sift comparisons are one tuple compare instead of two tuple
  constructions per comparison.
* :meth:`Scheduler.at_call` / :meth:`after_call` carry a single argument
  alongside the callback, letting hot callers (the network's delivery
  path, periodic timers) avoid allocating a closure per event.
* :meth:`Scheduler.rearm` re-pushes a *fired* event object at a new time,
  so periodic timers reuse one event + handle for their whole life.
* Cancellation stays lazy (O(1)), but the scheduler counts cancelled
  events still sitting in the heap and compacts the heap when they exceed
  :data:`COMPACT_MIN` *and* outnumber the live events — long churn runs
  no longer accumulate dead heartbeat timers.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, List, Optional


class SimulationError(RuntimeError):
    """Raised when the simulation is driven incorrectly (e.g. scheduling in
    the past or running a finished scheduler)."""


_NO_ARG = object()  # sentinel: "call fn with no argument"

# Compact the heap when more than COMPACT_MIN cancelled events are queued
# and they make up over half of the heap.
COMPACT_MIN = 64


class _Event:
    __slots__ = ("key", "fn", "arg", "cancelled", "in_heap")

    def __init__(self, key: tuple, fn: Callable, arg: Any) -> None:
        self.key = key
        self.fn = fn
        self.arg = arg
        self.cancelled = False
        self.in_heap = True

    def __lt__(self, other: "_Event") -> bool:
        return self.key < other.key


class EventHandle:
    """Handle returned by :meth:`Scheduler.at`; allows cancellation.

    Cancellation is lazy: the event stays in the heap but is skipped when it
    reaches the front, which keeps cancellation O(1).  The scheduler tracks
    how many cancelled events are queued and compacts the heap when they
    dominate it.
    """

    __slots__ = ("_event", "_scheduler")

    def __init__(self, event: _Event, scheduler: "Scheduler") -> None:
        self._event = event
        self._scheduler = scheduler

    def cancel(self) -> None:
        """Prevent the event from firing.  Idempotent; safe after firing."""
        event = self._event
        if event.cancelled:
            return
        event.cancelled = True
        if event.in_heap:
            self._scheduler._note_cancelled()

    @property
    def cancelled(self) -> bool:
        return self._event.cancelled

    @property
    def time(self) -> float:
        """Simulated time at which the event is (or was) due."""
        return self._event.key[0]


class Scheduler:
    """A deterministic discrete-event scheduler.

    Usage::

        sched = Scheduler()
        sched.after(1.0, lambda: print("one second"))
        sched.run()

    Time is a float in arbitrary units; the library convention is seconds.
    """

    def __init__(self) -> None:
        self._heap: List[_Event] = []
        self._now = 0.0
        self._seq = 0
        self._events_processed = 0
        self._running = False
        self._live = 0  # events queued and not cancelled
        self._cancelled_in_heap = 0  # lazily cancelled, awaiting pop/compact

    @property
    def now(self) -> float:
        """Current simulated time."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Total number of events that have fired."""
        return self._events_processed

    @property
    def pending(self) -> int:
        """Number of queued live events, excluding lazily cancelled ones.

        O(1): maintained as a counter rather than scanned from the heap.
        """
        return self._live

    @property
    def heap_size(self) -> int:
        """Raw heap length, including lazily cancelled events."""
        return len(self._heap)

    # -- scheduling ----------------------------------------------------------

    def at(self, time: float, fn: Callable[[], None]) -> EventHandle:
        """Schedule ``fn`` to run at absolute simulated time ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule event at {time:.6f} < now {self._now:.6f}"
            )
        event = _Event((time, self._seq), fn, _NO_ARG)
        self._seq += 1
        self._live += 1
        heapq.heappush(self._heap, event)
        return EventHandle(event, self)

    def after(self, delay: float, fn: Callable[[], None]) -> EventHandle:
        """Schedule ``fn`` to run ``delay`` time units from now."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay!r}")
        return self.at(self._now + delay, fn)

    def at_call(self, time: float, fn: Callable[[Any], None], arg: Any) -> EventHandle:
        """Fast path: schedule ``fn(arg)`` at ``time``.

        Storing the argument on the event (instead of closing over it)
        saves one closure allocation per event — the dominant allocation
        in message-heavy runs.
        """
        if time < self._now:
            raise SimulationError(
                f"cannot schedule event at {time:.6f} < now {self._now:.6f}"
            )
        event = _Event((time, self._seq), fn, arg)
        self._seq += 1
        self._live += 1
        heapq.heappush(self._heap, event)
        return EventHandle(event, self)

    def after_call(self, delay: float, fn: Callable[[Any], None], arg: Any) -> EventHandle:
        """Fast path: schedule ``fn(arg)`` to run ``delay`` from now."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay!r}")
        return self.at_call(self._now + delay, fn, arg)

    def rearm(self, handle: EventHandle, delay: float) -> EventHandle:
        """Re-push a *fired* event at ``now + delay``, reusing its event
        object and handle (no allocation).  Periodic timers use this so a
        million ticks cost one event object, not a million.

        The event must not currently be queued; its cancelled flag is
        cleared (re-arming an event is scheduling it anew).
        """
        if delay < 0:
            raise SimulationError(f"negative delay {delay!r}")
        event = handle._event
        if event.in_heap:
            raise SimulationError("cannot rearm an event that is still queued")
        event.key = (self._now + delay, self._seq)
        self._seq += 1
        event.cancelled = False
        event.in_heap = True
        self._live += 1
        heapq.heappush(self._heap, event)
        return handle

    # -- cancellation bookkeeping --------------------------------------------

    def _note_cancelled(self) -> None:
        self._live -= 1
        self._cancelled_in_heap += 1
        if (
            self._cancelled_in_heap > COMPACT_MIN
            and self._cancelled_in_heap * 2 > len(self._heap)
        ):
            self._compact()

    def _compact(self) -> None:
        """Drop lazily cancelled events and re-heapify the survivors."""
        live = []
        append = live.append
        for event in self._heap:
            if event.cancelled:
                event.in_heap = False
            else:
                append(event)
        self._heap = live
        heapq.heapify(live)
        self._cancelled_in_heap = 0

    # -- running -------------------------------------------------------------

    def step(self) -> bool:
        """Fire the next event.  Returns False when the queue is empty."""
        heap = self._heap
        pop = heapq.heappop
        while heap:
            event = pop(heap)
            event.in_heap = False
            if event.cancelled:
                self._cancelled_in_heap -= 1
                continue
            self._now = event.key[0]
            self._events_processed += 1
            self._live -= 1
            arg = event.arg
            if arg is _NO_ARG:
                event.fn()
            else:
                event.fn(arg)
            return True
        return False

    def run(
        self,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
    ) -> None:
        """Run events until the queue drains, ``until`` is reached, or
        ``max_events`` have fired in this call.

        ``until`` is inclusive: an event scheduled exactly at ``until`` fires.
        After a bounded run, ``now`` advances to ``until`` if that is later
        than the last event fired, so repeated ``run(until=...)`` calls
        advance time monotonically even through quiet periods.
        """
        if self._running:
            raise SimulationError("scheduler re-entered from within an event")
        self._running = True
        heap = self._heap
        pop = heapq.heappop
        no_arg = _NO_ARG
        try:
            if until is None and max_events is None:
                # Hot unbounded loop: no bound checks per iteration.
                while heap:
                    head = pop(heap)
                    head.in_heap = False
                    if head.cancelled:
                        self._cancelled_in_heap -= 1
                        continue
                    self._now = head.key[0]
                    self._events_processed += 1
                    self._live -= 1
                    arg = head.arg
                    if arg is no_arg:
                        head.fn()
                    else:
                        head.fn(arg)
                    # An event may cancel-and-compact, invalidating `heap`.
                    heap = self._heap
                return
            fired = 0
            while heap:
                if max_events is not None and fired >= max_events:
                    return
                head = heap[0]
                if head.cancelled:
                    pop(heap)
                    head.in_heap = False
                    self._cancelled_in_heap -= 1
                    continue
                head_time = head.key[0]
                if until is not None and head_time > until:
                    break
                pop(heap)
                head.in_heap = False
                self._now = head_time
                self._events_processed += 1
                self._live -= 1
                fired += 1
                arg = head.arg
                if arg is no_arg:
                    head.fn()
                else:
                    head.fn(arg)
                heap = self._heap
            if until is not None and until > self._now:
                self._now = until
        finally:
            self._running = False

    def run_for(self, duration: float, max_events: Optional[int] = None) -> None:
        """Run for ``duration`` simulated time units from now."""
        self.run(until=self._now + duration, max_events=max_events)
