"""Deterministic randomness for simulations.

All stochastic choices in the library (latency jitter, drop decisions,
workload inter-arrival times, failure injection) draw from a
:class:`SimRandom` owned by the environment, so a run is reproducible from
its seed alone.  Subsystems that need independent streams fork child
generators with :meth:`SimRandom.fork`, which derives a new seed
deterministically — adding a new subsystem does not perturb the draws seen
by existing ones.
"""

from __future__ import annotations

import random
from typing import List, Sequence, TypeVar

T = TypeVar("T")


class SimRandom:
    """A seeded random stream with deterministic forking."""

    def __init__(self, seed: int = 0) -> None:
        self._seed = seed
        self._rng = random.Random(seed)
        self._fork_count = 0

    @property
    def seed(self) -> int:
        return self._seed

    def fork(self, label: str = "") -> "SimRandom":
        """Derive an independent child stream.

        The child seed depends only on the parent seed, the fork index and
        ``label``, never on how many numbers the parent has drawn.
        """
        self._fork_count += 1
        child_seed = hash((self._seed, self._fork_count, label)) & 0x7FFFFFFF
        return SimRandom(child_seed)

    def uniform(self, lo: float, hi: float) -> float:
        return self._rng.uniform(lo, hi)

    def expovariate(self, rate: float) -> float:
        return self._rng.expovariate(rate)

    def random(self) -> float:
        return self._rng.random()

    def randint(self, lo: int, hi: int) -> int:
        return self._rng.randint(lo, hi)

    def chance(self, probability: float) -> bool:
        """True with the given probability."""
        if probability <= 0.0:
            return False
        if probability >= 1.0:
            return True
        return self._rng.random() < probability

    def choice(self, seq: Sequence[T]) -> T:
        return self._rng.choice(seq)

    def sample(self, seq: Sequence[T], k: int) -> List[T]:
        return self._rng.sample(list(seq), k)

    def shuffle(self, items: List[T]) -> None:
        self._rng.shuffle(items)
