"""Conservative-window parallel simulation across OS processes.

The :class:`~repro.sim.sharded.ShardedScheduler` is an exact K-way merge
on one core; this module is the multi-core step the ROADMAP's "Raw
speed" item left open.  The node population is partitioned by a scenario
plan (:mod:`repro.deploy.scenarios` — ``addresses()`` / ``owners()`` /
``build()``); each partition runs a full private ``Environment`` (its
own scheduler, network shard, protocol state) inside one of W worker
processes, and the engine advances everyone in lockstep windows of the
cross-partition lookahead (Chandy-Misra-Bryant, with the window barrier
playing the null message):

1.  **Window j**: every partition runs ``scheduler.run(until=(j+1)·L)``
    where ``L = cross_shard_lookahead(latency)``.  Any envelope whose
    destination lives on another partition was captured by the
    :class:`~repro.runtime.parallel_backend.PartitionFabric` instead of
    entering the local heap.
2.  **Barrier**: captured envelopes are encoded with the PR-8 wire codec
    (``encode_data_frames``), wrapped in :class:`~repro.net.wire.
    parallel.WindowData` frames, and routed through the parent hub.  A
    worker announces the barrier with :class:`WindowDone` *every*
    window, sends included or not, and waits for the hub's
    :class:`WindowGo` — so no worker ever outruns a message bound for
    its past.
3.  **Injection**: inbound envelopes are sorted by ``(deliver_time,
    source partition, capture order)`` — every term a pure function of
    the capture process, not of W — and scheduled at their original
    deadlines.  A send in window j has ``send_time > j·L``, hence
    ``deliver_time > (j+1)·L``: always the next window's future, never
    the past.

**Determinism is the contract, not a best effort.**  The same
partitioning at any W executes the identical windowed protocol — the
W=1 run *is* the serial reference — so per-partition delivery digests
are byte-identical across W and the merged fingerprint is
W-independent.  Three mechanics make that hold: every cross-partition
envelope round-trips the codec even between partitions sharing a worker
(so payload identity never depends on placement), per-partition seeds
derive from ``(scenario seed, partition)`` alone, and every worker —
including W=1 — runs in a spawned child with a pinned
``PYTHONHASHSEED`` (``SimRandom.fork`` hashes label strings).

Wall-clock is injected (``clock=time.perf_counter``), never read here:
the engine itself stays RL001-clean and deterministic.  A second
injected clock (``cpu_clock=time.process_time``) measures each
process's *CPU seconds* over the measured window — process time
excludes barrier waits, so ``serial wall / (max worker CPU + hub CPU)``
is the run's critical-path speedup: what wall-clock shows once the host
has at least W+1 cores, measurable honestly even on a smaller host.
"""

from __future__ import annotations

import hashlib
import multiprocessing
import os
import traceback
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.net.wire.codec import (
    CodecError,
    FRAME_CONTROL,
    decode_frame,
    encode_control_frame,
    encode_data_frames,
)
from repro.net.wire.parallel import (  # registers kinds 91-95 on import
    WindowData,
    WindowDone,
    WindowGo,
    WorkerFault,
    WorkerReport,
)
from repro.sim.params import SimParams
from repro.sim.scheduler import SimulationError
from repro.sim.sharded import cross_shard_lookahead

# Hard ceiling on waiting for children to exit after the run completes
# (mirrors repro.deploy.launcher).
_JOIN_TIMEOUT = 20.0
# A worker silent for this long mid-window is declared lost: the barrier
# surfaces a clean error instead of hanging (the worker-crash contract).
DEFAULT_BARRIER_TIMEOUT = 120.0
# Worker reports travel over pipes, not datagrams — allow big payloads.
_REPORT_MAX_BYTES = 1 << 24


class ParallelError(RuntimeError):
    """A parallel run failed structurally: a worker died or faulted
    mid-window, a barrier timed out, or the plan is unusable."""


@dataclass(frozen=True)
class PartitionPlan:
    """Who owns what: addresses -> partitions -> contiguous worker blocks.

    Worker ``w`` owns partitions ``[w·P/W, (w+1)·P/W)`` — contiguous
    blocks, so a scenario whose ``owners()`` places interacting nodes on
    adjacent partitions keeps that locality within one process.  The
    partition count is part of the *behaviour* (it decides which
    envelopes cross the codec); W is pure execution placement, which is
    why digests are W-invariant only for a fixed P.
    """

    partitions: int
    workers: int
    owners: Dict[str, int]

    def __post_init__(self) -> None:
        if self.partitions < 1:
            raise ParallelError("need at least one partition")
        if not 1 <= self.workers <= self.partitions:
            raise ParallelError(
                f"workers must be in [1, partitions]: "
                f"{self.workers} workers over {self.partitions} partitions"
            )
        for address, pid in self.owners.items():
            if not 0 <= pid < self.partitions:
                raise ParallelError(
                    f"{address!r} assigned to partition {pid} "
                    f"outside [0, {self.partitions})"
                )

    def block(self, worker: int) -> range:
        """The contiguous partition range worker ``worker`` owns."""
        p, w = self.partitions, self.workers
        return range(worker * p // w, (worker + 1) * p // w)

    def worker_of(self, partition: int) -> int:
        for worker in range(self.workers):
            if partition in self.block(worker):
                return worker
        raise ParallelError(f"partition {partition} outside the plan")


@dataclass
class ParallelOutcome:
    """What a parallel run produced, determinism evidence included."""

    ok: bool
    partitions: int
    workers: int
    windows: int
    lookahead: float
    fingerprint: str = ""  # merged global fingerprint, W-independent
    digests: Dict[int, str] = field(default_factory=dict)
    per_partition: Dict[int, Dict[str, Any]] = field(default_factory=dict)
    results: Dict[str, Any] = field(default_factory=dict)
    events: int = 0
    deliveries: int = 0
    envelopes_crossed: int = 0
    alloc_stats: Dict[str, int] = field(default_factory=dict)
    measured: Optional[Dict[str, Any]] = None
    errors: List[str] = field(default_factory=list)


def merged_fingerprint(digests: Dict[int, str]) -> str:
    """Fold per-partition digests (in partition order) into one global
    fingerprint: equal partition digests => equal fingerprint, at any W."""
    fold = hashlib.sha256()
    for pid in sorted(digests):
        fold.update(f"{pid}|{digests[pid]}\n".encode("ascii"))
    return fold.hexdigest()


def _window_targets(duration: float, lookahead: float) -> List[float]:
    """Absolute end times of every window: multiples of the lookahead,
    the last clamped to the scenario duration.  Computed identically by
    the hub and every worker (multiplication, never accumulation)."""
    if duration <= 0.0:
        raise ParallelError(f"scenario duration must be positive: {duration}")
    targets = []
    j = 0
    while True:
        target = (j + 1) * lookahead
        if target >= duration:
            targets.append(duration)
            return targets
        targets.append(target)
        j += 1


def _scenario_latency(scenario) -> Any:
    latency = getattr(scenario, "latency", None)
    if latency is None:
        from repro.deploy.scenarios import LATENCY

        latency = LATENCY
    return latency


# -- worker side -------------------------------------------------------------


class _Partition:
    """One partition's world inside a worker: env, digest, counters."""

    def __init__(self, scenario, pid: int, plan: PartitionPlan, params) -> None:
        from repro.metrics.digest import DeliveryDigest
        from repro.proc.env import Environment
        from repro.runtime.parallel_backend import ParallelRuntime

        self.pid = pid
        self.runtime = ParallelRuntime(
            seed=scenario.seed + pid,
            partition=pid,
            owners=plan.owners,
            params=params,
        )
        self.env = Environment(
            latency=_scenario_latency(scenario), runtime=self.runtime
        )
        self.fabric = self.runtime.fabric
        self.digest = DeliveryDigest(self.env.network)
        local = [a for a, owner in plan.owners.items() if owner == pid]
        self.state = scenario.build(self.env, local)
        self.expired = 0  # final-window captures that can never deliver

    def snapshot(self) -> Dict[str, Any]:
        alloc = dict(getattr(self.env.scheduler, "alloc_stats", None) or {})
        net_alloc = getattr(self.env.network, "alloc_stats", None)
        if net_alloc:
            alloc["fresh_envelopes"] = net_alloc["fresh_envelopes"]
        return {
            "digest": self.digest.hexdigest(),
            "deliveries": self.digest.count,
            "events": self.env.scheduler.events_processed,
            "captured": self.fabric.captured,
            "injected": self.fabric.injected,
            "expired": self.expired,
            "alloc": alloc,
        }


def _worker_main(
    worker: int,
    scenario,
    plan: PartitionPlan,
    params,
    lookahead: float,
    conn,
    clock,
    cpu_clock,
    measure_from: Optional[float],
    fault: Optional[Tuple[int, int]],
) -> None:
    """Child entry point: one OS process = one block of partitions."""
    from repro.net.wire.registry import ensure_registered

    ensure_registered()
    window = -1
    try:
        targets = _window_targets(scenario.duration, lookahead)
        owned = list(plan.block(worker))
        parts = [_Partition(scenario, pid, plan, params) for pid in owned]
        by_pid = {part.pid: part for part in parts}
        worker_by_pid = [
            plan.worker_of(pid) for pid in range(plan.partitions)
        ]
        measuring = False
        measure_t0 = 0.0
        measure_cpu0 = 0.0
        measure_events = 0
        for window, target in enumerate(targets):
            if fault is not None and fault == (worker, window):
                os._exit(3)  # the worker-crash test: die mid-window
            for part in parts:
                part.env.scheduler.run(until=target)
            last = window == len(targets) - 1
            outbound = _drain_outboxes(parts, plan, last, worker_by_pid)
            if last:
                break
            loopback = outbound.pop(worker, [])
            sent = 0
            for dst_worker, frames in sorted(outbound.items()):
                for frame in frames:
                    conn.send_bytes(
                        encode_control_frame(
                            WindowData(window, worker, dst_worker, frame),
                            max_bytes=_REPORT_MAX_BYTES,
                        )
                    )
                    sent += 1
            conn.send_bytes(
                encode_control_frame(WindowDone(window, worker, sent))
            )
            inbound = list(loopback)
            while True:
                kind, value = decode_frame(conn.recv_bytes())
                if kind != FRAME_CONTROL:
                    raise ParallelError(
                        f"worker {worker}: data frame outside a "
                        "WindowData wrapper"
                    )
                if value.__class__ is WindowGo:
                    if value.window != window:
                        raise ParallelError(
                            f"worker {worker}: got go for window "
                            f"{value.window} inside window {window}"
                        )
                    break
                inbound.append(value.frame)
            _inject_inbound(inbound, by_pid, plan)
            if (
                clock is not None
                and not measuring
                and measure_from is not None
                and target >= measure_from - 1e-12
            ):
                measuring = True
                measure_t0 = clock()
                if cpu_clock is not None:
                    measure_cpu0 = cpu_clock()
                measure_events = sum(
                    p.env.scheduler.events_processed for p in parts
                )
        measured = None
        if measuring:
            measured = {
                "wall_s": clock() - measure_t0,
                "events": sum(
                    p.env.scheduler.events_processed for p in parts
                )
                - measure_events,
            }
            if cpu_clock is not None:
                # Process time excludes barrier waits: this worker's
                # share of the run's critical path.
                measured["cpu_s"] = cpu_clock() - measure_cpu0
        payload = _worker_results(worker, scenario, parts, measured)
        conn.send_bytes(
            encode_control_frame(
                WorkerReport(worker, payload), max_bytes=_REPORT_MAX_BYTES
            )
        )
        conn.close()
    except BaseException:
        try:
            conn.send_bytes(
                encode_control_frame(
                    WorkerFault(worker, window, traceback.format_exc()),
                    max_bytes=_REPORT_MAX_BYTES,
                )
            )
            conn.close()
        except Exception:
            pass
        os._exit(1)
    os._exit(0)


def _drain_outboxes(
    parts: List[_Partition],
    plan: PartitionPlan,
    last: bool,
    worker_by_pid: List[int],
) -> Dict[int, List[bytes]]:
    """Collect every partition's captured envelopes (partition order =
    capture order within each source) into encoded frames per
    destination worker.  After the final window nothing can deliver any
    more (every capture's deadline is past the duration), so the
    envelopes are recycled unsent — identically at every W."""
    outbound: Dict[int, List[bytes]] = {}
    for part in parts:
        captured = part.fabric.take_outbox()
        if not captured:
            continue
        if last:
            part.expired += len(captured)
            part.fabric.recycle(captured)
            continue
        owners = plan.owners
        per_worker: Dict[int, List[Any]] = {}
        for envelope in captured:
            dst_worker = worker_by_pid[owners[envelope.dst]]
            per_worker.setdefault(dst_worker, []).append(envelope)
        for dst_worker, envelopes in per_worker.items():
            frames, rejects = encode_data_frames(envelopes)
            if rejects:
                # An unencodable cross-partition payload cannot be
                # silently dropped — that would fork behaviour from a
                # run where the destination was local.
                envelope, reason = rejects[0]
                raise ParallelError(
                    f"cross-partition envelope {envelope.src}->"
                    f"{envelope.dst} not codec-encodable: {reason}"
                )
            outbound.setdefault(dst_worker, []).extend(frames)
        part.fabric.recycle(captured)
    return outbound


def _inject_inbound(
    frames: List[bytes],
    by_pid: Dict[int, "_Partition"],
    plan: PartitionPlan,
) -> None:
    """Decode inbound frames and schedule every envelope at its original
    deadline, in ``(deliver_time, source partition, capture order)``
    order.  Within one source partition the frame stream preserves
    capture order, and filtering to this worker's destinations keeps
    relative order — so the sort key sequence is identical at any W."""
    owners = plan.owners
    arrival: Dict[int, int] = {}  # per-source-partition capture counter
    batches: Dict[int, List[Tuple[float, int, int, Any]]] = {}
    for frame in frames:
        _, envelopes = decode_frame(frame)
        for envelope in envelopes:
            src_pid = owners[envelope.src]
            seq = arrival.get(src_pid, 0)
            arrival[src_pid] = seq + 1
            batches.setdefault(owners[envelope.dst], []).append(
                (envelope.deliver_time, src_pid, seq, envelope)
            )
    for dst_pid in sorted(batches):
        part = by_pid[dst_pid]
        inject = part.fabric.inject
        batch = batches[dst_pid]
        batch.sort(key=lambda entry: entry[:3])
        for deliver_time, _, _, envelope in batch:
            inject(deliver_time, envelope)


def _worker_results(
    worker: int, scenario, parts: List[_Partition], measured
) -> Dict[str, Any]:
    from repro.deploy.scenarios import merge_results

    return {
        "worker": worker,
        "partitions": {
            str(part.pid): part.snapshot() for part in parts
        },
        "results": merge_results(
            scenario.results(part.state) for part in parts
        ),
        "measured": measured,
    }


# -- hub side ----------------------------------------------------------------


def _recv_frame(conn, child, poll_s: float, timeout: float, what: str) -> bytes:
    """One frame off a worker pipe, failing cleanly — never hanging — if
    the worker dies or goes silent (the barrier-crash contract)."""
    waited = 0.0
    while True:
        if conn.poll(poll_s):
            try:
                return conn.recv_bytes()
            except EOFError:
                raise ParallelError(
                    f"{child.name} closed its pipe during {what}"
                ) from None
        if not child.is_alive():
            # One grace poll: the fault frame may still be in flight.
            if conn.poll(0.5):
                continue
            raise ParallelError(
                f"{child.name} died during {what} "
                f"(exit code {child.exitcode})"
            )
        waited += poll_s
        if waited >= timeout:
            raise ParallelError(
                f"{child.name} silent for {timeout:.0f}s during {what}"
            )


def run_parallel(
    scenario,
    partitions: int = 4,
    workers: int = 2,
    params: Optional[SimParams] = None,
    lookahead: Optional[float] = None,
    clock: Optional[Callable[[], float]] = None,
    cpu_clock: Optional[Callable[[], float]] = None,
    measure_from: Optional[float] = None,
    barrier_timeout: float = DEFAULT_BARRIER_TIMEOUT,
    hash_seed: str = "0",
    _fault: Optional[Tuple[int, int]] = None,
) -> ParallelOutcome:
    """Run ``scenario`` partitioned ``partitions`` ways across
    ``workers`` processes; return digests, stats and merged results.

    Raises :class:`ParallelError` on structural failure (worker death,
    barrier timeout, unusable plan); scenario-level anomalies land in
    ``outcome.errors``.  ``clock`` (e.g. ``time.perf_counter``) plus
    ``measure_from`` turn on wall-clock measurement of the window run
    from the first barrier at/after ``measure_from``; ``cpu_clock``
    (e.g. ``time.process_time``) additionally records per-process CPU
    seconds over that window — both injected, so the engine itself
    never reads a clock.
    """
    params = params if params is not None else SimParams()
    plan = PartitionPlan(partitions, workers, scenario.owners(partitions))
    if lookahead is None:
        try:
            lookahead = cross_shard_lookahead(_scenario_latency(scenario), params)
        except SimulationError as exc:
            raise ParallelError(str(exc)) from None
    targets = _window_targets(scenario.duration, lookahead)

    context = multiprocessing.get_context("spawn")
    pipes = [context.Pipe(duplex=True) for _ in range(workers)]
    # Every worker (W=1 included) runs under a pinned hash seed:
    # SimRandom.fork hashes label strings, so digests only compare
    # between processes hashing strings identically.
    saved = os.environ.get("PYTHONHASHSEED")
    os.environ["PYTHONHASHSEED"] = hash_seed
    try:
        children = [
            context.Process(
                target=_worker_main,
                args=(
                    worker,
                    scenario,
                    plan,
                    params,
                    lookahead,
                    pipes[worker][1],
                    clock,
                    cpu_clock,
                    measure_from,
                    _fault,
                ),
                daemon=True,
                name=f"sim-worker-{worker}",
            )
            for worker in range(workers)
        ]
        for child in children:
            child.start()
    finally:
        if saved is None:
            os.environ.pop("PYTHONHASHSEED", None)
        else:
            os.environ["PYTHONHASHSEED"] = saved
    conns = []
    for parent_conn, child_conn in pipes:
        # Drop the parent's copy of the child end so a dead worker's
        # pipe raises EOFError here instead of blocking forever.
        child_conn.close()
        conns.append(parent_conn)

    reports: Dict[int, Any] = {}
    measured_hub: Optional[Dict[str, Any]] = None
    hub_t0 = None
    hub_cpu0 = 0.0
    try:
        for window in range(len(targets) - 1):
            routed: List[List[bytes]] = [[] for _ in range(workers)]
            counts = [0] * workers
            for worker in range(workers):
                while True:
                    raw = _recv_frame(
                        conns[worker],
                        children[worker],
                        0.05,
                        barrier_timeout,
                        f"window {window}",
                    )
                    kind, value = decode_frame(raw)
                    if kind != FRAME_CONTROL:
                        raise ParallelError(
                            f"worker {worker} sent a bare data frame "
                            f"at the window-{window} barrier"
                        )
                    cls = value.__class__
                    if cls is WindowDone:
                        break
                    if cls is WindowData:
                        # Forward the original bytes: the hub routes,
                        # it never re-encodes.
                        routed[value.dst_worker].append(raw)
                        counts[value.dst_worker] += 1
                    elif cls is WorkerFault:
                        raise ParallelError(
                            f"worker {value.worker} faulted in window "
                            f"{value.window}:\n{value.error}"
                        )
                    else:
                        raise ParallelError(
                            f"unexpected {cls.__name__} at the "
                            f"window-{window} barrier"
                        )
            for worker in range(workers):
                conn = conns[worker]
                for raw in routed[worker]:
                    conn.send_bytes(raw)
                conn.send_bytes(
                    encode_control_frame(WindowGo(window, counts[worker]))
                )
            if (
                clock is not None
                and hub_t0 is None
                and measure_from is not None
                and targets[window] >= measure_from - 1e-12
            ):
                hub_t0 = clock()
                if cpu_clock is not None:
                    hub_cpu0 = cpu_clock()
        for worker in range(workers):
            raw = _recv_frame(
                conns[worker],
                children[worker],
                0.05,
                barrier_timeout,
                "final report",
            )
            kind, value = decode_frame(raw)
            if kind != FRAME_CONTROL or value.__class__ is WorkerFault:
                detail = (
                    f":\n{value.error}"
                    if value.__class__ is WorkerFault
                    else ""
                )
                raise ParallelError(f"worker {worker} faulted{detail}")
            reports[worker] = value.payload
        if hub_t0 is not None:
            measured_hub = {"wall_s": clock() - hub_t0}
            if cpu_clock is not None:
                measured_hub["cpu_s"] = cpu_clock() - hub_cpu0
    except CodecError as exc:
        raise ParallelError(f"undecodable barrier frame: {exc}") from None
    finally:
        # Closing the hub ends first: a worker still blocked at a
        # barrier gets EOF and exits instead of waiting out the join.
        for conn in conns:
            conn.close()
        for child in children:
            child.join(timeout=_JOIN_TIMEOUT / max(1, workers))
        for child in children:
            if child.is_alive():
                child.terminate()
                child.join(timeout=2.0)

    return _merge_outcome(
        plan, len(targets), lookahead, reports, measured_hub
    )


def _merge_outcome(
    plan: PartitionPlan,
    windows: int,
    lookahead: float,
    reports: Dict[int, Any],
    measured_hub: Optional[Dict[str, Any]],
) -> ParallelOutcome:
    from repro.deploy.scenarios import merge_results

    outcome = ParallelOutcome(
        ok=True,
        partitions=plan.partitions,
        workers=plan.workers,
        windows=windows,
        lookahead=lookahead,
    )
    slices = []
    per_worker_measured = {}
    for worker in sorted(reports):
        payload = reports[worker]
        if not isinstance(payload, dict):
            outcome.errors.append(
                f"worker {worker} reported malformed payload {payload!r}"
            )
            continue
        for pid_str, snap in payload.get("partitions", {}).items():
            pid = int(pid_str)
            outcome.digests[pid] = snap["digest"]
            outcome.per_partition[pid] = snap
            outcome.events += snap["events"]
            outcome.deliveries += snap["deliveries"]
            outcome.envelopes_crossed += snap["captured"]
            for key, count in snap.get("alloc", {}).items():
                outcome.alloc_stats[key] = (
                    outcome.alloc_stats.get(key, 0) + int(count)
                )
        slices.append(payload.get("results", {}))
        if payload.get("measured") is not None:
            per_worker_measured[worker] = payload["measured"]
    missing = [
        pid for pid in range(plan.partitions) if pid not in outcome.digests
    ]
    if missing:
        outcome.errors.append(f"no report for partitions {missing}")
    outcome.results = merge_results(slices)
    outcome.fingerprint = merged_fingerprint(outcome.digests)
    if per_worker_measured or measured_hub:
        outcome.measured = {
            "workers": per_worker_measured,
            "hub": measured_hub,
        }
    outcome.ok = not outcome.errors
    return outcome


def run_serial(
    scenario,
    params: Optional[SimParams] = None,
    clock: Optional[Callable[[], float]] = None,
    cpu_clock: Optional[Callable[[], float]] = None,
    measure_from: Optional[float] = None,
) -> Dict[str, Any]:
    """The single-process comparator: one Environment owning every
    address, no windows, no codec — the sharded-run baseline the
    speedup target is measured against (``params=SimParams(shards=K)``
    for the sharded flavour).  Reports the same measurement shape as a
    worker so the bench can divide like for like."""
    from repro.metrics.digest import DeliveryDigest
    from repro.proc.env import Environment
    from repro.runtime.sim_backend import SimRuntime

    runtime = SimRuntime(seed=scenario.seed, params=params)
    env = Environment(latency=_scenario_latency(scenario), runtime=runtime)
    digest = DeliveryDigest(env.network)
    state = scenario.build(env, scenario.addresses())
    measured = None
    if clock is not None and measure_from is not None:
        env.scheduler.run(until=min(measure_from, scenario.duration))
        t0 = clock()
        cpu0 = cpu_clock() if cpu_clock is not None else 0.0
        events0 = env.scheduler.events_processed
        env.scheduler.run(until=scenario.duration)
        measured = {
            "wall_s": clock() - t0,
            "events": env.scheduler.events_processed - events0,
        }
        if cpu_clock is not None:
            measured["cpu_s"] = cpu_clock() - cpu0
    else:
        env.scheduler.run(until=scenario.duration)
    return {
        "digest": digest.hexdigest(),
        "deliveries": digest.count,
        "events": env.scheduler.events_processed,
        "results": scenario.results(state),
        "measured": measured,
        "alloc": dict(getattr(env.scheduler, "alloc_stats", None) or {}),
    }
