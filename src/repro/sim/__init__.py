"""Discrete-event simulation kernel: scheduler, timers, deterministic RNG."""

from repro.sim.params import SimParams
from repro.sim.rand import SimRandom
from repro.sim.scheduler import EventHandle, Scheduler, SimulationError
from repro.sim.sharded import ShardedScheduler

__all__ = [
    "EventHandle",
    "Scheduler",
    "ShardedScheduler",
    "SimParams",
    "SimRandom",
    "SimulationError",
]
