"""Discrete-event simulation kernel: scheduler, timers, deterministic RNG."""

from repro.sim.rand import SimRandom
from repro.sim.scheduler import EventHandle, Scheduler, SimulationError

__all__ = ["EventHandle", "Scheduler", "SimRandom", "SimulationError"]
