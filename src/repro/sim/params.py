"""Simulation-engine parameters: the knobs that shape the event core.

:class:`SimParams` travels from the caller (``Environment(sim=...)`` or
``SimRuntime(params=...)``) to the engine factory.  The default —
``shards=1`` — is the plain single-queue :class:`~repro.sim.scheduler.
Scheduler`, byte-identical to every frozen fingerprint; ``shards > 1``
selects the locality-sharded engine (:mod:`repro.sim.sharded`), which
executes the *same* canonical (time, seq) order from per-shard queues.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Optional


@dataclass(frozen=True)
class SimParams:
    """Engine selection + tuning for one simulated run.

    ``shards``
        Number of independent event queues.  ``1`` (default) is the
        classic single-heap scheduler.  With more, events are routed by
        locality key (process address / message destination) to per-shard
        queues that advance independently between cross-shard
        interactions — the paper's leaf-locality argument applied to the
        engine itself.  Delivery order is identical for every shard
        count (docs/simulator.md, "Sharded scheduler & allocation
        discipline").

    ``shard_key``
        Optional ``key -> int`` hash used to place a locality key on a
        shard (modulo ``shards``).  The default is a CRC32 of ``str(key)``
        — stable across processes and hash seeds, so sharded runs are
        reproducible without ``PYTHONHASHSEED`` pinning.
    """

    shards: int = 1
    shard_key: Optional[Callable[[Any], int]] = None
    # Declared cross-partition lookahead for the process-parallel engine
    # (repro.sim.parallel): the conservative window between partition
    # barriers.  ``None`` (default) derives it from the latency model's
    # floor via repro.sim.sharded.cross_shard_lookahead; set explicitly
    # to widen windows when the model's floor is pessimistically small.
    lookahead: Optional[float] = None

    def __post_init__(self) -> None:
        if self.shards < 1:
            raise ValueError("shards must be >= 1")
        if self.lookahead is not None and self.lookahead <= 0.0:
            raise ValueError("lookahead must be positive when set")

    def make_scheduler(self):
        """Build the scheduler this parameter set describes."""
        from repro.sim.scheduler import Scheduler
        from repro.sim.sharded import ShardedScheduler

        if self.shards == 1:
            return Scheduler()
        return ShardedScheduler(self)
