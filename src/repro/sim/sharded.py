"""Locality-sharded discrete-event scheduler (``SimParams.shards > 1``).

The paper's scaling argument is that leaf subgroups interact mostly
internally and only rarely across branch boundaries.  This engine applies
the same observation to the simulator: events are routed by a locality
key (process address, message destination) onto per-shard heaps, and the
run loop advances one shard at a time in long uninterrupted bursts,
switching only at branch-boundary interactions.

Correctness is by construction, not by windowing:

* Every event still receives a globally unique ``(time, seq)`` key from
  one shared counter — the *canonical cross-shard merge order*.
* The run loop always executes the shard whose head is the global
  minimum, and keeps executing it while that head precedes a
  **conservative lower bound**: the least head among all other shards
  (capped by ``until``).  A cross-shard insert during the burst lowers
  the bound immediately, so no shard ever runs past an event another
  shard scheduled into its past.
* Consequently the executed order is *exactly* the canonical order — a
  shards=2 run produces byte-identical delivery digests to shards=1.
  The win is mechanical: each burst works a heap that holds one shard's
  events only (cheaper sifts, better locality), and the merge scan runs
  once per burst instead of once per event.

The effective lookahead between shards is the minimum cross-shard
latency: with leaf-local traffic at millisecond spacing and cross-leaf
messages only every few heartbeats, bursts span hundreds of events.
When every event is cross-shard the engine degrades gracefully to a
K-way merge of the same order (correct, just not faster) — see
docs/simulator.md for when ``shards > 1`` is worth switching on.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Dict, List, Optional
from zlib import crc32

from repro.sim.scheduler import (
    COMPACT_MIN,
    Scheduler,
    SimulationError,
    _Event,
    _NO_ARG,
)

_INF = float("inf")


def cross_shard_lookahead(latency, params=None) -> float:
    """The conservative window between partitioned schedulers.

    Any event one partition schedules onto another is a message, and a
    message takes at least the latency model's floor to arrive — so a
    partition that has executed up to ``T`` can safely run to ``T +
    floor`` before looking at anyone else's outbox.  This is the same
    lookahead argument the sharded run loop makes per burst, promoted to
    a fixed window for the process-parallel engine
    (:mod:`repro.sim.parallel`).

    ``params.lookahead`` (:class:`~repro.sim.params.SimParams`) overrides
    the derived floor — e.g. to widen windows for a latency model whose
    floor is pessimistically small.  Raises :class:`SimulationError` when
    no positive window exists (a zero-floor model has no conservative
    lookahead; run single-process instead).
    """
    declared = getattr(params, "lookahead", None)
    window = declared if declared is not None else latency.floor()
    if not window or window <= 0.0:
        raise SimulationError(
            "no conservative lookahead: the latency model's floor is zero "
            "and SimParams.lookahead is unset"
        )
    return window


def default_shard_key(key: Any) -> int:
    """Stable locality hash: CRC32 of ``str(key)`` — identical across
    processes and hash seeds, so sharded runs replay from the seed alone."""
    return crc32(str(key).encode("utf-8"))


class ShardedScheduler(Scheduler):
    """K per-shard event heaps merged in exact canonical (time, seq) order.

    Drop-in for :class:`~repro.sim.scheduler.Scheduler` (the whole
    TimerService/MessageFabric surface, plus the keyed entry points the
    network and process timers use for locality routing).  Construct via
    :meth:`repro.sim.params.SimParams.make_scheduler`.
    """

    def __init__(self, params) -> None:
        super().__init__()
        if params.shards < 2:
            raise SimulationError("ShardedScheduler requires shards >= 2")
        self._nshards = params.shards
        self._heaps: List[List[tuple]] = [[] for _ in range(params.shards)]
        self._shard_key = params.shard_key or default_shard_key
        self._shard_cache: Dict[Any, int] = {}
        self._current = 0  # shard currently executing (0 when idle)
        self._bucket_shard = -1
        # Lower bound on what any *other* shard may still execute; only
        # meaningful while running.  Stored as a heap entry so one tuple
        # compare checks it.
        self._bound: tuple = (_INF, 0, None)
        self._switches = 0  # cross-shard sync points (diagnostics)

    # -- introspection -------------------------------------------------------

    @property
    def heap_size(self) -> int:
        """Total entries across all shard heaps (incl. lazily cancelled)."""
        total = 0
        for heap in self._heaps:
            total += len(heap)
        return total

    @property
    def shards(self) -> int:
        return self._nshards

    @property
    def shard_switches(self) -> int:
        """How many shard bursts the run loop has started — the lower
        this is relative to events processed, the more locality paid off."""
        return self._switches

    def shard_heap_sizes(self) -> List[int]:
        """Raw per-shard heap lengths (incl. lazily cancelled entries) —
        the skew probe: one hot shard means the locality key is not
        spreading load."""
        return [len(heap) for heap in self._heaps]

    @property
    def alloc_stats(self) -> Dict[str, int]:
        """Fleet-wide free-list telemetry: the base counters (pools are
        shared across shards, so fresh/pooled counts already aggregate)
        plus the sharded run loop's own numbers, so ``perf_report``'s
        ``alloc_stats`` probe reports the whole fleet instead of a
        single-queue view."""
        stats = Scheduler.alloc_stats.fget(self)
        stats["shards"] = self._nshards
        stats["shard_switches"] = self._switches
        sizes = self.shard_heap_sizes()
        stats["shard_heap_total"] = sum(sizes)
        stats["shard_heap_max"] = max(sizes) if sizes else 0
        return stats

    def _shard_of(self, key: Any) -> int:
        cache = self._shard_cache
        shard = cache.get(key)
        if shard is None:
            shard = cache[key] = self._shard_key(key) % self._nshards
        return shard

    # -- scheduling ----------------------------------------------------------

    def _schedule(
        self, time: float, fn: Callable, arg: Any, once: bool, shard: int
    ) -> _Event:
        if time < self._now:
            raise SimulationError(
                f"cannot schedule event at {time:.6f} < now {self._now:.6f}"
            )
        if self._bucket is not None and self._bucket_time == time:
            self._bucket = None  # seal: keep (time, seq) order exact
        if once:
            pool = self._event_pool
            if pool:
                event = pool.pop()
                event.time = time
                event.fn = fn
                event.arg = arg
                event.cancelled = False
                event.in_heap = True
                event.batch = False
            else:
                self._fresh_events += 1
                event = _Event(self, time, fn, arg, False, True)
        else:
            event = _Event(self, time, fn, arg, False, False)
        entry = (time, self._seq, event)
        self._seq += 1
        self._live += 1
        heapq.heappush(self._heaps[shard], entry)
        if self._running and shard != self._current and entry < self._bound:
            self._bound = entry
        return event

    def at(self, time: float, fn: Callable[[], None]) -> _Event:
        return self._schedule(time, fn, _NO_ARG, False, self._current)

    def at_call(self, time: float, fn: Callable[[Any], None], arg: Any) -> _Event:
        return self._schedule(time, fn, arg, False, self._current)

    def at_call_once(self, time: float, fn: Callable[[Any], None], arg: Any) -> _Event:
        return self._schedule(time, fn, arg, True, self._current)

    def after_call_keyed(
        self, delay: float, fn: Callable[[Any], None], arg: Any, key: Any
    ) -> _Event:
        """``after_call`` routed to ``key``'s home shard — process timers
        use their owner's address so leaf-local ticks stay leaf-local."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay!r}")
        return self._schedule(
            self._now + delay, fn, arg, False, self._shard_of(key)
        )

    def after_call_keyed_once(
        self, delay: float, fn: Callable[[Any], None], arg: Any, key: Any
    ) -> _Event:
        """Recyclable keyed one-shot (see :meth:`Scheduler.at_call_once`
        for the handle contract)."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay!r}")
        return self._schedule(
            self._now + delay, fn, arg, True, self._shard_of(key)
        )

    def at_call_grouped(
        self, time: float, fn: Callable[[list], None], arg: Any, key: Any = None
    ) -> None:
        """Bucketed batching (see :meth:`Scheduler.at_call_grouped`) with
        shard routing: a bucket lives on one shard, so grouped calls for
        a different shard seal it and open their own."""
        shard = self._current if key is None else self._shard_of(key)
        bucket = self._bucket
        if (
            bucket is not None
            and self._bucket_time == time
            and bucket.fn is fn
            and self._bucket_shard == shard
        ):
            bucket.arg.append(arg)
            self._live += 1
            return
        if time < self._now:
            raise SimulationError(
                f"cannot schedule event at {time:.6f} < now {self._now:.6f}"
            )
        pool = self._event_pool
        if pool:
            event = pool.pop()
            event.time = time
            event.fn = fn
            event.cancelled = False
            event.in_heap = True
            event.batch = True
        else:
            self._fresh_events += 1
            event = _Event(self, time, fn, None, True, True)
        arg_pool = self._arg_pool
        if arg_pool:
            args = arg_pool.pop()
        else:
            self._fresh_lists += 1
            args = []
        args.append(arg)
        event.arg = args
        entry = (time, self._seq, event)
        self._seq += 1
        self._live += 1
        heapq.heappush(self._heaps[shard], entry)
        if self._running and shard != self._current and entry < self._bound:
            self._bound = entry
        self._bucket = event
        self._bucket_time = time
        self._bucket_shard = shard

    def rearm(self, handle: _Event, delay: float) -> _Event:
        """Re-push a fired event into the executing shard (a timer fires
        on its home shard, so re-arming keeps it there)."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay!r}")
        if handle.in_heap:
            raise SimulationError("cannot rearm an event that is still queued")
        if handle.once:
            raise SimulationError("cannot rearm a recycled one-shot event")
        time = self._now + delay
        if self._bucket is not None and self._bucket_time == time:
            self._bucket = None
        handle.time = time
        handle.cancelled = False
        handle.in_heap = True
        heapq.heappush(self._heaps[self._current], (time, self._seq, handle))
        self._seq += 1
        self._live += 1
        return handle

    # -- cancellation bookkeeping --------------------------------------------

    def _note_cancelled(self) -> None:
        self._live -= 1
        self._cancelled_in_heap += 1
        if (
            self._cancelled_in_heap > COMPACT_MIN
            and self._cancelled_in_heap * 2 > self.heap_size
        ):
            self._compact()

    def _compact(self) -> None:
        pool = self._event_pool
        heaps = self._heaps
        for i in range(self._nshards):
            # Amortised: compaction runs only when cancelled events
            # dominate the heaps, not per event.
            live: List[tuple] = []
            append = live.append
            for entry in heaps[i]:
                event = entry[2]
                if event.cancelled:
                    event.in_heap = False
                    if event.once:
                        event.fn = None
                        event.arg = None
                        pool.append(event)
                else:
                    append(entry)
            heapq.heapify(live)
            heaps[i] = live
        self._cancelled_in_heap = 0

    # -- running -------------------------------------------------------------

    def step(self) -> bool:
        """Fire the globally next event (canonical order), regardless of
        shard.  A whole bucket counts as one step."""
        heaps = self._heaps
        while True:
            current = -1
            best = None
            for i in range(self._nshards):
                heap = heaps[i]
                if heap:
                    entry = heap[0]
                    if best is None or entry < best:
                        best = entry
                        current = i
            if current < 0:
                return False
            entry = heapq.heappop(heaps[current])
            event = entry[2]
            event.in_heap = False
            if event.cancelled:
                self._cancelled_in_heap -= 1
                if event.once:
                    event.fn = None
                    event.arg = None
                    self._event_pool.append(event)
                continue
            self._current = current
            self._dispatch(entry[0], event)
            return True

    def run(
        self,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
    ) -> None:
        if self._running:
            raise SimulationError("scheduler re-entered from within an event")
        self._running = True
        heaps = self._heaps
        nshards = self._nshards
        pop = heapq.heappop
        limit = (_INF, 0, None) if until is None else (until, _INF, None)
        fired = 0
        try:
            while True:
                # The globally minimal head picks the next burst's shard —
                # this IS the canonical merge order.
                current = -1
                best = None
                for i in range(nshards):
                    heap = heaps[i]
                    if heap:
                        entry = heap[0]
                        if best is None or entry < best:
                            best = entry
                            current = i
                if current < 0 or not best < limit:
                    break
                # Conservative lower bound: the burst may not run past
                # any other shard's head (or `until`).  Inserts into
                # other shards during the burst lower it on the fly.
                bound = limit
                for i in range(nshards):
                    if i != current:
                        heap = heaps[i]
                        if heap and heap[0] < bound:
                            bound = heap[0]
                self._bound = bound
                self._current = current
                self._switches += 1
                while True:
                    heap = heaps[current]  # compaction may swap the list
                    if not heap:
                        break
                    entry = heap[0]
                    if not entry < self._bound:
                        break
                    if max_events is not None and fired >= max_events:
                        return
                    pop(heap)
                    event = entry[2]
                    event.in_heap = False
                    if event.cancelled:
                        self._cancelled_in_heap -= 1
                        if event.once:
                            event.fn = None
                            event.arg = None
                            self._event_pool.append(event)
                        continue
                    fired += self._dispatch(entry[0], event)
            if until is not None and until > self._now:
                self._now = until
        finally:
            self._running = False
