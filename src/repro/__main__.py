"""Command-line entry point: quick demonstrations of the library.

Usage::

    python -m repro demo                  # vsync groups in 30 seconds
    python -m repro trading  --analysts 150 --duration 8
    python -m repro factory  --cells 120  --duration 8
    python -m repro scale    --workers 64 # hierarchy vs flat cost table
    python -m repro live     --workers 6  # same protocols on wall-clock asyncio
    python -m repro deploy   --nodes 3 --scenario flat   # real OS processes, UDP
"""

from __future__ import annotations

import argparse
import sys

from repro import Environment, FIFO, TOTAL, __version__, build_group
from repro.metrics import print_table


def cmd_demo(args: argparse.Namespace) -> int:
    env = Environment(seed=args.seed)
    nodes, members = build_group(env, "demo", 4)
    log = []
    for m in members:
        m.add_delivery_listener(
            lambda e, me=m.me: log.append((me, e.payload, e.ordering))
        )
    members[0].multicast("hello", FIFO)
    members[1].multicast("ordered", TOTAL)
    env.run_for(1.0)
    nodes[2].crash()
    env.run_for(3.0)
    print(f"deliveries: {len(log)}  (4 members x 2 multicasts)")
    print(f"view after one crash: {list(members[0].view.members)}")
    print("virtual synchrony, totally ordered multicast, automatic view changes.")
    return 0


def cmd_trading(args: argparse.Namespace) -> int:
    from repro.workloads import TradingRoomWorkload

    workload = TradingRoomWorkload(
        analysts=args.analysts, feeds=3, tick_rate=1.5, seed=args.seed
    )
    result = workload.run(duration=args.duration, query_clients=3)
    print_table(
        f"trading room, {int(result.extra['analysts'])} analysts",
        ["metric", "value"],
        [
            ("feed events", result.events_published),
            ("tick p99 (ms)", round(result.latency.p99 * 1000, 2)),
            ("queries answered", f"{result.requests_answered}/{result.requests_sent}"),
            ("query p99 (ms)", round(result.request_latency.p99 * 1000, 2)),
        ],
    )
    return 0


def cmd_factory(args: argparse.Namespace) -> int:
    from repro.workloads import ManufacturingWorkload

    workload = ManufacturingWorkload(cells=args.cells, seed=args.seed)
    result = workload.run(duration=args.duration, reconfigure_at=args.duration / 2)
    print_table(
        f"factory, {int(result.extra['cells'])} work cells",
        ["metric", "value"],
        [
            ("orders completed", f"{result.requests_answered}/{result.requests_sent}"),
            ("order p99 (ms)", round(result.request_latency.p99 * 1000, 2)),
            ("inventory consistent", bool(result.extra["inventory_consistent"])),
        ],
    )
    return 0


def cmd_scale(args: argparse.Namespace) -> int:
    """The paper's pitch in one table: cost of one failure, flat vs hier."""
    from repro.core import LargeGroupParams, build_large_group, build_leader_group
    from repro.net import FixedLatency

    rows = []
    for n in (args.workers // 4, args.workers // 2, args.workers):
        env = Environment(seed=n, latency=FixedLatency(0.002))
        fnodes, fmembers = build_group(env, "flat", n, gossip_interval=None)
        env.run_for(1.0)
        before = env.stats_snapshot()
        fnodes[n // 2].crash()
        env.run_for(5.0)
        flat_touched = sum(
            1 for c in env.stats_since(before).received_by.values() if c
        )

        env2 = Environment(seed=n, latency=FixedLatency(0.002))
        params = LargeGroupParams(resiliency=2, fanout=4)
        leaders = build_leader_group(env2, "svc", params, gossip_interval=None)
        contacts = tuple(r.node.address for r in leaders)
        members = build_large_group(
            env2, "svc", n, params, contacts, gossip_interval=None
        )
        env2.run_for(5.0 + 0.3 * n)
        before2 = env2.stats_snapshot()
        members[n // 2].node.crash()
        env2.run_for(5.0)
        hier_touched = sum(
            1 for c in env2.stats_since(before2).received_by.values() if c
        )
        rows.append((n, flat_touched, hier_touched))
    print_table(
        "processes disturbed by one failure",
        ["members", "flat group", "hierarchical"],
        rows,
        note="the paper's point: hierarchy bounds the blast radius",
    )
    return 0


def cmd_live(args: argparse.Namespace) -> int:
    """Hierarchical service on the wall-clock asyncio engine.

    The exact protocol stack the simulator runs — leaders, leaf
    subgroups, FIFO leaf multicast — on real asyncio timers, with the
    strict virtual-synchrony sanitizer attached.  Exits non-zero if any
    worker is left unplaced, any delivery goes missing, or the sanitizer
    trips (a violation raises out of the run).
    """
    from repro.core import LargeGroupParams, build_large_group, build_leader_group
    from repro.metrics.sanitizer import install_sanitizer
    from repro.net import FixedLatency
    from repro.runtime import AsyncioRuntime

    runtime = AsyncioRuntime(seed=args.seed, time_scale=args.time_scale)
    try:
        env = Environment(latency=FixedLatency(0.002), runtime=runtime)
        params = LargeGroupParams(resiliency=2, fanout=3)
        leaders = build_leader_group(env, "svc", params)
        contacts = tuple(r.node.address for r in leaders)
        members = build_large_group(
            env, "svc", args.workers, params, contacts, join_stagger=0.2
        )
        env.run_for(4.0)

        placed = [m for m in members if m.is_member]
        if len(placed) != args.workers:
            print(f"FAIL: {args.workers - len(placed)} worker(s) unplaced")
            return 1
        sanitizer = install_sanitizer(m.leaf_member for m in placed)
        deliveries = []
        for m in placed:
            m.add_delivery_listener(
                lambda e, me=m.me: deliveries.append((me, e.sender, e.payload))
            )
        sender = placed[0]
        env.scheduler.after(
            0.1, lambda: [sender.leaf_multicast(f"m{i}", FIFO) for i in range(3)]
        )
        env.run_for(2.0)
        counters = sanitizer.check(at_quiescence=True)

        leaf_size = sum(
            1 for m in placed if m.leaf_member.group == sender.leaf_member.group
        )
        expected = 3 * leaf_size
        print(f"workers placed:       {len(placed)}/{args.workers}")
        print(f"leaf deliveries:      {len(deliveries)}/{expected}")
        print(f"sanitizer deliveries: {counters['deliveries_checked']} checked, "
              f"{counters['violations']} violations")
        print(f"logical time:         {env.now:.2f}s "
              f"(time_scale={args.time_scale})")
        if len(deliveries) != expected:
            print("FAIL: delivery count mismatch")
            return 1
        print("wall-clock run sanitizer-clean: virtual synchrony held on asyncio.")
        return 0
    finally:
        runtime.close()


def cmd_deploy(args: argparse.Namespace) -> int:
    """Run a parity scenario as real OS processes over loopback UDP.

    Every node is its own interpreter with its own socket; all group
    traffic crosses the kernel as wire frames.  The merged outcome is
    checked against a fresh sim-engine run of the same plan and the
    strict per-node sanitizers; exits non-zero on any divergence.
    """
    from repro.deploy import run_deployment

    outcome = run_deployment(
        args.scenario,
        nodes=args.nodes,
        size=args.size,
        time_scale=args.time_scale,
    )
    print(f"scenario:  {outcome.scenario}  ({outcome.nodes} OS processes)")
    wire = outcome.wire
    if wire:
        print(
            f"wire:      {wire.get('frames_sent', 0)} frames / "
            f"{wire.get('wire_bytes_sent', 0)} bytes sent, "
            f"{wire.get('envelopes_sent', 0)} envelopes, "
            f"{wire.get('decode_errors', 0)} decode errors"
        )
    counters = outcome.live.get("counters", {})
    if counters:
        print(
            f"sanitizer: {counters.get('deliveries_checked', 0)} deliveries "
            f"checked, {counters.get('violations', 0)} violations"
        )
    if outcome.errors:
        print("FAIL: deployment diverged from the sim reference")
        for error in outcome.errors:
            print(f"  - {error}")
        return 1
    print("deployment parity held: sanitizer-clean across real processes.")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Hierarchical process groups (Cooper & Birman 1989) — demos",
    )
    parser.add_argument("--version", action="version", version=__version__)
    sub = parser.add_subparsers(dest="command")

    p_demo = sub.add_parser("demo", help="vsync groups in 30 seconds")
    p_demo.add_argument("--seed", type=int, default=1)
    p_demo.set_defaults(fn=cmd_demo)

    p_trading = sub.add_parser("trading", help="trading-room workload")
    p_trading.add_argument("--analysts", type=int, default=100)
    p_trading.add_argument("--duration", type=float, default=6.0)
    p_trading.add_argument("--seed", type=int, default=1)
    p_trading.set_defaults(fn=cmd_trading)

    p_factory = sub.add_parser("factory", help="manufacturing workload")
    p_factory.add_argument("--cells", type=int, default=100)
    p_factory.add_argument("--duration", type=float, default=6.0)
    p_factory.add_argument("--seed", type=int, default=1)
    p_factory.set_defaults(fn=cmd_factory)

    p_scale = sub.add_parser("scale", help="failure blast-radius table")
    p_scale.add_argument("--workers", type=int, default=64)
    p_scale.set_defaults(fn=cmd_scale)

    p_live = sub.add_parser("live", help="hierarchical demo on wall-clock asyncio")
    p_live.add_argument("--workers", type=int, default=6)
    p_live.add_argument("--seed", type=int, default=1)
    p_live.add_argument(
        "--time-scale",
        type=float,
        default=0.1,
        help="wall seconds per logical second (0.1 = 10x faster than real time)",
    )
    p_live.set_defaults(fn=cmd_live)

    p_deploy = sub.add_parser(
        "deploy", help="run a parity scenario as real OS processes over UDP"
    )
    p_deploy.add_argument("--nodes", type=int, default=3)
    p_deploy.add_argument(
        "--scenario", choices=("flat", "hier", "hier-reorg"), default="flat"
    )
    p_deploy.add_argument(
        "--size",
        type=int,
        default=None,
        help="group members (flat) or workers (hier); scenario default if unset",
    )
    p_deploy.add_argument(
        "--time-scale",
        type=float,
        default=0.25,
        help="wall seconds per logical second",
    )
    p_deploy.set_defaults(fn=cmd_deploy)

    args = parser.parse_args(argv)
    if not getattr(args, "fn", None):
        parser.print_help()
        return 2
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
