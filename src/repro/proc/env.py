"""The cluster environment: one engine + network + process registry.

An :class:`Environment` bundles a :class:`~repro.runtime.api.Runtime`
(clock, timers, seeded RNG, message fabric), the network and the process
registry — one per run.  It is the single object tests, benchmarks and
services construct::

    env = Environment(seed=7)                 # discrete-event (default)
    members = [Worker(env, f"w{i}") for i in range(5)]
    env.run_for(2.0)

The engine is pluggable: pass ``runtime=AsyncioRuntime(...)`` and the
identical protocol stack runs on wall-clock time instead of simulated
time (see docs/runtime.md).  ``env.scheduler`` is the engine's
:class:`~repro.runtime.api.TimerService` — under the default sim backend
it *is* the :class:`~repro.sim.scheduler.Scheduler`, so existing callers
(and the PR-1 hot paths) are untouched.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, TYPE_CHECKING

from repro.net.latency import LatencyModel
from repro.net.network import Network
from repro.net.packer import CommsParams
from repro.net.stats import StatsSnapshot
from repro.runtime.api import Runtime
from repro.runtime.sim_backend import SimRuntime

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.proc.process import Process


class Environment:
    """Engine + network + RNG + process registry for one run."""

    def __init__(
        self,
        seed: int = 0,
        latency: Optional[LatencyModel] = None,
        drop_probability: float = 0.0,
        duplicate_probability: float = 0.0,
        hardware_multicast: bool = False,
        runtime: Optional[Runtime] = None,
        comms: Optional[CommsParams] = None,
        sim: Optional["SimParams"] = None,
    ) -> None:
        # ``seed`` feeds the default sim engine; an explicitly supplied
        # runtime brings its own root RNG (one seed per run, regardless
        # of engine).  ``sim`` (a repro.sim.SimParams, passed through
        # opaquely — this layer never imports the simulator) shapes the
        # default engine, e.g. ``SimParams(shards=4)`` for the
        # locality-sharded scheduler; ignored when ``runtime`` is given.
        self.runtime = runtime if runtime is not None else SimRuntime(seed, params=sim)
        self.rng = self.runtime.rng
        # The engine's TimerService.  Kept under the historical name:
        # every layer reaches timers through ``env.scheduler``, and under
        # SimRuntime this is literally the Scheduler instance.
        self.scheduler = self.runtime.timers
        # Comms-optimisation knobs (docs/comms.md): packing + piggyback
        # switches read by the network here and by the transport,
        # stability and failure-detection layers at attach time.  The
        # default (all off) is the frozen-baseline behaviour.
        self.comms = comms if comms is not None else CommsParams()
        self.network = Network(
            self.scheduler,
            self.rng.fork("network"),
            latency=latency,
            drop_probability=drop_probability,
            duplicate_probability=duplicate_probability,
            hardware_multicast=hardware_multicast,
            fabric=self.runtime.fabric,
            pack_window=self.comms.pack_window,
        )
        # A deployment fabric (the socket backend) needs the network for
        # its receive path — inbound frames enter the normal delivery
        # pipeline — and for counting codec failures as datagram drops.
        # Duck-typed so this layer stays ignorant of engine internals.
        bind_network = getattr(self.runtime.fabric, "bind_network", None)
        if bind_network is not None:
            bind_network(self.network)
        self._processes: Dict[str, "Process"] = {}
        self._crash_listeners: list = []

    # -- time ----------------------------------------------------------------

    @property
    def now(self) -> float:
        return self.scheduler.now

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> None:
        self.runtime.run(until=until, max_events=max_events)

    def run_for(self, duration: float, max_events: Optional[int] = None) -> None:
        self.runtime.run_for(duration, max_events=max_events)

    # -- processes -------------------------------------------------------------

    def add_process(self, process: "Process") -> None:
        if process.address in self._processes:
            raise ValueError(f"duplicate process address {process.address!r}")
        self._processes[process.address] = process

    def remove_process(self, address: str) -> None:
        self._processes.pop(address, None)

    def process(self, address: str) -> "Process":
        return self._processes[address]

    def has_process(self, address: str) -> bool:
        return address in self._processes

    @property
    def processes(self) -> Iterable["Process"]:
        return list(self._processes.values())

    def live_addresses(self) -> list:
        return [a for a, p in self._processes.items() if p.alive]

    def crash(self, address: str) -> None:
        """Crash the process at ``address`` (no-op if unknown or dead)."""
        process = self._processes.get(address)
        if process is not None and process.alive:
            process.crash()

    def on_crash(self, listener) -> None:
        """Register ``listener(address)`` to run whenever a process crashes.

        This is harness scaffolding (used by the oracle failure detector
        and test assertions), not a network facility.
        """
        self._crash_listeners.append(listener)

    def notify_crash(self, address: str) -> None:
        for listener in list(self._crash_listeners):
            listener(address)

    # -- measurement ---------------------------------------------------------

    def stats_snapshot(self) -> StatsSnapshot:
        return self.network.stats.snapshot()

    def stats_since(self, before: StatsSnapshot) -> StatsSnapshot:
        return self.network.stats.since(before)
