"""Actor-style process base class.

A :class:`Process` is one workstation-resident program in the cluster
(simulated or live — the base class is engine-agnostic).  It owns an
address on the network, a payload-type dispatch table, and a set of
timers over the engine's :class:`~repro.runtime.api.TimerService`.
Protocol layers (transport, membership, broadcast, toolkit) attach
themselves to a process by registering handlers for their own payload
types, so one process can host a whole protocol stack without the base
class knowing about any of it.

Crash semantics follow the fail-stop model the paper assumes: a crashed
process stops sending, stops receiving (its endpoint disappears from the
network), and all of its timers are cancelled.  Recovery creates fresh
protocol state (a recovered process rejoins groups like a new member).
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterable, List, Optional, Type

from repro.net.message import Address, Envelope
from repro.proc.env import Environment
from repro.runtime.api import TimerHandle

Handler = Callable[[Any, Address], None]


class Timer:
    """A cancellable (optionally periodic) timer owned by a process.

    A periodic timer owns exactly one engine timer handle for its whole
    life: each tick *re-arms* the fired handle at the next deadline
    (:meth:`~repro.runtime.api.TimerService.rearm`) instead of allocating
    a fresh closure, event and handle per tick — the dominant allocation
    in heartbeat-heavy runs.

    A one-shot timer uses the engine's recyclable handle-free path
    (``after_call_once``) where available: the engine event returns to
    the scheduler's free list the moment it fires, so timer-heavy
    features (delayed acks) allocate no engine objects in steady state.
    The recycled handle is never touched after firing — a one-shot marks
    itself cancelled on fire, and :meth:`cancel` bails out on that flag
    before ever reaching the engine handle.

    On the sharded engine both flavours route to the owning process's
    home shard via the keyed entry points, keeping leaf-local timer
    traffic leaf-local.
    """

    __slots__ = ("_process", "_delay", "_fn", "_periodic", "_cancelled", "_handle")

    def __init__(
        self,
        process: "Process",
        delay: float,
        fn: Callable[[], None],
        periodic: bool,
    ) -> None:
        self._process = process
        self._delay = delay
        self._fn = fn
        self._periodic = periodic
        self._cancelled = False
        scheduler = process.env.scheduler
        if periodic:
            keyed = getattr(scheduler, "after_call_keyed", None)
            self._handle: Optional[TimerHandle] = (
                scheduler.after_call(delay, Timer._fire, self)
                if keyed is None
                else keyed(delay, Timer._fire, self, process.address)
            )
        else:
            keyed_once = getattr(scheduler, "after_call_keyed_once", None)
            if keyed_once is not None:
                self._handle = keyed_once(delay, Timer._fire, self, process.address)
            else:
                once = getattr(scheduler, "after_call_once", scheduler.after_call)
                self._handle = once(delay, Timer._fire, self)

    def _fire(self) -> None:
        if self._cancelled or not self._process.alive:
            return
        if self._periodic:
            # Reschedule *before* running the callback (so events the
            # callback schedules at the same instant order after the next
            # tick, exactly as the closure-per-tick implementation did).
            self._process.env.scheduler.rearm(self._handle, self._delay)
        else:
            # A fired one-shot timer is dead: mark it cancelled so the
            # owner's prune sweep can drop it (and so cancel() never
            # touches the now-recycled engine handle).  Timer-heavy
            # features (delayed acks) create thousands of one-shots per
            # process; without this they survive every prune and the
            # sweep goes quadratic.
            self._cancelled = True
        self._fn()

    def cancel(self) -> None:
        # Idempotent, and the sole guard keeping recycled one-shot
        # handles safe: once _cancelled is set (by cancel or by firing)
        # the engine handle is never touched again.
        if self._cancelled:
            return
        self._cancelled = True
        if self._handle is not None:
            self._handle.cancel()

    @property
    def cancelled(self) -> bool:
        return self._cancelled


class Process:
    """One addressable process in the cluster (any engine)."""

    def __init__(self, env: Environment, address: Address) -> None:
        self.env = env
        self.address = address
        self.alive = True
        # Incarnation number: bumped on every recovery, so a rebooted
        # process is distinguishable from its previous life (classical
        # ISIS tagged process ids the same way).  Protocol layers use it
        # to discard channel state belonging to a dead incarnation.
        self.incarnation = 0
        self._handlers: Dict[Type, Handler] = {}
        self._timers: List[Timer] = []
        self._recover_listeners: List[Callable[[], None]] = []
        self._traffic_listeners: List[Callable[[Address], None]] = []
        self._unhandled: List[Any] = []
        # env.network is assigned once in Environment.__init__ and never
        # replaced, so the per-send attribute chain can be cached here.
        self._network = env.network
        env.add_process(self)
        self._network.register(address, self._on_envelope)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "up" if self.alive else "down"
        return f"<{type(self).__name__} {self.address} {state}>"

    # -- messaging -------------------------------------------------------------

    def send(self, dst: Address, payload: Any) -> None:
        """Send a datagram (silently dropped if this process is crashed)."""
        if not self.alive:
            return
        self._network.send(self.address, dst, payload)

    def multicast(self, dsts: Iterable[Address], payload: Any) -> None:
        if not self.alive:
            return
        self._network.multicast(self.address, list(dsts), payload)

    def on(self, payload_type: Type, handler: Handler) -> None:
        """Register ``handler(payload, sender)`` for a payload class."""
        if payload_type in self._handlers:
            raise ValueError(
                f"{self.address}: handler for {payload_type.__name__} already set"
            )
        self._handlers[payload_type] = handler

    def replace_handler(self, payload_type: Type, handler: Handler) -> None:
        self._handlers[payload_type] = handler

    def _on_envelope(self, envelope: Envelope) -> None:
        if not self.alive:
            return
        src = envelope.src
        if self._traffic_listeners:
            # Passive liveness evidence (docs/comms.md): *any* inbound
            # datagram proves its sender was up when it was sent, which
            # lets the failure detector skip redundant heartbeats.
            for fn in self._traffic_listeners:
                fn(src)
        # deliver(), inlined — this is the per-delivery hot path.
        payload = envelope.payload
        handler = self._handlers.get(type(payload))
        if handler is None:
            self.unhandled(payload, src)
        else:
            handler(payload, src)

    def add_traffic_listener(self, fn: Callable[[Address], None]) -> None:
        """Register ``fn(src)`` to observe every inbound datagram's sender
        (before dispatch).  Listeners must be cheap and must not send."""
        self._traffic_listeners.append(fn)

    def deliver(self, payload: Any, sender: Address) -> None:
        """Dispatch a payload to its registered handler (or ``unhandled``)."""
        handler = self._handlers.get(type(payload))
        if handler is None:
            self.unhandled(payload, sender)
        else:
            handler(payload, sender)

    def unhandled(self, payload: Any, sender: Address) -> None:
        """Hook for payloads with no handler; default records them."""
        self._unhandled.append((payload, sender))

    @property
    def unhandled_messages(self) -> List[Any]:
        return list(self._unhandled)

    # -- timers ----------------------------------------------------------------

    def set_timer(self, delay: float, fn: Callable[[], None]) -> Timer:
        """Run ``fn`` once after ``delay`` (unless crashed or cancelled)."""
        timer = Timer(self, delay, fn, periodic=False)
        self._timers.append(timer)
        self._prune_timers()
        return timer

    def every(self, interval: float, fn: Callable[[], None]) -> Timer:
        """Run ``fn`` every ``interval`` until cancelled or crash."""
        timer = Timer(self, interval, fn, periodic=True)
        self._timers.append(timer)
        self._prune_timers()
        return timer

    def _prune_timers(self) -> None:
        if len(self._timers) > 64:
            self._timers = [t for t in self._timers if not t.cancelled]

    # -- lifecycle ---------------------------------------------------------------

    def crash(self) -> None:
        """Fail-stop: stop sending, receiving and all timers."""
        if not self.alive:
            return
        self.alive = False
        self.env.network.unregister(self.address)
        for timer in self._timers:
            timer.cancel()
        self._timers = []
        self.on_crash()
        self.env.notify_crash(self.address)

    def recover(self) -> None:
        """Come back up with fresh protocol state (fail-stop recovery)."""
        if self.alive:
            return
        self.alive = True
        self.incarnation += 1
        self.env.network.register(self.address, self._on_envelope)
        self.on_recover()
        for listener in list(self._recover_listeners):
            listener()

    def add_recover_listener(self, fn: Callable[[], None]) -> None:
        """Attached protocol layers register cleanup to run on recovery."""
        self._recover_listeners.append(fn)

    def on_crash(self) -> None:
        """Subclass hook invoked after a crash."""

    def on_recover(self) -> None:
        """Subclass hook invoked after recovery."""
