"""Request/reply correlation over the datagram network.

ISIS clients interact with services by broadcasting a request and awaiting a
reply; this module provides the point-to-point building block: correlation
ids, per-call timeouts, and a serving side that maps request bodies to reply
values.  Protocol layers use it for control-plane conversations (join
requests, name lookups, state transfer).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional, Type

from repro.net.message import Address
from repro.proc.process import Process

ReplyFn = Callable[[Any, Address], None]
TimeoutFn = Callable[[], None]
ServeFn = Callable[[Any, Address], Any]


@dataclass
class RpcRequest:
    category = "rpc-request"
    request_id: str
    body: Any


@dataclass
class RpcReply:
    category = "rpc-reply"
    request_id: str
    value: Any
    error: Optional[str] = None


class RpcError(RuntimeError):
    """Raised on the serving side to return an error to the caller."""


class Rpc:
    """Attach request/reply support to a process.

    Caller side::

        rpc = Rpc(process)
        rpc.call(server, LookupName("trading"), on_reply=handle,
                 timeout=1.0, on_timeout=retry)

    Server side::

        rpc.serve(LookupName, lambda body, sender: directory[body.name])
    """

    _ids = itertools.count(1)

    def __init__(self, process: Process) -> None:
        self._process = process
        self._pending: Dict[str, ReplyFn] = {}
        self._servers: Dict[Type, ServeFn] = {}
        process.on(RpcRequest, self._on_request)
        process.on(RpcReply, self._on_reply)

    # -- caller ----------------------------------------------------------------

    def call(
        self,
        dst: Address,
        body: Any,
        on_reply: ReplyFn,
        timeout: Optional[float] = None,
        on_timeout: Optional[TimeoutFn] = None,
    ) -> str:
        """Send ``body`` to ``dst``; invoke ``on_reply(value, sender)`` on the
        reply, or ``on_timeout()`` if none arrives within ``timeout``."""
        request_id = f"{self._process.address}#{next(self._ids)}"
        self._pending[request_id] = on_reply
        self._process.send(dst, RpcRequest(request_id=request_id, body=body))
        if timeout is not None:
            self._process.set_timer(
                timeout, lambda: self._expire(request_id, on_timeout)
            )
        return request_id

    def _expire(self, request_id: str, on_timeout: Optional[TimeoutFn]) -> None:
        if self._pending.pop(request_id, None) is not None and on_timeout:
            on_timeout()

    def _on_reply(self, reply: RpcReply, sender: Address) -> None:
        on_reply = self._pending.pop(reply.request_id, None)
        if on_reply is not None:
            on_reply(reply.value, sender)

    # -- server ----------------------------------------------------------------

    def serve(self, body_type: Type, fn: ServeFn) -> None:
        """Answer requests whose body is an instance of ``body_type`` with
        the return value of ``fn(body, sender)``."""
        if body_type in self._servers:
            raise ValueError(f"already serving {body_type.__name__}")
        self._servers[body_type] = fn

    def unserve(self, body_type: Type) -> None:
        self._servers.pop(body_type, None)

    def _on_request(self, request: RpcRequest, sender: Address) -> None:
        fn = self._servers.get(type(request.body))
        if fn is None:
            return  # not served here; the caller's timeout handles it
        try:
            value = fn(request.body, sender)
        except RpcError as exc:
            reply = RpcReply(request_id=request.request_id, value=None, error=str(exc))
        else:
            reply = RpcReply(request_id=request.request_id, value=value)
        self._process.send(sender, reply)
