"""Process runtime: environment, actor base class, RPC helper."""

from repro.proc.env import Environment
from repro.proc.process import Process, Timer
from repro.proc.rpc import Rpc, RpcError, RpcReply, RpcRequest

__all__ = [
    "Environment",
    "Process",
    "Rpc",
    "RpcError",
    "RpcReply",
    "RpcRequest",
    "Timer",
]
