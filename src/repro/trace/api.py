"""Guarded trace entry points — the only trace surface protocol code sees.

The hook contract (enforced by repro-lint RL008): protocol modules never
import the collector or construct spans themselves.  They read the
network's ``trace`` attribute — ``None`` when tracing is off, a
:class:`TraceSink` when on — and guard every hook with one attribute
load and a ``None`` check, which is the entire disabled-path cost::

    trace = self.process.env.network.trace
    if trace is not None:
        trace.local("suspicion", category="failure", name=address)

Causal propagation needs no per-protocol plumbing: the network calls
:meth:`TraceSink.on_deliver_begin` before handing a datagram to its
endpoint and :meth:`on_deliver_end` after, so any send issued while a
delivery callback runs is automatically parented to that delivery span.
Application code starts a fresh request trace with :meth:`root`;
protocol code groups multi-send operations with :meth:`span`.

The sink must never perturb the simulation: it draws no randomness,
schedules no events and mutates nothing but its own span store, so a
traced run's behaviour fingerprint is byte-identical to an untraced one.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Iterator, Optional, Tuple

from repro.net.message import payload_category
from repro.trace.collector import TraceCollector
from repro.trace.span import (
    KIND_DELIVER,
    KIND_DROP,
    KIND_LOCAL,
    KIND_SEND,
    Span,
)

_USE_CURRENT = object()  # sentinel: span() defaults to the current parent


class TraceSink:
    """Per-environment tracing frontend bound to one collector."""

    __slots__ = ("collector", "_scheduler", "_current")

    def __init__(self, collector: TraceCollector, scheduler: Any) -> None:
        self.collector = collector
        self._scheduler = scheduler
        self._current: Optional[Span] = None

    # ----------------------------------------------------------- context

    @property
    def current(self) -> Optional[Span]:
        """The span new work is currently parented to (or ``None``)."""
        return self._current

    def context_ids(self) -> Optional[Tuple[int, int]]:
        """(trace_id, span_id) of the current span — what diagnostics
        (e.g. sanitizer violations) attach to point at causal history."""
        span = self._current
        if span is None:
            return None
        return (span.trace_id, span.span_id)

    # ------------------------------------------------- network hook points

    def on_send(self, envelope: Any, category: str) -> None:
        """Called by the network for every datagram put on the wire."""
        span = self.collector.new_span(
            KIND_SEND,
            category,
            category=category,
            src=envelope.src,
            dst=envelope.dst,
            begin=envelope.send_time,
            parent=self._current,
        )
        envelope.trace = span

    def on_deliver_begin(self, envelope: Any) -> Tuple[Optional[Span], Span]:
        """Open a delivery span and make it the current context.  Returns
        a token for :meth:`on_deliver_end`."""
        now = self._scheduler.now
        parent = envelope.trace
        if parent is not None and parent.end is None:
            parent.end = now  # the send span covers the wire flight
        span = self.collector.new_span(
            KIND_DELIVER,
            payload_category(envelope.payload),
            category=payload_category(envelope.payload),
            src=envelope.src,
            dst=envelope.dst,
            begin=now,
            parent=parent,
        )
        prev = self._current
        self._current = span
        return (prev, span)

    def on_deliver_end(self, token: Tuple[Optional[Span], Span]) -> None:
        prev, span = token
        if span.end is None:
            span.end = self._scheduler.now
        self._current = prev

    def on_drop(self, envelope: Any) -> None:
        """Record a dropped datagram (partition, loss, or dead endpoint)."""
        now = self._scheduler.now
        parent = envelope.trace if envelope.trace is not None else self._current
        if parent is not None and parent.end is None:
            parent.end = now
        self.collector.new_span(
            KIND_DROP,
            "drop",
            category=payload_category(envelope.payload),
            src=envelope.src,
            dst=envelope.dst,
            begin=now,
            end=now,
            parent=parent,
        )

    # ------------------------------------------------ protocol annotations

    def local(
        self,
        name: str,
        category: str = "event",
        process: Optional[str] = None,
        **attrs: Any,
    ) -> Span:
        """Record an instantaneous protocol event under the current span."""
        now = self._scheduler.now
        return self.collector.new_span(
            KIND_LOCAL,
            name,
            category=category,
            src=process,
            begin=now,
            end=now,
            parent=self._current,
            attrs=attrs or None,
        )

    @contextmanager
    def span(
        self,
        name: str,
        category: str = "span",
        parent: Any = _USE_CURRENT,
        process: Optional[str] = None,
        **attrs: Any,
    ) -> Iterator[Span]:
        """Open a span for the duration of a ``with`` block; sends issued
        inside are parented to it.  ``parent`` defaults to the current
        span; pass an explicit span (e.g. a retransmission's original
        send context) or ``None`` to start a new trace."""
        resolved = self._current if parent is _USE_CURRENT else parent
        span = self.collector.new_span(
            KIND_LOCAL,
            name,
            category=category,
            src=process,
            begin=self._scheduler.now,
            parent=resolved,
            attrs=attrs or None,
        )
        prev = self._current
        self._current = span
        try:
            yield span
        finally:
            if span.end is None:
                span.end = self._scheduler.now
            self._current = prev

    def root(
        self,
        name: str,
        category: str = "request",
        process: Optional[str] = None,
        **attrs: Any,
    ) -> Any:
        """Open a new *root* span (a fresh trace) — how application code
        marks the start of one request, broadcast, or experiment step."""
        return self.span(
            name, category=category, parent=None, process=process, **attrs
        )


# ------------------------------------------------------------ installation


def attach(
    env: Any,
    capacity: Optional[int] = None,
    collector: Optional[TraceCollector] = None,
) -> TraceSink:
    """Enable tracing on an environment (mid-run attach is fine, like the
    sanitizer: datagrams already in flight start fresh traces).  Returns
    the sink; its ``.collector`` is the query surface."""
    existing = env.network.trace
    if existing is not None:
        return existing
    if collector is None:
        collector = TraceCollector(capacity=capacity)
    sink = TraceSink(collector, env.scheduler)
    env.network.trace = sink
    return sink


def detach(env: Any) -> Optional[TraceCollector]:
    """Disable tracing; the collector (returned) keeps its spans."""
    sink = env.network.trace
    env.network.trace = None
    return sink.collector if sink is not None else None
