"""The span model of the causal tracing subsystem.

A :class:`Span` is one traced event — a datagram send, a delivery, a
drop, or a protocol-level local event (a flush start, a view install, a
suspicion...).  Spans carry:

* ``trace_id`` — all spans causally downstream of one root share it;
* ``span_id`` — a per-collector counter, allocated in event order, so
  ids are deterministic functions of the simulation (never ``id()`` or
  wall clock);
* ``parent_id`` — the causal parent edge: a delivery's parent is the
  send that produced it, a send's parent is the delivery (or explicit
  span) during which it was issued;
* ``begin`` / ``end`` — simulated times.  A send span begins when the
  datagram leaves and ends when it is delivered (or dropped); ``end``
  stays ``None`` for datagrams still in flight when the run stops.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Tuple

KIND_SEND = "send"
KIND_DELIVER = "deliver"
KIND_DROP = "drop"
KIND_LOCAL = "local"

KINDS = (KIND_SEND, KIND_DELIVER, KIND_DROP, KIND_LOCAL)


class Span:
    """One traced event with a causal parent link.

    A ``__slots__`` class: tracing a steady-state run creates two spans
    per datagram, so spans are allocation-hot whenever tracing is on.
    """

    __slots__ = (
        "span_id",
        "trace_id",
        "parent_id",
        "kind",
        "name",
        "category",
        "src",
        "dst",
        "begin",
        "end",
        "attrs",
    )

    def __init__(
        self,
        span_id: int,
        trace_id: int,
        parent_id: Optional[int],
        kind: str,
        name: str,
        category: str,
        src: Optional[str],
        dst: Optional[str],
        begin: float,
        end: Optional[float] = None,
        attrs: Optional[Dict[str, Any]] = None,
    ) -> None:
        self.span_id = span_id
        self.trace_id = trace_id
        self.parent_id = parent_id
        self.kind = kind
        self.name = name
        self.category = category
        self.src = src
        self.dst = dst
        self.begin = begin
        self.end = end
        self.attrs = attrs

    @property
    def duration(self) -> float:
        """Span length in simulated seconds (0.0 while still open)."""
        if self.end is None:
            return 0.0
        return self.end - self.begin

    @property
    def process(self) -> Optional[str]:
        """The process a span is charged to: deliveries happen at the
        destination, everything else at the source."""
        if self.kind == KIND_DELIVER:
            return self.dst
        return self.src if self.src is not None else self.dst

    def to_tuple(self) -> Tuple:
        """A fully deterministic value-tuple (attrs sorted by key) —
        what the determinism tests compare across same-seed runs."""
        attrs = tuple(sorted(self.attrs.items())) if self.attrs else ()
        return (
            self.span_id,
            self.trace_id,
            self.parent_id,
            self.kind,
            self.name,
            self.category,
            self.src,
            self.dst,
            self.begin,
            self.end,
            attrs,
        )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "span_id": self.span_id,
            "trace_id": self.trace_id,
            "parent_id": self.parent_id,
            "kind": self.kind,
            "name": self.name,
            "category": self.category,
            "src": self.src,
            "dst": self.dst,
            "begin": self.begin,
            "end": self.end,
            "attrs": dict(sorted(self.attrs.items())) if self.attrs else {},
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Span(#{self.span_id} trace={self.trace_id} "
            f"parent={self.parent_id} {self.kind} {self.name!r} "
            f"{self.src}->{self.dst} @{self.begin:.6f}..{self.end})"
        )
