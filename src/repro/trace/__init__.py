"""Deterministic causal tracing for the simulated protocol stack.

The subsystem follows one request (or broadcast, or view change) through
every layer: the network records a span per datagram send/delivery/drop
with causal parent edges, protocol modules annotate flushes, view
installs, suspicions and treecast stages through the guarded
:class:`~repro.trace.api.TraceSink` entry points, and the analysis side
(:mod:`~repro.trace.analysis`, :mod:`~repro.trace.export`) turns the
span store into critical paths, Chrome trace-event JSON, and text trees.

Usage::

    from repro import trace

    sink = trace.attach(env)            # mid-run attach is fine
    with sink.root("request", process="client-0"):
        client.request(...)
    env.scheduler.run_until(...)
    report = trace.critical_path(sink.collector, trace_id=1)
"""

from repro.trace.analysis import (
    CriticalPath,
    ReorgWindow,
    TraceSummary,
    critical_path,
    reorg_windows,
    summarize,
)
from repro.trace.api import TraceSink, attach, detach
from repro.trace.collector import TraceCollector
from repro.trace.export import render_tree, to_chrome_trace
from repro.trace.span import (
    KIND_DELIVER,
    KIND_DROP,
    KIND_LOCAL,
    KIND_SEND,
    KINDS,
    Span,
)

__all__ = [
    "CriticalPath",
    "KIND_DELIVER",
    "KIND_DROP",
    "KIND_LOCAL",
    "KIND_SEND",
    "KINDS",
    "ReorgWindow",
    "Span",
    "TraceCollector",
    "TraceSink",
    "TraceSummary",
    "attach",
    "critical_path",
    "detach",
    "render_tree",
    "reorg_windows",
    "summarize",
    "to_chrome_trace",
]
