"""Critical-path analysis over collected traces.

The paper's scaling claims are statements about per-request message
flows: a coordinator-cohort request costs ``2n`` messages (E1), a
whole-group broadcast in a hierarchical group fans out through log-depth
stages (E8).  Given one trace — the set of spans causally downstream of
a root — this module computes exactly those quantities:

* :func:`summarize` — span/message/drop counts per trace, message counts
  per category (what E1's ``2n`` audit compares against), begin/end.
* :func:`critical_path` — the latency-dominating causal chain: the walk
  from the root to the latest-finishing span.  Its *depth in sends* is
  the number of sequential message hops, which for a treecast broadcast
  is the E8 stage count.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.trace.collector import TraceCollector
from repro.trace.span import KIND_DELIVER, KIND_DROP, KIND_LOCAL, KIND_SEND, Span


@dataclass
class TraceSummary:
    """Aggregate shape of one trace."""

    trace_id: int
    spans: int = 0
    sends: int = 0
    delivers: int = 0
    drops: int = 0
    locals: int = 0
    begin: Optional[float] = None
    end: Optional[float] = None
    sends_by_category: Dict[str, int] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        if self.begin is None or self.end is None:
            return 0.0
        return self.end - self.begin

    def messages(self, categories: Optional[Sequence[str]] = None) -> int:
        """Logical messages (send spans) in the trace; restrict to the
        given categories to audit one protocol's cost (e.g. E1 counts
        only the coordinator-cohort categories)."""
        if categories is None:
            return self.sends
        return sum(self.sends_by_category.get(c, 0) for c in categories)


@dataclass
class CriticalPath:
    """The latency-dominating chain of one trace.

    ``steps`` runs root-first; ``hops`` counts the send spans along it —
    the number of *sequential* message transmissions, i.e. the causal
    depth that E8's log-stage claim bounds.
    """

    trace_id: int
    steps: List[Span] = field(default_factory=list)
    duration: float = 0.0
    hops: int = 0

    def describe(self) -> str:
        """Multi-line text rendering: one step per line, root first."""
        lines = [
            f"critical path of trace {self.trace_id}: "
            f"{len(self.steps)} steps, {self.hops} message hops, "
            f"{self.duration:.6f}s"
        ]
        base = self.steps[0].begin if self.steps else 0.0
        for span in self.steps:
            route = ""
            if span.kind in (KIND_SEND, KIND_DELIVER, KIND_DROP):
                route = f" {span.src}->{span.dst}"
            lines.append(
                f"  +{span.begin - base:.6f}s [{span.kind:>7}] "
                f"{span.name}{route} ({span.duration:.6f}s)"
            )
        return "\n".join(lines)


def summarize(collector: TraceCollector, trace_id: int) -> TraceSummary:
    """Aggregate counts for one trace (see :class:`TraceSummary`)."""
    summary = TraceSummary(trace_id=trace_id)
    for span in collector.trace(trace_id):
        summary.spans += 1
        if span.kind == KIND_SEND:
            summary.sends += 1
            summary.sends_by_category[span.category] = (
                summary.sends_by_category.get(span.category, 0) + 1
            )
        elif span.kind == KIND_DELIVER:
            summary.delivers += 1
        elif span.kind == KIND_DROP:
            summary.drops += 1
        elif span.kind == KIND_LOCAL:
            summary.locals += 1
        if summary.begin is None or span.begin < summary.begin:
            summary.begin = span.begin
        closed = span.end if span.end is not None else span.begin
        if summary.end is None or closed > summary.end:
            summary.end = closed
    return summary


def critical_path(collector: TraceCollector, trace_id: int) -> CriticalPath:
    """The root-to-leaf causal chain ending at the latest-finishing span.

    The chain is found backwards: pick the span of the trace with the
    greatest completion time (ties broken by span id, which is event
    order — deterministic), then follow parent edges up to the root.
    Under a ring buffer the walk stops at the oldest retained ancestor.
    """
    spans = collector.trace(trace_id)
    result = CriticalPath(trace_id=trace_id)
    if not spans:
        return result
    index = {s.span_id: s for s in spans}

    def completion(span: Span) -> float:
        return span.end if span.end is not None else span.begin

    tail = max(spans, key=lambda s: (completion(s), s.span_id))
    chain = [tail]
    current = tail
    while current.parent_id is not None:
        current = index.get(current.parent_id)
        if current is None:
            break
        chain.append(current)
    chain.reverse()
    result.steps = chain
    result.duration = completion(tail) - chain[0].begin
    result.hops = sum(1 for s in chain if s.kind == KIND_SEND)
    return result


@dataclass
class ReorgWindow:
    """One reorganisation's cost, assembled from the reorg spans.

    ``directed`` is when the leader issued the directive, ``handoff``
    when the movers installed their new leaf (state handed over), and
    ``converged`` when the leader saw the new leaf become routable again
    — so ``disruption`` is the window during which requests for the
    moving members could not be routed."""

    leaf_id: str
    new_leaf_id: str
    directed: float
    handoff: Optional[float] = None
    converged: Optional[float] = None

    @property
    def disruption(self) -> Optional[float]:
        if self.converged is None:
            return None
        return self.converged - self.directed


def reorg_windows(collector: TraceCollector) -> List[ReorgWindow]:
    """Pair split-directed / state-handoff / routing-converged spans into
    per-reorg windows (sorted by directive time, then new leaf id)."""
    windows: Dict[str, ReorgWindow] = {}
    for span in collector.spans():
        if span.kind != KIND_LOCAL or not span.attrs:
            continue
        if span.name == "split-directed":
            new_id = span.attrs.get("new_leaf_id")
            if new_id is not None and new_id not in windows:
                windows[new_id] = ReorgWindow(
                    leaf_id=span.attrs.get("leaf_id", ""),
                    new_leaf_id=new_id,
                    directed=span.begin,
                )
        elif span.name == "reorg-state-handoff":
            window = windows.get(span.attrs.get("new_leaf_id"))
            if window is not None and window.handoff is None:
                window.handoff = span.begin
        elif span.name == "reorg-routing-converged":
            window = windows.get(span.attrs.get("leaf_id"))
            if window is not None and window.converged is None:
                window.converged = span.begin
    return sorted(
        windows.values(), key=lambda w: (w.directed, w.new_leaf_id)
    )
