"""Trace exporters: Chrome trace-event JSON and a text tree view.

The Chrome format (one ``{"traceEvents": [...]}`` object; open it in
``chrome://tracing`` or https://ui.perfetto.dev) maps cleanly onto the
span model: each span with a duration becomes a complete (``"X"``)
event, instantaneous spans (drops, local annotations) become instant
(``"i"``) events.  Simulated seconds are exported as microseconds, the
unit the viewers expect.  Processes map to trace-viewer *threads* inside
one *process* per trace, so one request's causal fan-out reads as a
swim-lane diagram.

Everything here is a pure function of the span store: exporting twice,
or on a replayed same-seed run, yields byte-identical output.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional

from repro.trace.collector import TraceCollector
from repro.trace.span import KIND_DELIVER, KIND_DROP, KIND_SEND, Span

_US = 1_000_000  # simulated seconds -> exported microseconds


def to_chrome_trace(
    spans: Iterable[Span],
    clock_end: Optional[float] = None,
) -> Dict[str, Any]:
    """Render spans as a Chrome trace-event JSON object.

    ``clock_end`` closes still-open spans (datagrams in flight when the
    run stopped) at the given simulated time; without it they are
    exported as instants at their begin time.
    """
    span_list = list(spans)
    # Stable thread ids: processes sorted by name, one lane each.
    processes = sorted({s.process for s in span_list if s.process is not None})
    tids = {name: i + 1 for i, name in enumerate(processes)}
    events: List[Dict[str, Any]] = []
    for trace_id in sorted({s.trace_id for s in span_list}):
        events.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": trace_id,
                "tid": 0,
                "args": {"name": f"trace {trace_id}"},
            }
        )
    for name, tid in tids.items():
        for trace_id in sorted({s.trace_id for s in span_list if s.process == name}):
            events.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": trace_id,
                    "tid": tid,
                    "args": {"name": name},
                }
            )
    for s in span_list:
        tid = tids.get(s.process, 0)
        args: Dict[str, Any] = {
            "span_id": s.span_id,
            "parent_id": s.parent_id,
            "kind": s.kind,
        }
        if s.kind in (KIND_SEND, KIND_DELIVER, KIND_DROP):
            args["src"] = s.src
            args["dst"] = s.dst
        if s.attrs:
            for key in sorted(s.attrs):
                args[key] = s.attrs[key]
        end = s.end
        if end is None and clock_end is not None:
            end = max(clock_end, s.begin)
        base = {
            "name": s.name,
            "cat": s.category,
            "pid": s.trace_id,
            "tid": tid,
            "ts": round(s.begin * _US, 3),
            "args": args,
        }
        if end is None or end <= s.begin:
            base["ph"] = "i"
            base["s"] = "t"
        else:
            base["ph"] = "X"
            base["dur"] = round((end - s.begin) * _US, 3)
        events.append(base)
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def render_tree(
    collector: TraceCollector,
    trace_id: int,
    max_spans: Optional[int] = None,
) -> str:
    """ASCII tree of one trace: indentation is causal depth.

    The top-down sibling order is event order (span id), so the tree is
    deterministic and reads like a timeline.  ``max_spans`` truncates
    huge traces with a trailing elision note.
    """
    spans = collector.trace(trace_id)
    if not spans:
        return f"trace {trace_id}: no spans"
    retained = {s.span_id for s in spans}
    children: Dict[Optional[int], List[Span]] = {}
    for s in spans:
        parent = s.parent_id if s.parent_id in retained else None
        children.setdefault(parent, []).append(s)
    base = min(s.begin for s in spans)
    lines = [f"trace {trace_id} ({len(spans)} spans)"]
    emitted = 0
    truncated = False

    def emit(span: Span, depth: int) -> None:
        nonlocal emitted, truncated
        if max_spans is not None and emitted >= max_spans:
            truncated = True
            return
        emitted += 1
        route = ""
        if span.kind in (KIND_SEND, KIND_DELIVER, KIND_DROP):
            route = f" {span.src}->{span.dst}"
        lines.append(
            f"{'  ' * depth}+{span.begin - base:.6f}s "
            f"[{span.kind}] {span.name}{route} ({span.duration:.6f}s)"
        )
        for child in children.get(span.span_id, ()):
            emit(child, depth + 1)

    for root in children.get(None, ()):
        emit(root, 0)
    if truncated:
        lines.append(f"... ({len(spans) - emitted} more spans elided)")
    return "\n".join(lines)
