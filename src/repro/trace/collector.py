"""Span storage and the trace query API.

A :class:`TraceCollector` allocates span/trace ids (plain counters, in
event order — deterministic for a given seed) and stores finished and
in-flight spans either unboundedly (``capacity=None``, the default for
tests and offline analysis) or in a ring buffer that keeps the newest
``capacity`` spans (for long traced runs where only the recent window
matters, mirroring ISIS-era flight recorders).

Protocol code never touches this class — it talks to the guarded
:class:`repro.trace.api.TraceSink` entry points (enforced by repro-lint
RL008).  The collector is the *analysis* surface: queries by trace or
process, ancestor/descendant walks, and the raw span list consumed by
the critical-path analyzer and the exporters.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Dict, List, Optional

from repro.trace.span import Span


class TraceCollector:
    """Deterministic span store with ring-buffer or full capture."""

    def __init__(self, capacity: Optional[int] = None) -> None:
        if capacity is not None and capacity <= 0:
            raise ValueError("capacity must be positive (or None for full capture)")
        self.capacity = capacity
        self._spans = deque(maxlen=capacity) if capacity is not None else []
        self._next_span = 1
        self._next_trace = 1
        self._recorded = 0

    # ------------------------------------------------------------- recording

    def new_span(
        self,
        kind: str,
        name: str,
        category: str = "span",
        src: Optional[str] = None,
        dst: Optional[str] = None,
        begin: float = 0.0,
        end: Optional[float] = None,
        parent: Optional[Span] = None,
        attrs: Optional[Dict[str, Any]] = None,
    ) -> Span:
        """Allocate and store a span.  ``parent=None`` starts a new trace."""
        if parent is None:
            trace_id = self._next_trace
            self._next_trace += 1
            parent_id = None
        else:
            trace_id = parent.trace_id
            parent_id = parent.span_id
        span = Span(
            span_id=self._next_span,
            trace_id=trace_id,
            parent_id=parent_id,
            kind=kind,
            name=name,
            category=category,
            src=src,
            dst=dst,
            begin=begin,
            end=end,
            attrs=attrs,
        )
        self._next_span += 1
        self._recorded += 1
        self._spans.append(span)
        return span

    def clear(self) -> None:
        """Drop stored spans (id counters keep running)."""
        self._spans.clear()

    # --------------------------------------------------------------- queries

    @property
    def spans(self) -> List[Span]:
        """All retained spans in allocation (= event) order."""
        return list(self._spans)

    def __len__(self) -> int:
        return len(self._spans)

    @property
    def recorded(self) -> int:
        """Total spans ever recorded (retained + evicted)."""
        return self._recorded

    @property
    def evicted(self) -> int:
        """Spans lost to the ring buffer (0 under full capture)."""
        return self._recorded - len(self._spans)

    def trace_ids(self) -> List[int]:
        return sorted({s.trace_id for s in self._spans})

    def trace(self, trace_id: int) -> List[Span]:
        """All retained spans of one trace, in event order."""
        return [s for s in self._spans if s.trace_id == trace_id]

    def by_process(self, address: str) -> List[Span]:
        """Spans charged to one process (see :attr:`Span.process`)."""
        return [s for s in self._spans if s.process == address]

    def by_kind(self, kind: str) -> List[Span]:
        return [s for s in self._spans if s.kind == kind]

    def span(self, span_id: int) -> Optional[Span]:
        for s in self._spans:
            if s.span_id == span_id:
                return s
        return None

    def roots(self, trace_id: Optional[int] = None) -> List[Span]:
        """Spans with no retained parent (trace roots; under a ring
        buffer also spans whose parent was evicted)."""
        retained = {s.span_id for s in self._spans}
        out = []
        for s in self._spans:
            if trace_id is not None and s.trace_id != trace_id:
                continue
            if s.parent_id is None or s.parent_id not in retained:
                out.append(s)
        return out

    def children(self, span_id: int) -> List[Span]:
        return [s for s in self._spans if s.parent_id == span_id]

    def ancestors(self, span_id: int) -> List[Span]:
        """Parent chain from the given span up to its trace root
        (nearest first).  Stops early if an ancestor was evicted."""
        index = {s.span_id: s for s in self._spans}
        chain: List[Span] = []
        current = index.get(span_id)
        while current is not None and current.parent_id is not None:
            current = index.get(current.parent_id)
            if current is None:
                break
            chain.append(current)
        return chain

    def descendants(self, span_id: int) -> List[Span]:
        """Everything causally downstream of a span, in event order."""
        reached = {span_id}
        out: List[Span] = []
        # Spans are stored in allocation order and a parent is always
        # allocated before its children, so one forward pass suffices.
        for s in self._spans:
            if s.parent_id in reached:
                reached.add(s.span_id)
                out.append(s)
        return out

    def counts(self) -> Dict[str, int]:
        """Retained span counts per kind."""
        out: Dict[str, int] = {}
        for s in self._spans:
            out[s.kind] = out.get(s.kind, 0) + 1
        return out
