"""The deployment backend: the protocol stack over real UDP sockets.

:class:`SocketRuntime` is the :class:`~repro.runtime.asyncio_backend.
AsyncioRuntime` with the in-memory fabric swapped for a
:class:`SocketFabric`: timers, the logical clock, the callback error
funnel and ``run()`` semantics are inherited unchanged, but any envelope
whose destination appears in the fabric's *address book* is encoded with
the :mod:`repro.net.wire` codec and transmitted as a UDP datagram to
that peer's ``(host, port)``.  Destinations *not* in the book are local
to this OS process and take the same deferred-delivery path as the
asyncio fabric — so one process can host several group members and only
cross-process traffic touches the wire.

The fabric honours the ``MessageFabric`` contract the network relies on:

* ``at_call`` defers both local deliveries and wire transmissions to the
  envelope's deliver time, with in-flight accounting and ``drain()``;
* a PR-5 packer flush (a *list* of envelopes for one destination)
  becomes one multi-record wire frame — packing survives the seam;
* non-envelope callbacks (the packer's own flush timers) relay through
  plain timers, untouched.

Failure containment: an unencodable or oversized payload, a truncated
datagram, a byte-flipped frame — each counts as a drop in the bound
:class:`~repro.net.stats.NetworkStats` (and on the fabric's own
counters) and never raises out of the transport.  Protocol-level errors
raised *by delivery handlers* (including strict sanitizer violations)
are funnelled into the timer service's error list and re-raised out of
``run()``, exactly like timer callbacks on the asyncio backend.
"""

from __future__ import annotations

import asyncio
from typing import Any, Callable, Dict, List, Mapping, Optional, Tuple

from repro.net.message import Address, Envelope
from repro.net.wire.codec import (
    CodecError,
    FRAME_DATA,
    MAX_FRAME_BYTES,
    decode_frame,
    encode_data_frames,
)
from repro.runtime.asyncio_backend import (
    AsyncioRuntime,
    AsyncioTimerHandle,
    AsyncioTimers,
    WallClockError,
    _POLL,
)

Endpoint = Tuple[str, int]


class _Inbound(asyncio.DatagramProtocol):
    """Receive half of the UDP endpoint; everything routes to the fabric."""

    def __init__(self, fabric: "SocketFabric") -> None:
        self._fabric = fabric

    def datagram_received(self, data: bytes, addr: Endpoint) -> None:
        self._fabric._on_datagram(data, addr)

    def error_received(self, exc: Exception) -> None:
        # ICMP errors (e.g. a peer's port closed mid-shutdown) are the
        # datagram service being a datagram service, not a crash.
        self._fabric.socket_errors += 1


class SocketFabric:
    """:class:`~repro.runtime.api.MessageFabric` over one UDP socket."""

    def __init__(
        self,
        timers: AsyncioTimers,
        loop: asyncio.AbstractEventLoop,
        max_frame_bytes: int = MAX_FRAME_BYTES,
    ) -> None:
        self._timers = timers
        self._loop = loop
        self._max_frame_bytes = max_frame_bytes
        # Address book: logical address -> remote (host, port).  Local
        # addresses are exactly the ones NOT in the book.
        self._peers: Dict[Address, Endpoint] = {}
        self._network = None  # bound by Environment via bind_network()
        self._transport: Optional[asyncio.DatagramTransport] = None
        self.dispatched = 0  # datagrams ever handed to the fabric
        self._in_flight = 0
        # Wire telemetry (perf_report --wire; docs/deployment.md).
        self.frames_sent = 0
        self.frames_received = 0
        self.wire_bytes_sent = 0
        self.wire_bytes_received = 0
        self.envelopes_sent = 0
        self.envelopes_received = 0
        self.decode_errors = 0
        self.encode_drops = 0
        self.socket_errors = 0

    # -- endpoint lifecycle --------------------------------------------------

    def open(self, host: str = "127.0.0.1", port: int = 0) -> Endpoint:
        """Bind the UDP socket (call before the loop runs protocols)."""
        if self._transport is not None:
            raise WallClockError("socket fabric already open")
        transport, _ = self._loop.run_until_complete(
            self._loop.create_datagram_endpoint(
                lambda: _Inbound(self), local_addr=(host, port)
            )
        )
        self._transport = transport
        return self.local_endpoint

    @property
    def local_endpoint(self) -> Endpoint:
        if self._transport is None:
            raise WallClockError("socket fabric is not open")
        sockname = self._transport.get_extra_info("sockname")
        return (sockname[0], sockname[1])

    def close(self) -> None:
        transport, self._transport = self._transport, None
        # A shared-loop cluster may close the loop's owner first; a dead
        # loop cannot run the transport's close callbacks (the process is
        # exiting — the OS reclaims the socket).
        if transport is not None and not self._loop.is_closed():
            transport.close()

    # -- wiring --------------------------------------------------------------

    def bind_network(self, network: Any) -> None:
        """Attach the Network whose delivery path receives inbound frames
        (and whose stats absorb codec drops).  Called by Environment."""
        self._network = network

    def set_peers(self, peers: Mapping[Address, Endpoint]) -> None:
        """Replace the address book.  Map only *remote* addresses; a
        logical address absent from the book is delivered in-process."""
        self._peers = dict(peers)

    @property
    def peers(self) -> Mapping[Address, Endpoint]:
        return dict(self._peers)

    # -- MessageFabric contract ----------------------------------------------

    @property
    def now(self) -> float:
        return self._timers.now

    @property
    def in_flight(self) -> int:
        """Datagrams accepted but not yet delivered or transmitted."""
        return self._in_flight

    def at_call(
        self, time: float, fn: Callable[[Any], None], arg: Any
    ) -> AsyncioTimerHandle:
        self.dispatched += 1
        self._in_flight += 1
        cls = arg.__class__
        if cls is Envelope:
            if arg.dst in self._peers:
                return self._timers.at_call(time, self._transmit_one, arg)
        elif cls is list and arg and arg[0].__class__ is Envelope:
            # A packer flush: one destination, many envelopes — held as a
            # batch so it leaves as one multi-record frame.
            if arg[0].dst in self._peers:
                return self._timers.at_call(time, self._transmit_batch, arg)
        return self._timers.at_call(time, self._relay, (fn, arg))

    def _relay(self, pair: Tuple[Callable[[Any], None], Any]) -> None:
        self._in_flight -= 1
        fn, arg = pair
        fn(arg)

    async def drain(self) -> None:
        """Wait until no local deliveries or transmissions are queued."""
        while self._in_flight > 0:
            await asyncio.sleep(_POLL)

    # -- transmit ------------------------------------------------------------

    def _transmit_one(self, envelope: Envelope) -> None:
        self._in_flight -= 1
        self._send_frames((envelope,), self._peers.get(envelope.dst))

    def _transmit_batch(self, envelopes: List[Envelope]) -> None:
        self._in_flight -= 1
        self._send_frames(envelopes, self._peers.get(envelopes[0].dst))

    def _send_frames(self, envelopes, endpoint: Optional[Endpoint]) -> None:
        transport = self._transport
        if transport is None or endpoint is None:
            # Socket closed or peer withdrawn between schedule and fire:
            # the datagrams vanish, as on a real LAN.
            self._count_drops(len(envelopes))
            return
        frames, rejects = encode_data_frames(envelopes, self._max_frame_bytes)
        if rejects:
            self.encode_drops += len(rejects)
            self._count_drops(len(rejects))
        for frame in frames:
            transport.sendto(frame, endpoint)
            self.frames_sent += 1
            self.wire_bytes_sent += len(frame)
        self.envelopes_sent += len(envelopes) - len(rejects)

    def _count_drops(self, count: int) -> None:
        network = self._network
        if network is not None:
            for _ in range(count):
                network.stats.record_drop()

    # -- receive -------------------------------------------------------------

    def _on_datagram(self, data: bytes, addr: Endpoint) -> None:
        self.frames_received += 1
        self.wire_bytes_received += len(data)
        try:
            frame_kind, envelopes = decode_frame(data)
            if frame_kind != FRAME_DATA:
                raise CodecError(f"unexpected frame kind {frame_kind} on "
                                 "the data plane")
        except CodecError:
            self.decode_errors += 1
            self._count_drops(1)
            return
        network = self._network
        if network is None:
            self._count_drops(len(envelopes))
            return
        self.envelopes_received += len(envelopes)
        record_error = self._timers._record_error
        for envelope in envelopes:
            try:
                network.deliver_inbound(envelope)
            except Exception as exc:
                # Handler errors (incl. strict sanitizer violations) take
                # the same funnel as timer callbacks: out of run().
                record_error(exc)

    def wire_stats(self) -> Dict[str, int]:
        """Counter snapshot for reports and smoke output."""
        return {
            "frames_sent": self.frames_sent,
            "frames_received": self.frames_received,
            "wire_bytes_sent": self.wire_bytes_sent,
            "wire_bytes_received": self.wire_bytes_received,
            "envelopes_sent": self.envelopes_sent,
            "envelopes_received": self.envelopes_received,
            "decode_errors": self.decode_errors,
            "encode_drops": self.encode_drops,
            "socket_errors": self.socket_errors,
        }


class SocketRuntime(AsyncioRuntime):
    """Wall-clock engine whose fabric speaks UDP: the deployment on-ramp.

    Usage (one OS process of a deployment)::

        runtime = SocketRuntime(seed=7, time_scale=0.25)
        runtime.open()                      # bind 127.0.0.1, ephemeral port
        env = Environment(runtime=runtime)  # binds network <-> fabric
        ...build local members...
        runtime.connect({"g-2": ("10.0.0.7", 9012), ...})  # remote peers
        env.run_for(5.0)
        runtime.close()

    Peer exchange (who hosts which logical address) is the deploy
    tracker's job — see :mod:`repro.deploy` and ``docs/deployment.md``.
    """

    def __init__(
        self,
        seed: int = 0,
        time_scale: float = 1.0,
        loop: Optional[asyncio.AbstractEventLoop] = None,
        max_frame_bytes: int = MAX_FRAME_BYTES,
    ) -> None:
        super().__init__(seed=seed, time_scale=time_scale, loop=loop)
        # Imported here, not at module top: the registry reaches into
        # every protocol package, and this module is imported by
        # ``repro.runtime`` — which those packages import for the engine
        # contract.  Constructing a SocketRuntime is the first moment the
        # full kind table is genuinely needed.
        from repro.net.wire.registry import ensure_registered

        ensure_registered()
        self.fabric = SocketFabric(self.timers, self._loop, max_frame_bytes)

    def open(self, host: str = "127.0.0.1", port: int = 0) -> Endpoint:
        """Bind the data-plane UDP socket; returns the bound endpoint."""
        return self.fabric.open(host, port)

    @property
    def local_endpoint(self) -> Endpoint:
        return self.fabric.local_endpoint

    def connect(self, peers: Mapping[Address, Endpoint]) -> None:
        """Install the address book mapping remote logical addresses to
        their hosts' UDP endpoints."""
        self.fabric.set_peers(peers)

    def reset_clock(self) -> None:
        """Restart logical time at zero (see ``AsyncioTimers.
        reset_epoch``): deployments align every node's t=0 to the
        tracker's barrier release so absolute-time schedules agree."""
        self.timers.reset_epoch()

    def close(self) -> None:
        self.fabric.close()
        super().close()


def run_cluster(runtimes, duration: float) -> None:
    """Advance several same-loop :class:`SocketRuntime`\\ s together.

    The in-process deployment shape (parity tests, perf runs): N
    runtimes, each with its own sockets, environment and logical clock,
    all multiplexed on ONE asyncio loop — `run()` belongs to a single
    runtime, so a shared-loop cluster needs this driver.  Returns once
    every runtime's clock has advanced by ``duration``; the first
    callback error recorded by any runtime is re-raised.
    """
    if not runtimes:
        return
    loop = runtimes[0].loop
    for runtime in runtimes:
        if runtime.loop is not loop:
            raise WallClockError("run_cluster needs runtimes on one loop")
    targets = [runtime.timers.now + duration for runtime in runtimes]

    async def drive() -> None:
        while True:
            done = True
            for runtime, target in zip(runtimes, targets):
                if runtime.timers._errors:
                    return
                if runtime.timers.now < target:
                    done = False
            if done:
                return
            await asyncio.sleep(_POLL)

    loop.run_until_complete(drive())
    for runtime in runtimes:
        error = runtime.timers.take_error()
        if error is not None:
            raise error
