"""The engine contract: what the protocol stack is allowed to assume.

Everything above this package — processes, the network, transport,
membership, broadcast, the hierarchy, the toolkit — programs against the
small surface defined here and nothing else.  The paper's design is an
*architecture* claim, not a simulator claim: ISIS ran on real
workstations.  Accordingly the group-communication stack is a library,
and an *engine* (a :class:`Runtime` backend) is just one host for it:

:class:`~repro.runtime.sim_backend.SimRuntime`
    The deterministic discrete-event engine (a thin adapter over
    :class:`repro.sim.scheduler.Scheduler`).  Frozen determinism digests
    and the BENCH_core.json perf numbers are defined on this backend.

:class:`~repro.runtime.asyncio_backend.AsyncioRuntime`
    Wall-clock timers on an asyncio event loop with an in-memory asyncio
    message fabric — the identical membership/broadcast/hierarchy code
    serves a live hierarchical service in real time.

The contract has three parts:

* :class:`TimerService` — the clock and timer API (``now``, ``at`` /
  ``after`` / ``at_call`` / ``after_call`` returning cancellable
  :class:`TimerHandle` objects, and the ``rearm`` fast path periodic
  timers rely on).  ``Environment.scheduler`` is a ``TimerService``;
  under the sim backend it *is* the ``Scheduler`` instance, so the hot
  paths tuned in PR 1 pay nothing for the indirection.
* :class:`MessageFabric` — the hook the :class:`~repro.net.network.
  Network` binds to for deferred datagram delivery.  A fabric only needs
  ``now`` and ``at_call``; backends may layer bookkeeping (the asyncio
  fabric counts in-flight datagrams so services can drain cleanly).
* :class:`Runtime` — the bundle an :class:`~repro.proc.env.Environment`
  is built from: ``timers`` + ``fabric`` + a deterministic seeded
  ``rng`` (fork children with ``rng.fork(label)``; one seed governs the
  entire run) + run control (``spawn``, ``run``, ``run_for``,
  ``run_until``).

Rule RL009 (tools/lint) enforces the boundary: no module outside
``repro/sim/`` and ``repro/runtime/`` may import ``repro.sim``.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, Callable, Optional, Protocol, runtime_checkable

from repro.sim.rand import SimRandom


@runtime_checkable
class TimerHandle(Protocol):
    """A cancellable scheduled callback.

    ``cancel`` is idempotent and safe after firing.  ``time`` is the
    engine time the callback is (or was) due.
    """

    def cancel(self) -> None:  # pragma: no cover - protocol signature
        ...

    @property
    def cancelled(self) -> bool:  # pragma: no cover - protocol signature
        ...

    @property
    def time(self) -> float:  # pragma: no cover - protocol signature
        ...


@runtime_checkable
class TimerService(Protocol):
    """Clock + timers: the engine surface processes and protocols use.

    Time is a float in seconds.  Under the sim backend it is simulated
    time starting at 0; under the asyncio backend it is elapsed wall
    time since the runtime was created (scaled by ``time_scale``).  The
    ``*_call`` variants carry one argument alongside the callback so hot
    callers avoid allocating a closure per event; ``rearm`` re-schedules
    a *fired* handle so periodic timers reuse one handle for their whole
    life (see docs/simulator.md, "Event-loop internals").
    """

    @property
    def now(self) -> float:  # pragma: no cover - protocol signature
        ...

    def at(self, time: float, fn: Callable[[], None]) -> TimerHandle:  # pragma: no cover
        ...

    def after(self, delay: float, fn: Callable[[], None]) -> TimerHandle:  # pragma: no cover
        ...

    def at_call(
        self, time: float, fn: Callable[[Any], None], arg: Any
    ) -> TimerHandle:  # pragma: no cover - protocol signature
        ...

    def after_call(
        self, delay: float, fn: Callable[[Any], None], arg: Any
    ) -> TimerHandle:  # pragma: no cover - protocol signature
        ...

    def rearm(self, handle: TimerHandle, delay: float) -> TimerHandle:  # pragma: no cover
        ...


@runtime_checkable
class MessageFabric(Protocol):
    """What the network binds to for deferred datagram delivery.

    The network computes a delivery deadline (send time + modelled
    latency) and hands the envelope to the fabric; the fabric invokes
    ``fn(arg)`` at that deadline.  The sim fabric *is* the scheduler;
    the asyncio fabric adds in-flight accounting on top of the loop.
    """

    @property
    def now(self) -> float:  # pragma: no cover - protocol signature
        ...

    def at_call(
        self, time: float, fn: Callable[[Any], None], arg: Any
    ) -> TimerHandle:  # pragma: no cover - protocol signature
        ...


class Runtime(ABC):
    """One execution engine hosting a protocol stack.

    Concrete backends provide three attributes —

    ``timers``
        a :class:`TimerService` (exposed as ``Environment.scheduler``),
    ``fabric``
        a :class:`MessageFabric` the network binds to,
    ``rng``
        the run's root :class:`~repro.sim.rand.SimRandom`; subsystems
        and workloads fork labelled children (``rng.fork("network")``,
        ``rng.fork("workload/trading")``) so a single seed governs an
        entire run regardless of engine —

    plus the run-control methods below.
    """

    timers: TimerService
    fabric: MessageFabric
    rng: SimRandom

    @property
    def now(self) -> float:
        """Current engine time (seconds)."""
        return self.timers.now

    # -- convenience timer API ------------------------------------------------

    def call_at(self, time: float, fn: Callable[[], None]) -> TimerHandle:
        """Schedule ``fn`` at absolute engine time ``time``."""
        return self.timers.at(time, fn)

    def call_after(self, delay: float, fn: Callable[[], None]) -> TimerHandle:
        """Schedule ``fn`` to run ``delay`` seconds from now."""
        return self.timers.after(delay, fn)

    def periodic(self, interval: float, fn: Callable[[], None]) -> "PeriodicHandle":
        """Run ``fn`` every ``interval`` seconds until cancelled.

        Implemented over :meth:`TimerService.rearm`, so a periodic task
        owns one timer handle for its whole life on every backend.
        """
        return PeriodicHandle(self.timers, interval, fn)

    def spawn(self, fn: Callable[[], None]) -> TimerHandle:
        """Run ``fn`` as soon as the engine next dispatches events."""
        return self.timers.after(0.0, fn)

    # -- run control ----------------------------------------------------------

    @abstractmethod
    def run(
        self,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
    ) -> None:
        """Dispatch events until quiescent, or until engine time ``until``.

        ``max_events`` is a sim-only debugging bound; backends without a
        countable event stream reject it.
        """

    def run_for(self, duration: float, max_events: Optional[int] = None) -> None:
        """Run for ``duration`` seconds of engine time from now."""
        self.run(until=self.now + duration, max_events=max_events)

    def run_until(self, time: float) -> None:
        """Run until engine time ``time`` (alias of ``run(until=...)``)."""
        self.run(until=time)

    def close(self) -> None:
        """Release engine resources; the runtime is unusable afterwards."""


class PeriodicHandle:
    """A periodic task built on the engine's ``rearm`` fast path.

    Backend-agnostic: ticks re-arm one underlying timer handle instead
    of allocating a fresh one, matching the behaviour (and cost) of the
    per-process :class:`~repro.proc.process.Timer`.
    """

    __slots__ = ("_timers", "_interval", "_fn", "_cancelled", "_handle")

    def __init__(
        self, timers: TimerService, interval: float, fn: Callable[[], None]
    ) -> None:
        if interval <= 0:
            raise ValueError("interval must be positive")
        self._timers = timers
        self._interval = interval
        self._fn = fn
        self._cancelled = False
        self._handle = timers.after_call(interval, PeriodicHandle._tick, self)

    def _tick(self) -> None:
        if self._cancelled:
            return
        # Re-arm before running the callback so same-instant events the
        # callback schedules order after the next tick (sim semantics).
        self._timers.rearm(self._handle, self._interval)
        self._fn()

    def cancel(self) -> None:
        self._cancelled = True
        self._handle.cancel()

    @property
    def cancelled(self) -> bool:
        return self._cancelled

    @property
    def time(self) -> float:
        return self._handle.time
