"""The discrete-event backend: a thin adapter over the PR-1 scheduler.

Zero behaviour change and zero hot-path cost by construction:

* ``timers`` and ``fabric`` are the :class:`~repro.sim.scheduler.
  Scheduler` instance *itself* — the network and per-process timers call
  the exact same bound methods (``at_call``, ``after_call``, ``rearm``)
  they called before the runtime layer existed, so the frozen
  determinism digests (tests/test_perf_determinism.py) and the
  BENCH_core.json numbers are definitionally unchanged.
* ``rng`` is constructed from the seed with no forks consumed, so the
  environment's ``rng.fork("network")`` remains fork #1 and every
  downstream seed derivation is bit-identical to the pre-runtime code.
"""

from __future__ import annotations

from typing import Optional

from repro.runtime.api import Runtime
from repro.sim.params import SimParams
from repro.sim.rand import SimRandom
from repro.sim.scheduler import Scheduler


class SimRuntime(Runtime):
    """Deterministic simulated-time engine over one :class:`Scheduler`.

    ``params`` (a :class:`~repro.sim.params.SimParams`) selects the
    engine flavour — ``shards=1`` (default) builds the classic
    single-queue scheduler, more builds the locality-sharded one.  An
    explicit ``scheduler`` wins over ``params``.
    """

    def __init__(
        self,
        seed: int = 0,
        scheduler: Optional[Scheduler] = None,
        params: Optional[SimParams] = None,
    ) -> None:
        if scheduler is not None:
            self.scheduler = scheduler
        elif params is not None:
            self.scheduler = params.make_scheduler()
        else:
            self.scheduler = Scheduler()
        # The scheduler natively satisfies both engine protocols; exposing
        # it directly keeps the message/timer hot paths free of adapters.
        self.timers = self.scheduler
        self.fabric = self.scheduler
        self.rng = SimRandom(seed)

    @property
    def now(self) -> float:
        return self.scheduler.now

    def run(
        self,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
    ) -> None:
        self.scheduler.run(until=until, max_events=max_events)

    def run_for(self, duration: float, max_events: Optional[int] = None) -> None:
        self.scheduler.run_for(duration, max_events=max_events)
