"""Per-partition backend for the conservative-window parallel engine.

A :class:`ParallelRuntime` is a :class:`~repro.runtime.sim_backend.
SimRuntime` whose fabric is a :class:`PartitionFabric`: the scheduler
still runs the partition's own heap, but any envelope addressed to a
node owned by *another* partition is captured into an outbox instead of
being scheduled locally.  The engine (:mod:`repro.sim.parallel`) drains
the outbox at every window barrier, ships the envelopes through the
PR-8 wire codec, and re-injects them on the owning partition — so the
fabric is the single seam between "this partition's discrete-event
world" and "everything across the barrier".

The capture test mirrors :class:`~repro.runtime.socket_backend.
SocketFabric` exactly — ``arg.__class__ is Envelope`` (or a packer
flush, a list of them) with a remote destination — so sim, socket and
parallel backends intercept at the identical point in the network's
send path.  Everything else (timers, packer flushes, local deliveries)
delegates to the scheduler unchanged, including the grouped
same-timestamp bucket path, which keeps local batched dispatch — and
therefore the frozen per-partition delivery digests — byte-identical
to a plain sharded run of the same partition slice.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.net.message import Address, Envelope
from repro.runtime.sim_backend import SimRuntime
from repro.sim.params import SimParams
from repro.sim.scheduler import Scheduler


class PartitionFabric:
    """:class:`~repro.runtime.api.MessageFabric` over one partition's
    scheduler, with cross-partition capture at the window boundary."""

    def __init__(
        self,
        scheduler: Scheduler,
        partition: int,
        owners: Dict[Address, int],
    ) -> None:
        self._scheduler = scheduler
        self.partition = partition
        # Address book: logical address -> owning partition.  Local
        # addresses are exactly the ones mapped to ``partition`` (an
        # unmapped address counts as local, so the network's own
        # unknown-destination drop path stays in charge of it).
        self._owners = owners
        self._network = None  # bound by Environment via bind_network()
        self._outbox: List[Envelope] = []
        self.captured = 0  # envelopes captured for other partitions
        self.injected = 0  # envelopes injected from other partitions

    # -- wiring --------------------------------------------------------------

    def bind_network(self, network: Any) -> None:
        """Attach the partition's Network (inbound delivery + recycling).
        Called by Environment, exactly like the socket fabric."""
        self._network = network

    @property
    def network(self) -> Any:
        return self._network

    def _is_remote(self, dst: Address) -> bool:
        return self._owners.get(dst, self.partition) != self.partition

    # -- MessageFabric contract ----------------------------------------------

    @property
    def now(self) -> float:
        return self._scheduler.now

    def at_call(self, time: float, fn: Callable[[Any], None], arg: Any) -> Any:
        cls = arg.__class__
        if cls is Envelope:
            if self._is_remote(arg.dst):
                self._outbox.append(arg)
                self.captured += 1
                return None
        elif cls is list and arg and arg[0].__class__ is Envelope:
            # A packer flush: one destination, many envelopes — captured
            # individually, each already stamped with its deliver time.
            if self._is_remote(arg[0].dst):
                self._outbox.extend(arg)
                self.captured += len(arg)
                return None
        return self._scheduler.at_call(time, fn, arg)

    def at_call_grouped(
        self,
        time: float,
        fn: Callable[[Any], None],
        arg: Any,
        key: Any = None,
    ) -> None:
        """The network's batched-dispatch path: local deliveries keep the
        scheduler's same-timestamp bucket (and its exact FIFO order);
        remote ones are captured before any event exists for them."""
        if arg.__class__ is Envelope and self._is_remote(arg.dst):
            self._outbox.append(arg)
            self.captured += 1
            return
        self._scheduler.at_call_grouped(time, fn, arg, key=key)

    # -- window-barrier seam -------------------------------------------------

    def take_outbox(self) -> List[Envelope]:
        """Drain captured envelopes, in capture order.  The caller owns
        them until it recycles them back via :meth:`recycle`."""
        outbox, self._outbox = self._outbox, []
        return outbox

    def recycle(self, envelopes: List[Envelope]) -> None:
        """Return encoded-and-shipped envelopes to the network's free
        list, so steady-state capture allocates nothing."""
        network = self._network
        if network is None:
            return
        recycle = network._recycle
        for envelope in envelopes:
            recycle(envelope)

    def inject(self, deliver_time: float, envelope: Envelope) -> None:
        """Schedule one decoded inbound envelope for delivery on this
        partition at its original deadline (always in the next window,
        so never in the scheduler's past)."""
        network = self._network
        if network is None:
            raise RuntimeError("inject before bind_network")
        self.injected += 1
        self._scheduler.at_call_once(
            deliver_time, network.deliver_inbound, envelope
        )

    def stats(self) -> Dict[str, int]:
        return {
            "captured": self.captured,
            "injected": self.injected,
            "outbox": len(self._outbox),
        }


class ParallelRuntime(SimRuntime):
    """One partition's engine inside a parallel run.

    Identical to :class:`SimRuntime` — same scheduler, same rng
    derivation, so a partition's heap behaves exactly as it would
    single-process — except ``fabric`` is the capturing
    :class:`PartitionFabric` instead of the scheduler itself.
    """

    def __init__(
        self,
        seed: int = 0,
        partition: int = 0,
        owners: Optional[Dict[Address, int]] = None,
        scheduler: Optional[Scheduler] = None,
        params: Optional[SimParams] = None,
    ) -> None:
        super().__init__(seed=seed, scheduler=scheduler, params=params)
        self.fabric = PartitionFabric(self.scheduler, partition, owners or {})
