"""Engine-agnostic runtime layer: the contract the protocol stack runs on.

``repro.runtime`` defines *what an engine is* (:mod:`repro.runtime.api`)
and ships two of them:

* :class:`SimRuntime` — the deterministic discrete-event engine
  (default; a thin adapter over ``repro.sim``);
* :class:`AsyncioRuntime` — wall-clock timers on an asyncio event loop
  with an in-memory asyncio message fabric;
* :class:`SocketRuntime` — the asyncio engine with a UDP
  :class:`SocketFabric`: remote destinations (per its address book) go
  over real sockets as :mod:`repro.net.wire` frames (docs/deployment.md);
* :class:`ParallelRuntime` — one partition's slice of a conservative-
  window multi-core run: a :class:`SimRuntime` whose
  :class:`PartitionFabric` captures cross-partition envelopes for the
  window barrier (:mod:`repro.sim.parallel`, docs/simulator.md).

Everything above this layer (processes, network, transport, membership,
broadcast, hierarchy, toolkit, workloads) is engine-agnostic; rule RL009
forbids ``repro.sim`` imports outside ``repro/sim/`` and
``repro/runtime/``.  :class:`~repro.sim.rand.SimRandom` — the seeded
deterministic random stream with labelled forking — is re-exported here
because it is part of the engine contract (every backend carries one),
not a simulator internal.

See docs/runtime.md for the contract and a guide to writing backends.
"""

from repro.runtime.api import (
    MessageFabric,
    PeriodicHandle,
    Runtime,
    TimerHandle,
    TimerService,
)
from repro.runtime.asyncio_backend import (
    AsyncioFabric,
    AsyncioRuntime,
    AsyncioTimers,
    WallClockError,
)
from repro.runtime.parallel_backend import ParallelRuntime, PartitionFabric
from repro.runtime.sim_backend import SimRuntime
from repro.runtime.socket_backend import SocketFabric, SocketRuntime, run_cluster
from repro.sim.rand import SimRandom

__all__ = [
    "AsyncioFabric",
    "AsyncioRuntime",
    "AsyncioTimers",
    "ParallelRuntime",
    "PartitionFabric",
    "SocketFabric",
    "SocketRuntime",
    "run_cluster",
    "MessageFabric",
    "PeriodicHandle",
    "Runtime",
    "SimRandom",
    "SimRuntime",
    "TimerHandle",
    "TimerService",
    "WallClockError",
]
