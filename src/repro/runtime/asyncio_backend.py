"""The wall-clock backend: the protocol stack on an asyncio event loop.

The identical membership / broadcast / hierarchy code that runs under the
discrete-event simulator runs here in real time: timers become
``loop.call_later`` callbacks, the network's latency model becomes a real
delay before delivery, and heartbeats, flush timeouts and retransmissions
all race actual wall-clock concurrency.  This is the engine a live
deployment grows from — the simulator is just the other host for the same
library.

Design notes:

* **Time** is logical seconds since the runtime was created.  A
  ``time_scale`` maps logical seconds to wall seconds (``time_scale=0.1``
  runs a "10 second" protocol schedule in one wall second), so demos and
  parity tests exercise real concurrency without real-time waits.
* **Determinism** is *not* promised event-for-event: wall-clock arrival
  order races the OS.  What survives on this backend is what the
  protocols themselves enforce — per-sender FIFO/causal/total delivery
  order, view agreement, virtual synchrony — which is exactly what
  ``tests/test_runtime_parity.py`` pins against the sim backend.  The
  seeded ``rng`` is still a :class:`~repro.sim.rand.SimRandom`, so
  latency models and workload draws replay from the seed alone.
* **Scheduling in the past** clamps to "as soon as possible" instead of
  raising: a wall clock cannot refuse to have advanced.
* **Errors** raised inside timer callbacks (including strict sanitizer
  violations) are captured and re-raised out of :meth:`AsyncioRuntime.
  run` — asyncio's default behaviour of logging-and-continuing would
  silently swallow protocol bugs.
"""

from __future__ import annotations

import asyncio
from typing import Any, Callable, List, Optional, Tuple

from repro.runtime.api import Runtime
from repro.sim.rand import SimRandom

_NO_ARG = object()

# Wall-clock seconds between quiescence / error polls inside run().
_POLL = 0.002


class WallClockError(RuntimeError):
    """Raised when the asyncio engine is driven incorrectly."""


class AsyncioTimerHandle:
    """Cancellable timer over ``loop.call_later``; re-armable like the
    simulator's event handles so periodic timers reuse one object."""

    __slots__ = ("_timers", "_when", "_fn", "_arg", "_loop_handle", "_queued", "_cancelled")

    def __init__(self, timers: "AsyncioTimers", when: float, fn: Callable, arg: Any) -> None:
        self._timers = timers
        self._when = when
        self._fn = fn
        self._arg = arg
        self._loop_handle: Optional[asyncio.TimerHandle] = None
        self._queued = False
        self._cancelled = False

    def cancel(self) -> None:
        """Prevent the callback from firing.  Idempotent; safe after firing."""
        if self._cancelled:
            return
        self._cancelled = True
        if self._queued:
            self._queued = False
            self._timers._live -= 1
            if self._loop_handle is not None:
                self._loop_handle.cancel()

    @property
    def cancelled(self) -> bool:
        return self._cancelled

    @property
    def time(self) -> float:
        """Logical time at which the callback is (or was) due."""
        return self._when

    def _run(self) -> None:
        self._queued = False
        self._timers._live -= 1
        if self._cancelled:
            return
        try:
            if self._arg is _NO_ARG:
                self._fn()
            else:
                self._fn(self._arg)
        except Exception as exc:  # surface protocol errors out of run()
            self._timers._record_error(exc)


class AsyncioTimers:
    """:class:`~repro.runtime.api.TimerService` over an asyncio loop."""

    def __init__(self, loop: asyncio.AbstractEventLoop, time_scale: float) -> None:
        if time_scale <= 0:
            raise WallClockError("time_scale must be positive")
        self._loop = loop
        self._scale = time_scale
        self._epoch = loop.time()
        self._live = 0  # queued, not yet fired or cancelled
        self._errors: List[BaseException] = []

    @property
    def now(self) -> float:
        """Logical seconds since the runtime was created."""
        return (self._loop.time() - self._epoch) / self._scale

    @property
    def pending(self) -> int:
        """Number of queued live callbacks (timers + in-flight messages)."""
        return self._live

    def reset_epoch(self) -> None:
        """Restart logical time at zero.  Deployment bootstrap runs
        between runtime construction and the start barrier (socket binds,
        tracker registration), and scenario schedules are absolute
        logical times — every node's t=0 must be the barrier release,
        not its construction.  Only legal while nothing is queued."""
        if self._live > 0:
            raise WallClockError(
                "cannot reset the clock with timers queued"
            )
        self._epoch = self._loop.time()

    # -- scheduling ----------------------------------------------------------

    def at(self, time: float, fn: Callable[[], None]) -> AsyncioTimerHandle:
        """Schedule ``fn`` at logical time ``time`` (clamped to now)."""
        return self._arm(AsyncioTimerHandle(self, time, fn, _NO_ARG))

    def after(self, delay: float, fn: Callable[[], None]) -> AsyncioTimerHandle:
        if delay < 0:
            raise WallClockError(f"negative delay {delay!r}")
        return self._arm(AsyncioTimerHandle(self, self.now + delay, fn, _NO_ARG))

    def at_call(self, time: float, fn: Callable[[Any], None], arg: Any) -> AsyncioTimerHandle:
        return self._arm(AsyncioTimerHandle(self, time, fn, arg))

    def after_call(self, delay: float, fn: Callable[[Any], None], arg: Any) -> AsyncioTimerHandle:
        if delay < 0:
            raise WallClockError(f"negative delay {delay!r}")
        return self._arm(AsyncioTimerHandle(self, self.now + delay, fn, arg))

    def rearm(self, handle: AsyncioTimerHandle, delay: float) -> AsyncioTimerHandle:
        """Re-schedule a *fired* handle at ``now + delay`` (periodic fast
        path, mirroring :meth:`repro.sim.scheduler.Scheduler.rearm`)."""
        if delay < 0:
            raise WallClockError(f"negative delay {delay!r}")
        if handle._queued:
            raise WallClockError("cannot rearm a timer that is still queued")
        handle._when = self.now + delay
        handle._cancelled = False
        return self._arm(handle)

    def _arm(self, handle: AsyncioTimerHandle) -> AsyncioTimerHandle:
        wall_delay = (handle._when - self.now) * self._scale
        if wall_delay < 0.0:
            wall_delay = 0.0  # the wall clock has already passed the deadline
        handle._queued = True
        self._live += 1
        handle._loop_handle = self._loop.call_later(wall_delay, handle._run)
        return handle

    # -- error funnel --------------------------------------------------------

    def _record_error(self, exc: BaseException) -> None:
        self._errors.append(exc)

    def take_error(self) -> Optional[BaseException]:
        """Pop the oldest captured callback error, if any."""
        return self._errors.pop(0) if self._errors else None


class AsyncioFabric:
    """In-memory asyncio message fabric the network binds to.

    Deferred deliveries go through here rather than the raw timer
    service so the engine can account for datagrams separately from
    protocol timers: a live service knows how many datagrams are still
    in flight and can :meth:`drain` before shutting down — the moral
    equivalent of the simulator's "run until the heap is empty".
    """

    __slots__ = ("_timers", "dispatched", "_in_flight")

    def __init__(self, timers: AsyncioTimers) -> None:
        self._timers = timers
        self.dispatched = 0  # datagrams ever handed to the fabric
        self._in_flight = 0

    @property
    def now(self) -> float:
        return self._timers.now

    @property
    def in_flight(self) -> int:
        """Datagrams accepted but not yet delivered."""
        return self._in_flight

    def at_call(self, time: float, fn: Callable[[Any], None], arg: Any) -> AsyncioTimerHandle:
        self.dispatched += 1
        self._in_flight += 1
        return self._timers.at_call(time, self._relay, (fn, arg))

    def _relay(self, pair: Tuple[Callable[[Any], None], Any]) -> None:
        self._in_flight -= 1
        fn, arg = pair
        fn(arg)

    async def drain(self) -> None:
        """Wait until no datagrams are in flight."""
        while self._in_flight > 0:
            await asyncio.sleep(_POLL)


class AsyncioRuntime(Runtime):
    """Wall-clock engine: real timers, real concurrency, same protocols.

    Usage mirrors the simulator exactly — only the Environment's engine
    changes::

        runtime = AsyncioRuntime(seed=7, time_scale=0.1)
        env = Environment(runtime=runtime)
        nodes, members = build_group(env, "svc", 5)
        env.run_for(2.0)          # ~0.2 s of wall time
        runtime.close()

    ``run()`` with no bound returns once no timers or datagrams remain
    queued; note that periodic timers (heartbeats, gossip) never drain,
    so live services use ``run_for`` / ``run_until``.
    """

    def __init__(
        self,
        seed: int = 0,
        time_scale: float = 1.0,
        loop: Optional[asyncio.AbstractEventLoop] = None,
    ) -> None:
        self._loop = loop if loop is not None else asyncio.new_event_loop()
        self._owns_loop = loop is None
        self._time_scale = time_scale
        self.timers = AsyncioTimers(self._loop, time_scale)
        self.fabric = AsyncioFabric(self.timers)
        self.rng = SimRandom(seed)

    @property
    def loop(self) -> asyncio.AbstractEventLoop:
        return self._loop

    @property
    def time_scale(self) -> float:
        return self._time_scale

    # -- run control ----------------------------------------------------------

    def run(
        self,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
    ) -> None:
        if max_events is not None:
            raise WallClockError(
                "max_events is a discrete-event facility; the wall-clock "
                "engine cannot bound a run by event count"
            )
        if until is None:
            self._loop.run_until_complete(self._run_until_idle())
        else:
            self._loop.run_until_complete(self._run_until_time(until))
        error = self.timers.take_error()
        if error is not None:
            raise error

    async def _run_until_idle(self) -> None:
        timers = self.timers
        while timers._live > 0 and not timers._errors:
            await asyncio.sleep(_POLL)

    async def _run_until_time(self, until: float) -> None:
        timers = self.timers
        while not timers._errors:
            remaining_wall = (until - timers.now) * self._time_scale
            if remaining_wall <= 0.0:
                return
            await asyncio.sleep(min(_POLL, remaining_wall))

    def close(self) -> None:
        """Close the loop (only if this runtime created it)."""
        if self._owns_loop and not self._loop.is_closed():
            self._loop.close()
