"""The paper's motivating applications as synthetic workload generators."""

from repro.workloads.common import (
    ServiceCluster,
    WorkloadResult,
    build_service_cluster,
)
from repro.workloads.manufacturing import (
    CellStatus,
    ManufacturingWorkload,
    PARTS,
    Recipe,
)
from repro.workloads.trading import SYMBOLS, Tick, TradingRoomWorkload
from repro.workloads.trading_partitioned import (
    SymbolFeed,
    SymbolPartitionedTrading,
    TickRelay,
)

__all__ = [
    "CellStatus",
    "ManufacturingWorkload",
    "PARTS",
    "Recipe",
    "SYMBOLS",
    "ServiceCluster",
    "SymbolFeed",
    "SymbolPartitionedTrading",
    "TickRelay",
    "Tick",
    "TradingRoomWorkload",
    "WorkloadResult",
    "build_service_cluster",
]
