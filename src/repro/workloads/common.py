"""Shared plumbing for the motivating-application workloads (paper §1)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.core.hierarchy import LargeGroupMember, build_large_group
from repro.core.leader import LeaderReplica, build_leader_group
from repro.core.params import LargeGroupParams
from repro.core.treecast import TreecastParticipant, TreecastRoot, attach_treecast
from repro.metrics.counters import LatencySample
from repro.net.latency import LanLatency
from repro.proc.env import Environment


@dataclass
class WorkloadResult:
    """What a workload run reports back to benchmarks and examples."""

    name: str
    duration: float
    events_published: int = 0
    events_delivered: int = 0
    requests_sent: int = 0
    requests_answered: int = 0
    latency: LatencySample = field(default_factory=LatencySample)
    request_latency: LatencySample = field(default_factory=LatencySample)
    extra: Dict[str, float] = field(default_factory=dict)

    @property
    def delivery_ratio(self) -> float:
        if self.events_published == 0:
            return 1.0
        # Each published event fans out to every live member; the caller
        # stores expected deliveries in ``extra['expected_deliveries']``.
        expected = self.extra.get("expected_deliveries", self.events_published)
        return self.events_delivered / expected if expected else 1.0


@dataclass
class ServiceCluster:
    """A hierarchically organised service plus its treecast plumbing."""

    env: Environment
    params: LargeGroupParams
    leaders: List[LeaderReplica]
    members: List[LargeGroupMember]
    participants: List[TreecastParticipant]
    roots: List[TreecastRoot]

    @property
    def manager_root(self) -> TreecastRoot:
        for root in self.roots:
            if root.replica.is_manager and root.node.alive:
                return root
        raise RuntimeError("no live manager")

    @property
    def leader_contacts(self) -> Tuple[str, ...]:
        return tuple(r.node.address for r in self.leaders)

    def live_members(self) -> List[LargeGroupMember]:
        return [m for m in self.members if m.node.alive and m.is_member]


def build_service_cluster(
    service: str,
    size: int,
    resiliency: int = 3,
    fanout: int = 8,
    seed: int = 1,
    settle: float = None,
    env: Environment = None,
    **params_kw,
) -> ServiceCluster:
    """The standard experimental setup: leader group + workers + treecast,
    over a LAN-latency network, settled until every worker is placed."""
    env = env if env is not None else Environment(seed=seed, latency=LanLatency())
    params = LargeGroupParams(resiliency=resiliency, fanout=fanout, **params_kw)
    leaders = build_leader_group(env, service, params)
    contacts = tuple(r.node.address for r in leaders)
    members = build_large_group(env, service, size, params, contacts)
    participants = attach_treecast(members, resiliency=resiliency)
    roots = [TreecastRoot(r) for r in leaders]
    env.run_for(settle if settle is not None else 5.0 + 0.25 * size)
    return ServiceCluster(env, params, leaders, members, participants, roots)
