"""The trading-room workload (paper §1):

    "A typical installation will comprise perhaps 100 to 500 trading
    analyst workstations which filter, process and analyze large volumes
    of information continuously supplied from numerous outside data feeds.
    Users of these systems demand surprisingly high performance, often
    requiring sub-second response to events detected over the data feeds."

Model:

* *analyst workstations* are members of one hierarchical large group;
* *data feeds* publish ticks; market-wide events are disseminated with the
  tree broadcast, so each feed event reaches all analysts within a bounded
  number of stages;
* analysts issue *position queries* against the analyst service itself
  (coordinator-cohort within their leaf) — the request path whose cost
  must stay bounded as the room grows.

The benchmark harness measures tick fan-out latency (feed timestamp to
analyst delivery) and per-analyst load, across room sizes of 100–500.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.metrics.counters import LatencySample
from repro.proc.env import Environment
from repro.workloads.common import ServiceCluster, WorkloadResult, build_service_cluster

SYMBOLS = ("IBM", "DEC", "SUN", "HP", "T", "GE", "XRX", "KO")


@dataclass
class Tick:
    """One market-data event from an outside feed."""

    symbol: str
    price: float
    feed_time: float
    serial: int


class TradingRoomWorkload:
    """Drives feeds and analyst queries against an analyst cluster."""

    _serials = itertools.count(1)

    def __init__(
        self,
        analysts: int = 100,
        feeds: int = 4,
        tick_rate: float = 2.0,  # market-wide events per second per feed
        query_rate: float = 0.2,  # position queries per analyst per second
        resiliency: int = 3,
        fanout: int = 8,
        seed: int = 1,
        cluster: Optional[ServiceCluster] = None,
    ) -> None:
        self.cluster = cluster if cluster is not None else build_service_cluster(
            "trading", analysts, resiliency=resiliency, fanout=fanout, seed=seed
        )
        self.env: Environment = self.cluster.env
        self.feeds = feeds
        self.tick_rate = tick_rate
        self.query_rate = query_rate
        # Seed hygiene: fork the run's root RNG instead of reseeding.
        self.rng = self.env.rng.fork("workload/trading")
        self.result = WorkloadResult(name="trading-room", duration=0.0)
        self._positions: Dict[str, int] = {s: 0 for s in SYMBOLS}

        # Analysts: deliver ticks, serve position queries.
        for participant in self.cluster.participants:
            participant.add_listener(self._make_tick_listener(participant))

        from repro.toolkit.hierarchical_service import attach_hierarchical_service

        self.servers = attach_hierarchical_service(
            self.cluster.members, self._serve_query
        )

    # -- feed side --------------------------------------------------------------

    def _publish_tick(self) -> None:
        root = self.cluster.manager_root
        tick = Tick(
            symbol=self.rng.choice(SYMBOLS),
            price=round(self.rng.uniform(10, 200), 2),
            feed_time=self.env.now,
            serial=next(self._serials),
        )
        self.result.events_published += 1
        root.broadcast(tick)

    def _make_tick_listener(self, participant):
        def on_tick(payload, _bid) -> None:
            if isinstance(payload, Tick):
                self.result.events_delivered += 1
                self.result.latency.add(self.env.now - payload.feed_time)

        return on_tick

    # -- analyst query side ---------------------------------------------------------

    def _serve_query(self, payload, client):
        symbol = payload.get("symbol") if isinstance(payload, dict) else None
        return {"symbol": symbol, "position": self._positions.get(symbol, 0)}

    def _issue_query(self, client) -> None:
        sent_at = self.env.now
        self.result.requests_sent += 1

        def on_reply(result) -> None:
            self.result.requests_answered += 1
            self.result.request_latency.add(self.env.now - sent_at)

        client.request({"symbol": self.rng.choice(SYMBOLS)}, on_reply)

    # -- driver -------------------------------------------------------------------

    def run(self, duration: float = 10.0, query_clients: int = 4) -> WorkloadResult:
        """Publish ticks for ``duration`` sim-seconds while a handful of
        client stations issue position queries."""
        from repro.core.router import ServiceRouter
        from repro.membership.service import GroupNode
        from repro.toolkit.hierarchical_service import HierarchicalClient

        start = self.env.now
        # feed schedules (poisson per feed)
        for feed in range(self.feeds):
            rng = self.rng.fork(f"feed-{feed}")
            t = 0.0
            while True:
                t += rng.expovariate(self.tick_rate)
                if t > duration:
                    break
                self.env.scheduler.at(start + t, self._publish_tick)

        clients = []
        for i in range(query_clients):
            node = GroupNode(self.env, f"trader-client-{i}")
            router = ServiceRouter(
                node,
                "trading",
                rpc=node.runtime.rpc,
                leader_contacts=self.cluster.leader_contacts,
            )
            clients.append(HierarchicalClient(node, router))
        for i, client in enumerate(clients):
            rng = self.rng.fork(f"query-{i}")
            t = 0.0
            rate = self.query_rate * max(1, len(self.cluster.members)) / max(
                1, query_clients
            )
            while True:
                t += rng.expovariate(rate)
                if t > duration:
                    break
                self.env.scheduler.at(
                    start + t, lambda c=client: self._issue_query(c)
                )

        self.env.run_for(duration + 5.0)
        self.result.duration = self.env.now - start
        live = len(self.cluster.live_members())
        self.result.extra["expected_deliveries"] = (
            self.result.events_published * live
        )
        self.result.extra["analysts"] = live
        return self.result
