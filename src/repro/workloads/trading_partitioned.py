"""Symbol-partitioned market-data dissemination.

The trading-room analysts "filter, process and analyze large volumes of
information" (paper §1) — most of a feed's volume is per-symbol detail
that only the desks covering that symbol need.  This workload partitions
the symbol space across the leaf subgroups (the §3 "partitioning data or
processing between subgroups" duty of the leader): a feed routes each
symbol tick to the owning leaf's coordinator, which re-multicasts it
inside the leaf only.  Per-tick traffic is bounded by the leaf size no
matter how big the room grows — compare the market-wide tree broadcast
of :class:`~repro.workloads.trading.TradingRoomWorkload`, which is the
right tool for room-wide events but overkill for per-symbol detail.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.core.leader import GetHierarchyInfo, leaf_group_name
from repro.membership.events import FIFO
from repro.membership.service import GroupNode
from repro.proc.env import Environment
from repro.toolkit.coordinator_cohort import CoordinatorCohortClient
from repro.toolkit.hierarchical_service import HierarchicalServer
from repro.toolkit.partitioned_data import owner_of
from repro.workloads.common import ServiceCluster, WorkloadResult, build_service_cluster
from repro.workloads.trading import SYMBOLS, Tick


@dataclass
class TickRelay:
    """A symbol tick re-multicast within the owning leaf."""

    category = "tick-relay"
    tick: Tick = None  # type: ignore[assignment]


class SymbolFeed:
    """A data feed that routes each tick to the symbol's owning leaf."""

    def __init__(
        self,
        env: Environment,
        name: str,
        leader_contacts,
        service: str = "trading",
        timeout: float = 1.0,
    ) -> None:
        self.env = env
        self.node = GroupNode(env, name)
        self.rpc = self.node.runtime.rpc
        self.service = service
        self.leader_contacts = tuple(leader_contacts)
        self.timeout = timeout
        self._leaves: Dict[str, tuple] = {}
        self._cc: Dict[str, CoordinatorCohortClient] = {}
        self.ticks_sent = 0
        self.ticks_acked = 0

    def refresh_directory(self, then=None) -> None:
        def reply(value, sender) -> None:
            if isinstance(value, dict) and value.get("leaves"):
                self._leaves = {
                    leaf_id: tuple(info["contacts"])
                    for leaf_id, info in value["leaves"].items()
                    if info["contacts"]
                }
            if then is not None:
                then(bool(self._leaves))

        self.rpc.call(
            self.leader_contacts[0],
            GetHierarchyInfo(service=self.service),
            on_reply=reply,
            timeout=self.timeout,
            on_timeout=lambda: then(False) if then else None,
        )

    def owner_leaf(self, symbol: str) -> Optional[str]:
        if not self._leaves:
            return None
        return owner_of(symbol, list(self._leaves))

    def publish(self, tick: Tick) -> None:
        leaf_id = self.owner_leaf(tick.symbol)
        if leaf_id is None:
            self.refresh_directory(lambda ok: self.publish(tick) if ok else None)
            return
        cc = self._cc.get(leaf_id)
        if cc is None:
            cc = CoordinatorCohortClient(
                self.node,
                leaf_group_name(self.service, leaf_id),
                contacts=self._leaves[leaf_id],
                rpc=self.rpc,
                timeout=self.timeout,
                max_retries=2,
            )
            self._cc[leaf_id] = cc
        self.ticks_sent += 1

        def acked(_result) -> None:
            self.ticks_acked += 1

        def failed() -> None:
            self._leaves = {}
            self._cc.pop(leaf_id, None)

        cc.request({"tick": tick}, acked, on_failure=failed)


class SymbolPartitionedTrading:
    """Analysts receive only their leaf's symbols; feeds route by symbol."""

    _serials = itertools.count(1)

    def __init__(
        self,
        analysts: int = 60,
        feeds: int = 2,
        tick_rate: float = 4.0,
        resiliency: int = 3,
        fanout: int = 8,
        seed: int = 5,
        cluster: Optional[ServiceCluster] = None,
    ) -> None:
        self.cluster = cluster if cluster is not None else build_service_cluster(
            "trading", analysts, resiliency=resiliency, fanout=fanout, seed=seed
        )
        self.env = self.cluster.env
        self.tick_rate = tick_rate
        # Seed hygiene: fork the run's root RNG instead of reseeding.
        self.rng = self.env.rng.fork("workload/trading_partitioned")
        self.result = WorkloadResult(name="trading-partitioned", duration=0.0)
        self.deliveries_by_analyst: Dict[str, int] = {}

        self.servers = [
            HierarchicalServer(m, self._make_handler(m))
            for m in self.cluster.members
        ]
        for member in self.cluster.members:
            member.add_delivery_listener(self._make_relay_listener(member))

        self.feeds = [
            SymbolFeed(
                self.env, f"feed-{i}", self.cluster.leader_contacts
            )
            for i in range(feeds)
        ]

    def _make_handler(self, member):
        def handle(payload, client):
            tick = payload.get("tick") if isinstance(payload, dict) else None
            if tick is None:
                return ("error",)
            # the leaf coordinator fans the tick out within its leaf only
            member.leaf_multicast(TickRelay(tick=tick), FIFO)
            return ("ok",)

        return handle

    def _make_relay_listener(self, member):
        def on_delivery(event) -> None:
            payload = event.payload
            if isinstance(payload, TickRelay):
                self.result.events_delivered += 1
                self.result.latency.add(self.env.now - payload.tick.feed_time)
                me = member.me
                self.deliveries_by_analyst[me] = (
                    self.deliveries_by_analyst.get(me, 0) + 1
                )

        return on_delivery

    def run(self, duration: float = 8.0) -> WorkloadResult:
        start = self.env.now
        for feed in self.feeds:
            feed.refresh_directory()
        self.env.run_for(1.0)
        for index, feed in enumerate(self.feeds):
            rng = self.rng.fork(f"feed-{index}")
            t = 0.0
            while True:
                t += rng.expovariate(self.tick_rate)
                if t > duration:
                    break

                def publish(f=feed):
                    tick = Tick(
                        symbol=self.rng.choice(SYMBOLS),
                        price=round(self.rng.uniform(10, 200), 2),
                        feed_time=self.env.now,
                        serial=next(self._serials),
                    )
                    self.result.events_published += 1
                    f.publish(tick)

                self.env.scheduler.at(self.env.now + t, publish)
        self.env.run_for(duration + 5.0)
        self.result.duration = self.env.now - start
        live = len(self.cluster.live_members())
        self.result.extra["analysts"] = live
        if self.result.events_published:
            self.result.extra["avg_deliveries_per_tick"] = (
                self.result.events_delivered / self.result.events_published
            )
        return self.result
