"""The manufacturing-control workload (paper §1):

    "Hundreds of work cells distributed throughout a factory communicate
    with production monitoring and inventory control stations.
    Consistency and reliability are important here."

Model:

* *work cells* are members of one hierarchical large group; each cell
  periodically reports its status within its leaf (bounded fan-out);
* an *inventory control* station is a small resilient flat group running
  a replicated inventory table (consistency-critical: updates are totally
  ordered abcasts, so every replica holds identical stock levels);
* *production orders* are dispatched to cells through the hierarchical
  coordinator-cohort service; completing an order decrements inventory;
* factory-wide *reconfigurations* (e.g. a shift change) use the atomic
  tree broadcast so either every live cell switches recipe or none does.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.membership.events import FIFO
from repro.membership.service import build_group
from repro.proc.env import Environment
from repro.toolkit.replication import ReplicatedDict
from repro.workloads.common import ServiceCluster, WorkloadResult, build_service_cluster

PARTS = ("bolt", "panel", "motor", "frame", "belt")


@dataclass
class CellStatus:
    category = "cell-status"
    size_bytes = 64
    cell: str
    state: str
    at: float


@dataclass
class Recipe:
    """A factory-wide reconfiguration, applied atomically everywhere."""

    recipe_id: int
    name: str


class ManufacturingWorkload:
    """Drives cell status traffic, order dispatch and inventory updates."""

    _order_ids = itertools.count(1)

    def __init__(
        self,
        cells: int = 100,
        inventory_replicas: int = 3,
        status_rate: float = 0.5,  # per cell per second, leaf-local
        order_rate: float = 4.0,  # orders per second factory-wide
        resiliency: int = 3,
        fanout: int = 8,
        seed: int = 2,
        cluster: Optional[ServiceCluster] = None,
    ) -> None:
        self.cluster = cluster if cluster is not None else build_service_cluster(
            "factory", cells, resiliency=resiliency, fanout=fanout, seed=seed
        )
        self.env: Environment = self.cluster.env
        self.status_rate = status_rate
        self.order_rate = order_rate
        # Seed hygiene: all workload draws fork off the run's root RNG
        # (one seed governs the entire run, whichever engine hosts it).
        self.rng = self.env.rng.fork("workload/manufacturing")
        self.result = WorkloadResult(name="manufacturing", duration=0.0)
        self.recipes_applied: Dict[str, List[int]] = {}

        # Inventory control: a flat resilient group with a replicated table.
        inv_nodes, inv_members = build_group(
            self.env, "inventory", inventory_replicas, prefix="inv"
        )
        self.inventory_nodes = inv_nodes
        self.inventory = [ReplicatedDict(m, "stock") for m in inv_members]
        for part in PARTS:
            self.inventory[0].put(part, 1000)

        # Cells consume recipes via atomic treecast.
        for participant in self.cluster.participants:
            participant.add_listener(self._make_recipe_listener(participant))

        from repro.toolkit.hierarchical_service import attach_hierarchical_service

        self.servers = attach_hierarchical_service(
            self.cluster.members, self._serve_order
        )

    # -- cell status (leaf-local chatter) ------------------------------------------

    def _cell_status_tick(self, member) -> None:
        if member.node.alive and member.is_member:
            member.leaf_multicast(
                CellStatus(
                    cell=member.me,
                    state=self.rng.choice(("idle", "busy", "fault")),
                    at=self.env.now,
                ),
                FIFO,
            )
            self.result.events_published += 1

    # -- order dispatch ---------------------------------------------------------------

    def _serve_order(self, payload, client):
        # A cell "performs" the order; the inventory decrement happens on
        # the dispatcher's reply path against the replicated table.
        part = payload["part"]
        return {"order": payload["order"], "part": part, "status": "done"}

    def _dispatch_order(self, client) -> None:
        order_id = next(self._order_ids)
        part = self.rng.choice(PARTS)
        sent_at = self.env.now
        self.result.requests_sent += 1

        def on_reply(result) -> None:
            self.result.requests_answered += 1
            self.result.request_latency.add(self.env.now - sent_at)
            current = self.inventory[0].get(part, 0)
            self.inventory[0].put(part, current - 1)

        client.request({"order": order_id, "part": part}, on_reply)

    # -- factory-wide reconfiguration ------------------------------------------------

    def _make_recipe_listener(self, participant):
        def on_payload(payload, _bid) -> None:
            if isinstance(payload, Recipe):
                self.recipes_applied.setdefault(
                    participant.node.address, []
                ).append(payload.recipe_id)

        return on_payload

    def reconfigure(self, recipe_id: int, name: str) -> None:
        self.cluster.manager_root.broadcast(
            Recipe(recipe_id=recipe_id, name=name), atomic=True
        )

    # -- driver -----------------------------------------------------------------------

    def run(
        self,
        duration: float = 10.0,
        dispatch_clients: int = 2,
        reconfigure_at: Optional[float] = None,
    ) -> WorkloadResult:
        from repro.core.router import ServiceRouter
        from repro.membership.service import GroupNode
        from repro.toolkit.hierarchical_service import HierarchicalClient

        start = self.env.now
        # per-cell status chatter
        for member in self.cluster.members:
            rng = self.rng.fork(f"status-{member.me}")
            t = 0.0
            while True:
                t += rng.expovariate(self.status_rate)
                if t > duration:
                    break
                self.env.scheduler.at(
                    start + t, lambda m=member: self._cell_status_tick(m)
                )

        # production-order dispatchers
        clients = []
        for i in range(dispatch_clients):
            node = GroupNode(self.env, f"dispatch-{i}")
            router = ServiceRouter(
                node,
                "factory",
                rpc=node.runtime.rpc,
                leader_contacts=self.cluster.leader_contacts,
            )
            clients.append(HierarchicalClient(node, router))
        for i, client in enumerate(clients):
            rng = self.rng.fork(f"orders-{i}")
            t = 0.0
            while True:
                t += rng.expovariate(self.order_rate / max(1, dispatch_clients))
                if t > duration:
                    break
                self.env.scheduler.at(
                    start + t, lambda c=client: self._dispatch_order(c)
                )

        if reconfigure_at is not None:
            self.env.scheduler.at(
                start + reconfigure_at,
                lambda: self.reconfigure(1, "evening-shift"),
            )

        self.env.run_for(duration + 5.0)
        self.result.duration = self.env.now - start
        self.result.extra["cells"] = len(self.cluster.live_members())
        self.result.extra["inventory_consistent"] = float(
            len({tuple(sorted(d.snapshot().items())) for d in self.inventory}) == 1
        )
        return self.result
