"""Per-peer channel state and wire types for the reliable transport.

The network gives us lossy unordered datagrams; :mod:`repro.transport.
reliable` builds per-peer reliable FIFO channels on top using sequence
numbers, cumulative acknowledgements and timeout-driven retransmission.

Channels are additionally tagged with the sender's process *incarnation*
(bumped on crash recovery) and a per-channel *epoch* (bumped whenever the
sender restarts the channel, e.g. because the receiver rebooted and lost
its receive state).  A receiver keys its state by (incarnation, epoch)
and ignores anything older, so a recovered workstation is never
black-holed by sequence numbers from its previous life.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.net.message import payload_category, payload_size


@dataclass
class Segment:
    """A reliably transmitted payload with a per-peer sequence number.

    Statistics transparency: a segment reports its *inner* payload's
    category and size, so protocol-level message accounting (flush
    messages, group data, ...) is unaffected by the transport wrapping.

    When the comms optimisations are on (docs/comms.md) a segment can
    additionally carry a piggybacked cumulative ack for the *reverse*
    channel — ``ack_cum_seq``/``ack_epoch`` mirror a standalone
    :class:`SegmentAck` and add its bytes to the frame when present.
    """

    seq: int
    payload: Any
    incarnation: int = 0
    epoch: int = 0
    ack_cum_seq: Optional[int] = None
    ack_epoch: int = 0

    @property
    def category(self) -> str:
        return payload_category(self.payload)

    @property
    def size_bytes(self) -> int:
        size = payload_size(self.payload) + 16  # seq-number overhead
        if self.ack_cum_seq is not None:
            size += SegmentAck.size_bytes  # ack riding in the header
        return size

    @property
    def channel_id(self) -> Tuple[int, int]:
        return (self.incarnation, self.epoch)


@dataclass
class SegmentAck:
    """Cumulative acknowledgement: all seq <= cum_seq received.

    Carries the acker's incarnation (so a sender notices the receiver
    rebooted) and echoes the channel epoch being acknowledged (so acks
    from a dead epoch are ignored).
    """

    category = "transport-ack"
    size_bytes = 16
    cum_seq: int
    incarnation: int = 0
    epoch: int = 0


@dataclass
class SendState:
    """Sender-side state for one destination."""

    epoch: int = 0
    next_seq: int = 1
    # seq -> (payload, last transmission time)
    unacked: Dict[int, Tuple[Any, float]] = field(default_factory=dict)

    def admit(self, payload: Any, now: float, incarnation: int = 0) -> Segment:
        segment = Segment(
            seq=self.next_seq,
            payload=payload,
            incarnation=incarnation,
            epoch=self.epoch,
        )
        self.unacked[segment.seq] = (payload, now)
        self.next_seq += 1
        return segment

    def acknowledge(self, cum_seq: int) -> None:
        for seq in [s for s in self.unacked if s <= cum_seq]:
            del self.unacked[seq]

    def due_for_retransmit(
        self, now: float, rto: float, incarnation: int = 0
    ) -> List[Segment]:
        due = []
        for seq, (payload, sent_at) in sorted(self.unacked.items()):
            if now - sent_at >= rto:
                self.unacked[seq] = (payload, now)
                due.append(
                    Segment(
                        seq=seq,
                        payload=payload,
                        incarnation=incarnation,
                        epoch=self.epoch,
                    )
                )
        return due

    def restart(self, now: float) -> List[Any]:
        """Begin a new epoch (the receiver lost its state): unacked
        payloads are carried over in order to be re-admitted by the
        caller.  Returns those payloads."""
        pending = [payload for _seq, (payload, _at) in sorted(self.unacked.items())]
        self.epoch += 1
        self.next_seq = 1
        self.unacked = {}
        return pending


@dataclass
class ReceiveState:
    """Receiver-side state for one source channel (incarnation, epoch)."""

    channel_id: Tuple[int, int] = (0, 0)
    expected: int = 1
    out_of_order: Dict[int, Any] = field(default_factory=dict)

    def accept(self, segment: Segment) -> List[Any]:
        """Record a segment; return payloads now deliverable in order."""
        if segment.seq < self.expected:
            return []  # duplicate of something already delivered
        self.out_of_order.setdefault(segment.seq, segment.payload)
        ready: List[Any] = []
        while self.expected in self.out_of_order:
            ready.append(self.out_of_order.pop(self.expected))
            self.expected += 1
        return ready

    @property
    def cum_seq(self) -> int:
        return self.expected - 1
