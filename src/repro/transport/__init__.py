"""Reliable FIFO transport built on the lossy datagram network."""

from repro.transport.channel import ReceiveState, Segment, SegmentAck, SendState
from repro.transport.reliable import DEFAULT_RTO, ReliableTransport

__all__ = [
    "DEFAULT_RTO",
    "ReceiveState",
    "ReliableTransport",
    "Segment",
    "SegmentAck",
    "SendState",
]
