"""Reliable FIFO point-to-point transport over the lossy network.

Attach a :class:`ReliableTransport` to a process and every protocol layer
above it gets exactly-once, in-order delivery per peer::

    transport = ReliableTransport(process)
    transport.send(dst, SomeProtocolMessage(...))

Received payloads re-enter the owning process's normal dispatch
(``process.deliver``), so upper layers are oblivious to the transport —
they simply register handlers for their own payload types.

Reliability comes from sequence numbers + cumulative acks + a single
periodic retransmission sweep per process (one timer, not one per
segment, which keeps large simulations cheap).

Crash recovery is handled with incarnations and channel epochs (see
:mod:`repro.transport.channel`): a recovered process sends under a new
incarnation, receivers discard channel state from its previous life, and
a sender that observes a rebooted receiver restarts the channel in a new
epoch, carrying unacked payloads over — so traffic flows again in both
directions without manual intervention, even when the reboot was too
fast for any failure detector to notice.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable

from repro.net.message import Address
from repro.proc.process import Process
from repro.transport.channel import ReceiveState, Segment, SegmentAck, SendState

DEFAULT_RTO = 0.05


class ReliableTransport:
    """Per-peer reliable FIFO channels multiplexed onto one process."""

    def __init__(self, process: Process, rto: float = DEFAULT_RTO) -> None:
        if rto <= 0:
            raise ValueError("rto must be positive")
        self._process = process
        self._rto = rto
        self._send: Dict[Address, SendState] = {}
        self._recv: Dict[Address, ReceiveState] = {}
        self._peer_incarnation: Dict[Address, int] = {}
        process.on(Segment, self._on_segment)
        process.on(SegmentAck, self._on_ack)
        process.every(rto, self._retransmit_sweep)
        process.add_recover_listener(self.reset)

    @property
    def _incarnation(self) -> int:
        return self._process.incarnation

    # -- sending ---------------------------------------------------------------

    def send(self, dst: Address, payload: Any) -> None:
        """Reliably send ``payload`` to ``dst`` (FIFO per destination)."""
        state = self._send.setdefault(dst, SendState())
        segment = state.admit(payload, self._process.env.now, self._incarnation)
        self._process.send(dst, segment)

    def send_many(self, dsts: Iterable[Address], payload: Any) -> None:
        """Reliable 'multicast': an independent reliable send per peer.

        Logical message counts match ISIS's point-to-point multicast; the
        hardware-multicast saving of E9 applies to the *first*
        transmission only, so we route initial copies through the network
        multicast (when their channel positions align) and keep per-peer
        state for retransmission.
        """
        dst_list = list(dsts)
        if not dst_list:
            return
        now = self._process.env.now
        segments = []
        for dst in dst_list:
            state = self._send.setdefault(dst, SendState())
            segments.append((dst, state.admit(payload, now, self._incarnation)))
        identities = {(s.seq, s.epoch) for _, s in segments}
        if len(identities) == 1 and self._process.env.network.hardware_multicast:
            self._process.multicast([dst for dst, _ in segments], segments[0][1])
        else:
            for dst, segment in segments:
                self._process.send(dst, segment)

    def unacked_count(self, dst: Address) -> int:
        state = self._send.get(dst)
        return len(state.unacked) if state else 0

    def forget_peer(self, dst: Address) -> None:
        """Drop state for a peer known to have failed (stops retransmits)."""
        self._send.pop(dst, None)
        self._recv.pop(dst, None)
        self._peer_incarnation.pop(dst, None)

    def reset(self) -> None:
        """Drop all channel state (fail-stop recovery: this process comes
        back with fresh sequence numbers under a new incarnation)."""
        self._send.clear()
        self._recv.clear()
        self._peer_incarnation.clear()

    def _retransmit_sweep(self) -> None:
        now = self._process.env.now
        trace = self._process.env.network.trace
        for dst, state in self._send.items():
            for segment in state.due_for_retransmit(now, self._rto, self._incarnation):
                if trace is not None:
                    # Each retransmission gets its own span so traced runs
                    # separate first transmissions from recovery traffic.
                    with trace.span(
                        "retransmit", category="transport",
                        process=self._process.address, peer=dst,
                        seq=segment.seq,
                    ):
                        self._process.send(dst, segment)
                else:
                    self._process.send(dst, segment)

    # -- receiving --------------------------------------------------------------

    def _on_segment(self, segment: Segment, sender: Address) -> None:
        self._note_peer_incarnation(sender, segment.incarnation)
        state = self._recv.get(sender)
        if state is None or state.channel_id < segment.channel_id:
            # first contact, or the sender rebooted / restarted the
            # channel: fresh receive state for the new channel
            state = ReceiveState(channel_id=segment.channel_id)
            self._recv[sender] = state
        elif state.channel_id > segment.channel_id:
            return  # a straggler from a dead channel: ignore entirely
        ready = state.accept(segment)
        self._process.send(
            sender,
            SegmentAck(
                cum_seq=state.cum_seq,
                incarnation=self._incarnation,
                epoch=segment.epoch,
            ),
        )
        for payload in ready:
            self._process.deliver(payload, sender)

    def _on_ack(self, ack: SegmentAck, sender: Address) -> None:
        self._note_peer_incarnation(sender, ack.incarnation)
        state = self._send.get(sender)
        if state is not None and ack.epoch == state.epoch:
            state.acknowledge(ack.cum_seq)

    def _note_peer_incarnation(self, peer: Address, incarnation: int) -> None:
        """Detect a rebooted peer: restart our outgoing channel to it so
        unacked traffic is renumbered for its fresh receive state."""
        known = self._peer_incarnation.get(peer)
        if known is None:
            self._peer_incarnation[peer] = incarnation
            return
        if incarnation <= known:
            return
        self._peer_incarnation[peer] = incarnation
        self._recv.pop(peer, None)  # its old outgoing channel died with it
        trace = self._process.env.network.trace
        if trace is not None:
            trace.local(
                "channel-restart", category="transport",
                process=self._process.address, peer=peer,
                incarnation=incarnation,
            )
        state = self._send.get(peer)
        if state is not None:
            pending = state.restart(self._process.env.now)
            for payload in pending:
                segment = state.admit(
                    payload, self._process.env.now, self._incarnation
                )
                self._process.send(peer, segment)
