"""Reliable FIFO point-to-point transport over the lossy network.

Attach a :class:`ReliableTransport` to a process and every protocol layer
above it gets exactly-once, in-order delivery per peer::

    transport = ReliableTransport(process)
    transport.send(dst, SomeProtocolMessage(...))

Received payloads re-enter the owning process's normal dispatch
(``process.deliver``), so upper layers are oblivious to the transport —
they simply register handlers for their own payload types.

Reliability comes from sequence numbers + cumulative acks + a single
periodic retransmission sweep per process (one timer, not one per
segment, which keeps large simulations cheap).

Crash recovery is handled with incarnations and channel epochs (see
:mod:`repro.transport.channel`): a recovered process sends under a new
incarnation, receivers discard channel state from its previous life, and
a sender that observes a rebooted receiver restarts the channel in a new
epoch, carrying unacked payloads over — so traffic flows again in both
directions without manual intervention, even when the reboot was too
fast for any failure detector to notice.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Optional

from repro.net.message import Address
from repro.proc.process import Process
from repro.transport.channel import ReceiveState, Segment, SegmentAck, SendState

DEFAULT_RTO = 0.05


class ReliableTransport:
    """Per-peer reliable FIFO channels multiplexed onto one process.

    With a positive ``ack_delay`` (docs/comms.md; default comes from the
    environment's :class:`~repro.net.packer.CommsParams`), acks are not
    sent immediately per segment: they ride on the next outgoing segment
    to the same peer, and only if the reverse direction stays idle for
    ``ack_delay`` does a standalone cumulative :class:`SegmentAck` go
    out.  ``ack_delay`` must stay well below ``rto`` so a delayed ack can
    never provoke a spurious retransmission.
    """

    def __init__(
        self,
        process: Process,
        rto: float = DEFAULT_RTO,
        ack_delay: Optional[float] = None,
    ) -> None:
        if rto <= 0:
            raise ValueError("rto must be positive")
        if ack_delay is None:
            comms = getattr(process.env, "comms", None)
            ack_delay = comms.delayed_ack if comms is not None else 0.0
        if ack_delay < 0:
            raise ValueError("ack_delay must be nonnegative")
        if ack_delay >= rto:
            raise ValueError("ack_delay must stay below rto")
        self._process = process
        self._rto = rto
        self._ack_delay = ack_delay
        self._send: Dict[Address, SendState] = {}
        self._recv: Dict[Address, ReceiveState] = {}
        # Number of channels with unacked segments outstanding.  The
        # periodic retransmission sweep fires every rto for the whole
        # life of the process; with delayed acks well below rto the
        # steady state is "everything acked", and this counter lets the
        # sweep return without touching per-channel state at all.
        self._inflight = 0
        self._peer_incarnation: Dict[Address, int] = {}
        # Delayed-ack state: segments received per peer since the last
        # ack (standalone or ridden), and the idle-fallback timer.
        self._ack_pending: Dict[Address, int] = {}
        self._ack_timers: Dict[Address, Any] = {}
        process.on(Segment, self._on_segment)
        process.on(SegmentAck, self._on_ack)
        process.every(rto, self._retransmit_sweep)
        process.add_recover_listener(self.reset)

    @property
    def _incarnation(self) -> int:
        return self._process.incarnation

    # -- sending ---------------------------------------------------------------

    def send(self, dst: Address, payload: Any) -> None:
        """Reliably send ``payload`` to ``dst`` (FIFO per destination)."""
        state = self._send.setdefault(dst, SendState())
        if not state.unacked:
            self._inflight += 1
        segment = state.admit(payload, self._process.env.now, self._incarnation)
        self._send_segment(dst, segment)

    def send_many(self, dsts: Iterable[Address], payload: Any) -> None:
        """Reliable 'multicast': an independent reliable send per peer.

        Logical message counts match ISIS's point-to-point multicast; the
        hardware-multicast saving of E9 applies to the *first*
        transmission only, so we route initial copies through the network
        multicast (when their channel positions align) and keep per-peer
        state for retransmission.
        """
        dst_list = list(dsts)
        if not dst_list:
            return
        now = self._process.env.now
        segments = []
        for dst in dst_list:
            state = self._send.setdefault(dst, SendState())
            if not state.unacked:
                self._inflight += 1
            segments.append((dst, state.admit(payload, now, self._incarnation)))
        identities = {(s.seq, s.epoch) for _, s in segments}
        if len(identities) == 1 and self._process.env.network.hardware_multicast:
            # One shared segment object reaches every destination, so no
            # per-peer ack can ride on it.
            self._process.multicast([dst for dst, _ in segments], segments[0][1])
        else:
            for dst, segment in segments:
                self._send_segment(dst, segment)

    def _send_segment(self, dst: Address, segment: Segment) -> None:
        """Put one segment on the wire, riding any pending ack for the
        reverse channel on it (docs/comms.md)."""
        pending = self._ack_pending.pop(dst, 0)
        if pending:
            timer = self._ack_timers.pop(dst, None)
            if timer is not None:
                timer.cancel()
            state = self._recv.get(dst)
            if state is not None:
                segment.ack_cum_seq = state.cum_seq
                segment.ack_epoch = state.channel_id[1]
                self._process.env.network.stats.record_piggyback(
                    "ack", pending
                )
        self._process.send(dst, segment)

    def unacked_count(self, dst: Address) -> int:
        state = self._send.get(dst)
        return len(state.unacked) if state else 0

    def forget_peer(self, dst: Address) -> None:
        """Drop state for a peer known to have failed (stops retransmits)."""
        state = self._send.pop(dst, None)
        if state is not None and state.unacked:
            self._inflight -= 1
        self._recv.pop(dst, None)
        self._peer_incarnation.pop(dst, None)
        self._ack_pending.pop(dst, None)
        timer = self._ack_timers.pop(dst, None)
        if timer is not None:
            timer.cancel()

    def reset(self) -> None:
        """Drop all channel state (fail-stop recovery: this process comes
        back with fresh sequence numbers under a new incarnation)."""
        self._send.clear()
        self._inflight = 0
        self._recv.clear()
        self._peer_incarnation.clear()
        self._ack_pending.clear()
        for timer in self._ack_timers.values():
            timer.cancel()
        self._ack_timers.clear()

    def _retransmit_sweep(self) -> None:
        if not self._inflight:
            return  # every channel fully acked: nothing can be due
        now = self._process.env.now
        trace = self._process.env.network.trace
        for dst, state in self._send.items():
            # Channels with nothing unacked (the steady-state majority)
            # skip the per-channel sort inside due_for_retransmit.
            if not state.unacked:
                continue
            for segment in state.due_for_retransmit(now, self._rto, self._incarnation):
                if trace is not None:
                    # Each retransmission gets its own span so traced runs
                    # separate first transmissions from recovery traffic.
                    with trace.span(
                        "retransmit", category="transport",
                        process=self._process.address, peer=dst,
                        seq=segment.seq,
                    ):
                        self._send_segment(dst, segment)
                else:
                    self._send_segment(dst, segment)

    # -- receiving --------------------------------------------------------------

    def _on_segment(self, segment: Segment, sender: Address) -> None:
        # Steady state: the peer's incarnation is already known and
        # unchanged, so the bookkeeping call is skipped entirely.
        if self._peer_incarnation.get(sender) != segment.incarnation:
            self._note_peer_incarnation(sender, segment.incarnation)
        if segment.ack_cum_seq is not None:
            self._apply_ack(sender, segment.ack_cum_seq, segment.ack_epoch)
        state = self._recv.get(sender)
        if state is None or state.channel_id < segment.channel_id:
            # first contact, or the sender rebooted / restarted the
            # channel: fresh receive state for the new channel
            state = ReceiveState(channel_id=segment.channel_id)
            self._recv[sender] = state
        elif state.channel_id > segment.channel_id:
            return  # a straggler from a dead channel: ignore entirely
        ready = state.accept(segment)
        if self._ack_delay > 0:
            self._note_ack_needed(sender)
        else:
            self._process.send(
                sender,
                SegmentAck(
                    cum_seq=state.cum_seq,
                    incarnation=self._incarnation,
                    epoch=segment.epoch,
                ),
            )
        for payload in ready:
            self._process.deliver(payload, sender)

    def _note_ack_needed(self, peer: Address) -> None:
        """Queue an ack for ``peer``: it rides on the next outgoing
        segment, or goes standalone after ``ack_delay`` of reverse-path
        idleness."""
        self._ack_pending[peer] = self._ack_pending.get(peer, 0) + 1
        if peer not in self._ack_timers:
            # Raw engine timer, not process.set_timer: acks are armed per
            # inbound segment, and the Timer-object/closure per arm shows
            # up in allocation-heavy runs.  Crash safety is preserved
            # without the process-owned cancel — a fire after crash hits
            # the ``process.send`` alive-guard, and recovery's ``reset``
            # drops all pending state first.
            self._ack_timers[peer] = self._process.env.scheduler.after_call(
                self._ack_delay, self._delayed_ack, peer
            )

    def _delayed_ack(self, peer: Address) -> None:
        """Idle fallback: no reverse segment carried the ack in time, so
        send one standalone cumulative ack covering everything pending."""
        self._ack_timers.pop(peer, None)
        pending = self._ack_pending.pop(peer, 0)
        if not pending or not self._process.alive:
            return
        state = self._recv.get(peer)
        if state is None:
            return  # peer was forgotten while the timer was armed
        if pending > 1:
            # One cumulative ack covers ``pending`` segments; all but the
            # ack actually sent were absorbed into it.
            self._process.env.network.stats.record_piggyback(
                "ack", pending - 1
            )
        self._process.send(
            peer,
            SegmentAck(
                cum_seq=state.cum_seq,
                incarnation=self._incarnation,
                epoch=state.channel_id[1],
            ),
        )

    def _on_ack(self, ack: SegmentAck, sender: Address) -> None:
        if self._peer_incarnation.get(sender) != ack.incarnation:
            self._note_peer_incarnation(sender, ack.incarnation)
        self._apply_ack(sender, ack.cum_seq, ack.epoch)

    def _apply_ack(self, peer: Address, cum_seq: int, epoch: int) -> None:
        state = self._send.get(peer)
        if state is not None and epoch == state.epoch and state.unacked:
            state.acknowledge(cum_seq)
            if not state.unacked:
                self._inflight -= 1

    def _note_peer_incarnation(self, peer: Address, incarnation: int) -> None:
        """Detect a rebooted peer: restart our outgoing channel to it so
        unacked traffic is renumbered for its fresh receive state."""
        known = self._peer_incarnation.get(peer)
        if known is None:
            self._peer_incarnation[peer] = incarnation
            return
        if incarnation <= known:
            return
        self._peer_incarnation[peer] = incarnation
        self._recv.pop(peer, None)  # its old outgoing channel died with it
        trace = self._process.env.network.trace
        if trace is not None:
            trace.local(
                "channel-restart", category="transport",
                process=self._process.address, peer=peer,
                incarnation=incarnation,
            )
        state = self._send.get(peer)
        if state is not None:
            pending = state.restart(self._process.env.now)
            for payload in pending:
                segment = state.admit(
                    payload, self._process.env.now, self._incarnation
                )
                self._send_segment(peer, segment)
