"""Latency models for the simulated network.

A latency model maps (source, destination, payload size) to a one-way delay.
The default :class:`LanLatency` approximates the 10 Mb/s Ethernet LAN of the
paper's era: a fixed propagation/processing base, a per-byte transmission
cost, and multiplicative jitter.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Optional

from repro.net.message import Address
from repro.runtime.api import SimRandom


class LatencyModel(ABC):
    """Strategy object: one-way delay for a datagram."""

    @abstractmethod
    def sample(
        self, rng: SimRandom, src: Address, dst: Address, size_bytes: int
    ) -> float:
        """Return the one-way delay in seconds."""

    def floor(self) -> float:
        """Smallest delay the model can produce (pre-jitter) — the scale
        the packing window defaults against (see repro.net.packer)."""
        return 0.0


class FixedLatency(LatencyModel):
    """Constant delay; useful for fully deterministic protocol tests."""

    def __init__(self, delay: float = 0.001) -> None:
        if delay < 0:
            raise ValueError("delay must be nonnegative")
        self.delay = delay

    def floor(self) -> float:
        return self.delay

    def sample(
        self, rng: SimRandom, src: Address, dst: Address, size_bytes: int
    ) -> float:
        return self.delay


class UniformLatency(LatencyModel):
    """Delay drawn uniformly from [lo, hi]."""

    def __init__(self, lo: float = 0.0005, hi: float = 0.002) -> None:
        if not 0 <= lo <= hi:
            raise ValueError("require 0 <= lo <= hi")
        self.lo = lo
        self.hi = hi

    def floor(self) -> float:
        return self.lo

    def sample(
        self, rng: SimRandom, src: Address, dst: Address, size_bytes: int
    ) -> float:
        return rng.uniform(self.lo, self.hi)


class SiteLatency(LatencyModel):
    """Long-distance links (paper §5: "considerations of long-distance
    links"): endpoints belong to *sites*; traffic within a site uses the
    local model, traffic between sites adds a WAN delay.

    ``site_of`` maps an address to its site name; the default takes the
    prefix before the first ``"."`` (e.g. ``"nyc.trader-3"`` -> ``"nyc"``),
    so single-token addresses all share one site.
    """

    def __init__(
        self,
        local: Optional["LatencyModel"] = None,
        wan_delay: float = 0.030,
        wan_jitter: float = 0.25,
        site_of=None,
    ) -> None:
        if wan_delay < 0 or not 0 <= wan_jitter < 1:
            raise ValueError("invalid WAN parameters")
        self.local = local if local is not None else LanLatency()
        self.wan_delay = wan_delay
        self.wan_jitter = wan_jitter
        self._site_of = site_of if site_of is not None else _prefix_site

    def floor(self) -> float:
        return self.local.floor()

    def site_of(self, address: Address) -> str:
        return self._site_of(address)

    def sample(
        self, rng: SimRandom, src: Address, dst: Address, size_bytes: int
    ) -> float:
        delay = self.local.sample(rng, src, dst, size_bytes)
        if self.site_of(src) != self.site_of(dst):
            wan = self.wan_delay
            if self.wan_jitter:
                wan *= rng.uniform(1.0 - self.wan_jitter, 1.0 + self.wan_jitter)
            delay += wan
        return delay


def _prefix_site(address: Address) -> str:
    return address.split(".", 1)[0] if "." in address else ""


class LanLatency(LatencyModel):
    """Late-1980s Ethernet LAN: base delay + per-byte cost + jitter.

    Defaults give ~1 ms for a small datagram, in line with the paper's
    "sub-second response" budgets being dominated by protocol hops rather
    than the wire.
    """

    def __init__(
        self,
        base: float = 0.0008,
        per_byte: float = 8e-7,  # 10 Mb/s  ~= 0.8 us/byte
        jitter: float = 0.2,
    ) -> None:
        if base < 0 or per_byte < 0 or not 0 <= jitter < 1:
            raise ValueError("invalid LAN latency parameters")
        self.base = base
        self.per_byte = per_byte
        self.jitter = jitter

    def floor(self) -> float:
        return self.base * (1.0 - self.jitter)

    def sample(
        self, rng: SimRandom, src: Address, dst: Address, size_bytes: int
    ) -> float:
        nominal = self.base + self.per_byte * size_bytes
        if self.jitter == 0:
            return nominal
        return nominal * rng.uniform(1.0 - self.jitter, 1.0 + self.jitter)
