"""The datagram network connecting all processes.

The network models an unreliable LAN over whichever engine hosts the
run: under :class:`~repro.runtime.sim_backend.SimRuntime` latency is
simulated time, under :class:`~repro.runtime.asyncio_backend.
AsyncioRuntime` it is a real wall-clock delay on the asyncio fabric.

Semantics:

* Unreliable, unordered datagram service (reliability and FIFO are built on
  top by :mod:`repro.transport`); optional drop and duplicate injection.
* Per-destination latency drawn from a :class:`~repro.net.latency.
  LatencyModel`.
* Partitions via :class:`~repro.net.partition.PartitionManager`.
* Two multicast modes, the subject of experiment E9:

  - *point-to-point* (default): a multicast to k destinations costs k wire
    packets, as in ISIS's portable implementation;
  - *hardware multicast* ("an effective hardware multicast facility, such
    as Ethernet", paper §2): one wire packet regardless of k.

  Logical message counts (one per destination) are identical in both modes;
  only wire-packet counts differ.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterable, Optional

from repro.net.latency import FixedLatency, LatencyModel
from repro.net.message import (
    Address,
    Envelope,
    HEADER_BYTES,
    payload_meta,
)
from repro.net.packer import Packer
from repro.net.partition import PartitionManager
from repro.net.stats import NetworkStats
from repro.runtime.api import MessageFabric, SimRandom, TimerService

DeliverFn = Callable[[Envelope], None]


class Network:
    """Datagram network over an engine's message fabric.

    The network is engine-agnostic: it reads the clock and defers
    deliveries through a :class:`~repro.runtime.api.MessageFabric`
    (by default the engine's own :class:`~repro.runtime.api.
    TimerService`, which under the sim backend is the Scheduler itself —
    the PR-1 hot path unchanged).  The asyncio backend binds its
    in-flight-counting fabric here instead.
    """

    def __init__(
        self,
        timers: TimerService,
        rng: SimRandom,
        latency: Optional[LatencyModel] = None,
        drop_probability: float = 0.0,
        duplicate_probability: float = 0.0,
        hardware_multicast: bool = False,
        fabric: Optional[MessageFabric] = None,
        pack_window: float = 0.0,
    ) -> None:
        if not 0 <= drop_probability < 1:
            raise ValueError("drop_probability must be in [0, 1)")
        if not 0 <= duplicate_probability < 1:
            raise ValueError("duplicate_probability must be in [0, 1)")
        if pack_window < 0:
            raise ValueError("pack_window must be nonnegative")
        self._fabric = fabric if fabric is not None else timers
        self._rng = rng
        self._latency = latency if latency is not None else FixedLatency(0.001)
        self.drop_probability = drop_probability
        self.duplicate_probability = duplicate_probability
        self.hardware_multicast = hardware_multicast
        self._endpoints: Dict[Address, DeliverFn] = {}
        self.partitions = PartitionManager()
        self.stats = NetworkStats()
        # Wire-level packing (docs/comms.md): with a positive window,
        # unicast datagrams are held briefly and coalesced per
        # destination into one wire packet with a shared header.  Window
        # 0 (the default) keeps the classic one-datagram-one-packet path
        # below, byte-identical to the frozen baselines.
        self.pack_window = pack_window
        self._packer: Optional[Packer] = (
            Packer(pack_window, self._fabric, self._flush_packed)
            if pack_window > 0
            else None
        )
        self._taps: list = []
        # Causal tracing sink (repro.trace.api.TraceSink) or None when
        # tracing is off.  Installed by repro.trace.api.attach(); every
        # hook below is guarded by one attribute load + None check, which
        # is the entire disabled-path cost.
        self.trace = None

    @property
    def packer(self) -> Optional[Packer]:
        """The packing queue when ``pack_window > 0``, else ``None``."""
        return self._packer

    # -- observation -----------------------------------------------------------

    def add_tap(self, fn: Callable[[str, "Envelope"], None]) -> None:
        """Register ``fn(event, envelope)`` called on every ``"send"``,
        ``"deliver"`` and ``"drop"`` — a wire-level observation point for
        debugging and tracing.  Taps must not mutate the envelope, and
        must not retain it: the ``"send"`` and ``"deliver"`` events for a
        datagram share one envelope object (built once per datagram), so
        ``deliver_time`` is filled in after the send tap fires."""
        self._taps.append(fn)

    def remove_tap(self, fn) -> None:
        if fn in self._taps:
            self._taps.remove(fn)

    def _tap(self, event: str, envelope: "Envelope") -> None:
        for fn in self._taps:
            fn(event, envelope)

    # -- endpoint management -------------------------------------------------

    def register(self, address: Address, deliver: DeliverFn) -> None:
        """Attach an endpoint.  Re-registering an address replaces it."""
        self._endpoints[address] = deliver

    def unregister(self, address: Address) -> None:
        """Detach an endpoint; in-flight datagrams to it are dropped."""
        self._endpoints.pop(address, None)

    def is_registered(self, address: Address) -> bool:
        return address in self._endpoints

    @property
    def endpoints(self) -> Iterable[Address]:
        return self._endpoints.keys()

    # -- sending -------------------------------------------------------------

    def send(self, src: Address, dst: Address, payload: Any) -> None:
        """Send one datagram; counts one logical message + one wire packet."""
        self._transmit(src, dst, payload, wire_packets=1)

    def multicast(self, src: Address, dsts: Iterable[Address], payload: Any) -> None:
        """Send the same payload to several destinations.

        Counts one logical message per destination.  Wire packets: one per
        destination point-to-point, or one total under hardware multicast —
        counted only if at least one transmit reached the latency stage
        (a multicast with every destination partitioned away never makes
        it onto the wire).
        """
        dst_list = list(dsts)
        if not dst_list:
            return
        if self.hardware_multicast:
            reached = False
            for dst in dst_list:
                if self._transmit(src, dst, payload, wire_packets=0):
                    reached = True
            if reached:
                self.stats.record_wire(1)
        else:
            for dst in dst_list:
                self._transmit(src, dst, payload, wire_packets=1)

    def _transmit(
        self, src: Address, dst: Address, payload: Any, wire_packets: int
    ) -> bool:
        """Send one datagram; True if it reached the latency stage (i.e.
        was actually put in flight rather than partitioned or lost)."""
        # Hot path: one envelope per datagram, shared by the send tap and
        # the delivery event; scheduled as (bound method, envelope) so no
        # closure is allocated per datagram.
        category, size = payload_meta(payload)
        total = size + HEADER_BYTES
        stats = self.stats
        stats.record_send(src, category, total)
        packer = self._packer
        if wire_packets and packer is None:
            stats.record_wire(wire_packets)
        fabric = self._fabric
        now = fabric.now
        envelope = Envelope(src, dst, payload, now, 0.0, size)
        if self._taps:
            self._tap("send", envelope)
        trace = self.trace
        if trace is not None:
            trace.on_send(envelope, category)
        if not self.partitions.reachable(src, dst):
            self._drop(envelope)
            return False
        rng = self._rng
        if rng.chance(self.drop_probability):
            self._drop(envelope)
            return False
        if wire_packets and packer is not None:
            # Packing on: hold the datagram for the pack window; wire
            # accounting and the (single, shared) latency draw happen at
            # flush.  Partition/loss above stay per logical message, so
            # delivery semantics are untouched.
            packer.enqueue(envelope)
            if rng.chance(self.duplicate_probability):
                duplicate = Envelope(src, dst, payload, now, 0.0, size)
                duplicate.trace = envelope.trace
                packer.enqueue(duplicate)
            return True
        delay = self._latency.sample(rng, src, dst, total)
        envelope.deliver_time = now + delay
        fabric.at_call(envelope.deliver_time, self._deliver, envelope)
        if rng.chance(self.duplicate_probability):
            # The duplicate gets its own latency draw and envelope (the
            # two copies are independently in flight).
            delay = self._latency.sample(rng, src, dst, total)
            duplicate = Envelope(src, dst, payload, now, now + delay, size)
            # Both copies stem from the same logical send span.
            duplicate.trace = envelope.trace
            fabric.at_call(duplicate.deliver_time, self._deliver, duplicate)
        return True

    def _flush_packed(
        self, src: Address, dst: Address, envelopes: list
    ) -> None:
        """Put one coalesced wire packet in flight: a shared header, one
        latency draw over the combined frame, one scheduled delivery
        event that fans back out into per-datagram deliveries."""
        stats = self.stats
        stats.record_wire(1)
        count = len(envelopes)
        total = HEADER_BYTES
        for envelope in envelopes:
            total += envelope.size_bytes
        if count > 1:
            stats.record_packed(count, (count - 1) * HEADER_BYTES)
        fabric = self._fabric
        delay = self._latency.sample(self._rng, src, dst, total)
        deliver_time = fabric.now + delay
        for envelope in envelopes:
            envelope.deliver_time = deliver_time
        if count == 1:
            fabric.at_call(deliver_time, self._deliver, envelopes[0])
        else:
            fabric.at_call(deliver_time, self._deliver_packed, envelopes)

    def _deliver_packed(self, envelopes: list) -> None:
        # Unpack: each coalesced datagram keeps its own envelope (and its
        # own trace span), so upper layers and the tracer see exactly the
        # per-logical-message events they would without packing.
        deliver = self._deliver
        for envelope in envelopes:
            deliver(envelope)

    def _drop(self, envelope: Envelope) -> None:
        self.stats.record_drop()
        if self._taps:
            self._tap("drop", envelope)
        trace = self.trace
        if trace is not None:
            trace.on_drop(envelope)

    def _deliver(self, envelope: Envelope) -> None:
        deliver = self._endpoints.get(envelope.dst)
        if deliver is None:
            # Destination crashed or never existed; the datagram vanishes,
            # exactly as on a real LAN.
            self._drop(envelope)
            return
        self.stats.record_delivery(envelope.dst)
        if self._taps:
            self._tap("deliver", envelope)
        trace = self.trace
        if trace is None:
            deliver(envelope)
            return
        token = trace.on_deliver_begin(envelope)
        try:
            deliver(envelope)
        finally:
            trace.on_deliver_end(token)
