"""The datagram network connecting all processes.

The network models an unreliable LAN over whichever engine hosts the
run: under :class:`~repro.runtime.sim_backend.SimRuntime` latency is
simulated time, under :class:`~repro.runtime.asyncio_backend.
AsyncioRuntime` it is a real wall-clock delay on the asyncio fabric.

Semantics:

* Unreliable, unordered datagram service (reliability and FIFO are built on
  top by :mod:`repro.transport`); optional drop and duplicate injection.
* Per-destination latency drawn from a :class:`~repro.net.latency.
  LatencyModel`.
* Partitions via :class:`~repro.net.partition.PartitionManager`.
* Two multicast modes, the subject of experiment E9:

  - *point-to-point* (default): a multicast to k destinations costs k wire
    packets, as in ISIS's portable implementation;
  - *hardware multicast* ("an effective hardware multicast facility, such
    as Ethernet", paper §2): one wire packet regardless of k.

  Logical message counts (one per destination) are identical in both modes;
  only wire-packet counts differ.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterable, Optional

from repro.net.latency import FixedLatency, LatencyModel
from repro.net.message import (
    _META_CACHE,
    Address,
    Envelope,
    HEADER_BYTES,
    payload_meta,
)
from repro.net.packer import Packer
from repro.net.partition import PartitionManager
from repro.net.stats import NetworkStats
from repro.runtime.api import MessageFabric, SimRandom, TimerService

DeliverFn = Callable[[Envelope], None]


class Network:
    """Datagram network over an engine's message fabric.

    The network is engine-agnostic: it reads the clock and defers
    deliveries through a :class:`~repro.runtime.api.MessageFabric`
    (by default the engine's own :class:`~repro.runtime.api.
    TimerService`, which under the sim backend is the Scheduler itself —
    the PR-1 hot path unchanged).  The asyncio backend binds its
    in-flight-counting fabric here instead.
    """

    def __init__(
        self,
        timers: TimerService,
        rng: SimRandom,
        latency: Optional[LatencyModel] = None,
        drop_probability: float = 0.0,
        duplicate_probability: float = 0.0,
        hardware_multicast: bool = False,
        fabric: Optional[MessageFabric] = None,
        pack_window: float = 0.0,
    ) -> None:
        if not 0 <= drop_probability < 1:
            raise ValueError("drop_probability must be in [0, 1)")
        if not 0 <= duplicate_probability < 1:
            raise ValueError("duplicate_probability must be in [0, 1)")
        if pack_window < 0:
            raise ValueError("pack_window must be nonnegative")
        self._fabric = fabric if fabric is not None else timers
        self._rng = rng
        self._latency = latency if latency is not None else FixedLatency(0.001)
        # Exact-FixedLatency fast path: the constant is read directly in
        # the send loop, skipping a sample() call per datagram.  Exact
        # type match, so subclasses overriding sample() are untouched.
        self._fixed_delay = (
            self._latency.delay if type(self._latency) is FixedLatency else None
        )
        self.drop_probability = drop_probability
        self.duplicate_probability = duplicate_probability
        self.hardware_multicast = hardware_multicast
        self._endpoints: Dict[Address, DeliverFn] = {}
        self.partitions = PartitionManager()
        self.stats = NetworkStats()
        # Wire-level packing (docs/comms.md): with a positive window,
        # unicast datagrams are held briefly and coalesced per
        # destination into one wire packet with a shared header.  Window
        # 0 (the default) keeps the classic one-datagram-one-packet path
        # below, byte-identical to the frozen baselines.
        self.pack_window = pack_window
        self._packer: Optional[Packer] = (
            Packer(pack_window, self._fabric, self._flush_packed)
            if pack_window > 0
            else None
        )
        self._tap_entries: list = []
        self._taps: list = []
        self._send_taps: list = []
        self._deliver_taps: list = []
        self._drop_taps: list = []
        # Causal tracing sink (repro.trace.api.TraceSink) or None when
        # tracing is off.  Installed by repro.trace.api.attach(); every
        # hook below is guarded by one attribute load + None check, which
        # is the entire disabled-path cost.
        self.trace = None
        # Batched dispatch (docs/simulator.md): when the fabric offers
        # bucketed scheduling (the sim scheduler's at_call_grouped), all
        # deliveries sharing a timestamp drain through one heap pop and
        # one _deliver_batch fan-out.  The asyncio fabric doesn't, and
        # falls back to one at_call per datagram.  The fan-out callback
        # is bound ONCE here: bucket matching is by identity
        # (``bucket.fn is fn``), and a fresh ``self._deliver_batch``
        # bound-method object per send would seal the bucket every time.
        self._group = getattr(self._fabric, "at_call_grouped", None)
        self._fan_out = self._deliver_batch
        # Envelope free list: a delivered (or dropped-in-transmit)
        # envelope is recycled for the next datagram, so the steady-state
        # send path allocates no envelope objects.  Anything that may
        # legally retain an envelope past the scheduling point (the
        # packer holds them until flush) simply never recycles it.
        self._env_pool: list = []
        self._fresh_envelopes = 0

    @property
    def alloc_stats(self) -> Dict[str, int]:
        """Envelope free-list telemetry, mirroring the scheduler's
        ``alloc_stats``: ``fresh_envelopes`` only grows when the pool is
        empty, so a flat steady-state delta means zero allocation."""
        return {
            "fresh_envelopes": self._fresh_envelopes,
            "pooled_envelopes": len(self._env_pool),
        }

    @property
    def packer(self) -> Optional[Packer]:
        """The packing queue when ``pack_window > 0``, else ``None``."""
        return self._packer

    # -- observation -----------------------------------------------------------

    def add_tap(
        self, fn: Callable[[str, "Envelope"], None], events=None
    ) -> None:
        """Register ``fn(event, envelope)`` called on every ``"send"``,
        ``"deliver"`` and ``"drop"`` — a wire-level observation point for
        debugging and tracing.  ``events`` narrows the subscription to an
        iterable of kinds (e.g. ``("deliver",)``), sparing the hot paths
        a call per unwanted event.  Taps must not mutate the envelope,
        and must not retain it: the ``"send"`` and ``"deliver"`` events
        for a datagram share one envelope object (built once per
        datagram), so ``deliver_time`` is filled in after the send tap
        fires — and the envelope is *recycled* onto a free list the
        moment its delivery (or drop) completes, after which it will
        carry a different datagram.  Copy out whatever fields you need."""
        self._tap_entries.append(
            (fn, None if events is None else frozenset(events))
        )
        self._rebuild_taps()

    def remove_tap(self, fn) -> None:
        self._tap_entries = [e for e in self._tap_entries if e[0] is not fn]
        self._rebuild_taps()

    def _rebuild_taps(self) -> None:
        # Per-kind dispatch lists, consulted directly by the hot paths
        # (one truthiness check each when no taps are attached).
        entries = self._tap_entries
        self._taps = [fn for fn, _ in entries]
        self._send_taps = [
            fn for fn, ev in entries if ev is None or "send" in ev
        ]
        self._deliver_taps = [
            fn for fn, ev in entries if ev is None or "deliver" in ev
        ]
        self._drop_taps = [
            fn for fn, ev in entries if ev is None or "drop" in ev
        ]

    def _tap(self, event: str, envelope: "Envelope") -> None:
        for fn in self._taps:
            fn(event, envelope)

    # -- endpoint management -------------------------------------------------

    def register(self, address: Address, deliver: DeliverFn) -> None:
        """Attach an endpoint.  Re-registering an address replaces it."""
        self._endpoints[address] = deliver

    def unregister(self, address: Address) -> None:
        """Detach an endpoint; in-flight datagrams to it are dropped."""
        self._endpoints.pop(address, None)

    def is_registered(self, address: Address) -> bool:
        return address in self._endpoints

    @property
    def endpoints(self) -> Iterable[Address]:
        return self._endpoints.keys()

    # -- sending -------------------------------------------------------------

    def send(
        self, src: Address, dst: Address, payload: Any, wire_packets: int = 1
    ) -> bool:
        """Send one datagram; counts one logical message + one wire packet
        (hardware multicast passes ``wire_packets=0`` and accounts for the
        shared packet itself).  Returns True if the datagram reached the
        latency stage, i.e. was actually put in flight rather than
        partitioned or lost.

        This is the hottest function in any run, so it trades a little
        repetition for speed: the payload meta lookup and the stats
        bookkeeping (``NetworkStats.record_send`` — keep the two in
        lockstep) are inlined, the envelope is drawn from the free list,
        and delivery is scheduled through the fabric's grouped bucket
        when it offers one.
        """
        try:
            category, size = _META_CACHE[payload.__class__]
            if category is None:
                category = payload.category
            if size is None:
                size = int(payload.size_bytes)
        except KeyError:
            category, size = payload_meta(payload)  # cold: registers class
        total = size + HEADER_BYTES
        stats = self.stats
        stats.messages += 1
        stats.bytes += total
        # Counter bumps use try/except rather than dict.get: after the
        # first datagram of a (category, sender) the key always exists,
        # so the exception path never runs in steady state and the
        # bound-method call per counter is saved.
        by_category = stats.by_category
        try:
            by_category[category] += 1
        except KeyError:
            by_category[category] = 1
        bytes_by_category = stats.bytes_by_category
        try:
            bytes_by_category[category] += total
        except KeyError:
            bytes_by_category[category] = total
        sent_by = stats.sent_by
        try:
            sent_by[src] += 1
        except KeyError:
            sent_by[src] = 1
        packer = self._packer
        if wire_packets and packer is None:
            stats.wire_packets += wire_packets
        fabric = self._fabric
        now = fabric.now
        pool = self._env_pool
        if pool:
            envelope = pool.pop()
            envelope.src = src
            envelope.dst = dst
            envelope.payload = payload
            envelope.send_time = now
            envelope.deliver_time = 0.0
            envelope.size_bytes = size
        else:
            self._fresh_envelopes += 1
            envelope = Envelope(src, dst, payload, now, 0.0, size)
        taps = self._send_taps
        if taps:
            for fn in taps:
                fn("send", envelope)
        trace = self.trace
        if trace is not None:
            trace.on_send(envelope, category)
        partitions = self.partitions
        if partitions.active and not partitions.reachable(src, dst):
            self._drop(envelope)
            self._recycle(envelope)
            return False
        rng = self._rng
        # The probability pre-checks are stream-neutral: SimRandom.chance
        # draws nothing when p <= 0, so skipping the call entirely leaves
        # the RNG stream byte-identical on lossless runs.
        if self.drop_probability and rng.chance(self.drop_probability):
            self._drop(envelope)
            self._recycle(envelope)
            return False
        duplicate_probability = self.duplicate_probability
        if wire_packets and packer is not None:
            # Packing on: hold the datagram for the pack window; wire
            # accounting and the (single, shared) latency draw happen at
            # flush.  Partition/loss above stay per logical message, so
            # delivery semantics are untouched.  The packer retains the
            # envelope until flush, so nothing is recycled here.
            packer.enqueue(envelope)
            if duplicate_probability and rng.chance(duplicate_probability):
                self._fresh_envelopes += 1
                duplicate = Envelope(src, dst, payload, now, 0.0, size)
                duplicate.trace = envelope.trace
                packer.enqueue(duplicate)
            return True
        delay = self._fixed_delay
        if delay is None:
            delay = self._latency.sample(rng, src, dst, total)
        deliver_time = now + delay
        envelope.deliver_time = deliver_time
        group = self._group
        if group is not None:
            # Sim fabric: all deliveries landing on one timestamp drain
            # through a single heap pop and one _deliver_batch fan-out.
            # ``dst`` is the locality key for the sharded engine.
            group(deliver_time, self._fan_out, envelope, dst)
        else:
            fabric.at_call(deliver_time, self._deliver, envelope)
        if duplicate_probability and rng.chance(duplicate_probability):
            # The duplicate gets its own latency draw and envelope (the
            # two copies are independently in flight).
            delay = self._latency.sample(rng, src, dst, total)
            self._fresh_envelopes += 1
            duplicate = Envelope(src, dst, payload, now, now + delay, size)
            # Both copies stem from the same logical send span.
            duplicate.trace = envelope.trace
            if group is not None:
                group(duplicate.deliver_time, self._fan_out, duplicate, dst)
            else:
                fabric.at_call(duplicate.deliver_time, self._deliver, duplicate)
        return True

    # Historical internal name, kept for symmetry with older call sites.
    _transmit = send

    def multicast(self, src: Address, dsts: Iterable[Address], payload: Any) -> None:
        """Send the same payload to several destinations.

        Counts one logical message per destination.  Wire packets: one per
        destination point-to-point, or one total under hardware multicast —
        counted only if at least one transmit reached the latency stage
        (a multicast with every destination partitioned away never makes
        it onto the wire).
        """
        dst_list = list(dsts)
        if not dst_list:
            return
        send = self.send
        if self.hardware_multicast:
            reached = False
            for dst in dst_list:
                if send(src, dst, payload, 0):
                    reached = True
            if reached:
                self.stats.record_wire(1)
        else:
            for dst in dst_list:
                send(src, dst, payload, 1)

    def _flush_packed(
        self, src: Address, dst: Address, envelopes: list
    ) -> None:
        """Put one coalesced wire packet in flight: a shared header, one
        latency draw over the combined frame, one scheduled delivery
        event that fans back out into per-datagram deliveries."""
        stats = self.stats
        stats.record_wire(1)
        count = len(envelopes)
        total = HEADER_BYTES
        for envelope in envelopes:
            total += envelope.size_bytes
        if count > 1:
            stats.record_packed(count, (count - 1) * HEADER_BYTES)
        fabric = self._fabric
        delay = self._latency.sample(self._rng, src, dst, total)
        deliver_time = fabric.now + delay
        for envelope in envelopes:
            envelope.deliver_time = deliver_time
        if count == 1:
            fabric.at_call(deliver_time, self._deliver, envelopes[0])
        else:
            fabric.at_call(deliver_time, self._deliver_packed, envelopes)

    def _deliver_packed(self, envelopes: list) -> None:
        # Unpack: each coalesced datagram keeps its own envelope (and its
        # own trace span), so upper layers and the tracer see exactly the
        # per-logical-message events they would without packing.
        deliver = self._deliver
        for envelope in envelopes:
            deliver(envelope)

    def _drop(self, envelope: Envelope) -> None:
        self.stats.record_drop()
        taps = self._drop_taps
        if taps:
            for fn in taps:
                fn("drop", envelope)
        trace = self.trace
        if trace is not None:
            trace.on_drop(envelope)

    def _recycle(self, envelope: Envelope) -> None:
        """Return a dead envelope to the free list.  Clears the payload
        and trace references so the pool never pins application objects
        or spans (the tracer retains spans, never envelopes)."""
        envelope.payload = None
        envelope.trace = None
        self._env_pool.append(envelope)

    def _deliver_batch(self, envelopes: list) -> None:
        """Fan a bucket of same-timestamp deliveries out of one event.

        The scheduler's grouped bucket preserves exact per-call (time,
        seq) order, so iterating the list here delivers in precisely the
        order individual ``at_call`` events would have — taps, stats and
        digests are byte-identical.  Endpoint table, stats recorder and
        tap/trace guards are hoisted once per bucket instead of loaded
        per delivery.
        """
        endpoints = self._endpoints
        received_by = self.stats.received_by
        taps = self._deliver_taps
        trace = self.trace
        pool = self._env_pool
        for envelope in envelopes:
            dst = envelope.dst
            deliver = endpoints.get(dst)
            if deliver is None:
                self._drop(envelope)
            else:
                # record_delivery, inlined (try/except: the key exists
                # after the destination's first delivery).
                try:
                    received_by[dst] += 1
                except KeyError:
                    received_by[dst] = 1
                if taps:
                    for fn in taps:
                        fn("deliver", envelope)
                if trace is None:
                    deliver(envelope)
                else:
                    token = trace.on_deliver_begin(envelope)
                    try:
                        deliver(envelope)
                    finally:
                        trace.on_deliver_end(token)
            envelope.payload = None
            envelope.trace = None
            pool.append(envelope)

    def deliver_inbound(self, envelope: Envelope) -> None:
        """Deliver a datagram that arrived from a remote fabric (the
        socket backend's receive path).  Runs the normal local delivery
        pipeline — stats, taps, trace, endpoint dispatch, drop on unknown
        destination — on an envelope decoded from the wire, which then
        joins this network's free list like any locally built one."""
        self._deliver(envelope)

    def _deliver(self, envelope: Envelope) -> None:
        deliver = self._endpoints.get(envelope.dst)
        if deliver is None:
            # Destination crashed or never existed; the datagram vanishes,
            # exactly as on a real LAN.
            self._drop(envelope)
            self._recycle(envelope)
            return
        self.stats.record_delivery(envelope.dst)
        taps = self._deliver_taps
        if taps:
            for fn in taps:
                fn("deliver", envelope)
        trace = self.trace
        if trace is None:
            deliver(envelope)
            self._recycle(envelope)
            return
        token = trace.on_deliver_begin(envelope)
        try:
            deliver(envelope)
        finally:
            trace.on_deliver_end(token)
        self._recycle(envelope)
