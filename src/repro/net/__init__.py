"""Simulated datagram network: latency models, partitions, multicast, stats."""

from repro.net.latency import (
    FixedLatency,
    LanLatency,
    LatencyModel,
    SiteLatency,
    UniformLatency,
)
from repro.net.message import (
    Address,
    DEFAULT_PAYLOAD_BYTES,
    Envelope,
    HEADER_BYTES,
    payload_category,
    payload_meta,
    payload_size,
)
from repro.net.network import Network
from repro.net.packer import CommsParams, Packer, default_pack_window
from repro.net.partition import PartitionManager
from repro.net.stats import NetworkStats, StatsSnapshot

__all__ = [
    "Address",
    "CommsParams",
    "DEFAULT_PAYLOAD_BYTES",
    "Envelope",
    "FixedLatency",
    "HEADER_BYTES",
    "LanLatency",
    "LatencyModel",
    "Network",
    "NetworkStats",
    "Packer",
    "PartitionManager",
    "SiteLatency",
    "StatsSnapshot",
    "UniformLatency",
    "default_pack_window",
    "payload_category",
    "payload_meta",
    "payload_size",
]
