"""Datagram network: latency models, partitions, multicast, stats, and
the versioned wire codec the socket backend deploys over."""

from repro.net.latency import (
    FixedLatency,
    LanLatency,
    LatencyModel,
    SiteLatency,
    UniformLatency,
)
from repro.net.message import (
    Address,
    DEFAULT_PAYLOAD_BYTES,
    Envelope,
    HEADER_BYTES,
    payload_category,
    payload_meta,
    payload_size,
)
from repro.net.network import Network
from repro.net.packer import CommsParams, Packer, default_pack_window
from repro.net.partition import PartitionManager
from repro.net.stats import NetworkStats, StatsSnapshot
from repro.net.wire import (
    CodecError,
    MAX_FRAME_BYTES,
    WIRE_VERSION,
    decode_frame,
    encode_control_frame,
    encode_data_frames,
    register_kind,
)

__all__ = [
    "Address",
    "CodecError",
    "CommsParams",
    "DEFAULT_PAYLOAD_BYTES",
    "Envelope",
    "FixedLatency",
    "HEADER_BYTES",
    "MAX_FRAME_BYTES",
    "WIRE_VERSION",
    "LanLatency",
    "LatencyModel",
    "Network",
    "NetworkStats",
    "Packer",
    "PartitionManager",
    "SiteLatency",
    "StatsSnapshot",
    "UniformLatency",
    "decode_frame",
    "default_pack_window",
    "encode_control_frame",
    "encode_data_frames",
    "register_kind",
    "payload_category",
    "payload_meta",
    "payload_size",
]
