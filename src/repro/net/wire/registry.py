"""Wire-id registry: every protocol payload kind, bound to a stable id.

This is the policy half of the codec — one place where wire ids are
assigned, append-only across PRs.  The kind list is the RL013 handler
census surface: every payload class that is constructed and sent through
a typed wire receiver anywhere in ``src/repro`` appears here, plus the
value-only structs they carry (views, vector clocks, relay specs).
``tests/test_wire_codec.py`` greps the tree for ``.on(Kind, ...)``
registrations and fails if a census kind is missing from this table.

Deploy-tracker control kinds (register / peer-list / shutdown) live in
the 64+ id range and are registered by :mod:`repro.deploy.messages` on
import, keeping ``net`` below ``deploy`` in the layering.
"""

from __future__ import annotations

from repro.clocks.vector import VectorClock
from repro.core.hierarchy import MergeCmd, SplitCmd
from repro.core.leader import (
    GetHierarchyInfo,
    GetLeafAssignment,
    HOp,
    JoinLarge,
    LeafProbe,
    MergeDirective,
    ReportLeafStatus,
    ResolvePlacement,
    SplitDirective,
)
from repro.core.naming import (
    LookupName,
    RegisterName,
    ReplicateEntry,
    UnregisterName,
)
from repro.core.treecast import (
    LeafCastAck,
    LeafCastPayload,
    LeafCommitPayload,
    LeafTarget,
    RelaySpec,
    TreeAck,
    TreeBroadcastRequest,
    TreeCastLeaf,
    TreeCastRelay,
    TreeCommit,
)
from repro.core.views import (
    AddLeaf,
    BranchInfo,
    LeafInfo,
    RemoveLeaf,
    UpdateLeaf,
)
from repro.failure.detector import Heartbeat, HeartbeatAck
from repro.membership.events import (
    Flush,
    FlushOk,
    GroupData,
    JoinRequest,
    LeaveRequest,
    NewView,
    SetOrder,
    StabilityGossip,
    SuspectReport,
)
from repro.membership.view import GroupView, ViewId
from repro.net.wire.codec import register_kind
from repro.proc.rpc import RpcReply, RpcRequest
from repro.toolkit.coordinator_cohort import (
    CCReply,
    CCRequest,
    CCResultNote,
    GetMembers,
)
from repro.toolkit.parallel import PartialResult, ScatterTask
from repro.toolkit.replication import SMCommand
from repro.transport.channel import Segment, SegmentAck

_registered = False


def ensure_registered() -> None:
    """Idempotently bind every protocol kind to its wire id."""
    global _registered
    if _registered:
        return
    _registered = True

    # Transport (1-9).
    register_kind(1, Segment)
    register_kind(2, SegmentAck)

    # Membership / broadcast (10-29).
    register_kind(10, GroupData)
    register_kind(11, SetOrder)
    register_kind(12, StabilityGossip)
    register_kind(13, Flush)
    register_kind(14, FlushOk)
    register_kind(15, NewView)
    register_kind(16, JoinRequest)
    register_kind(17, LeaveRequest)
    register_kind(18, SuspectReport)
    register_kind(19, GroupView)
    register_kind(20, ViewId)
    register_kind(
        21,
        VectorClock,
        encode_fields=lambda clock: (dict(clock.items()),),
        build=lambda parts: VectorClock(parts[0]),
    )

    # Process plumbing (30-39).
    register_kind(30, RpcRequest)
    register_kind(31, RpcReply)
    register_kind(32, Heartbeat)
    register_kind(33, HeartbeatAck)

    # Hierarchy: treecast, leader, hierarchy ops (40-59).
    register_kind(40, TreeCastRelay)
    register_kind(41, TreeCastLeaf)
    register_kind(42, LeafCastPayload)
    register_kind(43, LeafCastAck)
    register_kind(44, TreeAck)
    register_kind(45, TreeCommit)
    register_kind(46, LeafCommitPayload)
    register_kind(47, TreeBroadcastRequest)
    register_kind(48, RelaySpec)
    register_kind(49, LeafTarget)
    register_kind(50, JoinLarge)
    register_kind(51, ReportLeafStatus)
    register_kind(52, GetLeafAssignment)
    register_kind(53, GetHierarchyInfo)
    register_kind(54, LeafProbe)
    register_kind(55, HOp)
    register_kind(56, SplitDirective)
    register_kind(57, MergeDirective)
    register_kind(58, SplitCmd)
    register_kind(59, MergeCmd)

    # Naming service (60-63).
    register_kind(60, RegisterName)
    register_kind(61, UnregisterName)
    register_kind(62, LookupName)
    register_kind(63, ReplicateEntry)

    # Toolkit (70-79).  64-69 are the deploy control plane
    # (repro.deploy.messages).
    register_kind(70, CCRequest)
    register_kind(71, CCReply)
    register_kind(72, CCResultNote)
    register_kind(73, GetMembers)
    register_kind(74, ScatterTask)
    register_kind(75, PartialResult)
    register_kind(76, SMCommand)

    # Hierarchy state structs carried inside HOp / RPC replies (80-89).
    register_kind(80, AddLeaf)
    register_kind(81, UpdateLeaf)
    register_kind(82, RemoveLeaf)
    register_kind(83, LeafInfo)
    register_kind(84, BranchInfo)

    # Recursive-hierarchy routing (90+).  The level-tagged fields grown
    # by the PR 9 refactor (ReportLeafStatus level/path/rates,
    # Split/MergeDirective + Split/MergeCmd levels and paths, AddLeaf
    # ``under``, UpdateLeaf rates, GetHierarchyInfo ``subtree``) extend
    # the field lists of already-registered kinds — ids stay put, and
    # WIRE_VERSION bumped to 2 per the codec's evolution contract.
    register_kind(90, ResolvePlacement)

    # 91-95 are the parallel-engine barrier frames (WindowData/Done/Go,
    # WorkerReport, WorkerFault), registered by repro.net.wire.parallel
    # on import — same layering as the deploy control plane above.
