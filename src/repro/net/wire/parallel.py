"""Cross-worker barrier frames for the parallel simulator (wire ids 91-95).

The conservative-window engine (:mod:`repro.sim.parallel`) runs one
worker process per partition block and exchanges cross-partition
envelopes at deterministic window barriers.  Everything that crosses a
worker boundary rides the PR-8 wire codec — the same append-only
registry the UDP data plane uses — so a parallel run exercises exactly
one serialization format:

* :class:`WindowData` — one encoded data frame (``encode_data_frames``
  output) of cross-partition envelopes, window-stamped and routed by
  worker id.  The inner frame stays opaque bytes end-to-end: the hub
  forwards it without decoding.
* :class:`WindowDone` — a worker's barrier announcement: window ``j``
  fully executed, ``sent`` data frames emitted.  Sent every window even
  when ``sent == 0`` — the empty announcement *is* the null message of
  the Chandy-Misra-Bryant protocol.
* :class:`WindowGo` — the hub's release: all inbound frames for the
  next window have been delivered, advance.
* :class:`WorkerReport` — final per-worker outcome (per-partition
  digests, counters, scenario result slices).
* :class:`WorkerFault` — a worker-side failure with its traceback, so
  a crash surfaces as a clean error instead of a barrier hang.

Registered with the :mod:`repro.net.wire` codec at import, in the 91+
id range reserved for parallel-engine control (the registry itself
never imports this module, mirroring ``repro.deploy.messages``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.net.wire.codec import register_kind


@dataclass
class WindowData:
    """One inner data frame of envelopes crossing worker boundaries."""

    window: int
    src_worker: int
    dst_worker: int
    frame: bytes = b""


@dataclass
class WindowDone:
    """Barrier announcement: ``worker`` finished ``window``; ``sent``
    :class:`WindowData` frames preceded this (zero is the null message)."""

    window: int
    worker: int
    sent: int = 0


@dataclass
class WindowGo:
    """Hub release: ``inbound`` frames delivered, enter the next window."""

    window: int
    inbound: int = 0


@dataclass
class WorkerReport:
    """Final per-worker outcome payload (digests, stats, result slice)."""

    worker: int
    payload: Any = None


@dataclass
class WorkerFault:
    """A worker-side exception: the window it died in plus a traceback."""

    worker: int
    window: int
    error: str = ""


register_kind(91, WindowData)
register_kind(92, WindowDone)
register_kind(93, WindowGo)
register_kind(94, WorkerReport)
register_kind(95, WorkerFault)
