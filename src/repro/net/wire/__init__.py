"""Versioned binary wire codec for the socket backend.

``codec`` is the mechanism (tagged value encoding, frame header,
registry); ``registry`` is the policy (every protocol payload kind the
RL013 handler census knows about, bound to a stable wire id).  Importing
this package registers nothing — callers that are about to touch a real
socket run :func:`repro.net.wire.registry.ensure_registered` first.
"""

from repro.net.wire.codec import (
    CodecError,
    FRAME_CONTROL,
    FRAME_DATA,
    FrameTooLarge,
    MAX_FRAME_BYTES,
    WIRE_VERSION,
    decode_frame,
    encode_control_frame,
    encode_data_frames,
    register_kind,
    registered_classes,
    registered_kinds,
)

__all__ = [
    "CodecError",
    "FrameTooLarge",
    "FRAME_CONTROL",
    "FRAME_DATA",
    "MAX_FRAME_BYTES",
    "WIRE_VERSION",
    "decode_frame",
    "encode_control_frame",
    "encode_data_frames",
    "register_kind",
    "registered_classes",
    "registered_kinds",
]
