"""Self-describing binary codec: values, payload kinds, and frames.

Every datagram the socket backend puts on the wire is one *frame*:

====== ======== ==========================================================
offset size     field
====== ======== ==========================================================
0      2        magic ``b"RW"``
2      1        wire version (:data:`WIRE_VERSION`)
3      1        frame kind — :data:`FRAME_DATA` or :data:`FRAME_CONTROL`
4      4        body length, big-endian u32 (must equal the remaining bytes)
8      n        body
====== ======== ==========================================================

A *data* body is ``varint count`` followed by ``count`` envelope records
(src, dst, send_time, deliver_time, size_bytes, payload) — so a PR-5
packer flush of k coalesced envelopes becomes one real k-record frame.
A *control* body is a single encoded value (the deploy tracker's
register/peer-list/shutdown messages).

Values are tag-prefixed: ``None``/bools/ints (zigzag varint)/floats
(IEEE-754 f64)/str/bytes/tuple/list/dict nest freely, and any class
registered through :func:`register_kind` encodes as its wire id plus its
dataclass fields in declaration order.  The codec is self-describing at
the value level (a reader never needs the schema to skip a value) and
versioned at the frame level; evolving a kind's field list bumps
:data:`WIRE_VERSION`.

Robustness contract: :func:`decode_frame` raises :class:`CodecError` —
and nothing else — on any malformed input (bad magic, truncation, stray
trailing bytes, unknown tags/kinds, invalid UTF-8).  The socket fabric
turns that into a counted drop; a byte-flipped datagram must never take
a node down.
"""

from __future__ import annotations

import struct
from dataclasses import fields as dataclass_fields, is_dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

MAGIC = b"RW"
# v2: recursive-hierarchy refactor extended the field lists of the
# hierarchy kinds (level-tagged directives, load-rate reports, AddLeaf
# attach points) and added ResolvePlacement (id 90).
WIRE_VERSION = 2

FRAME_DATA = 1
FRAME_CONTROL = 2

_HEADER = struct.Struct(">2sBBI")
HEADER_BYTES = _HEADER.size

# Safe single-datagram budget for UDP over loopback/LAN without relying
# on IP fragmentation limits being generous; anything bigger is refused
# at encode time and surfaces as a drop, not a crash.
MAX_FRAME_BYTES = 60000

_F64 = struct.Struct(">d")

# Value tags.
_T_NONE = 0
_T_TRUE = 1
_T_FALSE = 2
_T_INT = 3
_T_FLOAT = 4
_T_STR = 5
_T_BYTES = 6
_T_TUPLE = 7
_T_LIST = 8
_T_DICT = 9
_T_KIND = 10


class CodecError(ValueError):
    """Malformed or unencodable wire data.  The only exception the codec
    raises for bad input — callers count it as a drop."""


class FrameTooLarge(CodecError):
    """An encoded record or frame exceeds :data:`MAX_FRAME_BYTES`."""


class _Kind:
    """One registered payload class: wire id + field-by-field codec."""

    __slots__ = ("kind_id", "cls", "field_names", "encode_fields", "build")

    def __init__(
        self,
        kind_id: int,
        cls: type,
        field_names: Tuple[str, ...],
        encode_fields: Optional[Callable[[Any], Sequence[Any]]],
        build: Optional[Callable[[Sequence[Any]], Any]],
    ) -> None:
        self.kind_id = kind_id
        self.cls = cls
        self.field_names = field_names
        self.encode_fields = encode_fields
        self.build = build


_KIND_BY_ID: Dict[int, _Kind] = {}
_KIND_BY_CLASS: Dict[type, _Kind] = {}


def register_kind(
    kind_id: int,
    cls: type,
    *,
    encode_fields: Optional[Callable[[Any], Sequence[Any]]] = None,
    build: Optional[Callable[[Sequence[Any]], Any]] = None,
) -> type:
    """Bind ``cls`` to stable wire id ``kind_id``.

    Dataclasses need no adapter: their fields encode in declaration order
    and decode back through the constructor.  Non-dataclasses (e.g.
    ``VectorClock``) supply ``encode_fields(obj) -> sequence`` and
    ``build(fields) -> obj``.  Ids are append-only across PRs — reusing
    or renumbering one is a wire-format break and requires a
    :data:`WIRE_VERSION` bump.
    """
    if kind_id in _KIND_BY_ID:
        raise ValueError(f"wire kind id {kind_id} already registered "
                         f"({_KIND_BY_ID[kind_id].cls.__name__})")
    if cls in _KIND_BY_CLASS:
        raise ValueError(f"{cls.__name__} already registered")
    if encode_fields is None or build is None:
        if not is_dataclass(cls):
            raise TypeError(
                f"{cls.__name__} is not a dataclass; pass encode_fields/build"
            )
        names = tuple(f.name for f in dataclass_fields(cls))
    else:
        names = ()
    _kind = _Kind(kind_id, cls, names, encode_fields, build)
    _KIND_BY_ID[kind_id] = _kind
    _KIND_BY_CLASS[cls] = _kind
    return cls


def registered_kinds() -> Dict[int, type]:
    """Snapshot of ``{wire id: class}`` — test/introspection surface."""
    return {kind_id: kind.cls for kind_id, kind in sorted(_KIND_BY_ID.items())}


def registered_classes() -> Tuple[type, ...]:
    return tuple(kind.cls for _, kind in sorted(_KIND_BY_ID.items()))


# -- value encoding ----------------------------------------------------------


def _write_varint(out: bytearray, value: int) -> None:
    # Unsigned LEB128.
    while value > 0x7F:
        out.append((value & 0x7F) | 0x80)
        value >>= 7
    out.append(value)


def _write_value(out: bytearray, value: Any) -> None:
    if value is None:
        out.append(_T_NONE)
        return
    cls = value.__class__
    if cls is bool:
        out.append(_T_TRUE if value else _T_FALSE)
    elif cls is int:
        out.append(_T_INT)
        # Zigzag so small negatives stay small (arbitrary precision).
        _write_varint(out, value << 1 if value >= 0 else ((-value) << 1) - 1)
    elif cls is float:
        out.append(_T_FLOAT)
        out += _F64.pack(value)
    elif cls is str:
        raw = value.encode("utf-8")
        out.append(_T_STR)
        _write_varint(out, len(raw))
        out += raw
    elif cls is bytes:
        out.append(_T_BYTES)
        _write_varint(out, len(value))
        out += value
    elif cls is tuple:
        out.append(_T_TUPLE)
        _write_varint(out, len(value))
        for item in value:
            _write_value(out, item)
    elif cls is list:
        out.append(_T_LIST)
        _write_varint(out, len(value))
        for item in value:
            _write_value(out, item)
    elif cls is dict:
        out.append(_T_DICT)
        _write_varint(out, len(value))
        for key, item in value.items():
            _write_value(out, key)
            _write_value(out, item)
    else:
        kind = _KIND_BY_CLASS.get(cls)
        if kind is None:
            raise CodecError(
                f"cannot encode {cls.__name__}: not a wire-registered kind"
            )
        out.append(_T_KIND)
        _write_varint(out, kind.kind_id)
        if kind.encode_fields is not None:
            parts = kind.encode_fields(value)
        else:
            parts = [getattr(value, name) for name in kind.field_names]
        _write_varint(out, len(parts))
        for part in parts:
            _write_value(out, part)


class _Reader:
    """Bounds-checked cursor over a frame body; every overrun is a
    :class:`CodecError`, never an ``IndexError``."""

    __slots__ = ("data", "pos", "end")

    def __init__(self, data: bytes, start: int, end: int) -> None:
        self.data = data
        self.pos = start
        self.end = end

    def take(self, n: int) -> bytes:
        pos = self.pos
        if n < 0 or pos + n > self.end:
            raise CodecError("truncated frame body")
        self.pos = pos + n
        return self.data[pos:pos + n]

    def byte(self) -> int:
        pos = self.pos
        if pos >= self.end:
            raise CodecError("truncated frame body")
        self.pos = pos + 1
        return self.data[pos]

    def varint(self) -> int:
        shift = 0
        value = 0
        while True:
            byte = self.byte()
            value |= (byte & 0x7F) << shift
            if not byte & 0x80:
                return value
            shift += 7
            # Python ints are arbitrary precision; bound the width only
            # against pathological continuation-bit streams (frame length
            # already bounds the byte count).
            if shift > 700:
                raise CodecError("varint too long")

    def length(self) -> int:
        n = self.varint()
        if self.pos + n > self.end:
            raise CodecError("length overruns frame body")
        return n


def _read_value(reader: _Reader) -> Any:
    tag = reader.byte()
    if tag == _T_NONE:
        return None
    if tag == _T_TRUE:
        return True
    if tag == _T_FALSE:
        return False
    if tag == _T_INT:
        raw = reader.varint()
        return (raw >> 1) ^ -(raw & 1)
    if tag == _T_FLOAT:
        return _F64.unpack(reader.take(8))[0]
    if tag == _T_STR:
        raw = reader.take(reader.length())
        try:
            return raw.decode("utf-8")
        except UnicodeDecodeError as exc:
            raise CodecError(f"invalid utf-8 in string: {exc}") from None
    if tag == _T_BYTES:
        return reader.take(reader.length())
    if tag == _T_TUPLE:
        count = reader.varint()
        return tuple(_read_value(reader) for _ in range(count))
    if tag == _T_LIST:
        count = reader.varint()
        return [_read_value(reader) for _ in range(count)]
    if tag == _T_DICT:
        count = reader.varint()
        result = {}
        for _ in range(count):
            key = _read_value(reader)
            result[key] = _read_value(reader)
        return result
    if tag == _T_KIND:
        kind_id = reader.varint()
        kind = _KIND_BY_ID.get(kind_id)
        if kind is None:
            raise CodecError(f"unknown wire kind id {kind_id}")
        count = reader.varint()
        parts = [_read_value(reader) for _ in range(count)]
        try:
            if kind.build is not None:
                return kind.build(parts)
            if count != len(kind.field_names):
                raise CodecError(
                    f"{kind.cls.__name__}: got {count} fields, "
                    f"expected {len(kind.field_names)}"
                )
            return kind.cls(**dict(zip(kind.field_names, parts)))
        except CodecError:
            raise
        except Exception as exc:
            # A corrupted field can violate a dataclass __post_init__
            # invariant; that is bad input, not a codec bug.
            raise CodecError(f"cannot rebuild {kind.cls.__name__}: {exc}") from None
    raise CodecError(f"unknown value tag {tag}")


# -- envelope records --------------------------------------------------------


def _write_envelope(out: bytearray, envelope: Any) -> None:
    _write_value(out, envelope.src)
    _write_value(out, envelope.dst)
    out += _F64.pack(envelope.send_time)
    out += _F64.pack(envelope.deliver_time)
    _write_varint(out, envelope.size_bytes)
    _write_value(out, envelope.payload)


def _read_envelope(reader: _Reader):
    from repro.net.message import Envelope

    src = _read_value(reader)
    dst = _read_value(reader)
    if not isinstance(src, str) or not isinstance(dst, str):
        raise CodecError("envelope src/dst must be addresses")
    send_time = _F64.unpack(reader.take(8))[0]
    deliver_time = _F64.unpack(reader.take(8))[0]
    size_bytes = reader.varint()
    payload = _read_value(reader)
    return Envelope(src, dst, payload, send_time, deliver_time, size_bytes)


# -- frames ------------------------------------------------------------------


def _frame(kind: int, body: bytes) -> bytes:
    return _HEADER.pack(MAGIC, WIRE_VERSION, kind, len(body)) + body


def encode_data_frames(
    envelopes: Sequence[Any],
    max_bytes: int = MAX_FRAME_BYTES,
) -> Tuple[List[bytes], List[Tuple[Any, str]]]:
    """Encode envelopes into as few frames as fit.

    Records pack greedily: a packer flush of k envelopes usually becomes
    one k-record frame, splitting only past ``max_bytes``.  Returns
    ``(frames, rejects)`` where each reject is ``(envelope, reason)`` —
    an unencodable payload or a single record bigger than a frame never
    poisons its batchmates.
    """
    budget = max_bytes - HEADER_BYTES - 5  # header + worst-case count varint
    frames: List[bytes] = []
    rejects: List[Tuple[Any, str]] = []
    pending: List[bytes] = []
    pending_size = 0

    def flush() -> None:
        nonlocal pending_size
        if not pending:
            return
        body = bytearray()
        _write_varint(body, len(pending))
        for record in pending:
            body += record
        frames.append(_frame(FRAME_DATA, bytes(body)))
        pending.clear()
        pending_size = 0

    for envelope in envelopes:
        record = bytearray()
        try:
            _write_envelope(record, envelope)
        except CodecError as exc:
            rejects.append((envelope, str(exc)))
            continue
        if len(record) > budget:
            rejects.append(
                (envelope, f"record of {len(record)} bytes exceeds "
                           f"{max_bytes}-byte frame budget")
            )
            continue
        if pending_size + len(record) > budget:
            flush()
        pending.append(bytes(record))
        pending_size += len(record)
    flush()
    return frames, rejects


def encode_control_frame(payload: Any, max_bytes: int = MAX_FRAME_BYTES) -> bytes:
    """One control-plane value as a single frame; raises on oversize."""
    body = bytearray()
    _write_value(body, payload)
    frame = _frame(FRAME_CONTROL, bytes(body))
    if len(frame) > max_bytes:
        raise FrameTooLarge(
            f"control frame of {len(frame)} bytes exceeds {max_bytes}"
        )
    return frame


def decode_frame(data: bytes) -> Tuple[int, Any]:
    """Decode one frame: ``(FRAME_DATA, [Envelope, ...])`` or
    ``(FRAME_CONTROL, value)``.  Raises :class:`CodecError` on anything
    malformed; no other exception escapes."""
    try:
        if len(data) < HEADER_BYTES:
            raise CodecError(f"frame shorter than header ({len(data)} bytes)")
        magic, version, frame_kind, body_len = _HEADER.unpack_from(data)
        if magic != MAGIC:
            raise CodecError(f"bad magic {magic!r}")
        if version != WIRE_VERSION:
            raise CodecError(f"unsupported wire version {version}")
        if body_len != len(data) - HEADER_BYTES:
            raise CodecError(
                f"length mismatch: header says {body_len}, "
                f"body has {len(data) - HEADER_BYTES}"
            )
        reader = _Reader(bytes(data), HEADER_BYTES, len(data))
        if frame_kind == FRAME_DATA:
            count = reader.varint()
            envelopes = [_read_envelope(reader) for _ in range(count)]
            if reader.pos != reader.end:
                raise CodecError("trailing bytes after last record")
            return FRAME_DATA, envelopes
        if frame_kind == FRAME_CONTROL:
            value = _read_value(reader)
            if reader.pos != reader.end:
                raise CodecError("trailing bytes after control value")
            return FRAME_CONTROL, value
        raise CodecError(f"unknown frame kind {frame_kind}")
    except CodecError:
        raise
    except Exception as exc:
        # struct.error, OverflowError, RecursionError from hostile
        # nesting, ... — all the same verdict: drop the datagram.
        raise CodecError(f"malformed frame: {exc}") from None
