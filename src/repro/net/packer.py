"""Wire-level message packing and the comms-optimisation knobs.

The real ISIS toolkit survived its own message traffic largely through
two transport tricks the paper's cost model takes for granted: *packing*
(datagrams issued close together toward the same destination share one
wire packet and one header) and *piggybacking* (acks, stability
watermarks and liveness evidence ride on traffic that is leaving
anyway).  This module provides both the packing queue used by
:class:`~repro.net.network.Network` and the :class:`CommsParams` bundle
that switches every such optimisation on or off for a run.

The contract all of them share: **logical message counts and delivery
semantics are unchanged** — one send still produces one delivery to its
destination, in the same circumstances.  Only wire packets, header bytes
and scheduled delivery events shrink.  Everything defaults *off*, which
is bit-for-bit today's behaviour (the frozen determinism digests and
``BENCH_core.json`` fingerprints are recorded with these defaults).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Set

from repro.net.message import Address, Envelope
from repro.runtime.api import MessageFabric


@dataclass(frozen=True)
class CommsParams:
    """Per-run comms-optimisation switches (see docs/comms.md).

    ``pack_window``
        Seconds the network may hold an outgoing datagram to coalesce it
        with others for the same destination into one wire packet.
        ``0`` disables packing (every datagram is its own wire packet).

    ``delayed_ack``
        Seconds the reliable transport may defer a cumulative ack,
        waiting for a reverse-direction segment to carry it; ``0`` means
        every received segment is acked immediately with a standalone
        :class:`~repro.transport.channel.SegmentAck`.  Must stay well
        under the transport RTO or delayed acks would trigger spurious
        retransmissions.

    ``gossip_piggyback``
        Attach stability watermarks to outgoing group data (at most once
        per half gossip interval), demoting the periodic all-to-all
        :class:`~repro.membership.events.StabilityGossip` to an idle
        fallback.

    ``heartbeat_suppression``
        Skip a heartbeat ping when *any* packet from the watched peer
        arrived within the heartbeat interval — existing traffic is
        liveness evidence.  A silent peer is still pinged (and still
        acks), so one-way traffic patterns keep proving liveness.
    """

    pack_window: float = 0.0
    delayed_ack: float = 0.0
    gossip_piggyback: bool = False
    heartbeat_suppression: bool = False

    def __post_init__(self) -> None:
        if self.pack_window < 0:
            raise ValueError("pack_window must be nonnegative")
        if self.delayed_ack < 0:
            raise ValueError("delayed_ack must be nonnegative")

    @classmethod
    def enabled(cls, latency_floor: float = 0.002) -> "CommsParams":
        """All optimisations on, tuned for a given latency floor: the
        pack window defaults to a quarter of the floor (holding a packet
        any longer would be visible next to the wire delay itself)."""
        return cls(
            pack_window=default_pack_window(latency_floor),
            delayed_ack=0.01,
            gossip_piggyback=True,
            heartbeat_suppression=True,
        )


def default_pack_window(latency_floor: float) -> float:
    """Default packing window: a quarter of the network's latency floor."""
    if latency_floor <= 0:
        return 0.0
    return latency_floor * 0.25


FlushFn = Callable[[Address, Address, List[Envelope]], None]


class Packer:
    """Per-(src, dst) outgoing queues with a shared per-source flush timer.

    Datagrams a source issues within ``window`` seconds are queued; one
    timer per source (not per destination — a heartbeat tick toward k
    peers costs one flush event, not k) then hands each destination's
    batch to ``flush_fn(src, dst, envelopes)``, which puts it on the
    wire as a single packet.  Queues are plain dicts, so flush order is
    enqueue order — deterministic under the sim engine.
    """

    __slots__ = ("window", "_fabric", "_flush_fn", "_queues", "_armed")

    def __init__(
        self, window: float, fabric: MessageFabric, flush_fn: FlushFn
    ) -> None:
        if window <= 0:
            raise ValueError("packer window must be positive")
        self.window = window
        self._fabric = fabric
        self._flush_fn = flush_fn
        self._queues: Dict[Address, Dict[Address, List[Envelope]]] = {}
        self._armed: Set[Address] = set()

    def enqueue(self, envelope: Envelope) -> None:
        """Queue a datagram that already passed partition/loss checks."""
        src = envelope.src
        queues = self._queues.get(src)
        if queues is None:
            queues = self._queues[src] = {}
        queue = queues.get(envelope.dst)
        if queue is None:
            queues[envelope.dst] = [envelope]
        else:
            queue.append(envelope)
        if src not in self._armed:
            self._armed.add(src)
            fabric = self._fabric
            fabric.at_call(fabric.now + self.window, self._flush_src, src)

    def _flush_src(self, src: Address) -> None:
        self._armed.discard(src)
        queues = self._queues.pop(src, None)
        if not queues:
            return
        flush = self._flush_fn
        for dst, envelopes in queues.items():
            flush(src, dst, envelopes)

    @property
    def pending(self) -> int:
        """Datagrams currently held for coalescing (for tests/drain)."""
        return sum(
            len(queue)
            for queues in self._queues.values()
            for queue in queues.values()
        )

    def flush_all(self) -> None:
        """Force every queue onto the wire now (teardown helper)."""
        for src in list(self._queues):
            self._flush_src(src)
