"""Network statistics: the measurement substrate for every benchmark.

The paper's claims are phrased in *message counts* ("2n messages", "traffic
grows as the square of the number of clients"), so the network counts every
datagram exactly, bucketed by category, sender and receiver.  Wire packets
are counted separately from logical messages so the hardware-multicast
experiment (E9) can show one wire packet carrying n logical deliveries.

Counters can be snapshotted and diffed, which is how benchmarks isolate the
cost of a single operation::

    before = net.stats.snapshot()
    service.request(...)
    env.run_for(1.0)
    delta = net.stats.since(before)
    assert delta.messages == 2 * n
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.net.message import Address


class Tally(dict):
    """A plain dict that reads like a Counter (missing keys are 0).

    Writes in the hot counting paths use ``d[k] = d.get(k, 0) + 1`` on the
    exact ``dict`` C implementation — measurably cheaper per message than
    ``collections.Counter`` — while reads keep the Counter-style
    zero-default the tests and experiments rely on.
    """

    __slots__ = ()

    def __missing__(self, key):  # Counter-compatible reads
        return 0


@dataclass(frozen=True)
class StatsSnapshot:
    """Immutable copy of the counters at one instant."""

    messages: int
    wire_packets: int
    bytes: int
    dropped: int
    by_category: Dict[str, int] = field(default_factory=dict)
    sent_by: Dict[Address, int] = field(default_factory=dict)
    received_by: Dict[Address, int] = field(default_factory=dict)


class NetworkStats:
    """Mutable counters owned by a :class:`~repro.net.network.Network`."""

    __slots__ = (
        "messages",
        "wire_packets",
        "bytes",
        "dropped",
        "by_category",
        "sent_by",
        "received_by",
    )

    def __init__(self) -> None:
        self.messages = 0
        self.wire_packets = 0
        self.bytes = 0
        self.dropped = 0
        self.by_category: Tally = Tally()
        self.sent_by: Tally = Tally()
        self.received_by: Tally = Tally()

    def record_send(self, src: Address, category: str, total_bytes: int) -> None:
        """Count one logical message (one destination) leaving ``src``."""
        self.messages += 1
        self.bytes += total_bytes
        by_category = self.by_category
        by_category[category] = by_category.get(category, 0) + 1
        sent_by = self.sent_by
        sent_by[src] = sent_by.get(src, 0) + 1

    def record_wire(self, packets: int = 1) -> None:
        """Count physical packets on the wire (1 per unicast; 1 per
        hardware-multicast send regardless of destination count)."""
        self.wire_packets += packets

    def record_delivery(self, dst: Address) -> None:
        received_by = self.received_by
        received_by[dst] = received_by.get(dst, 0) + 1

    def record_drop(self) -> None:
        self.dropped += 1

    def snapshot(self) -> StatsSnapshot:
        return StatsSnapshot(
            messages=self.messages,
            wire_packets=self.wire_packets,
            bytes=self.bytes,
            dropped=self.dropped,
            by_category=dict(self.by_category),
            sent_by=dict(self.sent_by),
            received_by=dict(self.received_by),
        )

    def since(self, before: StatsSnapshot) -> StatsSnapshot:
        """Difference between the counters now and an earlier snapshot."""
        now = self.snapshot()
        return StatsSnapshot(
            messages=now.messages - before.messages,
            wire_packets=now.wire_packets - before.wire_packets,
            bytes=now.bytes - before.bytes,
            dropped=now.dropped - before.dropped,
            by_category=_diff(now.by_category, before.by_category),
            sent_by=_diff(now.sent_by, before.sent_by),
            received_by=_diff(now.received_by, before.received_by),
        )

    def reset(self) -> None:
        self.__init__()


def _diff(now: Dict, before: Dict) -> Dict:
    out = {}
    for key, value in now.items():
        delta = value - before.get(key, 0)
        if delta:
            out[key] = delta
    return out
