"""Network statistics: the measurement substrate for every benchmark.

The paper's claims are phrased in *message counts* ("2n messages", "traffic
grows as the square of the number of clients"), so the network counts every
datagram exactly, bucketed by category, sender and receiver.  Wire packets
are counted separately from logical messages so the hardware-multicast
experiment (E9) can show one wire packet carrying n logical deliveries.

Counters can be snapshotted and diffed, which is how benchmarks isolate the
cost of a single operation::

    before = net.stats.snapshot()
    service.request(...)
    env.run_for(1.0)
    delta = net.stats.since(before)
    assert delta.messages == 2 * n
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.net.message import Address


class Tally(dict):
    """A plain dict that reads like a Counter (missing keys are 0).

    Writes in the hot counting paths use ``d[k] = d.get(k, 0) + 1`` on the
    exact ``dict`` C implementation — measurably cheaper per message than
    ``collections.Counter`` — while reads keep the Counter-style
    zero-default the tests and experiments rely on.
    """

    __slots__ = ()

    def __missing__(self, key):  # Counter-compatible reads
        return 0


@dataclass(frozen=True)
class StatsSnapshot:
    """Immutable copy of the counters at one instant."""

    messages: int
    wire_packets: int
    bytes: int
    dropped: int
    by_category: Dict[str, int] = field(default_factory=dict)
    sent_by: Dict[Address, int] = field(default_factory=dict)
    received_by: Dict[Address, int] = field(default_factory=dict)
    # Comms-optimisation counters (PR 5); all zero with the default
    # CommsParams, so pre-existing snapshot comparisons are unaffected.
    bytes_by_category: Dict[str, int] = field(default_factory=dict)
    packed_packets: int = 0
    packed_messages: int = 0
    bytes_saved: int = 0
    heartbeats_suppressed: int = 0
    piggybacked: Dict[str, int] = field(default_factory=dict)

    @property
    def wire_bytes(self) -> int:
        """Bytes that actually crossed the wire: logical bytes minus the
        per-message headers merged away by packing."""
        return self.bytes - self.bytes_saved


class NetworkStats:
    """Mutable counters owned by a :class:`~repro.net.network.Network`."""

    __slots__ = (
        "messages",
        "wire_packets",
        "bytes",
        "dropped",
        "by_category",
        "sent_by",
        "received_by",
        "bytes_by_category",
        "packed_packets",
        "packed_messages",
        "bytes_saved",
        "heartbeats_suppressed",
        "piggybacked",
    )

    def __init__(self) -> None:
        self.messages = 0
        self.wire_packets = 0
        self.bytes = 0
        self.dropped = 0
        self.by_category: Tally = Tally()
        self.sent_by: Tally = Tally()
        self.received_by: Tally = Tally()
        self.bytes_by_category: Tally = Tally()
        # Packing: wire packets that carried >1 datagram, how many
        # datagrams rode in them, and the header bytes merged away.
        self.packed_packets = 0
        self.packed_messages = 0
        self.bytes_saved = 0
        # Piggybacking: control messages that rode on other traffic
        # instead of burning their own datagram, bucketed by kind
        # ("ack", "gossip"), plus heartbeats proven by passive traffic.
        self.heartbeats_suppressed = 0
        self.piggybacked: Tally = Tally()

    def record_send(self, src: Address, category: str, total_bytes: int) -> None:
        """Count one logical message (one destination) leaving ``src``."""
        self.messages += 1
        self.bytes += total_bytes
        by_category = self.by_category
        by_category[category] = by_category.get(category, 0) + 1
        bytes_by_category = self.bytes_by_category
        bytes_by_category[category] = (
            bytes_by_category.get(category, 0) + total_bytes
        )
        sent_by = self.sent_by
        sent_by[src] = sent_by.get(src, 0) + 1

    def record_wire(self, packets: int = 1) -> None:
        """Count physical packets on the wire (1 per unicast; 1 per
        hardware-multicast send regardless of destination count)."""
        self.wire_packets += packets

    def record_packed(self, datagrams: int, saved_bytes: int) -> None:
        """One wire packet carried ``datagrams`` coalesced datagrams,
        merging away ``saved_bytes`` of per-message header overhead."""
        self.packed_packets += 1
        self.packed_messages += datagrams
        self.bytes_saved += saved_bytes

    def record_piggyback(self, kind: str, count: int = 1) -> None:
        """``count`` control messages of ``kind`` rode on other traffic."""
        piggybacked = self.piggybacked
        piggybacked[kind] = piggybacked.get(kind, 0) + count

    def record_suppressed_heartbeat(self) -> None:
        """A heartbeat ping was skipped because recent traffic from the
        peer already proved it alive (so its ack never happens either)."""
        self.heartbeats_suppressed += 1

    def piggyback_ratio(self) -> Dict[str, float]:
        """Fraction of each control-traffic kind that avoided its own
        datagram: piggybacked / (piggybacked + standalone)."""
        standalone = {
            "ack": self.by_category["transport-ack"],
            "gossip": self.by_category["group-stability"],
            "heartbeat": self.by_category["heartbeat"],
        }
        riding = {
            "ack": self.piggybacked["ack"],
            "gossip": self.piggybacked["gossip"],
            # A suppressed ping removes the ping *and* the ack it would
            # have drawn — both counted against the heartbeat category.
            "heartbeat": 2 * self.heartbeats_suppressed,
        }
        out: Dict[str, float] = {}
        for kind, rode in riding.items():
            total = rode + standalone[kind]
            if total:
                out[kind] = rode / total
        return out

    def record_delivery(self, dst: Address) -> None:
        received_by = self.received_by
        received_by[dst] = received_by.get(dst, 0) + 1

    def record_drop(self) -> None:
        self.dropped += 1

    def snapshot(self) -> StatsSnapshot:
        return StatsSnapshot(
            messages=self.messages,
            wire_packets=self.wire_packets,
            bytes=self.bytes,
            dropped=self.dropped,
            by_category=dict(self.by_category),
            sent_by=dict(self.sent_by),
            received_by=dict(self.received_by),
            bytes_by_category=dict(self.bytes_by_category),
            packed_packets=self.packed_packets,
            packed_messages=self.packed_messages,
            bytes_saved=self.bytes_saved,
            heartbeats_suppressed=self.heartbeats_suppressed,
            piggybacked=dict(self.piggybacked),
        )

    def since(self, before: StatsSnapshot) -> StatsSnapshot:
        """Difference between the counters now and an earlier snapshot."""
        now = self.snapshot()
        return StatsSnapshot(
            messages=now.messages - before.messages,
            wire_packets=now.wire_packets - before.wire_packets,
            bytes=now.bytes - before.bytes,
            dropped=now.dropped - before.dropped,
            by_category=_diff(now.by_category, before.by_category),
            sent_by=_diff(now.sent_by, before.sent_by),
            received_by=_diff(now.received_by, before.received_by),
            bytes_by_category=_diff(
                now.bytes_by_category, before.bytes_by_category
            ),
            packed_packets=now.packed_packets - before.packed_packets,
            packed_messages=now.packed_messages - before.packed_messages,
            bytes_saved=now.bytes_saved - before.bytes_saved,
            heartbeats_suppressed=(
                now.heartbeats_suppressed - before.heartbeats_suppressed
            ),
            piggybacked=_diff(now.piggybacked, before.piggybacked),
        )

    def reset(self) -> None:
        self.__init__()


def _diff(now: Dict, before: Dict) -> Dict:
    out = {}
    for key, value in now.items():
        delta = value - before.get(key, 0)
        if delta:
            out[key] = delta
    return out
