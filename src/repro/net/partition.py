"""Network partitions.

A partition is expressed as a set of *islands* (disjoint address sets); a
datagram is delivered only if its source and destination are in the same
island (addresses not mentioned in any island form an implicit final
island).  Pairwise link cuts are also supported for asymmetric faults.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.net.message import Address


class PartitionManager:
    """Tracks which endpoint pairs can currently communicate."""

    def __init__(self) -> None:
        self._island_of: Dict[Address, int] = {}
        self._islands_active = False
        self._cut_links: Set[Tuple[Address, Address]] = set()
        # Plain-attribute mirror of ``partitioned``: the network's send
        # path reads it once per datagram, and an attribute load is
        # measurably cheaper than a property call in that loop.
        self.active = False

    def partition(self, *islands: Iterable[Address]) -> None:
        """Split the network into the given islands.

        Addresses not listed in any island remain mutually connected (they
        form one implicit island) but are separated from every explicit one.
        """
        self._island_of = {}
        for index, island in enumerate(islands):
            for address in island:
                if address in self._island_of:
                    raise ValueError(f"{address} appears in two islands")
                self._island_of[address] = index
        self._islands_active = True
        self.active = True

    def heal(self) -> None:
        """Remove the island partition (cut links stay cut)."""
        self._island_of = {}
        self._islands_active = False
        self.active = bool(self._cut_links)

    def cut_link(self, a: Address, b: Address) -> None:
        """Cut the directed link a -> b (call twice for both directions)."""
        self._cut_links.add((a, b))
        self.active = True

    def restore_link(self, a: Address, b: Address) -> None:
        self._cut_links.discard((a, b))
        self.active = self._islands_active or bool(self._cut_links)

    def restore_all_links(self) -> None:
        self._cut_links.clear()
        self.active = self._islands_active

    @property
    def partitioned(self) -> bool:
        return self._islands_active or bool(self._cut_links)

    def islands(self) -> List[Set[Address]]:
        """Explicit islands currently in force (empty when healed)."""
        grouped: Dict[int, Set[Address]] = {}
        for address, index in self._island_of.items():
            grouped.setdefault(index, set()).add(address)
        return [grouped[i] for i in sorted(grouped)]

    def island_index(self, address: Address) -> Optional[int]:
        """Explicit island index, or None for the implicit remainder."""
        return self._island_of.get(address)

    def reachable(self, src: Address, dst: Address) -> bool:
        """Can a datagram travel from ``src`` to ``dst`` right now?"""
        if (src, dst) in self._cut_links:
            return False
        if not self._islands_active:
            return True
        return self._island_of.get(src) == self._island_of.get(dst)
