"""Wire-level message envelope and payload conventions.

Payloads are ordinary objects (usually dataclasses defined by each protocol
module).  Two optional attributes are respected network-wide:

``category``
    A short string used to bucket the message in :class:`~repro.net.stats.
    NetworkStats` (e.g. ``"abcast"``, ``"heartbeat"``, ``"view-change"``).
    Defaults to the payload's class name.

``size_bytes``
    Approximate payload size used by latency models and byte counters.
    Defaults to :data:`DEFAULT_PAYLOAD_BYTES`.

Both attributes are declared at *class* level — either as plain class
attributes (``category = "heartbeat"``) or as properties for wrappers
whose category depends on an inner payload (the transport's ``Segment``).
The lookup is cached per payload class, so per-instance assignment of
these names is not supported (and is used nowhere in the library).
"""

from __future__ import annotations

from typing import Any, Dict, Tuple

Address = str
"""A process endpoint name, e.g. ``"broker-3"``.  Unique per network."""

DEFAULT_PAYLOAD_BYTES = 128
HEADER_BYTES = 64

# Per-class lookup plan: (static_category | None, static_size | None).
# None means "dynamic" — the class defines the attribute as a descriptor
# (property), so it must be read from the instance on every call.
_META_CACHE: Dict[type, Tuple] = {}


def _register(cls: type) -> Tuple:
    category = getattr(cls, "category", None)
    if category is None:
        static_category = cls.__name__
    elif isinstance(category, str):
        static_category = category
    else:  # property / descriptor
        static_category = None
    size = getattr(cls, "size_bytes", None)
    if size is None:
        static_size = DEFAULT_PAYLOAD_BYTES
    elif isinstance(size, (int, float)):
        static_size = int(size)
    else:  # property / descriptor
        static_size = None
    meta = (static_category, static_size)
    _META_CACHE[cls] = meta
    return meta


def payload_category(payload: Any) -> str:
    """Stats bucket for a payload: its ``category`` or its class name."""
    cls = payload.__class__
    meta = _META_CACHE.get(cls)
    if meta is None:
        meta = _register(cls)
    category = meta[0]
    return category if category is not None else payload.category


def payload_size(payload: Any) -> int:
    """Approximate wire size of a payload in bytes (excluding header)."""
    cls = payload.__class__
    meta = _META_CACHE.get(cls)
    if meta is None:
        meta = _register(cls)
    size = meta[1]
    return size if size is not None else int(payload.size_bytes)


def payload_meta(payload: Any) -> Tuple[str, int]:
    """(category, size) in one cached lookup — the network's send path."""
    cls = payload.__class__
    meta = _META_CACHE.get(cls)
    if meta is None:
        meta = _register(cls)
    category, size = meta
    if category is None:
        category = payload.category
    if size is None:
        size = int(payload.size_bytes)
    return category, size


class Envelope:
    """One datagram in flight between two endpoints.

    A ``__slots__`` class (not a dataclass): envelopes are the most
    allocated object in any run, one per datagram.
    """

    __slots__ = (
        "src",
        "dst",
        "payload",
        "send_time",
        "deliver_time",
        "size_bytes",
        "trace",
    )

    def __init__(
        self,
        src: Address,
        dst: Address,
        payload: Any,
        send_time: float,
        deliver_time: float = 0.0,
        size_bytes: int = DEFAULT_PAYLOAD_BYTES,
    ) -> None:
        self.src = src
        self.dst = dst
        self.payload = payload
        self.send_time = send_time
        self.deliver_time = deliver_time
        self.size_bytes = size_bytes
        # Causal-trace context piggybacked on the datagram: the send span
        # recorded by repro.trace when tracing is on, else None.  The
        # network fills it in; protocol code never touches it.
        self.trace = None

    @property
    def category(self) -> str:
        return payload_category(self.payload)

    @property
    def total_bytes(self) -> int:
        return self.size_bytes + HEADER_BYTES

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Envelope(src={self.src!r}, dst={self.dst!r}, "
            f"payload={self.payload!r}, send_time={self.send_time!r}, "
            f"deliver_time={self.deliver_time!r}, size_bytes={self.size_bytes!r})"
        )

    def __eq__(self, other: Any) -> bool:
        if not isinstance(other, Envelope):
            return NotImplemented
        return (
            self.src == other.src
            and self.dst == other.dst
            and self.payload == other.payload
            and self.send_time == other.send_time
            and self.deliver_time == other.deliver_time
            and self.size_bytes == other.size_bytes
        )
