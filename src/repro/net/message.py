"""Wire-level message envelope and payload conventions.

Payloads are ordinary objects (usually dataclasses defined by each protocol
module).  Two optional attributes are respected network-wide:

``category``
    A short string used to bucket the message in :class:`~repro.net.stats.
    NetworkStats` (e.g. ``"abcast"``, ``"heartbeat"``, ``"view-change"``).
    Defaults to the payload's class name.

``size_bytes``
    Approximate payload size used by latency models and byte counters.
    Defaults to :data:`DEFAULT_PAYLOAD_BYTES`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

Address = str
"""A process endpoint name, e.g. ``"broker-3"``.  Unique per network."""

DEFAULT_PAYLOAD_BYTES = 128
HEADER_BYTES = 64


def payload_category(payload: Any) -> str:
    """Stats bucket for a payload: its ``category`` or its class name."""
    return getattr(payload, "category", type(payload).__name__)


def payload_size(payload: Any) -> int:
    """Approximate wire size of a payload in bytes (excluding header)."""
    size = getattr(payload, "size_bytes", DEFAULT_PAYLOAD_BYTES)
    return int(size)


@dataclass
class Envelope:
    """One datagram in flight between two endpoints."""

    src: Address
    dst: Address
    payload: Any
    send_time: float
    deliver_time: float = 0.0
    size_bytes: int = field(default=DEFAULT_PAYLOAD_BYTES)

    @property
    def category(self) -> str:
        return payload_category(self.payload)

    @property
    def total_bytes(self) -> int:
        return self.size_bytes + HEADER_BYTES
