"""Subdivided parallel computation (the toolkit's scatter/gather tool).

An origin member scatters a list of work items across the group (each
member takes the slice matching its rank), workers compute and send
partial results back, and the origin gathers.  If a worker dies before
reporting, the view change triggers a re-scatter of the whole task among
the survivors (idempotent work assumed, as in ISIS).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.membership.events import FIFO, DeliveryEvent, ViewEvent
from repro.membership.group import GroupMember
from repro.net.message import Address

WorkerFn = Callable[[Any], Any]
GatherFn = Callable[[List[Any]], None]


@dataclass
class ScatterTask:
    category = "parallel-task"
    task_id: str
    items: Tuple[Any, ...] = ()
    origin: Address = ""


@dataclass
class PartialResult:
    category = "parallel-result"
    task_id: str
    rank: int = 0
    results: Tuple[Any, ...] = ()
    indices: Tuple[int, ...] = ()


def partition(count: int, workers: int, rank: int) -> Tuple[int, ...]:
    """Deterministic round-robin partition of item indices by rank."""
    return tuple(i for i in range(count) if i % workers == rank)


class ParallelExecutor:
    """Attach to every member; any member can originate tasks."""

    _ids = itertools.count(1)

    def __init__(self, member: GroupMember, worker_fn: WorkerFn) -> None:
        self.member = member
        self.worker_fn = worker_fn
        self.items_processed = 0
        # origin-side bookkeeping: task_id -> gather state
        self._gathers: Dict[str, Dict[str, Any]] = {}
        member.add_delivery_listener(self._on_delivery)
        member.add_view_listener(self._on_view)
        member.runtime.process.on(PartialResult, self._on_partial)

    # -- origin side -----------------------------------------------------------------

    def run(self, items: List[Any], on_done: GatherFn) -> str:
        """Scatter ``items`` over the current membership; ``on_done``
        receives results in item order once every index is covered."""
        task_id = f"{self.member.me}/task{next(self._ids)}"
        self._gathers[task_id] = {
            "items": list(items),
            "results": {},  # index -> result
            "on_done": on_done,
        }
        self._scatter(task_id)
        return task_id

    def _scatter(self, task_id: str) -> None:
        gather = self._gathers[task_id]
        self.member.multicast(
            ScatterTask(
                task_id=task_id,
                items=tuple(gather["items"]),
                origin=self.member.me,
            ),
            FIFO,
        )

    def _on_partial(self, partial: PartialResult, sender: Address) -> None:
        gather = self._gathers.get(partial.task_id)
        if gather is None:
            return
        for index, result in zip(partial.indices, partial.results):
            gather["results"].setdefault(index, result)
        if len(gather["results"]) == len(gather["items"]):
            del self._gathers[partial.task_id]
            ordered = [gather["results"][i] for i in range(len(gather["items"]))]
            gather["on_done"](ordered)

    def _on_view(self, event: ViewEvent) -> None:
        """Origin: a worker died mid-task — re-scatter unfinished tasks so
        survivors cover the dead worker's slice."""
        if not event.departed:
            return
        for task_id in sorted(self._gathers):
            self._scatter(task_id)

    # -- worker side -----------------------------------------------------------------

    def _on_delivery(self, event: DeliveryEvent) -> None:
        payload = event.payload
        if not isinstance(payload, ScatterTask):
            return
        view = self.member.view
        if view is None:
            return
        rank = view.rank_of(self.member.me)
        indices = partition(len(payload.items), view.size, rank)
        if not indices:
            return
        results = tuple(self.worker_fn(payload.items[i]) for i in indices)
        self.items_processed += len(indices)
        if payload.origin == self.member.me:
            self._on_partial(
                PartialResult(
                    task_id=payload.task_id,
                    rank=rank,
                    results=results,
                    indices=indices,
                ),
                self.member.me,
            )
        else:
            self.member.runtime.process.send(
                payload.origin,
                PartialResult(
                    task_id=payload.task_id,
                    rank=rank,
                    results=results,
                    indices=indices,
                ),
            )
