"""Distributed transactions (the toolkit's transaction tool): two-phase
commit across replicated resources.

Each participating *resource* is a process group running a
:class:`TransactionResource` (a lock-guarded, replicated key-value table).
A :class:`TransactionCoordinator` drives the classic protocol: PREPARE to
every participant's group coordinator, collect votes, then COMMIT or
ABORT.  Resource groups replicate their staged writes with abcast, so a
participant survives cohort failures between prepare and commit — the
standard ISIS construction of transactions on top of resilient groups.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.membership.events import TOTAL, DeliveryEvent
from repro.membership.group import GroupMember
from repro.net.message import Address
from repro.proc.process import Process
from repro.proc.rpc import Rpc


@dataclass
class TxPrepare:
    """RPC body: stage these writes; vote yes/no."""

    txid: str
    writes: Tuple[Tuple[Any, Any], ...] = ()


@dataclass
class TxDecision:
    """RPC body: commit or abort a previously prepared transaction."""

    txid: str
    commit: bool = False


@dataclass
class TxReplicatedOp:
    """abcast within the resource group: stage / commit / abort."""

    category = "tx-op"
    resource: str
    kind: str  # "stage" | "commit" | "abort"
    txid: str = ""
    writes: Tuple[Tuple[Any, Any], ...] = ()


class TransactionResource:
    """One member's replica of a transactional key-value resource."""

    def __init__(self, member: GroupMember, resource: str) -> None:
        self.member = member
        self.resource = resource
        self.data: Dict[Any, Any] = {}
        self.staged: Dict[str, Tuple[Tuple[Any, Any], ...]] = {}
        self.locked_keys: Dict[Any, str] = {}
        # Keys this group coordinator has voted yes on but whose replicated
        # stage has not yet been delivered: without this, two prepares in
        # that window would both vote yes on the same key.
        self._voting: Dict[Any, str] = {}
        self.decided: Dict[str, bool] = {}
        member.add_delivery_listener(self._on_delivery)
        try:
            member.runtime.rpc.serve(TxPrepare, self._serve_prepare)
            member.runtime.rpc.serve(TxDecision, self._serve_decision)
        except ValueError:
            # Another resource on this process already serves these; a
            # shared-dispatch variant would be needed for that layout.
            raise ValueError(
                "one TransactionResource per process (shared RPC types)"
            )

    # -- coordinator-facing RPCs (answered by the group's rank-0 member) --------------

    def _serve_prepare(self, body: TxPrepare, sender: Address):
        if not self._is_group_coordinator():
            return ("redirect", self.member.acting_coordinator())
        conflict = any(
            key in self.locked_keys or key in self._voting
            for key, _ in body.writes
        )
        if conflict:
            return ("no",)
        for key, _value in body.writes:
            self._voting[key] = body.txid
        # Replicate the stage so cohorts hold the locks and writes too.
        self.member.multicast(
            TxReplicatedOp(
                resource=self.resource,
                kind="stage",
                txid=body.txid,
                writes=tuple(body.writes),
            ),
            TOTAL,
        )
        return ("yes",)

    def _serve_decision(self, body: TxDecision, sender: Address):
        if not self._is_group_coordinator():
            return ("redirect", self.member.acting_coordinator())
        self.member.multicast(
            TxReplicatedOp(
                resource=self.resource,
                kind="commit" if body.commit else "abort",
                txid=body.txid,
            ),
            TOTAL,
        )
        return ("ok",)

    def _is_group_coordinator(self) -> bool:
        return (
            self.member.is_member
            and self.member.acting_coordinator() == self.member.me
        )

    # -- replicated application ---------------------------------------------------

    def _on_delivery(self, event: DeliveryEvent) -> None:
        payload = event.payload
        if not isinstance(payload, TxReplicatedOp) or payload.resource != self.resource:
            return
        if payload.kind == "stage":
            if payload.txid in self.decided:
                return
            self.staged[payload.txid] = payload.writes
            for key, _value in payload.writes:
                self.locked_keys[key] = payload.txid
                if self._voting.get(key) == payload.txid:
                    del self._voting[key]
        elif payload.kind == "commit":
            writes = self.staged.pop(payload.txid, ())
            for key, value in writes:
                self.data[key] = value
            self._unlock(payload.txid)
            self.decided[payload.txid] = True
        elif payload.kind == "abort":
            self.staged.pop(payload.txid, None)
            self._unlock(payload.txid)
            self.decided[payload.txid] = False

    def _unlock(self, txid: str) -> None:
        for key in [k for k, t in self.locked_keys.items() if t == txid]:
            del self.locked_keys[key]
        for key in [k for k, t in self._voting.items() if t == txid]:
            del self._voting[key]

    # -- local reads ------------------------------------------------------------------

    def get(self, key: Any, default: Any = None) -> Any:
        return self.data.get(key, default)


class TransactionCoordinator:
    """Drives 2PC from any process against resource-group contacts."""

    _ids = itertools.count(1)

    def __init__(self, process: Process, rpc: Optional[Rpc] = None,
                 timeout: float = 1.0) -> None:
        self.process = process
        self.rpc = rpc if rpc is not None else Rpc(process)
        self.timeout = timeout
        self.log: List[Tuple[str, str]] = []  # (txid, outcome)

    def execute(
        self,
        participants: Dict[Address, List[Tuple[Any, Any]]],
        on_done: Callable[[bool], None],
    ) -> str:
        """Run one transaction: ``participants`` maps each resource-group
        contact to the writes destined for that resource.  ``on_done``
        receives the commit decision."""
        txid = f"{self.process.address}/tx{next(self._ids)}"
        votes: Dict[Address, Optional[bool]] = {c: None for c in participants}

        def decide_and_finish(commit: bool) -> None:
            self.log.append((txid, "commit" if commit else "abort"))
            remaining = [len(participants)]

            def one_done(_value, _sender) -> None:
                remaining[0] -= 1
                if remaining[0] == 0:
                    on_done(commit)

            for contact in participants:
                self._call_with_redirect(
                    contact,
                    TxDecision(txid=txid, commit=commit),
                    one_done,
                    on_timeout=lambda: one_done(None, None),
                )

        def vote(contact: Address, value) -> None:
            votes[contact] = bool(value and value[0] == "yes")
            if any(v is False for v in votes.values()):
                if all(v is not None for v in votes.values()):
                    decide_and_finish(False)
            elif all(v for v in votes.values()):
                decide_and_finish(True)

        for contact, writes in participants.items():
            self._call_with_redirect(
                contact,
                TxPrepare(txid=txid, writes=tuple(writes)),
                lambda value, sender, c=contact: vote(c, value),
                on_timeout=lambda c=contact: vote(c, ("no",)),
            )
        return txid

    def _call_with_redirect(self, contact, body, on_reply, on_timeout) -> None:
        def reply(value, sender) -> None:
            if value is not None and isinstance(value, tuple) and value[0] == "redirect":
                self._call_with_redirect(value[1], body, on_reply, on_timeout)
            else:
                on_reply(value, sender)

        self.rpc.call(
            contact, body, on_reply=reply, timeout=self.timeout, on_timeout=on_timeout
        )
