"""The ISIS-style toolkit: ready-made distributed-programming tools
(paper §2/§4), on both flat and hierarchical groups."""

from repro.toolkit.coordinator_cohort import (
    CCReply,
    CCRequest,
    CCResultNote,
    CoordinatorCohortClient,
    CoordinatorCohortServer,
    GetMembers,
    attach_service,
)
from repro.toolkit.hierarchical_service import (
    HierarchicalClient,
    HierarchicalServer,
    attach_hierarchical_service,
)
from repro.toolkit.mutex import DistributedMutex, MutexOp
from repro.toolkit.news import News, NewsPost
from repro.toolkit.parallel import ParallelExecutor, partition
from repro.toolkit.partitioned_data import (
    PartitionedStoreClient,
    PartitionedStoreServer,
    owner_of,
)
from repro.toolkit.replication import (
    ReplicatedCounter,
    ReplicatedDict,
    ReplicatedStateMachine,
    SMCommand,
)
from repro.toolkit.state_transfer import StateTransferHub
from repro.toolkit.transactions import (
    TransactionCoordinator,
    TransactionResource,
    TxDecision,
    TxPrepare,
)

__all__ = [
    "CCReply",
    "CCRequest",
    "CCResultNote",
    "CoordinatorCohortClient",
    "CoordinatorCohortServer",
    "DistributedMutex",
    "GetMembers",
    "HierarchicalClient",
    "HierarchicalServer",
    "MutexOp",
    "News",
    "NewsPost",
    "ParallelExecutor",
    "PartitionedStoreClient",
    "PartitionedStoreServer",
    "ReplicatedCounter",
    "ReplicatedDict",
    "ReplicatedStateMachine",
    "SMCommand",
    "StateTransferHub",
    "TransactionCoordinator",
    "TransactionResource",
    "TxDecision",
    "TxPrepare",
    "attach_hierarchical_service",
    "attach_service",
    "owner_of",
    "partition",
]
