"""The coordinator-cohort tool (paper §2), on flat groups.

    "A client of such a service broadcasts its request to all members of
    the group, one of whose members is chosen to handle the request.  This
    member, the coordinator, is monitored by the other group members, the
    cohorts, and should the coordinator fail, one of the cohorts is
    selected to take over as the new coordinator.  When the coordinator
    has completed the request, the result is returned to the client, and
    copies of the result are broadcast to the cohorts."

Message accounting for a group of n (the paper's E1 claim): n request
messages (client to every member) + 1 reply to the client + n-1 result
copies to the cohorts = **2n messages** per request, with all n members
doing work — which is exactly why this style "does not scale up very
well", and why ``cohort_limit`` (experiment E7) caps how many cohorts
retain the result.

A process may host several servers (different groups) and several client
stubs; a per-process :class:`_CCDispatch` demultiplexes the shared wire
types.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple
from weakref import WeakValueDictionary

from repro.membership.events import ViewEvent
from repro.membership.group import GroupMember
from repro.net.message import Address
from repro.proc.process import Process

Handler = Callable[[Any, Address], Any]


@dataclass
class CCRequest:
    category = "cc-request"
    group: str
    request_id: str
    payload: Any = None
    client: Address = ""


@dataclass
class CCReply:
    category = "cc-reply"
    request_id: str
    result: Any = None


@dataclass
class CCResultNote:
    """The coordinator's result copy broadcast to the cohorts."""

    category = "cc-result"
    group: str
    request_id: str = ""
    result: Any = None
    client: Address = ""


@dataclass
class GetMembers:
    """RPC body: a client asks any member for the current membership."""

    group: str


class _CCDispatch:
    """Per-process demux for coordinator-cohort wire types."""

    # Keyed by the process's stable address, never id(): CPython reuses
    # object ids after GC, which can silently alias two distinct process
    # objects to one dispatch table.
    _instances: "WeakValueDictionary[Address, _CCDispatch]" = WeakValueDictionary()

    @classmethod
    def for_process(cls, process: Process, rpc=None) -> "_CCDispatch":
        existing = cls._instances.get(process.address)
        if existing is not None and existing.process is process:
            return existing
        dispatch = cls(process, rpc)
        cls._instances[process.address] = dispatch
        return dispatch

    def __init__(self, process: Process, rpc=None) -> None:
        from repro.proc.rpc import Rpc

        self.process = process
        self.servers: Dict[str, "CoordinatorCohortServer"] = {}
        self.outstanding: Dict[str, "CoordinatorCohortClient"] = {}
        process.on(CCRequest, self._on_request)
        process.on(CCReply, self._on_reply)
        process.on(CCResultNote, self._on_result_note)
        self.rpc = rpc if rpc is not None else Rpc(process)
        try:
            self.rpc.serve(GetMembers, self._serve_members)
        except ValueError:
            pass

    def _on_request(self, request: CCRequest, sender: Address) -> None:
        server = self.servers.get(request.group)
        if server is not None:
            server._on_request(request, sender)

    def _on_reply(self, reply: CCReply, sender: Address) -> None:
        client = self.outstanding.pop(reply.request_id, None)
        if client is not None:
            client._on_reply(reply, sender)

    def _on_result_note(self, note: CCResultNote, sender: Address) -> None:
        server = self.servers.get(note.group)
        if server is not None:
            server._on_result_note(note, sender)

    def _serve_members(self, body: GetMembers, sender: Address):
        server = self.servers.get(body.group)
        if server is None or not server.member.is_member:
            return None
        return tuple(server.member.view.members)


class CoordinatorCohortServer:
    """Attach to every member of the serving group."""

    def __init__(
        self,
        member: GroupMember,
        handler: Handler,
        cohort_limit: Optional[int] = None,
    ) -> None:
        self.member = member
        self.handler = handler
        self.cohort_limit = cohort_limit
        self.requests_executed = 0
        self.takeovers = 0
        # request_id -> (payload, client); dropped once a result is known.
        self._pending: Dict[str, Tuple[Any, Address]] = {}
        self._results: Dict[str, Any] = {}
        self._dispatch = _CCDispatch.for_process(
            member.runtime.process, rpc=member.runtime.rpc
        )
        self._dispatch.servers[member.group] = self
        member.add_view_listener(self._on_view)

    # -- protocol ------------------------------------------------------------------

    def _is_coordinator(self) -> bool:
        return (
            self.member.is_member
            and self.member.acting_coordinator() == self.member.me
        )

    def _cohorts(self) -> Tuple[Address, ...]:
        others = self.member.view.others(self.member.me)
        if self.cohort_limit is not None:
            others = others[: max(0, self.cohort_limit - 1)]
        return others

    def _on_request(self, request: CCRequest, sender: Address) -> None:
        if not self.member.is_member:
            return
        if request.request_id in self._results:
            # Retransmitted request already served: coordinator re-replies.
            if self._is_coordinator():
                self.member.runtime.process.send(
                    request.client,
                    CCReply(
                        request_id=request.request_id,
                        result=self._results[request.request_id],
                    ),
                )
            return
        self._pending[request.request_id] = (request.payload, request.client)
        if self._is_coordinator():
            self._execute(request.request_id)

    def _execute(self, request_id: str) -> None:
        payload, client = self._pending.pop(request_id)
        result = self.handler(payload, client)
        self.requests_executed += 1
        self._results[request_id] = result
        process = self.member.runtime.process
        trace = process.env.network.trace
        if trace is not None:
            trace.local(
                "cc-execute", category="toolkit", process=self.member.me,
                group=self.member.group, request_id=request_id,
            )
        process.send(client, CCReply(request_id=request_id, result=result))
        cohorts = self._cohorts()
        if cohorts:
            process.multicast(
                cohorts,
                CCResultNote(
                    group=self.member.group,
                    request_id=request_id,
                    result=result,
                    client=client,
                ),
            )

    def _on_result_note(self, note: CCResultNote, sender: Address) -> None:
        self._results[note.request_id] = note.result
        self._pending.pop(note.request_id, None)

    def _on_view(self, event: ViewEvent) -> None:
        """Cohort takeover: if the coordinator died holding requests we
        know about but never published results for, the new coordinator
        re-executes them."""
        if not self._is_coordinator():
            return
        for request_id in sorted(self._pending):
            self.takeovers += 1
            trace = self.member.runtime.process.env.network.trace
            if trace is not None:
                trace.local(
                    "cc-takeover", category="toolkit", process=self.member.me,
                    group=self.member.group, request_id=request_id,
                )
            self._execute(request_id)


class CoordinatorCohortClient:
    """Client stub: membership discovery + request broadcast + retry."""

    _ids = itertools.count(1)

    def __init__(
        self,
        process: Process,
        group: str,
        contact: Address = "",
        contacts: Tuple[Address, ...] = (),
        rpc=None,
        timeout: float = 1.0,
        max_retries: int = 4,
        request_fanout: Optional[int] = None,
    ) -> None:
        self.process = process
        self.group = group
        self.contacts = tuple(contacts) if contacts else (contact,)
        if not any(self.contacts):
            raise ValueError("need a contact or contacts")
        self._contact_index = 0
        # How many members receive each request (None = all, the classic
        # behaviour).  The paper argues a handful of cohorts gives all the
        # resiliency there is to get (experiment E7).
        self.request_fanout = request_fanout
        self.timeout = timeout
        self.max_retries = max_retries
        self._dispatch = _CCDispatch.for_process(process, rpc=rpc)
        self.rpc = self._dispatch.rpc
        self._members: Optional[Tuple[Address, ...]] = None
        self.replies_received = 0
        self._callbacks: Dict[str, Callable[[Any], None]] = {}

    def request(
        self,
        payload: Any,
        on_reply: Callable[[Any], None],
        on_failure: Optional[Callable[[], None]] = None,
    ) -> str:
        request_id = f"{self.process.address}/cc{next(self._ids)}"
        self._callbacks[request_id] = on_reply
        self._dispatch.outstanding[request_id] = self
        self._send(request_id, payload, self.max_retries, on_failure)
        return request_id

    # -- internals ---------------------------------------------------------------

    def _send(self, request_id, payload, retries_left, on_failure) -> None:
        if request_id not in self._callbacks:
            return
        if self._members is None:
            self._fetch_members(
                lambda: self._send(request_id, payload, retries_left, on_failure),
                retries_left,
                lambda: self._maybe_retry(
                    request_id, payload, retries_left, on_failure
                ),
            )
            return
        targets = self._members
        if self.request_fanout is not None:
            targets = targets[: max(1, self.request_fanout)]
        self.process.multicast(
            targets,
            CCRequest(
                group=self.group,
                request_id=request_id,
                payload=payload,
                client=self.process.address,
            ),
        )
        self.process.set_timer(
            self.timeout,
            lambda: self._maybe_retry(request_id, payload, retries_left, on_failure),
        )

    def _maybe_retry(self, request_id, payload, retries_left, on_failure) -> None:
        if request_id not in self._callbacks:
            return
        if retries_left <= 0:
            self._callbacks.pop(request_id, None)
            self._dispatch.outstanding.pop(request_id, None)
            if on_failure is not None:
                on_failure()
            return
        self._members = None  # refresh membership: it may have changed
        self._send(request_id, payload, retries_left - 1, on_failure)

    def _fetch_members(self, then, retries_left, on_give_up) -> None:
        contact = self.contacts[self._contact_index % len(self.contacts)]

        def reply(value, sender) -> None:
            if value:
                self._members = tuple(value)
                # Prefer the freshest membership as future contacts.
                self.contacts = tuple(value)
                self._contact_index = 0
                then()
            else:
                self._contact_index += 1
                on_give_up()

        def timed_out() -> None:
            self._contact_index += 1
            on_give_up()

        self.rpc.call(
            contact,
            GetMembers(group=self.group),
            on_reply=reply,
            timeout=self.timeout,
            on_timeout=timed_out,
        )

    def _on_reply(self, reply: CCReply, sender: Address) -> None:
        on_reply = self._callbacks.pop(reply.request_id, None)
        if on_reply is not None:
            self.replies_received += 1
            on_reply(reply.result)


def attach_service(
    members: List[GroupMember],
    handler: Handler,
    cohort_limit: Optional[int] = None,
) -> List[CoordinatorCohortServer]:
    """Attach a coordinator-cohort service to every group member."""
    return [
        CoordinatorCohortServer(m, handler, cohort_limit=cohort_limit)
        for m in members
    ]
