"""State transfer for joining members.

The membership layer carries an application snapshot inside ``NewView``
when a view change admits joiners: the view-change coordinator calls the
group's ``state_provider`` and each joiner's ``state_receiver`` gets the
result *before* any new-view message is delivered — so a joiner starts
from a state consistent with the exact message prefix the group has
processed (the classical ISIS state-transfer guarantee).

This module provides composition: several toolkit components on one group
can each register a named section of the snapshot.
"""

from __future__ import annotations

from typing import Any, Callable, Dict

from repro.membership.group import GroupMember

Provider = Callable[[], Any]
Receiver = Callable[[Any], None]


class StateTransferHub:
    """Multiplexes the single provider/receiver slot of a group member
    across named components."""

    def __init__(self, member: GroupMember) -> None:
        if member.state_provider is not None or member.state_receiver is not None:
            raise ValueError(
                "group member already has state-transfer hooks; create the "
                "hub before other components claim them"
            )
        self.member = member
        self._providers: Dict[str, Provider] = {}
        self._receivers: Dict[str, Receiver] = {}
        self.transfers_received = 0
        member.state_provider = self._provide
        member.state_receiver = self._receive

    def register(self, section: str, provider: Provider, receiver: Receiver) -> None:
        """Add a named snapshot section (e.g. one per replicated table)."""
        if section in self._providers:
            raise ValueError(f"section {section!r} already registered")
        self._providers[section] = provider
        self._receivers[section] = receiver

    def _provide(self) -> Dict[str, Any]:
        return {name: provider() for name, provider in self._providers.items()}

    def _receive(self, snapshot: Any) -> None:
        if not isinstance(snapshot, dict):
            return
        self.transfers_received += 1
        for name, section in snapshot.items():
            receiver = self._receivers.get(name)
            if receiver is not None:
                receiver(section)
