"""The news facility: subject-based publish/subscribe within a group.

Classical ISIS shipped a "news" service built on its process groups; it
is the natural way to express the trading room's per-symbol feeds.  Posts
to a subject are causally ordered multicasts (cbcast is enough: posts by
one publisher stay ordered, replies follow what they reply to), every
member keeps a bounded back-file per subject, and late subscribers can
replay it — with full state transfer to joining members via the group's
snapshot hooks.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Deque, Dict, List, Optional, Tuple

from repro.membership.events import CAUSAL, DeliveryEvent
from repro.membership.group import GroupMember
from repro.net.message import Address

Subscriber = Callable[[str, Any, Address], None]


@dataclass
class NewsPost:
    category = "news-post"
    subject: str
    body: Any = None


class News:
    """One member's endpoint of the group news service."""

    def __init__(
        self,
        member: GroupMember,
        back_issues: int = 64,
        claim_state_hooks: bool = True,
    ) -> None:
        if back_issues < 0:
            raise ValueError("back_issues must be nonnegative")
        self.member = member
        self.back_issues = back_issues
        self._subscribers: Dict[str, List[Subscriber]] = {}
        self._files: Dict[str, Deque[Tuple[Any, Address]]] = {}
        self.posts_delivered = 0
        member.add_delivery_listener(self._on_delivery)
        if claim_state_hooks and member.state_provider is None:
            member.state_provider = self._snapshot
            member.state_receiver = self._restore

    # -- publishing -------------------------------------------------------------

    def post(self, subject: str, body: Any) -> None:
        """Publish to every member subscribed to ``subject``."""
        self.member.multicast(NewsPost(subject=subject, body=body), CAUSAL)

    # -- subscribing -------------------------------------------------------------

    def subscribe(
        self,
        subject: str,
        fn: Subscriber,
        replay_back_issues: bool = False,
    ) -> None:
        """Register ``fn(subject, body, poster)``; optionally replay the
        locally held back-file first (late-subscriber catch-up)."""
        if replay_back_issues:
            for body, poster in self._files.get(subject, ()):
                fn(subject, body, poster)
        self._subscribers.setdefault(subject, []).append(fn)

    def unsubscribe(self, subject: str, fn: Subscriber) -> None:
        subscribers = self._subscribers.get(subject, [])
        if fn in subscribers:
            subscribers.remove(fn)

    def back_file(self, subject: str) -> List[Tuple[Any, Address]]:
        return list(self._files.get(subject, ()))

    def subjects(self) -> List[str]:
        return sorted(self._files)

    # -- internals ----------------------------------------------------------------

    def _on_delivery(self, event: DeliveryEvent) -> None:
        payload = event.payload
        if not isinstance(payload, NewsPost):
            return
        self.posts_delivered += 1
        entry = (payload.body, event.sender)
        history = self._files.setdefault(
            payload.subject, deque(maxlen=self.back_issues or None)
        )
        if self.back_issues:
            history.append(entry)
        for fn in list(self._subscribers.get(payload.subject, ())):
            fn(payload.subject, payload.body, event.sender)

    def _snapshot(self) -> Dict[str, List[Tuple[Any, Address]]]:
        return {subject: list(history) for subject, history in self._files.items()}

    def _restore(self, snapshot: Any) -> None:
        if not isinstance(snapshot, dict):
            return
        for subject, entries in snapshot.items():
            history = self._files.setdefault(
                subject, deque(maxlen=self.back_issues or None)
            )
            for entry in entries:
                history.append(tuple(entry))
