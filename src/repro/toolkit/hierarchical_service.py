"""Coordinator-cohort on hierarchical groups (paper §4).

The same reliable-service abstraction as :mod:`repro.toolkit.
coordinator_cohort`, but the serving group is a *large group*: a client's
request is broadcast only to the members of **one leaf subgroup**, so the
per-request cost is ``2 * leaf_size`` messages — bounded by the split
threshold — no matter how many thousands of processes implement the
service.  This is the paper's scaling fix: "requests are broadcast to
individual subgroups."

Servers re-attach automatically when their process moves between leaves
(splits/merges), so the application code is identical to the flat case —
the compatibility story of §4.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional

from repro.core.hierarchy import LargeGroupMember
from repro.core.router import ServiceRouter
from repro.membership.group import GroupMember
from repro.net.message import Address
from repro.proc.process import Process
from repro.toolkit.coordinator_cohort import (
    CoordinatorCohortClient,
    CoordinatorCohortServer,
    Handler,
)


class HierarchicalServer:
    """Per-worker server: follows its process across leaf reorganisations."""

    def __init__(
        self,
        member: LargeGroupMember,
        handler: Handler,
        cohort_limit: Optional[int] = None,
    ) -> None:
        self.member = member
        self.handler = handler
        self.cohort_limit = cohort_limit
        self._current: Optional[CoordinatorCohortServer] = None
        member.add_leaf_change_listener(self._on_leaf_change)

    def _on_leaf_change(self, leaf_member: GroupMember) -> None:
        # A fresh per-leaf server; the old one dies with the old leaf
        # group's listeners.  Results do not carry across leaves: a client
        # retry after a reorganisation re-executes (at-least-once, as in
        # classical ISIS).
        self._current = CoordinatorCohortServer(
            leaf_member, self.handler, cohort_limit=self.cohort_limit
        )

    @property
    def requests_executed(self) -> int:
        return self._current.requests_executed if self._current else 0


class HierarchicalClient:
    """Client stub: leaf assignment via the router, then leaf-local CC."""

    def __init__(
        self,
        process: Process,
        router: ServiceRouter,
        timeout: float = 1.0,
        max_retries: int = 4,
    ) -> None:
        self.process = process
        self.router = router
        self.timeout = timeout
        self.max_retries = max_retries
        self._cc: Optional[CoordinatorCohortClient] = None
        self.requests_sent = 0

    def request(
        self,
        payload: Any,
        on_reply: Callable[[Any], None],
        on_failure: Optional[Callable[[], None]] = None,
    ) -> None:
        self.requests_sent += 1
        if self._cc is not None:
            self._cc.request(
                payload,
                on_reply,
                on_failure=lambda: self._retry_fresh(payload, on_reply, on_failure),
            )
            return
        self.router.assignment(
            lambda assignment: self._with_assignment(
                assignment, payload, on_reply, on_failure
            )
        )

    def _with_assignment(self, assignment, payload, on_reply, on_failure) -> None:
        if assignment is None:
            if on_failure is not None:
                on_failure()
            return
        leaf_group, contacts = assignment
        self._cc = CoordinatorCohortClient(
            self.process,
            leaf_group,
            contacts=contacts,
            rpc=self.router.rpc,
            timeout=self.timeout,
            max_retries=self.max_retries,
        )
        self._cc.request(
            payload,
            on_reply,
            on_failure=lambda: self._retry_fresh(payload, on_reply, on_failure),
        )

    def _retry_fresh(self, payload, on_reply, on_failure) -> None:
        """The assigned leaf stopped answering (dissolved or partitioned):
        invalidate and get a fresh assignment once."""
        self._cc = None
        self.router.invalidate()
        self.router.assignment(
            lambda assignment: self._with_assignment(
                assignment, payload, on_reply, on_failure
            )
        )


def attach_hierarchical_service(
    members: List[LargeGroupMember],
    handler: Handler,
    cohort_limit: Optional[int] = None,
) -> List[HierarchicalServer]:
    return [
        HierarchicalServer(m, handler, cohort_limit=cohort_limit) for m in members
    ]
