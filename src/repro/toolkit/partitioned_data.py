"""Partitioned replicated data over a hierarchical group.

Paper §3: "The leader may perform group-wide application-level functions
such as partitioning data or processing between subgroups."  This tool
realises that: the key space is partitioned across the leaf subgroups (by
stable hash over the sorted leaf list), each partition is *replicated
within its leaf* (abcast, so it survives leaf-member failures), and
clients route each operation to the owning leaf only — every read or
write touches one bounded subgroup regardless of total store size.

Rebalancing on leaf churn is deliberately simple (clients refresh their
leaf list and re-route; a vanished leaf loses its partition), matching
the paper-era design point; production systems would add key migration.
"""

from __future__ import annotations

import hashlib
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.core.hierarchy import LargeGroupMember
from repro.core.leader import GetHierarchyInfo
from repro.membership.group import GroupMember
from repro.net.message import Address
from repro.proc.process import Process
from repro.toolkit.coordinator_cohort import CoordinatorCohortClient
from repro.toolkit.hierarchical_service import HierarchicalServer
from repro.toolkit.replication import ReplicatedDict


def owner_of(key: Any, leaf_ids: List[str]) -> str:
    """Stable key -> leaf assignment over the sorted leaf list."""
    if not leaf_ids:
        raise ValueError("no leaves to own keys")
    ordered = sorted(leaf_ids)
    digest = hashlib.sha1(repr(key).encode()).digest()
    return ordered[int.from_bytes(digest[:4], "big") % len(ordered)]


class PartitionedStoreServer:
    """Per-worker server: a leaf-replicated table + a request handler."""

    def __init__(self, member: LargeGroupMember, store: str = "pstore") -> None:
        self.member = member
        self.store = store
        self._table: Optional[ReplicatedDict] = None
        self._service = HierarchicalServer(member, self._handle)
        member.add_leaf_change_listener(self._on_leaf_change)

    def _on_leaf_change(self, leaf_member: GroupMember) -> None:
        # fresh per-leaf replica; the leaf's membership protocol keeps it
        # identical at every leaf member and state-transfers to joiners
        self._table = ReplicatedDict(leaf_member, self.store)

    def _handle(self, payload: Any, client: Address) -> Any:
        op = payload.get("op")
        if op == "put":
            self._table.put(payload["key"], payload["value"])
            return ("ok",)
        if op == "get":
            return ("value", self._table.get(payload["key"]))
        if op == "delete":
            self._table.delete(payload["key"])
            return ("ok",)
        return ("error", f"unknown op {op!r}")

    def local_value(self, key: Any) -> Any:
        return self._table.get(key) if self._table is not None else None


class PartitionedStoreClient:
    """Routes each key's operations to the leaf that owns it."""

    def __init__(
        self,
        process: Process,
        rpc,
        leader_contacts: Tuple[Address, ...],
        service: str = "svc",
        timeout: float = 1.0,
    ) -> None:
        if not leader_contacts:
            raise ValueError("need leader contacts")
        self.process = process
        self.rpc = rpc
        self.service = service
        self.leader_contacts = tuple(leader_contacts)
        self.timeout = timeout
        self._leaves: Dict[str, Tuple[Address, ...]] = {}
        self._cc: Dict[str, CoordinatorCohortClient] = {}

    # -- public ops ----------------------------------------------------------------

    def put(self, key: Any, value: Any, on_done: Callable[[bool], None]) -> None:
        self._op({"op": "put", "key": key, "value": value}, key,
                 lambda result: on_done(bool(result and result[0] == "ok")))

    def get(self, key: Any, on_value: Callable[[Any], None]) -> None:
        def unwrap(result) -> None:
            on_value(result[1] if result and result[0] == "value" else None)

        self._op({"op": "get", "key": key}, key, unwrap)

    def delete(self, key: Any, on_done: Callable[[bool], None]) -> None:
        self._op({"op": "delete", "key": key}, key,
                 lambda result: on_done(bool(result and result[0] == "ok")))

    def refresh(self, then: Callable[[bool], None]) -> None:
        """Re-fetch the leaf directory from the leader."""
        self._fetch_leaves(0, then)

    def owner_leaf(self, key: Any) -> Optional[str]:
        if not self._leaves:
            return None
        return owner_of(key, list(self._leaves))

    # -- internals ------------------------------------------------------------------

    def _op(self, payload, key, on_result) -> None:
        if not self._leaves:
            self._fetch_leaves(
                0, lambda ok: self._op(payload, key, on_result) if ok else on_result(None)
            )
            return
        leaf_id = owner_of(key, list(self._leaves))
        contacts = self._leaves[leaf_id]
        cc = self._cc.get(leaf_id)
        if cc is None:
            from repro.core.leader import leaf_group_name

            cc = CoordinatorCohortClient(
                self.process,
                leaf_group_name(self.service, leaf_id),
                contacts=contacts,
                rpc=self.rpc,
                timeout=self.timeout,
                max_retries=3,
            )
            self._cc[leaf_id] = cc

        def failed() -> None:
            # owner leaf unreachable (dissolved/merged): refresh and retry
            self._cc.pop(leaf_id, None)
            self._leaves = {}
            self._fetch_leaves(
                0,
                lambda ok: self._op(payload, key, on_result)
                if ok
                else on_result(None),
            )

        cc.request(payload, on_result, on_failure=failed)

    def _fetch_leaves(self, index: int, then: Callable[[bool], None]) -> None:
        if index >= 3 * len(self.leader_contacts):
            then(False)
            return
        contact = self.leader_contacts[index % len(self.leader_contacts)]

        def reply(value, sender) -> None:
            if isinstance(value, dict) and value.get("leaves"):
                self._leaves = {
                    leaf_id: tuple(info["contacts"])
                    for leaf_id, info in value["leaves"].items()
                    if info["contacts"]
                }
                then(bool(self._leaves))
            elif isinstance(value, tuple) and value and value[0] == "redirect":
                self._fetch_leaves(index + 1, then)
            else:
                self._fetch_leaves(index + 1, then)

        self.rpc.call(
            contact,
            GetHierarchyInfo(service=self.service),
            on_reply=reply,
            timeout=self.timeout,
            on_timeout=lambda: self._fetch_leaves(index + 1, then),
        )
