"""Data replication tools: replicated state machines over abcast.

The toolkit's "data replication" entry: updates are totally ordered
multicasts applied by every member, reads are local.  Virtual synchrony
makes the recipe sound: all members apply the same update sequence, view
changes deliver pending updates to all survivors first, and joiners
receive a state snapshot through the membership layer's state transfer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.membership.events import TOTAL, DeliveryEvent
from repro.membership.group import GroupMember
from repro.net.message import Address


@dataclass
class SMCommand:
    """A state-machine command, totally ordered within the group."""

    category = "sm-command"
    machine: str
    command: Any = None


class ReplicatedStateMachine:
    """Generic abcast-driven replicated state machine.

    ``apply_fn(state, command) -> result`` must be deterministic; every
    member applies the same command sequence to identical state.
    """

    def __init__(
        self,
        member: GroupMember,
        machine: str,
        initial_state: Callable[[], Any],
        apply_fn: Callable[[Any, Any], Any],
        snapshot_fn: Optional[Callable[[Any], Any]] = None,
        restore_fn: Optional[Callable[[Any], Any]] = None,
    ) -> None:
        self.member = member
        self.machine = machine
        self.state = initial_state()
        self._apply_fn = apply_fn
        self._snapshot_fn = snapshot_fn if snapshot_fn else lambda s: s
        self._restore_fn = restore_fn if restore_fn else lambda s: s
        self.commands_applied = 0
        self._listeners: List[Callable[[Any, Any], None]] = []
        member.add_delivery_listener(self._on_delivery)
        # State transfer for joiners (one machine per group may own the
        # transfer hooks; compose multiple machines with a dict if needed).
        if member.state_provider is None:
            member.state_provider = lambda: self._snapshot_fn(self.state)
        if member.state_receiver is None:
            member.state_receiver = self._receive_state

    def submit(self, command: Any) -> None:
        """Replicate ``command`` to the whole group (applied locally when
        its total-order position is known, like every other member)."""
        self.member.multicast(
            SMCommand(machine=self.machine, command=command), TOTAL
        )

    def add_listener(self, fn: Callable[[Any, Any], None]) -> None:
        """``fn(command, result)`` after each applied command."""
        self._listeners.append(fn)

    def _on_delivery(self, event: DeliveryEvent) -> None:
        payload = event.payload
        if not isinstance(payload, SMCommand) or payload.machine != self.machine:
            return
        result = self._apply_fn(self.state, payload.command)
        self.commands_applied += 1
        for listener in list(self._listeners):
            listener(payload.command, result)

    def _receive_state(self, snapshot: Any) -> None:
        self.state = self._restore_fn(snapshot)


class ReplicatedDict:
    """A replicated key-value table: local reads, abcast writes."""

    def __init__(self, member: GroupMember, name: str = "dict") -> None:
        self._machine = ReplicatedStateMachine(
            member,
            machine=name,
            initial_state=dict,
            apply_fn=self._apply,
            snapshot_fn=dict,
            restore_fn=dict,
        )

    @staticmethod
    def _apply(state: Dict, command: Tuple) -> Any:
        kind = command[0]
        if kind == "put":
            _, key, value = command
            state[key] = value
            return value
        if kind == "delete":
            return state.pop(command[1], None)
        if kind == "clear":
            state.clear()
            return None
        raise ValueError(f"unknown command {command!r}")

    # -- write (replicated) -----------------------------------------------------

    def put(self, key: Any, value: Any) -> None:
        self._machine.submit(("put", key, value))

    def delete(self, key: Any) -> None:
        self._machine.submit(("delete", key))

    def clear(self) -> None:
        self._machine.submit(("clear",))

    # -- read (local) -------------------------------------------------------------

    def get(self, key: Any, default: Any = None) -> Any:
        return self._machine.state.get(key, default)

    def snapshot(self) -> Dict:
        return dict(self._machine.state)

    def __len__(self) -> int:
        return len(self._machine.state)

    def __contains__(self, key: Any) -> bool:
        return key in self._machine.state

    @property
    def commands_applied(self) -> int:
        return self._machine.commands_applied

    def add_listener(self, fn: Callable[[Any, Any], None]) -> None:
        self._machine.add_listener(fn)


class ReplicatedCounter:
    """A replicated counter (e.g. inventory levels in the factory
    workload)."""

    def __init__(self, member: GroupMember, name: str = "counter") -> None:
        self._machine = ReplicatedStateMachine(
            member,
            machine=name,
            initial_state=lambda: {"value": 0},
            apply_fn=self._apply,
            snapshot_fn=dict,
            restore_fn=dict,
        )

    @staticmethod
    def _apply(state: Dict, command: Tuple) -> int:
        if command[0] == "add":
            state["value"] += command[1]
        elif command[0] == "set":
            state["value"] = command[1]
        else:
            raise ValueError(f"unknown command {command!r}")
        return state["value"]

    def add(self, delta: int) -> None:
        self._machine.submit(("add", delta))

    def set(self, value: int) -> None:
        self._machine.submit(("set", value))

    @property
    def value(self) -> int:
        return self._machine.state["value"]
