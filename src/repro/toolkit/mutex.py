"""Distributed mutual exclusion within a process group.

The toolkit's mutual-exclusion entry, built on total order: every acquire
and release is an abcast, so all members maintain an identical waiter
queue; the process at the head holds the lock.  Virtual synchrony supplies
failure handling for free — when a view change removes a member, every
survivor prunes it from the queue at the same point in the delivery
stream, so a crashed holder's lock passes to the next waiter consistently.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.membership.events import TOTAL, DeliveryEvent, ViewEvent
from repro.membership.group import GroupMember
from repro.net.message import Address


@dataclass
class MutexOp:
    category = "mutex-op"
    size_bytes = 48
    lock: str
    kind: str  # "acquire" | "release"
    who: Address = ""


class DistributedMutex:
    """One named lock shared by a group.  Attach one instance per member."""

    def __init__(self, member: GroupMember, lock: str = "lock") -> None:
        self.member = member
        self.lock = lock
        self._queue: List[Address] = []
        self._granted: Optional[Callable[[], None]] = None
        self._waiting = False
        self.acquisitions = 0
        member.add_delivery_listener(self._on_delivery)
        member.add_view_listener(self._on_view)

    # -- public --------------------------------------------------------------------

    @property
    def holder(self) -> Optional[Address]:
        return self._queue[0] if self._queue else None

    @property
    def held_by_me(self) -> bool:
        return self.holder == self.member.me

    @property
    def queue(self) -> List[Address]:
        return list(self._queue)

    def acquire(self, on_granted: Callable[[], None]) -> None:
        """Request the lock; ``on_granted`` fires when this process reaches
        the head of the replicated queue."""
        if self._waiting or self.held_by_me:
            raise RuntimeError(f"{self.member.me} already holds/awaits {self.lock}")
        self._waiting = True
        self._granted = on_granted
        self.member.multicast(
            MutexOp(lock=self.lock, kind="acquire", who=self.member.me), TOTAL
        )

    def release(self) -> None:
        if not self.held_by_me:
            raise RuntimeError(f"{self.member.me} does not hold {self.lock}")
        self.member.multicast(
            MutexOp(lock=self.lock, kind="release", who=self.member.me), TOTAL
        )

    # -- replicated queue ---------------------------------------------------------

    def _on_delivery(self, event: DeliveryEvent) -> None:
        payload = event.payload
        if not isinstance(payload, MutexOp) or payload.lock != self.lock:
            return
        if payload.kind == "acquire":
            if payload.who not in self._queue:
                self._queue.append(payload.who)
        elif payload.kind == "release":
            if self._queue and self._queue[0] == payload.who:
                self._queue.pop(0)
        self._maybe_grant()

    def _on_view(self, event: ViewEvent) -> None:
        """Prune departed members; every survivor does this at the same
        point in its delivery stream, so queues stay identical."""
        departed = set(event.departed)
        if departed:
            self._queue = [w for w in self._queue if w not in departed]
            self._maybe_grant()

    def _maybe_grant(self) -> None:
        if self.held_by_me and self._waiting:
            self._waiting = False
            self.acquisitions += 1
            granted, self._granted = self._granted, None
            if granted is not None:
                granted()
