"""Logical clocks: Lamport stamps, vector clocks, causal delivery buffer."""

from repro.clocks.causal_buffer import CausalBuffer
from repro.clocks.lamport import LamportClock, LamportStamp
from repro.clocks.vector import VectorClock

__all__ = ["CausalBuffer", "LamportClock", "LamportStamp", "VectorClock"]
