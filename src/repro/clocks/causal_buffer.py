"""Causal delivery buffer (Birman–Schiper–Stephenson discipline).

Holds received broadcasts until their causal predecessors have been
delivered.  A message m from sender q with vector timestamp VT(m) is
deliverable at a process whose delivered-vector is D when::

    VT(m)[q] == D[q] + 1                 (next message from q)
    VT(m)[k] <= D[k]   for all k != q    (all of q's context already seen)

Delivering m sets D := merge(D, VT(m)).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, List

from repro.clocks.vector import VectorClock


@dataclass
class _Held:
    sender: str
    stamp: VectorClock
    payload: Any


class CausalBuffer:
    """Reorders incoming vector-stamped messages into causal order."""

    def __init__(self) -> None:
        self._delivered = VectorClock.zero()
        self._held: List[_Held] = []

    @property
    def delivered_clock(self) -> VectorClock:
        return self._delivered

    @property
    def held_count(self) -> int:
        return len(self._held)

    def held_payloads(self) -> List[Any]:
        """Payloads received but not yet deliverable (arrival order)."""
        return [h.payload for h in self._held]

    def deliverable(self, sender: str, stamp: VectorClock) -> bool:
        if stamp.get(sender) != self._delivered.get(sender) + 1:
            return False
        return all(
            count <= self._delivered.get(site)
            for site, count in stamp.items()
            if site != sender
        )

    def add(self, sender: str, stamp: VectorClock, payload: Any) -> List[Any]:
        """Insert a received message; return the payloads (possibly several,
        possibly none) that become deliverable, in causal order."""
        self._held.append(_Held(sender, stamp, payload))
        return self._drain()

    def _drain(self) -> List[Any]:
        released: List[Any] = []
        progressed = True
        while progressed:
            progressed = False
            for index, held in enumerate(self._held):
                if self.deliverable(held.sender, held.stamp):
                    self._delivered = self._delivered.merged(held.stamp)
                    released.append(held.payload)
                    del self._held[index]
                    progressed = True
                    break
        return released

    def reset_to(self, clock: VectorClock, sites: Iterable[str]) -> List[Any]:
        """Restart causal tracking at a view change.

        The delivered vector is replaced by ``clock`` restricted to the new
        membership, and any held messages from departed senders are dropped
        (they were never deliverable; virtual synchrony handles their fate
        via the flush protocol, not here).  Returns dropped payloads for
        diagnostics.
        """
        keep = set(sites)
        dropped = [h.payload for h in self._held if h.sender not in keep]
        self._held = [h for h in self._held if h.sender in keep]
        self._delivered = clock.restricted(keep)
        return dropped
