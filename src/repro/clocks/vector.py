"""Vector clocks keyed by process address.

CBCAST tags each broadcast with the sender's vector timestamp; receivers
delay delivery until every causal predecessor has been delivered.  Keys are
addresses (not dense indices) so membership can change without renumbering.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, Mapping, Tuple


class VectorClock:
    """An immutable-by-convention mapping address -> event count."""

    __slots__ = ("_counts",)

    def __init__(self, counts: Mapping[str, int] = ()) -> None:
        self._counts: Dict[str, int] = {
            k: v for k, v in dict(counts).items() if v > 0
        }

    # -- construction ----------------------------------------------------------

    @classmethod
    def zero(cls) -> "VectorClock":
        return cls()

    def incremented(self, site: str) -> "VectorClock":
        counts = dict(self._counts)
        counts[site] = counts.get(site, 0) + 1
        return VectorClock(counts)

    def merged(self, other: "VectorClock") -> "VectorClock":
        """Componentwise max: the least upper bound of the two clocks."""
        counts = dict(self._counts)
        for site, count in other._counts.items():
            if count > counts.get(site, 0):
                counts[site] = count
        return VectorClock(counts)

    def restricted(self, sites: Iterable[str]) -> "VectorClock":
        """Projection onto a site subset (used at view changes)."""
        keep = set(sites)
        return VectorClock({s: c for s, c in self._counts.items() if s in keep})

    # -- queries ---------------------------------------------------------------

    def get(self, site: str) -> int:
        return self._counts.get(site, 0)

    def sites(self) -> Iterator[str]:
        return iter(self._counts)

    def items(self) -> Iterator[Tuple[str, int]]:
        return iter(self._counts.items())

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, VectorClock):
            return NotImplemented
        return self._counts == other._counts

    def __hash__(self) -> int:
        return hash(frozenset(self._counts.items()))

    def __le__(self, other: "VectorClock") -> bool:
        """Componentwise <=: 'happened before or equal'."""
        return all(count <= other.get(site) for site, count in self._counts.items())

    def __lt__(self, other: "VectorClock") -> bool:
        """Strictly happened-before."""
        return self <= other and self != other

    def concurrent_with(self, other: "VectorClock") -> bool:
        return not self <= other and not other <= self

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        inner = ", ".join(f"{s}:{c}" for s, c in sorted(self._counts.items()))
        return f"VC({inner})"
