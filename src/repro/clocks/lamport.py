"""Lamport logical clocks.

Used for tie-breaking and for generating totally ordered identifiers (e.g.
view ids) that respect causality.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import total_ordering


class LamportClock:
    """A scalar logical clock (Lamport 1978)."""

    def __init__(self, start: int = 0) -> None:
        if start < 0:
            raise ValueError("clock must start nonnegative")
        self._time = start

    @property
    def time(self) -> int:
        return self._time

    def tick(self) -> int:
        """Advance for a local or send event; returns the new time."""
        self._time += 1
        return self._time

    def observe(self, other_time: int) -> int:
        """Merge a received timestamp; returns the new local time."""
        self._time = max(self._time, other_time) + 1
        return self._time


@total_ordering
@dataclass(frozen=True)
class LamportStamp:
    """A (time, site) pair: a total order consistent with causality."""

    time: int
    site: str

    def __lt__(self, other: "LamportStamp") -> bool:
        if not isinstance(other, LamportStamp):
            return NotImplemented
        return (self.time, self.site) < (other.time, other.site)
