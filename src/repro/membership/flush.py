"""Coordinator-side flush protocol state.

A view change is driven by an *initiator* (the lowest-ranked member that
does not consider itself dead's suspects include it — normally rank 0).
The initiator:

1. multicasts ``Flush(target_seq, proposed)`` to every old-view member not
   suspected (members stop initiating multicasts and reply ``FlushOk`` with
   their unstable messages and abcast order knowledge);
2. if a target is suspected mid-flush, drops it from the proposal and
   re-sends ``Flush`` (same ``target_seq``);
3. when every remaining target has replied, merges the reports and hands
   the result to the membership layer, which builds and sends ``NewView``.

The merge produces: the union of unstable messages (so every survivor can
deliver the same old-view message set — virtual synchrony) and the final
total-order assignments (see :func:`repro.broadcast.abcast.
merge_flush_orders`).

This module is pure protocol state; the causal tracer's flush-start /
flush-timeout / view-install spans are emitted by the driving
``GroupMember`` in ``membership/group.py`` (see docs/tracing.md).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.broadcast.abcast import merge_flush_orders
from repro.membership.events import FlushOk, GroupData, MessageId
from repro.net.message import Address


class FlushController:
    """Tracks one in-progress view change at its initiator."""

    def __init__(
        self,
        target_seq: int,
        proposed: List[Address],
        targets: List[Address],
        joiners: List[Address],
    ) -> None:
        self.target_seq = target_seq
        self.proposed = list(proposed)
        self.targets: Set[Address] = set(targets)
        self.joiners = list(joiners)
        self.responses: Dict[Address, FlushOk] = {}
        self.started_at: Optional[float] = None
        self.attempt = 1

    # -- protocol events ---------------------------------------------------------

    def record_response(self, sender: Address, ok: FlushOk) -> None:
        if sender in self.targets and ok.target_seq == self.target_seq:
            self.responses[sender] = ok

    def drop_member(self, address: Address) -> bool:
        """Remove a freshly suspected member; True if it changed anything
        (caller should re-send Flush and bump ``attempt``)."""
        changed = False
        if address in self.targets:
            self.targets.discard(address)
            self.responses.pop(address, None)
            changed = True
        if address in self.proposed:
            self.proposed.remove(address)
            changed = True
        if address in self.joiners:
            self.joiners.remove(address)
            changed = True
        return changed

    @property
    def complete(self) -> bool:
        return self.targets <= set(self.responses)

    def missing(self) -> Set[Address]:
        return self.targets - set(self.responses)

    # -- merge --------------------------------------------------------------------

    def merged_unstable(self) -> List[GroupData]:
        """Union of all reported unstable messages, deduplicated by id."""
        seen: Set[Tuple[int, MessageId]] = set()
        merged: List[GroupData] = []
        for ok in self.responses.values():
            for data in ok.unstable:
                key = (data.view_seq, data.message_id)
                if key not in seen:
                    seen.add(key)
                    merged.append(data)
        merged.sort(key=lambda d: (d.sender, d.sender_seq))
        return merged

    def merged_orders(self) -> Tuple[List[Tuple[int, MessageId]], int]:
        unstable_total = [
            d for d in self.merged_unstable() if d.ordering == "total"
        ]
        reports = [
            (ok.order_known, ok.next_global_seq) for ok in self.responses.values()
        ]
        return merge_flush_orders(reports, unstable_total)
