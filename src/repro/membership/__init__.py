"""View-synchronous flat process groups (the classical ISIS substrate)."""

from repro.membership.events import (
    CAUSAL,
    DeliveryEvent,
    FIFO,
    Flush,
    FlushOk,
    GroupData,
    JoinRequest,
    LeaveRequest,
    NewView,
    ORDERINGS,
    SetOrder,
    StabilityGossip,
    SuspectReport,
    TOTAL,
    ViewEvent,
)
from repro.membership.flush import FlushController
from repro.membership.group import GroupMember, GroupRuntime, NotMemberError
from repro.membership.service import GroupNode, build_group, build_nodes
from repro.membership.view import GroupView, ViewId

__all__ = [
    "CAUSAL",
    "DeliveryEvent",
    "FIFO",
    "Flush",
    "FlushController",
    "FlushOk",
    "GroupData",
    "GroupMember",
    "GroupNode",
    "GroupRuntime",
    "GroupView",
    "JoinRequest",
    "LeaveRequest",
    "NewView",
    "NotMemberError",
    "ORDERINGS",
    "SetOrder",
    "StabilityGossip",
    "SuspectReport",
    "TOTAL",
    "ViewEvent",
    "ViewId",
    "build_group",
    "build_nodes",
]
