"""Convenience constructors for group-based simulations.

Tests, benchmarks and examples all need the same scaffolding: an
environment, a set of processes each running a :class:`~repro.membership.
group.GroupRuntime`, and a group statically bootstrapped across them.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

from repro.failure.detector import FailureDetector
from repro.membership.group import GroupMember, GroupRuntime
from repro.proc.env import Environment
from repro.proc.process import Process


class GroupNode(Process):
    """A workstation process running the group-communication stack."""

    def __init__(
        self,
        env: Environment,
        address: str,
        detector_factory: Optional[Callable[["GroupNode"], FailureDetector]] = None,
        gossip_interval: Optional[float] = 1.0,
        flush_timeout: float = 1.0,
        rto: float = 0.05,
        primary_partition: bool = False,
    ) -> None:
        super().__init__(env, address)
        detector = detector_factory(self) if detector_factory else None
        self.runtime = GroupRuntime(
            self,
            detector=detector,
            gossip_interval=gossip_interval,
            flush_timeout=flush_timeout,
            rto=rto,
            primary_partition=primary_partition,
        )


def build_group(
    env: Environment,
    name: str,
    size: int,
    prefix: Optional[str] = None,
    **node_kwargs,
) -> Tuple[List[GroupNode], List[GroupMember]]:
    """Create ``size`` nodes and statically bootstrap group ``name`` on them.

    Returns (nodes, members) in rank order: nodes[0] hosts the initial
    coordinator.
    """
    prefix = prefix if prefix is not None else name
    addresses = [f"{prefix}-{i}" for i in range(size)]
    nodes = [GroupNode(env, address, **node_kwargs) for address in addresses]
    members = [node.runtime.create_group(name, addresses) for node in nodes]
    return nodes, members


def build_nodes(
    env: Environment, addresses: List[str], **node_kwargs
) -> List[GroupNode]:
    """Create bare group-capable nodes (no group yet)."""
    return [GroupNode(env, address, **node_kwargs) for address in addresses]
