"""Group views.

A *view* is the fundamental data structure representing a group (paper §3):
an ordered membership list plus a sequence number.  Order matters — a
member's *rank* is its index, rank 0 is the coordinator/sequencer, and
succession on failure walks down the ranks.  Views of a group form a single
totally ordered sequence (seq 1, 2, ...), which is what makes virtual
synchrony meaningful: "message m was delivered in view (g, 7)" is an
unambiguous statement every member agrees on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Tuple

from repro.net.message import Address


@dataclass(frozen=True)
class ViewId:
    """Identifies one view of one group."""

    group: str
    seq: int

    def next(self) -> "ViewId":
        return ViewId(self.group, self.seq + 1)


@dataclass(frozen=True)
class GroupView:
    """An immutable membership snapshot: (group, seq, ordered members)."""

    group: str
    seq: int
    members: Tuple[Address, ...]

    def __post_init__(self) -> None:
        if len(set(self.members)) != len(self.members):
            raise ValueError(f"duplicate members in view: {self.members}")
        if self.seq < 1:
            raise ValueError("view seq starts at 1")

    @property
    def view_id(self) -> ViewId:
        return ViewId(self.group, self.seq)

    @property
    def size(self) -> int:
        return len(self.members)

    @property
    def coordinator(self) -> Address:
        if not self.members:
            raise ValueError("empty view has no coordinator")
        return self.members[0]

    def rank_of(self, address: Address) -> int:
        """Rank (0 = coordinator); raises ValueError if not a member."""
        return self.members.index(address)

    def contains(self, address: Address) -> bool:
        return address in self.members

    def others(self, address: Address) -> Tuple[Address, ...]:
        return tuple(m for m in self.members if m != address)

    def successor(
        self,
        add: Iterable[Address] = (),
        remove: Iterable[Address] = (),
    ) -> "GroupView":
        """The next view: survivors keep their relative order (so ranks only
        ever improve), joiners append at the end (lowest seniority)."""
        removed = set(remove)
        members = [m for m in self.members if m not in removed]
        for joiner in add:
            if joiner not in members:
                members.append(joiner)
        return GroupView(self.group, self.seq + 1, tuple(members))

    @classmethod
    def initial(cls, group: str, members: Iterable[Address]) -> "GroupView":
        return cls(group, 1, tuple(members))
