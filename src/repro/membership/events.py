"""Wire messages and application-visible events for group membership.

All group-protocol payloads carry the group name so a single process can
belong to many groups (a per-process :class:`~repro.membership.group.
GroupRuntime` demultiplexes).  Data messages are small dataclasses sent over
the reliable FIFO transport; their ``category`` strings are what network
statistics bucket on, and what the benchmarks filter by.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.clocks.vector import VectorClock
from repro.membership.view import GroupView
from repro.net.message import Address, DEFAULT_PAYLOAD_BYTES

# Orderings a multicast can request.  FIFO is the paper's fbcast, CAUSAL is
# cbcast, TOTAL is abcast.
FIFO = "fifo"
CAUSAL = "causal"
TOTAL = "total"
ORDERINGS = (FIFO, CAUSAL, TOTAL)

MessageId = Tuple[Address, int]
"""(original sender, per-sender-per-view sequence number)."""


@dataclass
class GroupData:
    """An application multicast within one view of one group.

    When gossip piggybacking is on (docs/comms.md), outgoing data can
    additionally carry the sender's stability watermarks in ``gossip`` —
    the same per-sender delivered map a standalone
    :class:`StabilityGossip` would have sent, added to the frame size.
    """

    category = "group-data"
    group: str
    view_seq: int
    sender: Address
    sender_seq: int
    ordering: str
    payload: Any
    stamp: Optional[VectorClock] = None  # set for CAUSAL
    gossip: Optional[Dict[Address, int]] = None

    @property
    def message_id(self) -> MessageId:
        return (self.sender, self.sender_seq)

    @property
    def size_bytes(self) -> int:
        size = DEFAULT_PAYLOAD_BYTES
        if self.gossip:
            size += 12 * len(self.gossip)  # riding watermark entries
        return size


@dataclass
class SetOrder:
    """abcast sequencer decision: global delivery positions for messages."""

    category = "group-setorder"
    size_bytes = 48
    group: str
    view_seq: int
    orders: List[Tuple[int, MessageId]] = field(default_factory=list)


@dataclass
class StabilityGossip:
    """Periodic exchange of per-sender delivered watermarks."""

    category = "group-stability"
    size_bytes = 48
    group: str
    view_seq: int
    delivered: Dict[Address, int] = field(default_factory=dict)


@dataclass
class Flush:
    """Coordinator's view-change announcement: stop sending, report
    unstable messages."""

    category = "group-flush"
    group: str
    target_seq: int
    initiator: Address
    proposed: Tuple[Address, ...] = ()


@dataclass
class FlushOk:
    """A member's reply: everything it has that might not be everywhere."""

    category = "group-flush-ok"
    group: str
    target_seq: int
    unstable: List[GroupData] = field(default_factory=list)
    order_known: List[Tuple[int, MessageId]] = field(default_factory=list)
    next_global_seq: int = 1


@dataclass
class NewView:
    """Installs the next view, carrying the reconciled unstable messages
    (delivered in the *old* view before the switch — virtual synchrony) and
    the final total-order assignments for them."""

    category = "group-new-view"
    view: GroupView = None  # type: ignore[assignment]
    unstable: List[GroupData] = field(default_factory=list)
    orders: List[Tuple[int, MessageId]] = field(default_factory=list)
    next_global_seq: int = 1
    app_state: Any = None  # state-transfer snapshot for joiners


@dataclass
class JoinRequest:
    """RPC body: ask a group member to add the caller (routed to the
    coordinator)."""

    group: str
    joiner: Address


@dataclass
class LeaveRequest:
    """RPC body: graceful departure."""

    group: str
    leaver: Address


@dataclass
class SuspectReport:
    """Tell the view-change initiator that a member looks dead."""

    category = "group-suspect"
    size_bytes = 32
    group: str
    suspect: Address


# -- application-visible events (not wire messages) --------------------------------


@dataclass(frozen=True)
class ViewEvent:
    """Delivered to the application when a new view is installed.

    ``joined``/``departed`` are relative to the previous view at this
    member (empty for the first view it sees).
    """

    view: GroupView
    joined: Tuple[Address, ...]
    departed: Tuple[Address, ...]


@dataclass(frozen=True)
class DeliveryEvent:
    """An application multicast delivered to the application layer."""

    group: str
    view_seq: int
    sender: Address
    payload: Any
    ordering: str
