"""Virtually synchronous process groups ("small groups" in the paper, §2).

This is the re-implementation of the core ISIS abstraction: a process
group with totally ordered membership *views*, ordered multicast within a
view (fifo / causal / total), and the virtual-synchrony guarantee that all
members surviving from view ``i`` to view ``i+1`` deliver exactly the same
set of view-``i`` messages before installing view ``i+1``.

Layering at each process::

    application / toolkit
        GroupMember (one per group) ---- GroupRuntime (one per process)
        ordering engines + stability       |  routes payloads by group
    ReliableTransport (FIFO channels)   ---+
    Network (lossy datagrams)

View changes use the coordinator-driven flush of :mod:`repro.membership.
flush`.  Failures come from a pluggable failure detector; suspicion is
converted to membership exclusion, the classical ISIS fail-stop
conversion.

This module is deliberately the *flat* implementation whose costs grow
with group size — every member watches every other, stability gossip is
all-to-all, and every view change touches everyone.  The paper's
contribution (bounding these costs with hierarchy) is built on top in
:mod:`repro.core`.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Set, Tuple

from repro.broadcast.abcast import TotalEngine
from repro.broadcast.cbcast import CausalEngine, causal_sort_key
from repro.broadcast.fbcast import FifoEngine
from repro.broadcast.stability import StabilityTracker
from repro.failure.detector import FailureDetector, OracleDetector
from repro.membership.events import (
    CAUSAL,
    DeliveryEvent,
    FIFO,
    Flush,
    FlushOk,
    GroupData,
    JoinRequest,
    LeaveRequest,
    MessageId,
    NewView,
    ORDERINGS,
    SetOrder,
    StabilityGossip,
    SuspectReport,
    TOTAL,
    ViewEvent,
)
from repro.membership.flush import FlushController
from repro.membership.view import GroupView
from repro.net.message import Address
from repro.proc.process import Process
from repro.proc.rpc import Rpc, RpcError
from repro.transport.reliable import ReliableTransport

DeliveryListener = Callable[[DeliveryEvent], None]
ViewListener = Callable[[ViewEvent], None]


class NotMemberError(RuntimeError):
    """Operation requires an installed view."""


class GroupMember:
    """One process's endpoint in one group.  Created via GroupRuntime."""

    def __init__(self, runtime: "GroupRuntime", group: str) -> None:
        self.runtime = runtime
        self.group = group
        self.me: Address = runtime.process.address
        self.view: Optional[GroupView] = None
        self.joining = False
        self.left = False
        self.excluded = False

        self._engines: Dict[str, Any] = {}
        self._stability: Optional[StabilityTracker] = None
        self._sender_seq = 0
        self._delivered: Dict[int, Set[MessageId]] = {}
        self._blocked = False
        self._outbox: List[Tuple[Any, str]] = []
        self._future: List[GroupData] = []
        self._future_orders: List[SetOrder] = []

        self._suspects: Set[Address] = set()
        self._pending_joins: List[Address] = []
        self._pending_leaves: Set[Address] = set()
        self._leave_requested = False
        self._flush: Optional[FlushController] = None
        self._flush_timer = None
        self._join_contact: Optional[Address] = None
        self._join_timer = None

        self._last_gossip_at = float("-inf")

        self._delivery_listeners: List[DeliveryListener] = []
        self._view_listeners: List[ViewListener] = []
        self.state_provider: Optional[Callable[[], Any]] = None
        self.state_receiver: Optional[Callable[[Any], None]] = None

        self.view_changes = 0
        self.deliveries = 0

    # ------------------------------------------------------------------ public

    def add_delivery_listener(self, fn: DeliveryListener) -> None:
        self._delivery_listeners.append(fn)

    def add_view_listener(self, fn: ViewListener) -> None:
        self._view_listeners.append(fn)

    @property
    def is_member(self) -> bool:
        return self.view is not None and not self.left and not self.excluded

    @property
    def members(self) -> Tuple[Address, ...]:
        if self.view is None:
            return ()
        return self.view.members

    def acting_coordinator(self) -> Optional[Address]:
        """Lowest-ranked view member this process does not suspect."""
        if self.view is None:
            return None
        for member in self.view.members:
            if member not in self._suspects:
                return member
        return None

    def multicast(self, payload: Any, ordering: str = FIFO) -> None:
        """Multicast ``payload`` to the group with the given ordering.

        During a view change (flush) the send is queued and goes out in
        the next view — exactly ISIS's behaviour of blocking new
        multicasts while a flush is in progress.
        """
        if ordering not in ORDERINGS:
            raise ValueError(f"unknown ordering {ordering!r}")
        if not self.is_member:
            raise NotMemberError(f"{self.me} is not a member of {self.group}")
        if self._blocked:
            self._outbox.append((payload, ordering))
            return
        self._send_data(payload, ordering)

    def leave(self) -> None:
        """Request a graceful departure via the acting coordinator."""
        if not self.is_member:
            raise NotMemberError(f"{self.me} is not a member of {self.group}")
        self._leave_requested = True
        coordinator = self.acting_coordinator()
        if coordinator == self.me:
            self._pending_leaves.add(self.me)
            self._maybe_start_view_change()
        else:
            self.runtime.rpc.call(
                coordinator,
                LeaveRequest(group=self.group, leaver=self.me),
                on_reply=lambda value, sender: None,
                timeout=2.0,
                on_timeout=self._retry_leave,
            )

    def _retry_leave(self) -> None:
        if self.is_member and self._leave_requested:
            self.leave()

    def mark_departing(self) -> None:
        """Declare that this member expects to be removed by the
        coordinator (e.g. a hierarchy split); its exclusion from the next
        view then finalises as a graceful departure, not a fault."""
        self._leave_requested = True

    def request_removal(self, addresses) -> None:
        """Coordinator-side batch removal: queue ``addresses`` for the next
        view change (used by hierarchy splits)."""
        for address in addresses:
            if self.view is not None and self.view.contains(address):
                self._pending_leaves.add(address)
        self._maybe_start_view_change()

    # ------------------------------------------------------- lifecycle (internal)

    def _bootstrap(self, members: Tuple[Address, ...]) -> None:
        """Install the initial view directly (static group construction)."""
        self._install(
            NewView(view=GroupView.initial(self.group, members)),
            deliver_flushed=False,
        )

    def _start_join(self, contact: Address, retry: float) -> None:
        self.joining = True
        self._join_contact = contact
        self._send_join(contact, retry)

    def _send_join(self, contact: Address, retry: float) -> None:
        if not self.joining or not self.runtime.process.alive:
            return
        self.runtime.rpc.call(
            contact,
            JoinRequest(group=self.group, joiner=self.me),
            on_reply=lambda value, sender: self._join_reply(value, retry),
            timeout=retry,
            on_timeout=lambda: self._send_join(self._join_contact, retry),
        )

    def _join_reply(self, value: Any, retry: float) -> None:
        if not self.joining:
            return
        if isinstance(value, tuple) and value and value[0] == "redirect":
            self._join_contact = value[1]
            self._send_join(self._join_contact, retry)
        # "pending": NewView will arrive; the retry timer in _send_join's
        # timeout path has been satisfied by this reply, so arm another
        # guard in case the coordinator dies before installing us.
        elif isinstance(value, tuple) and value and value[0] == "pending":
            self._join_timer = self.runtime.process.set_timer(
                4 * retry, lambda: self._send_join(self._join_contact, retry)
            )
        elif value is None:
            # Contact answered but has no such group (yet) — e.g. a leaf
            # that is still being created.  Back off and retry.
            self._join_timer = self.runtime.process.set_timer(
                retry, lambda: self._send_join(self._join_contact, retry)
            )

    # ------------------------------------------------------------- data plane

    def _send_data(self, payload: Any, ordering: str) -> None:
        view = self.view
        assert view is not None
        self._sender_seq += 1
        data = GroupData(
            group=self.group,
            view_seq=view.seq,
            sender=self.me,
            sender_seq=self._sender_seq,
            ordering=ordering,
            payload=payload,
        )
        engine = self._engines[ordering]
        engine.stamp_outgoing(data)
        self._stability.record(data)
        others = view.others(self.me)
        if others:
            runtime = self.runtime
            if runtime.gossip_piggyback:
                now = runtime.process.env.now
                # Rate-limited: one watermark ride per half gossip
                # interval keeps steady-state data traffic from carrying
                # (and re-carrying) identical maps.
                if now - self._last_gossip_at >= runtime.gossip_interval * 0.5:
                    data.gossip = self._stability.watermarks()
                    self._last_gossip_at = now
                    runtime.process.env.network.stats.record_piggyback(
                        "gossip", len(others)
                    )
            runtime.transport.send_many(others, data)
        if ordering in (FIFO, CAUSAL):
            # ISIS delivers a process's own fbcast/cbcast locally at send.
            self._deliver(data)
        else:
            ready = engine.on_receive(data)
            self._sequence_if_needed(data, engine)
            for each in self._engine_ready(ready, engine):
                self._deliver(each)

    def _sequence_if_needed(self, data: GroupData, engine: TotalEngine) -> None:
        """At the sequencer: assign and publish the global order."""
        set_order = engine.assign_order(data)
        if set_order is None:
            return
        others = self.view.others(self.me)
        if others:
            self.runtime.transport.send_many(others, set_order)
        for each in engine.on_set_order(set_order):
            self._deliver(each)

    def _engine_ready(self, first: List[GroupData], engine) -> List[GroupData]:
        return first

    def _on_data(self, data: GroupData, sender: Address) -> None:
        if self.left or self.excluded:
            return
        if self.view is None:
            self._future.append(data)  # joining: view will arrive
            return
        if data.view_seq < self.view.seq:
            return  # old view: reconciled by that view's flush
        if data.view_seq > self.view.seq:
            self._future.append(data)
            return
        if data.gossip is not None and self._stability is not None:
            # Watermarks riding on the data (docs/comms.md) are merged
            # exactly as a standalone gossip from the sender would be.
            self._stability.on_gossip(sender, data.gossip)
        if data.message_id in self._delivered[self.view.seq]:
            return
        self._stability.record(data)
        engine = self._engines[data.ordering]
        ready = engine.on_receive(data)
        if data.ordering == TOTAL:
            self._sequence_if_needed(data, engine)
        for each in ready:
            self._deliver(each)

    def _on_set_order(self, set_order: SetOrder, sender: Address) -> None:
        if not self.is_member or self.view is None:
            return
        if set_order.view_seq < self.view.seq:
            return
        if set_order.view_seq > self.view.seq:
            self._future_orders.append(set_order)
            return
        for each in self._engines[TOTAL].on_set_order(set_order):
            self._deliver(each)

    def _on_gossip(self, gossip: StabilityGossip, sender: Address) -> None:
        if self.view is not None and gossip.view_seq == self.view.seq:
            if self._stability is not None:
                self._stability.on_gossip(sender, gossip.delivered)

    def _gossip_tick(self) -> None:
        if not self.is_member or self._blocked or self.view is None:
            return
        others = self.view.others(self.me)
        if not others:
            return
        runtime = self.runtime
        if runtime.gossip_piggyback:
            # Idle fallback only: skip the standalone round if outgoing
            # data carried our watermarks recently.
            now = runtime.process.env.now
            if now - self._last_gossip_at < runtime.gossip_interval * 0.5:
                return
            self._last_gossip_at = now
        self.runtime.transport.send_many(
            others,
            StabilityGossip(
                group=self.group,
                view_seq=self.view.seq,
                delivered=self._stability.watermarks(),
            ),
        )

    def _deliver(self, data: GroupData) -> None:
        delivered = self._delivered[data.view_seq] if data.view_seq in self._delivered else None
        if delivered is None:
            return
        if data.message_id in delivered:
            return
        delivered.add(data.message_id)
        self.deliveries += 1
        event = DeliveryEvent(
            group=self.group,
            view_seq=data.view_seq,
            sender=data.sender,
            payload=data.payload,
            ordering=data.ordering,
        )
        for listener in list(self._delivery_listeners):
            listener(event)

    # --------------------------------------------------------- membership plane

    def _on_suspect(self, address: Address) -> None:
        if self.view is None or not self.view.contains(address):
            return
        if address == self.me or address in self._suspects:
            return
        self._suspects.add(address)
        trace = self.runtime.process.env.network.trace
        if trace is not None:
            trace.local(
                "suspect", category="membership", process=self.me,
                group=self.group, suspect=address,
            )
        if self._flush is not None:
            # Mid-flush failure: drop it from the proposal and re-flush.
            if self._flush.drop_member(address):
                self._flush.attempt += 1
                self._broadcast_flush()
                self._check_flush_complete()
            return
        coordinator = self.acting_coordinator()
        if coordinator == self.me:
            self._maybe_start_view_change()
        elif coordinator is not None:
            self.runtime.transport.send(
                coordinator, SuspectReport(group=self.group, suspect=address)
            )

    def _on_suspect_report(self, report: SuspectReport, sender: Address) -> None:
        if self.view is not None and self.view.contains(report.suspect):
            self._on_suspect(report.suspect)

    def _handle_join_request(self, request: JoinRequest, sender: Address) -> Any:
        if not self.is_member:
            raise RpcError(f"{self.me} not in group {request.group}")
        coordinator = self.acting_coordinator()
        if coordinator != self.me:
            return ("redirect", coordinator)
        if self.view.contains(request.joiner):
            return ("member",)
        if request.joiner not in self._pending_joins:
            self._pending_joins.append(request.joiner)
        self._maybe_start_view_change()
        return ("pending",)

    def _handle_leave_request(self, request: LeaveRequest, sender: Address) -> Any:
        if not self.is_member:
            raise RpcError(f"{self.me} not in group {request.group}")
        coordinator = self.acting_coordinator()
        if coordinator != self.me:
            return ("redirect", coordinator)
        if self.view.contains(request.leaver):
            self._pending_leaves.add(request.leaver)
            self._maybe_start_view_change()
        return ("pending",)

    def _maybe_start_view_change(self) -> None:
        if self.view is None or self._flush is not None or not self.is_member:
            return
        if self.acting_coordinator() != self.me:
            return
        removes = [
            m
            for m in self.view.members
            if m in self._suspects or m in self._pending_leaves
        ]
        adds = [
            j
            for j in self._pending_joins
            if not self.view.contains(j) and j not in self._suspects
        ]
        if not removes and not adds:
            return
        if not self._quorum_holds(removes):
            return  # primary-partition rule: the minority side stalls
        proposed = list(self.view.successor(add=adds, remove=removes).members)
        targets = [m for m in self.view.members if m not in self._suspects]
        self._flush = FlushController(
            target_seq=self.view.seq + 1,
            proposed=proposed,
            targets=targets,
            joiners=adds,
        )
        self._flush.started_at = self.runtime.process.env.now
        trace = self.runtime.process.env.network.trace
        if trace is not None:
            trace.local(
                "flush-start", category="membership", process=self.me,
                group=self.group, target_seq=self._flush.target_seq,
                proposed=len(proposed),
            )
        self._broadcast_flush()
        self._arm_flush_timer()
        self._check_flush_complete()

    def _quorum_holds(self, removes) -> bool:
        """Primary-partition check (paper §5, "coping with network
        partitions"): a view change may only proceed when a strict
        majority of the current view survives into the next one.  In a
        partition, heartbeat detectors make each island suspect the
        other; only the majority island can pass this check, so exactly
        one partition continues — the minority stalls instead of forming
        a divergent view (no split brain)."""
        if not self.runtime.primary_partition:
            return True
        survivors = self.view.size - len(removes)
        return 2 * survivors > self.view.size

    def _broadcast_flush(self) -> None:
        flush = self._flush
        assert flush is not None and self.view is not None
        message = Flush(
            group=self.group,
            target_seq=flush.target_seq,
            initiator=self.me,
            proposed=tuple(flush.proposed),
        )
        others = [t for t in flush.targets if t != self.me]
        if others:
            self.runtime.transport.send_many(others, message)
        if self.me in flush.targets:
            self._blocked = True
            flush.record_response(self.me, self._make_flush_ok(flush.target_seq))

    def _arm_flush_timer(self) -> None:
        if self._flush_timer is not None:
            self._flush_timer.cancel()
        self._flush_timer = self.runtime.process.set_timer(
            self.runtime.flush_timeout, self._flush_timeout_fired
        )

    def _flush_timeout_fired(self) -> None:
        if self._flush is None:
            return
        missing = list(self._flush.missing())
        if not missing:
            return
        trace = self.runtime.process.env.network.trace
        if trace is not None:
            trace.local(
                "flush-timeout", category="membership", process=self.me,
                group=self.group, missing=len(missing),
            )
        # Unresponsive members are treated as failed (fail-stop conversion).
        for address in missing:
            self._suspects.add(address)
            self._flush.drop_member(address)
        self._flush.attempt += 1
        self._broadcast_flush()
        self._arm_flush_timer()
        self._check_flush_complete()

    def _make_flush_ok(self, target_seq: int) -> FlushOk:
        total_engine: TotalEngine = self._engines[TOTAL]
        return FlushOk(
            group=self.group,
            target_seq=target_seq,
            unstable=self._stability.unstable(),
            order_known=total_engine.known_orders(),
            next_global_seq=total_engine.next_global_seq,
        )

    def _on_flush(self, flush: Flush, sender: Address) -> None:
        if self.left or self.excluded or self.view is None:
            return
        if flush.target_seq <= self.view.seq:
            return  # stale
        # Block new multicasts and report unstable state to the initiator.
        self._blocked = True
        self.runtime.transport.send(
            flush.initiator, self._make_flush_ok(flush.target_seq)
        )

    def _on_flush_ok(self, ok: FlushOk, sender: Address) -> None:
        if self._flush is None or ok.target_seq != self._flush.target_seq:
            return
        self._flush.record_response(sender, ok)
        self._check_flush_complete()

    def _check_flush_complete(self) -> None:
        flush = self._flush
        if flush is None or not flush.complete:
            return
        self._flush = None
        if self._flush_timer is not None:
            self._flush_timer.cancel()
            self._flush_timer = None
        if not flush.proposed:
            return  # everyone is gone; nothing to install
        if self.runtime.primary_partition and self.view is not None:
            old_survivors = [
                m for m in flush.proposed if self.view.contains(m)
            ]
            if 2 * len(old_survivors) <= self.view.size:
                # Mid-flush drops took us below quorum: abandon the view
                # change rather than install a minority view.
                self._blocked = False
                return
        unstable = flush.merged_unstable()
        orders, next_global_seq = flush.merged_orders()
        app_state = None
        if flush.joiners and self.state_provider is not None:
            app_state = self.state_provider()
        new_view = GroupView(self.group, flush.target_seq, tuple(flush.proposed))
        message = NewView(
            view=new_view,
            unstable=unstable,
            orders=orders,
            next_global_seq=next_global_seq,
            app_state=app_state,
        )
        recipients = set(new_view.members) | set(flush.targets)
        recipients.discard(self.me)
        if recipients:
            self.runtime.transport.send_many(sorted(recipients), message)
        # Excluded old-view members are told too, but best-effort (one
        # unreliable datagram): a falsely suspected, still-live process
        # learns of its exclusion and can rejoin, while a genuinely dead
        # one costs a single dropped packet instead of a retransmission
        # stream that would never be acknowledged.
        if self.view is not None:
            excluded = set(self.view.members) - recipients - {self.me}
            for address in sorted(excluded):
                self.runtime.process.send(address, message)
        self._on_new_view(message, self.me)

    def _on_new_view(self, message: NewView, sender: Address) -> None:
        if self.left:
            return
        new_view = message.view
        if self.view is not None and new_view.seq <= self.view.seq:
            return
        was_previous_member = (
            self.view is not None
            and self.view.contains(self.me)
            and new_view.seq == self.view.seq + 1
        )
        if not new_view.contains(self.me):
            if self.view is None:
                # Still joining: a view that predates our admission (e.g.
                # a stale retransmission from before a recovery) is not an
                # exclusion — our own admission view is still coming.
                return
            # Graceful departure or exclusion by false suspicion.
            if was_previous_member:
                self._deliver_flush_set(message)
            if self._leave_requested:
                self.left = True
            else:
                self.excluded = True
            self._teardown_watches()
            self._emit_view_event(new_view, departed_self=True)
            return
        if was_previous_member:
            self._deliver_flush_set(message)
        # Being in the new view re-admits us even if an earlier view
        # excluded this member (false suspicion followed by a rejoin).
        self.excluded = False
        self._install(message, deliver_flushed=False)

    def _deliver_flush_set(self, message: NewView) -> None:
        """Deliver the reconciled old-view messages (virtual synchrony)."""
        fifo = [d for d in message.unstable if d.ordering == FIFO]
        causal = [d for d in message.unstable if d.ordering == CAUSAL]
        total = {d.message_id: d for d in message.unstable if d.ordering == TOTAL}
        for data in sorted(fifo, key=lambda d: (d.sender, d.sender_seq)):
            self._deliver(data)
        for data in sorted(causal, key=causal_sort_key):
            self._deliver(data)
        engine: Optional[TotalEngine] = self._engines.get(TOTAL)
        if engine is not None:
            for held in engine.held():
                total.setdefault(held.message_id, held)
        for _global_seq, message_id in message.orders:
            data = total.get(message_id)
            if data is not None:
                self._deliver(data)

    def _install(self, message: NewView, deliver_flushed: bool) -> None:
        old_view = self.view
        new_view = message.view
        trace = self.runtime.process.env.network.trace
        if trace is not None:
            trace.local(
                "view-install", category="membership", process=self.me,
                group=self.group, seq=new_view.seq, size=new_view.size,
            )
        self.view = new_view
        self.view_changes += 1
        self._sender_seq = 0
        self._delivered[new_view.seq] = set()
        for seq in [s for s in self._delivered if s < new_view.seq - 1]:
            del self._delivered[seq]
        self._engines = {
            FIFO: FifoEngine(new_view, self.me),
            CAUSAL: CausalEngine(new_view, self.me),
            TOTAL: TotalEngine(new_view, self.me, message.next_global_seq),
        }
        for engine in self._engines.values():
            engine.network = self.runtime.process.env.network
        self._stability = StabilityTracker(self.me, new_view.members)
        self._blocked = False
        self._flush = None
        if self._flush_timer is not None:
            self._flush_timer.cancel()
            self._flush_timer = None
        if self.joining:
            self.joining = False
            if self._join_timer is not None:
                self._join_timer.cancel()
                self._join_timer = None
            if self.state_receiver is not None and message.app_state is not None:
                self.state_receiver(message.app_state)

        # Failure detection follows the view.
        old_members = set(old_view.members) if old_view else set()
        for departed in sorted(old_members - set(new_view.members)):
            self.runtime.unwatch(departed, self.group)
        for member in new_view.members:
            if member != self.me:
                self.runtime.watch(member, self.group)

        # Clear satisfied/void membership intentions.
        self._suspects &= set(new_view.members)
        self._pending_joins = [
            j for j in self._pending_joins if not new_view.contains(j)
        ]
        self._pending_leaves &= set(new_view.members)

        self._emit_view_event(new_view, departed_self=False, old_view=old_view)

        # Replay buffered traffic for this view, then queued sends.
        future, self._future = self._future, []
        for data in future:
            self._on_data(data, data.sender)
        future_orders, self._future_orders = self._future_orders, []
        for set_order in future_orders:
            self._on_set_order(set_order, new_view.coordinator)
        outbox, self._outbox = self._outbox, []
        for payload, ordering in outbox:
            if self.is_member:
                self._send_data(payload, ordering)

        self._maybe_start_view_change()

    def _emit_view_event(
        self,
        new_view: GroupView,
        departed_self: bool,
        old_view: Optional[GroupView] = None,
    ) -> None:
        old_members = set(old_view.members) if old_view else set()
        joined = tuple(m for m in new_view.members if m not in old_members)
        departed = tuple(m for m in old_members if not new_view.contains(m))
        if departed_self:
            joined = ()
            departed = (self.me,)
        event = ViewEvent(view=new_view, joined=joined, departed=departed)
        for listener in list(self._view_listeners):
            listener(event)

    def _teardown_watches(self) -> None:
        if self.view is not None:
            for member in self.view.members:
                if member != self.me:
                    self.runtime.unwatch(member, self.group)


class GroupRuntime:
    """Per-process hub: transport, RPC, failure detection and group demux.

    Create exactly one per process; obtain group endpoints through
    :meth:`create_group` (static bootstrap) or :meth:`join_group`.
    """

    def __init__(
        self,
        process: Process,
        detector: Optional[FailureDetector] = None,
        gossip_interval: Optional[float] = 1.0,
        flush_timeout: float = 1.0,
        rto: float = 0.05,
        primary_partition: bool = False,
    ) -> None:
        self.process = process
        self.transport = ReliableTransport(process, rto=rto)
        self.rpc = Rpc(process)
        self.flush_timeout = flush_timeout
        # Gossip piggybacking (docs/comms.md): ride stability watermarks
        # on outgoing group data, demoting the periodic standalone gossip
        # to an idle fallback.  Follows the environment's CommsParams.
        self.gossip_interval = gossip_interval
        comms = getattr(process.env, "comms", None)
        self.gossip_piggyback = bool(
            comms is not None
            and comms.gossip_piggyback
            and gossip_interval is not None
        )
        # §5 extension: refuse minority view changes during partitions.
        self.primary_partition = primary_partition
        self.detector = detector if detector is not None else OracleDetector(
            process.env, process.address, detection_delay=0.05
        )
        self.detector.add_listener(self._on_suspect)
        self._groups: Dict[str, GroupMember] = {}
        self._watch_refs: Dict[Address, Set[str]] = {}

        process.on(GroupData, self._route(lambda m, p, s: m._on_data(p, s)))
        process.on(SetOrder, self._route(lambda m, p, s: m._on_set_order(p, s)))
        process.on(
            StabilityGossip, self._route(lambda m, p, s: m._on_gossip(p, s))
        )
        process.on(Flush, self._route(lambda m, p, s: m._on_flush(p, s)))
        process.on(FlushOk, self._route(lambda m, p, s: m._on_flush_ok(p, s)))
        process.on(NewView, self._route_new_view)
        process.on(
            SuspectReport, self._route(lambda m, p, s: m._on_suspect_report(p, s))
        )
        self.rpc.serve(JoinRequest, self._serve_join)
        self.rpc.serve(LeaveRequest, self._serve_leave)
        if gossip_interval is not None:
            process.every(gossip_interval, self._gossip_all)
        process.add_recover_listener(self._after_recovery)

    def _after_recovery(self) -> None:
        """Fail-stop recovery: group state died with the old incarnation.
        The recovered process rejoins groups like a new member (the
        classical ISIS recovery story)."""
        for member in list(self._groups.values()):
            member._teardown_watches()
        self._groups.clear()
        for address in list(self._watch_refs):
            self.detector.unwatch(address)
        self._watch_refs.clear()

    # -- group lifecycle ----------------------------------------------------------

    def create_group(self, name: str, members: List[Address]) -> GroupMember:
        """Statically bootstrap a group whose initial view is ``members``.

        Every listed process must make the identical call; no messages are
        exchanged (this mirrors starting a distributed application from a
        common configuration file).
        """
        if name in self._groups:
            raise ValueError(f"{self.process.address} already in group {name}")
        if self.process.address not in members:
            raise ValueError("creator must be listed in the initial membership")
        member = GroupMember(self, name)
        self._groups[name] = member
        member._bootstrap(tuple(members))
        return member

    def join_group(
        self, name: str, contact: Address, retry: float = 1.0
    ) -> GroupMember:
        """Dynamically join ``name`` via any current member ``contact``."""
        if name in self._groups:
            raise ValueError(f"{self.process.address} already in group {name}")
        member = GroupMember(self, name)
        self._groups[name] = member
        member._start_join(contact, retry)
        return member

    def forget_group(self, name: str) -> None:
        """Drop local state for a group (after leave/exclusion)."""
        member = self._groups.pop(name, None)
        if member is not None:
            member._teardown_watches()

    def rejoin_group(
        self, name: str, contact: Address, retry: float = 1.0
    ) -> GroupMember:
        """Discard any stale local state for ``name`` and join afresh —
        the recovery path for a member excluded by false suspicion or
        stranded on the minority side of a healed partition."""
        self.forget_group(name)
        return self.join_group(name, contact, retry=retry)

    def group(self, name: str) -> GroupMember:
        return self._groups[name]

    def has_group(self, name: str) -> bool:
        return name in self._groups

    @property
    def groups(self) -> List[GroupMember]:
        return list(self._groups.values())

    # -- routing --------------------------------------------------------------------

    def _route(self, fn):
        def handler(payload, sender):
            member = self._groups.get(payload.group)
            if member is not None:
                fn(member, payload, sender)

        return handler

    def _route_new_view(self, payload: NewView, sender: Address) -> None:
        member = self._groups.get(payload.view.group)
        if member is not None:
            member._on_new_view(payload, sender)

    def _serve_join(self, request: JoinRequest, sender: Address):
        member = self._groups.get(request.group)
        if member is None:
            raise RpcError(f"no such group here: {request.group}")
        return member._handle_join_request(request, sender)

    def _serve_leave(self, request: LeaveRequest, sender: Address):
        member = self._groups.get(request.group)
        if member is None:
            raise RpcError(f"no such group here: {request.group}")
        return member._handle_leave_request(request, sender)

    def _gossip_all(self) -> None:
        for member in self._groups.values():
            member._gossip_tick()

    # -- failure detection ------------------------------------------------------------

    def watch(self, address: Address, group: str) -> None:
        refs = self._watch_refs.setdefault(address, set())
        if not refs:
            self.detector.watch(address)
        refs.add(group)

    def unwatch(self, address: Address, group: str) -> None:
        refs = self._watch_refs.get(address)
        if refs is None:
            return
        refs.discard(group)
        if not refs:
            self.detector.unwatch(address)
            del self._watch_refs[address]

    def _on_suspect(self, address: Address) -> None:
        self.transport.forget_peer(address)
        for member in list(self._groups.values()):
            member._on_suspect(address)
