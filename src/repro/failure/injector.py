"""Crash injection for experiments.

The reliability experiments (E4, E7) crash processes at random times drawn
from a seeded stream; tests also use deterministic scripted crashes.  All
scheduling goes through the environment's scheduler so injection composes
with everything else.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Optional

from repro.net.message import Address
from repro.proc.env import Environment
from repro.runtime.api import SimRandom


@dataclass
class InjectionRecord:
    """What the injector did, for post-run analysis."""

    time: float
    address: Address
    action: str  # "crash" or "recover"


class CrashInjector:
    """Schedules crashes (and optional recoveries) against an environment."""

    def __init__(self, env: Environment, rng: Optional[SimRandom] = None) -> None:
        self._env = env
        self._rng = rng if rng is not None else env.rng.fork("crash-injector")
        self.records: List[InjectionRecord] = []

    # -- scripted ---------------------------------------------------------------

    def crash_at(self, time: float, address: Address) -> None:
        self._env.scheduler.at(time, lambda: self._crash(address))

    def recover_at(self, time: float, address: Address) -> None:
        self._env.scheduler.at(time, lambda: self._recover(address))

    # -- stochastic ---------------------------------------------------------------

    def poisson_crashes(
        self,
        addresses: Iterable[Address],
        rate_per_process: float,
        horizon: float,
        recover_after: Optional[float] = None,
    ) -> int:
        """Schedule memoryless crashes for each address over [now, now+horizon].

        ``rate_per_process`` is the expected number of crashes per process
        per unit time.  If ``recover_after`` is set, each crash is followed
        by a recovery that much later.  Returns the number of crash events
        scheduled.
        """
        if rate_per_process < 0 or horizon < 0:
            raise ValueError("rate and horizon must be nonnegative")
        scheduled = 0
        start = self._env.now
        for address in addresses:
            t = start
            while rate_per_process > 0:
                t += self._rng.expovariate(rate_per_process)
                if t > start + horizon:
                    break
                self.crash_at(t, address)
                scheduled += 1
                if recover_after is not None:
                    self.recover_at(t + recover_after, address)
                else:
                    break  # without recovery a process can only die once
        return scheduled

    def crash_fraction_at(
        self, time: float, addresses: Iterable[Address], fraction: float
    ) -> List[Address]:
        """At ``time``, crash a random ``fraction`` of ``addresses``."""
        if not 0 <= fraction <= 1:
            raise ValueError("fraction must be in [0, 1]")
        pool = list(addresses)
        count = int(round(len(pool) * fraction))
        victims = self._rng.sample(pool, count) if count else []
        for victim in victims:
            self.crash_at(time, victim)
        return victims

    # -- internals ---------------------------------------------------------------

    def _crash(self, address: Address) -> None:
        if self._env.has_process(address) and self._env.process(address).alive:
            self._env.process(address).crash()
            self.records.append(InjectionRecord(self._env.now, address, "crash"))

    def _recover(self, address: Address) -> None:
        if self._env.has_process(address) and not self._env.process(address).alive:
            self._env.process(address).recover()
            self.records.append(InjectionRecord(self._env.now, address, "recover"))
