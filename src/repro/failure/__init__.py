"""Failure detection and crash injection."""

from repro.failure.detector import (
    FailureDetector,
    Heartbeat,
    HeartbeatAck,
    HeartbeatDetector,
    OracleDetector,
)
from repro.failure.injector import CrashInjector, InjectionRecord

__all__ = [
    "CrashInjector",
    "FailureDetector",
    "Heartbeat",
    "HeartbeatAck",
    "HeartbeatDetector",
    "InjectionRecord",
    "OracleDetector",
]
