"""Failure detectors.

Two interchangeable implementations of the same interface:

:class:`HeartbeatDetector`
    The realistic one: watched peers are pinged periodically; a peer that
    misses ``suspect_after`` worth of heartbeats is suspected.  Its traffic
    appears in network statistics under the ``"heartbeat"`` category so
    benchmarks can separate steady-state monitoring cost from
    failure-handling cost.

:class:`OracleDetector`
    Simulator scaffolding: learns of crashes from the environment hook and
    reports them after a configurable detection delay, with *no* network
    traffic.  ISIS ran its own site-monitoring layer below the toolkit; the
    oracle stands in for that layer when an experiment wants to measure
    only the protocol messages above it.

Both are *complete* (a crashed watched peer is eventually suspected).  The
heartbeat detector is only *eventually accurate*: message loss can cause
false suspicion, which the membership layer treats as a failure — exactly
the fail-stop conversion classical ISIS performed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Set

from repro.net.message import Address
from repro.proc.env import Environment
from repro.proc.process import Process

SuspectFn = Callable[[Address], None]


@dataclass
class Heartbeat:
    category = "heartbeat"
    size_bytes = 16


@dataclass
class HeartbeatAck:
    category = "heartbeat"
    size_bytes = 16


# Heartbeat payloads are stateless, so every ping/ack on the network can
# share one instance — monitoring n peers allocates nothing per tick.
_HEARTBEAT = Heartbeat()
_HEARTBEAT_ACK = HeartbeatAck()


class FailureDetector:
    """Common interface: watch peers, get a callback on suspicion."""

    def watch(self, address: Address) -> None:
        raise NotImplementedError

    def unwatch(self, address: Address) -> None:
        raise NotImplementedError

    def watched(self) -> Set[Address]:
        raise NotImplementedError

    def add_listener(self, fn: SuspectFn) -> None:
        raise NotImplementedError


class HeartbeatDetector(FailureDetector):
    """Ping/ack failure detection over the network (any engine).

    With ``suppression`` on (docs/comms.md; default follows the
    environment's :class:`~repro.net.packer.CommsParams`), *any* inbound
    datagram from a watched peer counts as liveness evidence, and a tick
    skips pinging peers heard from within the last interval — protocol
    traffic replaces most monitoring traffic in a busy group.  A crashed
    peer stops sending everything at once, so detection time is
    unchanged.
    """

    def __init__(
        self,
        process: Process,
        interval: float = 0.2,
        suspect_after: float = 1.0,
        suppression: Optional[bool] = None,
    ) -> None:
        if interval <= 0 or suspect_after <= interval:
            raise ValueError("require 0 < interval < suspect_after")
        if suppression is None:
            comms = getattr(process.env, "comms", None)
            suppression = bool(comms is not None and comms.heartbeat_suppression)
        self._process = process
        self._interval = interval
        self._suspect_after = suspect_after
        self._suppression = suppression
        self._last_heard: Dict[Address, float] = {}
        self._suspected: Set[Address] = set()
        self._listeners: List[SuspectFn] = []
        process.on(Heartbeat, self._on_ping)
        process.on(HeartbeatAck, self._on_ack)
        process.every(interval, self._tick)
        if suppression:
            process.add_traffic_listener(self._on_traffic)

    def watch(self, address: Address) -> None:
        if address == self._process.address:
            return
        self._last_heard.setdefault(address, self._process.env.now)
        self._suspected.discard(address)

    def unwatch(self, address: Address) -> None:
        self._last_heard.pop(address, None)
        self._suspected.discard(address)

    def watched(self) -> Set[Address]:
        return set(self._last_heard)

    def add_listener(self, fn: SuspectFn) -> None:
        self._listeners.append(fn)

    def is_suspected(self, address: Address) -> bool:
        return address in self._suspected

    def _tick(self) -> None:
        process = self._process
        now = process.env.now
        last_heard = self._last_heard
        suspected = self._suspected
        suspect_after = self._suspect_after
        # Fast path (the overwhelmingly common case): nobody is overdue,
        # so no listener can fire and nothing can mutate our dicts —
        # iterate them directly, no defensive copy, no allocation.
        overdue = False
        for address, last in last_heard.items():
            if now - last >= suspect_after and address not in suspected:
                overdue = True
                break
        suppression = self._suppression
        interval = self._interval
        stats = process.env.network.stats
        if not overdue:
            send = process.send
            if suspected:
                for address, last in last_heard.items():
                    if address in suspected:
                        continue
                    if suppression and now - last < interval:
                        stats.record_suppressed_heartbeat()
                    else:
                        send(address, _HEARTBEAT)
            elif suppression:
                for address, last in last_heard.items():
                    if now - last < interval:
                        # Heard from this peer within the last interval
                        # (any traffic counts): the ping is redundant.
                        stats.record_suppressed_heartbeat()
                    else:
                        send(address, _HEARTBEAT)
            else:
                for address in last_heard:
                    send(address, _HEARTBEAT)
            return
        # Slow path: at least one suspicion will fire this tick, and
        # suspicion listeners may watch/unwatch — keep the defensive copy.
        for address in list(last_heard):
            if address in suspected:
                continue
            if suppression and now - last_heard[address] < interval:
                stats.record_suppressed_heartbeat()
            else:
                process.send(address, _HEARTBEAT)
            if now - last_heard[address] >= self._suspect_after:
                suspected.add(address)
                trace = process.env.network.trace
                if trace is not None:
                    trace.local(
                        "suspicion", category="failure",
                        process=process.address, peer=address,
                        silent_for=now - last_heard[address],
                    )
                for listener in list(self._listeners):
                    listener(address)

    def _on_ping(self, ping: Heartbeat, sender: Address) -> None:
        self._process.send(sender, _HEARTBEAT_ACK)

    def _on_ack(self, ack: HeartbeatAck, sender: Address) -> None:
        if sender in self._last_heard:
            self._last_heard[sender] = self._process.env.now
            self._suspected.discard(sender)

    def _on_traffic(self, src: Address) -> None:
        # Suppression mode: every inbound datagram is liveness evidence.
        # (This also sees pings/acks before their handlers run, which is
        # harmless — both paths record the same instant.)
        if src in self._last_heard:
            self._last_heard[src] = self._process.env.now
            self._suspected.discard(src)


class OracleDetector(FailureDetector):
    """Zero-traffic detector fed by the simulator's crash hook."""

    def __init__(
        self,
        env: Environment,
        owner: Address,
        detection_delay: float = 0.1,
    ) -> None:
        if detection_delay < 0:
            raise ValueError("detection_delay must be nonnegative")
        self._env = env
        self._owner = owner
        self._delay = detection_delay
        self._watched: Set[Address] = set()
        self._listeners: List[SuspectFn] = []
        env.on_crash(self._on_crash)

    def watch(self, address: Address) -> None:
        if address == self._owner:
            return
        self._watched.add(address)
        # A peer that is already dead when we start watching must still be
        # detected (completeness), e.g. joining a group with a dead member.
        if self._env.has_process(address) and not self._env.process(address).alive:
            self._on_crash(address)

    def unwatch(self, address: Address) -> None:
        self._watched.discard(address)

    def watched(self) -> Set[Address]:
        return set(self._watched)

    def add_listener(self, fn: SuspectFn) -> None:
        self._listeners.append(fn)

    def _on_crash(self, address: Address) -> None:
        if address not in self._watched:
            return
        owner = self._owner

        def report() -> None:
            # The watcher may itself have died in the interim.
            if not self._env.has_process(owner) or not self._env.process(owner).alive:
                return
            if address in self._watched:
                trace = self._env.network.trace
                if trace is not None:
                    trace.local(
                        "suspicion", category="failure",
                        process=owner, peer=address,
                    )
                for listener in list(self._listeners):
                    listener(address)

        self._env.scheduler.after(self._delay, report)
