"""cbcast: causally ordered group multicast.

Implements the Birman–Schiper–Stephenson vector-timestamp discipline on top
of the :class:`~repro.clocks.causal_buffer.CausalBuffer`.  A sender stamps
each multicast with its delivered-vector incremented at its own component;
receivers hold messages until all causal predecessors are delivered.

Causality is tracked *within* the causal stream of one group view: the
paper's cbcast orders causally related broadcasts, and a new view resets
the vector (virtual synchrony guarantees the old view's messages were
reconciled by the flush, so no cross-view dependency survives).
"""

from __future__ import annotations

from typing import List

from repro.broadcast.base import OrderingEngine
from repro.clocks.causal_buffer import CausalBuffer
from repro.membership.events import GroupData
from repro.membership.view import GroupView
from repro.net.message import Address


class CausalEngine(OrderingEngine):
    """Vector-stamped causal delivery for one view."""

    def __init__(self, view: GroupView, me: Address) -> None:
        super().__init__(view, me)
        self._buffer = CausalBuffer()

    def stamp_outgoing(self, data: GroupData) -> None:
        stamp = self._buffer.delivered_clock.incremented(self.me)
        data.stamp = stamp
        # The sender delivers its own message immediately (ISIS semantics:
        # a cbcast is delivered locally at send time); recording it here
        # keeps later outgoing stamps causally after it.  The membership
        # layer performs the actual local delivery.
        self._buffer.add(self.me, stamp, data)

    def on_receive(self, data: GroupData) -> List[GroupData]:
        if data.sender == self.me:
            return []  # already delivered locally at send time
        if data.stamp is None:
            raise ValueError("causal multicast arrived without a stamp")
        released = self._buffer.add(data.sender, data.stamp, data)
        trace = self._trace()
        if trace is not None:
            if not released:
                trace.local(
                    "causal-hold", category="ordering", process=self.me,
                    group=self.view.group, sender=data.sender,
                    sender_seq=data.sender_seq,
                )
            elif len(released) > 1 or released[0] is not data:
                trace.local(
                    "causal-release", category="ordering", process=self.me,
                    group=self.view.group, released=len(released),
                )
        return released

    def held(self) -> List[GroupData]:
        return list(self._buffer.held_payloads())


def causal_sort_key(data: GroupData):
    """A deterministic linear extension of causal order for flush-time
    delivery: componentwise-smaller stamps sort first (sum of a vector
    strictly grows along every causal edge), ties broken by sender/seq."""
    total = sum(count for _, count in data.stamp.items()) if data.stamp else 0
    return (total, data.sender, data.sender_seq)
