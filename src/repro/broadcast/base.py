"""Ordering-engine interface shared by fbcast / cbcast / abcast.

A :class:`~repro.membership.group.GroupMember` owns one engine instance per
ordering per installed view.  The engine decides *when* a received
``GroupData`` may be handed to the application; the membership layer decides
*whether* (view tagging, duplicate suppression, flush reconciliation).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import List

from repro.membership.events import GroupData
from repro.membership.view import GroupView
from repro.net.message import Address


class OrderingEngine(ABC):
    """Per-view delivery-order state machine for one ordering discipline."""

    def __init__(self, view: GroupView, me: Address) -> None:
        self.view = view
        self.me = me
        # Set by the owning GroupMember at view install; engines read
        # ``network.trace`` per event so a mid-run trace attach takes
        # effect immediately (None when tracing is off).
        self.network = None

    def _trace(self):
        """The guarded trace sink, or None (tracing off / not wired)."""
        network = self.network
        return network.trace if network is not None else None

    @abstractmethod
    def stamp_outgoing(self, data: GroupData) -> None:
        """Attach ordering metadata to a multicast about to be sent."""

    @abstractmethod
    def on_receive(self, data: GroupData) -> List[GroupData]:
        """Feed a received multicast; return messages now deliverable, in
        delivery order (possibly empty, possibly several)."""

    def held(self) -> List[GroupData]:
        """Messages received but not yet deliverable (for flush reporting)."""
        return []
