"""fbcast: FIFO-ordered group multicast.

The cheapest ISIS ordering.  Per-sender FIFO already holds on the reliable
transport's channels, and sender sequence numbers are contiguous per view,
so a received message is deliverable immediately.
"""

from __future__ import annotations

from typing import List

from repro.broadcast.base import OrderingEngine
from repro.membership.events import GroupData


class FifoEngine(OrderingEngine):
    """Deliver on receipt; FIFO is guaranteed by the channel below.

    No trace hook here: fbcast never buffers, so the network-level
    send/deliver spans already describe its causal graph completely.
    """

    def stamp_outgoing(self, data: GroupData) -> None:
        pass  # sender_seq set by the membership layer is all FIFO needs

    def on_receive(self, data: GroupData) -> List[GroupData]:
        return [data]
