"""Message stability tracking.

A multicast is *stable* once every member of the view has delivered it;
stable messages can never need retransmission at a view change, so members
may discard them.  Each member keeps, per view:

* ``delivered[s]`` — the highest (contiguous, thanks to FIFO channels)
  sender-sequence it has received from each sender ``s``;
* a log of the messages above the group-wide stable floor;
* its peers' reported watermarks, refreshed by periodic
  :class:`~repro.membership.events.StabilityGossip`.

The unstable suffix (everything above the floor) is exactly what the flush
protocol must reconcile — keeping it small is what makes view changes
cheap, and is why the paper worries about the cost of "ever larger
broadcasts" in big flat groups: the gossip is all-to-all.

The tracker sits on the per-message hot path (every delivery records, every
gossip updates watermarks), so the group-wide floors are cached and
maintained incrementally: watermarks only ever rise, and raising an entry
can move ``min`` over the peers only when the old entry sat *at* the
current floor.  Most updates therefore skip the O(members) rescan, and
truncation touches only senders whose floor actually moved.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Set

from repro.membership.events import GroupData
from repro.net.message import Address


class StabilityTracker:
    """Per-view unstable-message log and watermark bookkeeping."""

    def __init__(self, me: Address, members: Iterable[Address]) -> None:
        self._me = me
        self._members = tuple(members)
        self._delivered: Dict[Address, int] = {m: 0 for m in self._members}
        self._peer_view: Dict[Address, Dict[Address, int]] = {
            m: {s: 0 for s in self._members} for m in self._members
        }
        self._log: Dict[Address, Dict[int, GroupData]] = {
            m: {} for m in self._members
        }
        # Cached min-over-peers watermark per sender, plus the senders whose
        # log may hold entries at or below their floor (pending truncation).
        self._floor: Dict[Address, int] = {m: 0 for m in self._members}
        self._dirty: Set[Address] = set()
        # record() keeps our own peer-view row synced to ``_delivered`` one
        # key at a time; gossip naming *us* as the peer can push the row
        # ahead, after which the next record() falls back to a full resync.
        self._me_row_synced = True

    # -- recording -------------------------------------------------------------

    def record(self, data: GroupData) -> None:
        """Record a message this member has received (or sent: senders
        record their own multicasts so in-flight copies survive a flush)."""
        sender = data.sender
        if sender not in self._delivered:
            return  # departed sender; flush handles its fate
        if data.sender_seq > self._delivered[sender]:
            self._delivered[sender] = data.sender_seq
        self._log[sender][data.sender_seq] = data
        if self._me_row_synced:
            mine = self._peer_view[self._me]
            old = mine[sender]
            new = self._delivered[sender]
            if new > old:
                mine[sender] = new
                if old == self._floor[sender]:
                    self._refloor(sender)
        else:
            self._peer_view[self._me] = dict(self._delivered)
            self._me_row_synced = True
            for s in self._members:
                self._refloor(s)
        if data.sender_seq <= self._floor[sender]:
            self._dirty.add(sender)  # logged at/below floor; truncate later

    def watermarks(self) -> Dict[Address, int]:
        return dict(self._delivered)

    def on_gossip(self, peer: Address, delivered: Dict[Address, int]) -> None:
        if peer not in self._peer_view:
            return
        mine = self._peer_view[peer]
        mine_get = mine.get
        floor = self._floor
        for sender, seq in delivered.items():
            old = mine_get(sender)
            if old is not None and seq > old:
                mine[sender] = seq
                if old == floor[sender]:
                    self._refloor(sender)
        if peer == self._me:
            self._me_row_synced = False
        self._truncate()

    # -- queries ----------------------------------------------------------------

    def stable_floor(self, sender: Address) -> int:
        """Highest seq from ``sender`` known delivered by *every* member."""
        cached = self._floor.get(sender)
        if cached is not None:
            return cached
        return min(view.get(sender, 0) for view in self._peer_view.values())

    def unstable(self) -> List[GroupData]:
        """All logged messages above the stable floor (flush payload)."""
        out: List[GroupData] = []
        for sender, entries in self._log.items():
            floor = self._floor[sender]
            out.extend(
                data for seq, data in sorted(entries.items()) if seq > floor
            )
        return out

    def log_size(self) -> int:
        return sum(len(entries) for entries in self._log.values())

    def _refloor(self, sender: Address) -> None:
        """Recompute one sender's floor after a contributing entry rose."""
        new = min(view[sender] for view in self._peer_view.values())
        if new != self._floor[sender]:
            self._floor[sender] = new
            self._dirty.add(sender)

    def _truncate(self) -> None:
        if not self._dirty:
            return
        for sender in self._dirty:
            entries = self._log[sender]
            floor = self._floor[sender]
            for seq in [s for s in entries if s <= floor]:
                del entries[seq]
        self._dirty.clear()
