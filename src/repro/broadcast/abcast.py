"""abcast: totally ordered group multicast via a ranked sequencer.

The rank-0 member of the current view is the *sequencer*.  Everyone sends
``total``-ordered data normally; on delivery of each such message (including
its own) the sequencer multicasts a :class:`~repro.membership.events.
SetOrder` assigning the next global sequence number.  Receivers hold total
data until both the data *and* its order are known, then deliver strictly
in global-sequence order — so every member delivers the same totally
ordered stream.

On a view change the flush reconciles: order assignments known anywhere
survive; flushed-but-unordered data is assigned a deterministic order by
the view-change coordinator (sorted by message id), so survivors still
agree.  The next view's sequencer starts from the agreed next global seq.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.broadcast.base import OrderingEngine
from repro.membership.events import GroupData, MessageId, SetOrder
from repro.membership.view import GroupView
from repro.net.message import Address


class TotalEngine(OrderingEngine):
    """Receiver-side (and sequencer-side) abcast state for one view."""

    def __init__(self, view: GroupView, me: Address, next_global_seq: int = 1) -> None:
        super().__init__(view, me)
        self.is_sequencer = view.coordinator == me
        self._next_assign = next_global_seq  # sequencer only
        self._next_deliver = next_global_seq
        self._order: Dict[int, MessageId] = {}
        # Every assignment seen this view, delivered or not: flush must be
        # able to report orders for already-delivered messages, otherwise a
        # member that missed the SetOrder could be given a conflicting
        # order at the view change.
        self._history: Dict[int, MessageId] = {}
        self._pending: Dict[MessageId, GroupData] = {}
        self._delivered_ids: set = set()

    # -- sequencer side ----------------------------------------------------------

    def assign_order(self, data: GroupData) -> Optional[SetOrder]:
        """Called at the sequencer for each total-order message it receives
        (or sends); returns the SetOrder to multicast, or None if this
        member is not the sequencer."""
        if not self.is_sequencer:
            return None
        order = SetOrder(
            group=self.view.group,
            view_seq=self.view.seq,
            orders=[(self._next_assign, data.message_id)],
        )
        trace = self._trace()
        if trace is not None:
            trace.local(
                "order-assign", category="ordering", process=self.me,
                group=self.view.group, global_seq=self._next_assign,
                sender=data.sender, sender_seq=data.sender_seq,
            )
        self._history[self._next_assign] = data.message_id
        self._next_assign += 1
        return order

    # -- every member ----------------------------------------------------------

    def stamp_outgoing(self, data: GroupData) -> None:
        pass  # order comes from the sequencer, not the sender

    def on_receive(self, data: GroupData) -> List[GroupData]:
        if data.message_id not in self._delivered_ids:
            self._pending.setdefault(data.message_id, data)
        ready = self._drain()
        trace = self._trace()
        if trace is not None and data not in ready and data.message_id in self._pending:
            trace.local(
                "total-hold", category="ordering", process=self.me,
                group=self.view.group, sender=data.sender,
                sender_seq=data.sender_seq,
            )
        return ready

    def on_set_order(self, set_order: SetOrder) -> List[GroupData]:
        for global_seq, message_id in set_order.orders:
            self._order.setdefault(global_seq, message_id)
            self._history.setdefault(global_seq, message_id)
        return self._drain()

    def _drain(self) -> List[GroupData]:
        ready: List[GroupData] = []
        while True:
            message_id = self._order.get(self._next_deliver)
            if message_id is None or message_id not in self._pending:
                break
            ready.append(self._pending.pop(message_id))
            self._delivered_ids.add(message_id)
            del self._order[self._next_deliver]
            self._next_deliver += 1
        return ready

    def held(self) -> List[GroupData]:
        return list(self._pending.values())

    # -- flush support ----------------------------------------------------------

    def known_orders(self) -> List[Tuple[int, MessageId]]:
        """Every order assignment seen this view (delivered or not)."""
        return sorted(self._history.items())

    @property
    def next_global_seq(self) -> int:
        """Highest frontier this member knows: orders seen or assigned."""
        frontier = self._next_deliver
        if self._history:
            frontier = max(frontier, max(self._history) + 1)
        if self.is_sequencer:
            frontier = max(frontier, self._next_assign)
        return frontier


def merge_flush_orders(
    reports: List[Tuple[List[Tuple[int, MessageId]], int]],
    unordered: List[GroupData],
) -> Tuple[List[Tuple[int, MessageId]], int]:
    """Coordinator-side reconciliation of abcast state at a view change.

    ``reports`` is [(known_orders, next_global_seq)] from each flushing
    member; ``unordered`` is flushed total-order data with no known order.
    Returns the final (orders, next_global_seq): surviving assignments are
    kept, unordered messages get deterministic positions after the highest
    known frontier (sorted by message id), so all survivors deliver the
    same total order.
    """
    merged: Dict[int, MessageId] = {}
    frontier = 1
    for known, next_seq in reports:
        frontier = max(frontier, next_seq)
        for global_seq, message_id in known:
            existing = merged.get(global_seq)
            if existing is not None and existing != message_id:
                raise AssertionError(
                    f"sequencer safety violated: seq {global_seq} -> "
                    f"{existing} and {message_id}"
                )
            merged[global_seq] = message_id
    assigned_ids = set(merged.values())
    for data in sorted(unordered, key=lambda d: d.message_id):
        if data.message_id in assigned_ids:
            continue
        merged[frontier] = data.message_id
        assigned_ids.add(data.message_id)
        frontier += 1
    if merged:
        frontier = max(frontier, max(merged) + 1)
    return sorted(merged.items()), frontier
