"""ISIS broadcast protocols: fbcast (FIFO), cbcast (causal), abcast (total).

GBCAST — the ordering of view installations relative to all other events —
is realised by the flush protocol in :mod:`repro.membership.flush` rather
than a standalone primitive: a view change blocks new multicasts, reconciles
unstable ones, and installs the view at a common point in every survivor's
delivery sequence, which is exactly the gbcast guarantee.
"""

from repro.broadcast.abcast import TotalEngine, merge_flush_orders
from repro.broadcast.base import OrderingEngine
from repro.broadcast.cbcast import CausalEngine, causal_sort_key
from repro.broadcast.fbcast import FifoEngine
from repro.broadcast.stability import StabilityTracker

__all__ = [
    "CausalEngine",
    "FifoEngine",
    "OrderingEngine",
    "StabilityTracker",
    "TotalEngine",
    "causal_sort_key",
    "merge_flush_orders",
]
