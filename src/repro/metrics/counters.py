"""Experiment-side measurement helpers.

Network statistics live in :mod:`repro.net.stats`; this module adds the
derived quantities the paper argues in terms of: messages per request,
processes touched by an event, per-process view-storage, and latency
percentile summaries.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.net.stats import StatsSnapshot


def data_messages(delta: StatsSnapshot, categories: Iterable[str]) -> int:
    """Sum of logical messages in the given stat categories."""
    return sum(delta.by_category.get(c, 0) for c in categories)


def processes_touched(delta: StatsSnapshot, categories: Optional[Iterable[str]] = None) -> int:
    """How many distinct processes received at least one message.

    With ``categories=None``, counts any traffic; the E5 benchmark passes
    the failure-handling categories to isolate who a failure disturbs.
    Note: receiver counts in snapshots are not split per category, so
    category filtering applies to a delta taken around an isolated event.
    """
    return sum(1 for _addr, count in delta.received_by.items() if count > 0)


@dataclass
class LatencySample:
    """Collects request/operation latencies during a run."""

    samples: List[float] = field(default_factory=list)

    def add(self, latency: float) -> None:
        self.samples.append(latency)

    @property
    def count(self) -> int:
        return len(self.samples)

    @property
    def mean(self) -> float:
        return sum(self.samples) / len(self.samples) if self.samples else 0.0

    def percentile(self, p: float) -> float:
        """Nearest-rank percentile, p in [0, 100]."""
        if not self.samples:
            return 0.0
        ordered = sorted(self.samples)
        rank = max(1, math.ceil(p / 100.0 * len(ordered)))
        return ordered[rank - 1]

    @property
    def p50(self) -> float:
        return self.percentile(50)

    @property
    def p99(self) -> float:
        return self.percentile(99)

    @property
    def max(self) -> float:
        return max(self.samples) if self.samples else 0.0


def view_storage_entries(view_members: Sequence[str]) -> int:
    """Entries one process stores for a flat group view: the full list."""
    return len(view_members)


def fit_power_law(xs: Sequence[float], ys: Sequence[float]) -> float:
    """Least-squares slope of log(y) on log(x): ~1 linear, ~2 quadratic.

    The E2 benchmark uses this to show flat traffic growing with exponent
    ≈ 2 while hierarchical traffic grows with exponent ≈ 1.
    """
    pts = [
        (math.log(x), math.log(y))
        for x, y in zip(xs, ys)
        if x > 0 and y > 0
    ]
    if len(pts) < 2:
        raise ValueError("need at least two positive points")
    n = len(pts)
    sx = sum(x for x, _ in pts)
    sy = sum(y for _, y in pts)
    sxx = sum(x * x for x, _ in pts)
    sxy = sum(x * y for x, y in pts)
    denominator = n * sxx - sx * sx
    if denominator == 0:
        raise ValueError("degenerate x values")
    return (n * sxy - sx * sy) / denominator
