"""Order-sensitive digests of simulation behaviour.

A :class:`DeliveryDigest` taps the network and folds every delivery into a
rolling SHA-256 over ``(deliver_time, src, dst, category)`` tuples.  Two
runs with the same digest delivered the same messages, between the same
endpoints, in the same order, at the same simulated times — which is the
property the perf work on the event core must preserve byte-for-byte.

Usage::

    env = Environment(seed=7)
    digest = DeliveryDigest(env.network)
    ...run the scenario...
    assert digest.hexdigest() == expected

The digest is deliberately *order-sensitive*: swapping two deliveries at
the same timestamp changes it, so it also guards the scheduler's FIFO
tie-breaking.

The folded tuple deliberately excludes everything else on the envelope —
in particular the causal-trace context (``envelope.trace``) attached by
:mod:`repro.trace` — so a traced run produces the byte-identical digest
as an untraced one (regression-tested in tests/test_trace_determinism.py).
"""

from __future__ import annotations

import hashlib

from repro.net.message import _META_CACHE, payload_category


class DeliveryDigest:
    """Rolling hash of every network delivery, in delivery order.

    The byte stream folded into SHA-256 is one ``repr(time)|src|dst|
    category\\n`` line per delivery — unchanged since the digests were
    frozen.  Two mechanical optimisations keep the tap cheap enough to
    leave attached during benchmarks, neither of which can alter the
    stream:

    * lines are buffered and hashed in chunks (``update(a); update(b)``
      is definitionally ``update(a+b)`` for SHA-256);
    * ``repr(time)`` — float shortest-repr is surprisingly costly — is
      cached across the runs of equal timestamps that batched delivery
      produces (simulated times are never ``-0.0``, the one float where
      equality would alias distinct reprs).
    """

    __slots__ = ("_hash", "_count", "_network", "_lines", "_time", "_time_repr")

    _FLUSH_AT = 1024

    def __init__(self, network=None) -> None:
        self._hash = hashlib.sha256()
        self._count = 0
        self._network = network
        self._lines: list = []
        self._time: float = None
        self._time_repr = ""
        if network is not None:
            try:
                network.add_tap(self._on_event, events=("deliver",))
            except TypeError:  # taps without event filtering
                network.add_tap(self._on_event)

    def _on_event(self, kind: str, envelope) -> None:
        if kind != "deliver":
            return
        # Only the behavioural fields are folded; observation-side state
        # (envelope.trace) must never reach the fingerprint.
        time = envelope.deliver_time
        if time != self._time:
            self._time = time
            self._time_repr = repr(time)
        self._count += 1
        # envelope.category, inlined (two call frames per delivery).
        payload = envelope.payload
        meta = _META_CACHE.get(payload.__class__)
        if meta is None or meta[0] is None:
            category = payload_category(payload)
        else:
            category = meta[0]
        lines = self._lines
        lines.append(
            f"{self._time_repr}|{envelope.src}|{envelope.dst}|{category}\n"
        )
        if len(lines) >= self._FLUSH_AT:
            self._hash.update("".join(lines).encode("utf-8"))
            lines.clear()

    def update(self, time: float, src: str, dst: str, category: str) -> None:
        """Fold one delivery tuple into the digest."""
        self._count += 1
        lines = self._lines
        lines.append(f"{time!r}|{src}|{dst}|{category}\n")
        if len(lines) >= self._FLUSH_AT:
            self._hash.update("".join(lines).encode("utf-8"))
            lines.clear()

    def _flush(self) -> None:
        if self._lines:
            self._hash.update("".join(self._lines).encode("utf-8"))
            self._lines.clear()

    def detach(self) -> None:
        """Stop observing the network (the digest keeps its value)."""
        if self._network is not None:
            self._network.remove_tap(self._on_event)
            self._network = None

    @property
    def count(self) -> int:
        """Number of deliveries folded in so far."""
        return self._count

    def hexdigest(self) -> str:
        self._flush()
        return self._hash.hexdigest()
