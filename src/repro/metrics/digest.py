"""Order-sensitive digests of simulation behaviour.

A :class:`DeliveryDigest` taps the network and folds every delivery into a
rolling SHA-256 over ``(deliver_time, src, dst, category)`` tuples.  Two
runs with the same digest delivered the same messages, between the same
endpoints, in the same order, at the same simulated times — which is the
property the perf work on the event core must preserve byte-for-byte.

Usage::

    env = Environment(seed=7)
    digest = DeliveryDigest(env.network)
    ...run the scenario...
    assert digest.hexdigest() == expected

The digest is deliberately *order-sensitive*: swapping two deliveries at
the same timestamp changes it, so it also guards the scheduler's FIFO
tie-breaking.

The folded tuple deliberately excludes everything else on the envelope —
in particular the causal-trace context (``envelope.trace``) attached by
:mod:`repro.trace` — so a traced run produces the byte-identical digest
as an untraced one (regression-tested in tests/test_trace_determinism.py).
"""

from __future__ import annotations

import hashlib


class DeliveryDigest:
    """Rolling hash of every network delivery, in delivery order."""

    __slots__ = ("_hash", "_count", "_network")

    def __init__(self, network=None) -> None:
        self._hash = hashlib.sha256()
        self._count = 0
        self._network = network
        if network is not None:
            network.add_tap(self._on_event)

    def _on_event(self, kind: str, envelope) -> None:
        if kind != "deliver":
            return
        # Only the behavioural fields are folded; observation-side state
        # (envelope.trace) must never reach the fingerprint.
        self.update(
            envelope.deliver_time, envelope.src, envelope.dst, envelope.category
        )

    def update(self, time: float, src: str, dst: str, category: str) -> None:
        """Fold one delivery tuple into the digest."""
        self._count += 1
        self._hash.update(
            f"{time!r}|{src}|{dst}|{category}\n".encode("utf-8")
        )

    def detach(self) -> None:
        """Stop observing the network (the digest keeps its value)."""
        if self._network is not None:
            self._network.remove_tap(self._on_event)
            self._network = None

    @property
    def count(self) -> int:
        """Number of deliveries folded in so far."""
        return self._count

    def hexdigest(self) -> str:
        return self._hash.hexdigest()
