"""Result-table rendering for the benchmark harness.

Every benchmark prints the series it measured in a fixed-width table so
EXPERIMENTS.md can quote runs verbatim.
"""

from __future__ import annotations

from typing import Any, List, Sequence


def format_table(
    title: str,
    headers: Sequence[str],
    rows: Sequence[Sequence[Any]],
    note: str = "",
) -> str:
    """Render a titled fixed-width table."""
    cells = [[_fmt(c) for c in row] for row in rows]
    widths = [
        max(len(str(h)), *(len(r[i]) for r in cells)) if cells else len(str(h))
        for i, h in enumerate(headers)
    ]
    lines = [f"== {title} =="]
    lines.append("  ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    if note:
        lines.append(f"note: {note}")
    return "\n".join(lines)


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 100:
            return f"{value:.0f}"
        if abs(value) >= 1:
            return f"{value:.2f}"
        return f"{value:.4f}"
    return str(value)


def print_table(
    title: str,
    headers: Sequence[str],
    rows: Sequence[Sequence[Any]],
    note: str = "",
) -> str:
    text = format_table(title, headers, rows, note)
    print("\n" + text)
    return text
