"""Time-series recording for experiments.

A :class:`TimeSeriesRecorder` samples named probe functions at a fixed
engine-time interval — message rates, group sizes, queue depths — so
workload runs can report how quantities evolved, not just their end
state.  It schedules itself directly on the environment's timer service
(surviving any individual process's crash), so it works unchanged on the
simulated and wall-clock engines.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.proc.env import Environment

Probe = Callable[[], float]


class TimeSeriesRecorder:
    """Periodic sampler over the engine clock."""

    def __init__(self, env: Environment, interval: float = 0.5) -> None:
        if interval <= 0:
            raise ValueError("interval must be positive")
        self.env = env
        self.interval = interval
        self._probes: Dict[str, Probe] = {}
        self._series: Dict[str, List[Tuple[float, float]]] = {}
        self._running = False

    def probe(self, name: str, fn: Probe) -> None:
        """Register a probe; sampled every interval once started."""
        if name in self._probes:
            raise ValueError(f"probe {name!r} already registered")
        self._probes[name] = fn
        self._series[name] = []

    def probe_trace(self, collector: Any, prefix: str = "trace") -> None:
        """Sample a :class:`repro.trace.TraceCollector`'s span counts.

        Pure observation: reading the collector never feeds back into
        simulation behaviour, so a recording traced run keeps the same
        delivery fingerprint as an unrecorded one.
        """
        self.probe(f"{prefix}.recorded", lambda: float(collector.recorded))
        self.probe(f"{prefix}.retained", lambda: float(len(collector)))

    def start(self) -> None:
        if self._running:
            return
        self._running = True
        self._schedule()

    def stop(self) -> None:
        self._running = False

    def _schedule(self) -> None:
        self.env.scheduler.after(self.interval, self._sample)

    def _sample(self) -> None:
        if not self._running:
            return
        now = self.env.now
        for name, fn in self._probes.items():
            try:
                value = float(fn())
            except Exception:  # a probe must never kill the run
                continue
            self._series[name].append((now, value))
        self._schedule()

    # -- queries ------------------------------------------------------------------

    def series(self, name: str) -> List[Tuple[float, float]]:
        return list(self._series.get(name, ()))

    def values(self, name: str) -> List[float]:
        return [v for _t, v in self._series.get(name, ())]

    def last(self, name: str) -> Optional[float]:
        entries = self._series.get(name)
        return entries[-1][1] if entries else None

    def summary(self, name: str) -> Dict[str, float]:
        values = self.values(name)
        if not values:
            return {"count": 0, "min": 0.0, "max": 0.0, "mean": 0.0}
        return {
            "count": len(values),
            "min": min(values),
            "max": max(values),
            "mean": sum(values) / len(values),
        }

    def rate_series(self, name: str) -> List[Tuple[float, float]]:
        """Per-interval deltas of a monotonically growing probe (e.g.
        total messages) — i.e. a rate in units per interval."""
        entries = self._series.get(name, [])
        return [
            (t2, v2 - v1)
            for (_t1, v1), (t2, v2) in zip(entries, entries[1:])
        ]
