"""Measurement helpers and table rendering for experiments."""

from repro.metrics.counters import (
    LatencySample,
    data_messages,
    fit_power_law,
    processes_touched,
    view_storage_entries,
)
from repro.metrics.digest import DeliveryDigest
from repro.metrics.recorder import TimeSeriesRecorder
from repro.metrics.sanitizer import (
    Violation,
    VirtualSynchronySanitizer,
    VirtualSynchronyViolation,
    install_sanitizer,
)
from repro.metrics.tables import format_table, print_table

__all__ = [
    "DeliveryDigest",
    "LatencySample",
    "TimeSeriesRecorder",
    "Violation",
    "VirtualSynchronySanitizer",
    "VirtualSynchronyViolation",
    "install_sanitizer",
    "data_messages",
    "fit_power_law",
    "format_table",
    "print_table",
    "processes_touched",
    "view_storage_entries",
]
