"""Virtual-synchrony sanitizer: runtime assertion hooks for group protocols.

The static rules in ``tools/lint`` catch nondeterminism *patterns*; this
module is the dynamic complement.  A :class:`VirtualSynchronySanitizer`
attaches to live :class:`~repro.membership.group.GroupMember` objects and
checks, at delivery time and at view changes, the invariants the whole
reproduction rests on (DESIGN.md; paper §2):

``VS001`` **view agreement** — every member that installs view ``(g, s)``
installs the same ordered membership list.

``VS002`` **gap-free per-sender delivery** — within one view, each
ordering class delivers one sender's messages in increasing
``sender_seq`` order, and by the time the view closes (or the run
drains) every ``sender_seq`` from 1 to the sender's highest delivered
number has been delivered: no reordering, no holes.  (The per-sender
counter is shared across orderings, so *consecutiveness* is only
required of the union, not of any single ordering's stream.)

``VS003`` **causal delivery** — a CAUSAL message is only delivered once
every causal predecessor recorded in its vector stamp has been
delivered (the Birman–Schiper–Stephenson condition).

``VS004`` **virtual synchrony** — members surviving from view ``s`` to
view ``s+1`` delivered exactly the same set of view-``s`` messages
before installing ``s+1``.

``VS005`` **delivery hygiene** — no delivery into a view the member has
already left behind (a closed view).

``VS006`` **total-order agreement** — any two members deliver their
common TOTAL messages of one view in the same relative order.

Hooks are opt-in — tests install them; production scenarios pay nothing.
In ``strict`` mode (the default) the first violation raises
:class:`VirtualSynchronyViolation` at the offending delivery, so the
failing stack trace points into the guilty protocol path; with
``strict=False`` violations accumulate for a final :meth:`check`.

Usage::

    sanitizer = VirtualSynchronySanitizer()
    sanitizer.attach_all(members)          # or attach(member) one by one
    ...run the scenario...
    sanitizer.check(at_quiescence=True)    # cross-member comparisons
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Set, Tuple

from repro.clocks.vector import VectorClock
from repro.membership.events import CAUSAL, TOTAL, MessageId, ViewEvent

Address = str
_ViewKey = Tuple[str, int]  # (group, view seq)


class VirtualSynchronyViolation(AssertionError):
    """A group-protocol invariant was broken at runtime."""

    def __init__(self, code: str, detail: str) -> None:
        super().__init__(f"{code}: {detail}")
        self.code = code
        self.detail = detail


@dataclass(frozen=True)
class Violation:
    code: str
    group: str
    member: Address
    detail: str
    # Causal-trace context of the offending event when the run is traced
    # (repro.trace): the delivery/span in whose scope the violation was
    # detected, so ``check()`` output points at the causal history.
    trace_id: Optional[int] = None
    span_id: Optional[int] = None


@dataclass
class _MemberViewState:
    """What one member did inside one (group, view_seq)."""

    # ``full``: we watched this view from its very first delivery (the
    # member installed it while attached, or we seeded exact state at
    # attach time) — only then are absolute checks sound.
    full: bool
    delivered: Set[MessageId] = field(default_factory=set)
    # (sender, ordering) -> highest sender_seq delivered in that stream.
    watermarks: Dict[Tuple[Address, str], int] = field(default_factory=dict)
    causal_clock: VectorClock = field(default_factory=VectorClock.zero)
    total_order: List[MessageId] = field(default_factory=list)
    closed: bool = False


class VirtualSynchronySanitizer:
    """Opt-in runtime checker for view agreement, gap-free and causal
    delivery, and the virtual-synchrony delivery-set guarantee."""

    def __init__(self, strict: bool = True) -> None:
        self.strict = strict
        self.violations: List[Violation] = []
        self.deliveries_checked = 0
        self.views_checked = 0
        # (group, seq) -> membership list agreed so far (first install wins).
        self._views: Dict[_ViewKey, Tuple[Address, ...]] = {}
        # (group, seq) -> member address -> per-view state.
        self._state: Dict[_ViewKey, Dict[Address, _MemberViewState]] = {}
        # member address -> (group -> seqs installed-or-seeded while attached)
        self._observed: Dict[Address, Dict[str, Set[int]]] = {}
        self._attached: List[Any] = []
        self._originals: List[Tuple[Any, Any]] = []
        # The network of the first attached member, for reading the trace
        # sink (None until attach, or when members carry no runtime).
        self._network: Optional[Any] = None

    # ------------------------------------------------------------ attachment

    def attach(self, member: Any) -> None:
        """Hook one GroupMember.  Idempotent per member object."""
        if any(m is member for m in self._attached):
            return
        self._attached.append(member)
        if self._network is None:
            runtime = getattr(member, "runtime", None)
            if runtime is not None:
                self._network = runtime.process.env.network
        original = member._deliver
        self._originals.append((member, original))

        def wrapped(data: Any) -> None:
            before = member.deliveries
            original(data)
            if member.deliveries != before:
                self.observe_delivery(member.me, data)

        member._deliver = wrapped
        member.add_view_listener(
            lambda event, _m=member: self.observe_view(_m.me, event)
        )
        if member.view is not None:
            self._seed(member)

    def attach_all(self, members: Iterable[Any]) -> None:
        for member in members:
            self.attach(member)

    def detach_all(self) -> None:
        """Restore the wrapped delivery paths (view listeners stay but
        only record; a detached run adds no further deliveries)."""
        for member, original in self._originals:
            member._deliver = original
        self._originals.clear()
        self._attached.clear()

    def _seed(self, member: Any) -> None:
        """Adopt a mid-view member: copy its exact per-view protocol state
        so the current view still counts as fully observed."""
        view = member.view
        key = (view.group, view.seq)
        self._note_view_membership(member.me, key, tuple(view.members))
        state = _MemberViewState(full=True)
        # Seed the delivered set exactly; per-stream watermarks stay
        # unknown (we cannot recover which ordering a past message used),
        # so the increasing-order check starts at the next delivery.
        state.delivered.update(member._delivered.get(view.seq, ()))
        causal_engine = member._engines.get(CAUSAL)
        if causal_engine is not None:
            state.causal_clock = causal_engine._buffer.delivered_clock
        self._state.setdefault(key, {})[member.me] = state
        self._observed.setdefault(member.me, {}).setdefault(key[0], set()).add(
            key[1]
        )

    # ------------------------------------------------------------- recording

    def _report(self, code: str, group: str, member: Address, detail: str) -> None:
        trace_id = span_id = None
        network = self._network
        if network is not None and network.trace is not None:
            ids = network.trace.context_ids()
            if ids is not None:
                trace_id, span_id = ids
        self.violations.append(
            Violation(code, group, member, detail, trace_id, span_id)
        )
        if self.strict:
            where = f" (trace {trace_id} span {span_id})" if trace_id else ""
            raise VirtualSynchronyViolation(
                code, f"group={group} member={member}: {detail}{where}"
            )

    def observe_delivery(self, member: Address, data: Any) -> None:
        """Record (and check) one delivery of a GroupData at one member."""
        self.deliveries_checked += 1
        key = (data.group, data.view_seq)
        per_member = self._state.setdefault(key, {})
        state = per_member.get(member)
        if state is None:
            # A view we never saw this member install: only relative
            # checks are sound from here on.
            state = _MemberViewState(full=False)
            per_member[member] = state
        if state.closed:
            self._report(
                "VS005",
                data.group,
                member,
                f"delivery of {data.message_id} into closed view seq "
                f"{data.view_seq}",
            )
        if data.message_id in state.delivered:
            self._report(
                "VS005",
                data.group,
                member,
                f"duplicate delivery of {data.message_id} in view seq "
                f"{data.view_seq}",
            )
        sender, seq = data.message_id
        stream = (sender, data.ordering)
        last = state.watermarks.get(stream)
        if last is not None and seq <= last:
            self._report(
                "VS002",
                data.group,
                member,
                f"per-sender reordering: delivered {data.ordering} "
                f"{sender}#{seq} after #{last} in view seq {data.view_seq}",
            )
        state.watermarks[stream] = seq
        state.delivered.add(data.message_id)
        if data.ordering == CAUSAL and state.full:
            self._check_causal(member, data, state)
        if data.ordering == TOTAL:
            state.total_order.append(data.message_id)

    def _check_causal(self, member: Address, data: Any, state: _MemberViewState) -> None:
        stamp: Optional[VectorClock] = data.stamp
        if stamp is None:
            self._report(
                "VS003",
                data.group,
                member,
                f"causal message {data.message_id} has no vector stamp",
            )
            return
        clock = state.causal_clock
        sender = data.sender
        if stamp.get(sender) != clock.get(sender) + 1:
            self._report(
                "VS003",
                data.group,
                member,
                f"causal delivery of {data.message_id} skips sender "
                f"predecessors: stamp[{sender}]={stamp.get(sender)}, "
                f"delivered={clock.get(sender)}",
            )
        missing = [
            site
            for site, count in stamp.items()
            if site != sender and count > clock.get(site)
        ]
        if missing:
            self._report(
                "VS003",
                data.group,
                member,
                f"causal delivery of {data.message_id} precedes its "
                f"dependencies from {sorted(missing)}",
            )
        state.causal_clock = clock.merged(stamp)

    def observe_view(self, member: Address, event: ViewEvent) -> None:
        """Record a view installation; runs the view-agreement check and
        closes the member's previous view (the virtual-synchrony check)."""
        self.views_checked += 1
        view = event.view
        key = (view.group, view.seq)
        self._note_view_membership(member, key, tuple(view.members))
        if member not in view.members:
            return  # departed/excluded: no survivor guarantees to check
        # Close the previous view at this member and compare delivered
        # sets against other fully-observed survivors.
        prev_key = (view.group, view.seq - 1)
        prev_state = self._state.get(prev_key, {}).get(member)
        if prev_state is not None and not prev_state.closed:
            prev_state.closed = True
            if prev_state.full:
                self._check_gap_free(prev_key, member, prev_state)
                self._compare_closed_view(prev_key, member)
        self._state.setdefault(key, {}).setdefault(
            member, _MemberViewState(full=True)
        )
        self._observed.setdefault(member, {}).setdefault(view.group, set()).add(
            view.seq
        )

    def _note_view_membership(
        self, member: Address, key: _ViewKey, members: Tuple[Address, ...]
    ) -> None:
        agreed = self._views.get(key)
        if agreed is None:
            self._views[key] = members
        elif agreed != members:
            self._report(
                "VS001",
                key[0],
                member,
                f"view seq {key[1]} diverges: {members} vs {agreed}",
            )

    # ----------------------------------------------------------- comparisons

    def _fully_observed(self, member: Address, group: str, seq: int) -> bool:
        return seq in self._observed.get(member, {}).get(group, set())

    def _check_gap_free(
        self, key: _ViewKey, member: Address, state: _MemberViewState
    ) -> None:
        """Every sender's delivered seqs must be exactly 1..max — sound
        once the view is complete (closed by a flush, or drained)."""
        group, view_seq = key
        per_sender: Dict[Address, Set[int]] = {}
        for sender, seq in state.delivered:
            per_sender.setdefault(sender, set()).add(seq)
        for sender, seqs in sorted(per_sender.items()):
            highest = max(seqs)
            missing = set(range(1, highest)) - seqs
            if missing:
                self._report(
                    "VS002",
                    group,
                    member,
                    f"per-sender gap: view seq {view_seq} delivered "
                    f"{sender}#{highest} but never #{sorted(missing)}",
                )

    def _compare_closed_view(self, key: _ViewKey, member: Address) -> None:
        group, seq = key
        mine = self._state[key][member].delivered
        for other, other_state in self._state.get(key, {}).items():
            if other == member or not other_state.closed:
                continue
            if not (other_state.full and self._fully_observed(other, group, seq)):
                continue
            if other_state.delivered != mine:
                only_mine = sorted(mine - other_state.delivered)
                only_other = sorted(other_state.delivered - mine)
                self._report(
                    "VS004",
                    group,
                    member,
                    f"view seq {seq} delivery sets diverge from {other}: "
                    f"only here {only_mine}, only there {only_other}",
                )

    def _compare_total_orders(self) -> None:
        for (group, seq), per_member in sorted(self._state.items()):
            members = sorted(m for m, s in per_member.items() if s.total_order)
            for i, a in enumerate(members):
                for b in members[i + 1 :]:
                    order_a = per_member[a].total_order
                    order_b = per_member[b].total_order
                    common = set(order_a) & set(order_b)
                    shared_a = [m for m in order_a if m in common]
                    shared_b = [m for m in order_b if m in common]
                    if shared_a != shared_b:
                        self._report(
                            "VS006",
                            group,
                            a,
                            f"TOTAL order in view seq {seq} diverges from "
                            f"{b}: {shared_a} vs {shared_b}",
                        )

    # ---------------------------------------------------------------- report

    def check(self, at_quiescence: bool = False) -> Dict[str, int]:
        """Run the cross-member comparisons and raise on any violation.

        With ``at_quiescence=True`` the delivery sets of still-open views
        are also compared — only valid once the simulation has drained
        (every multicast has reached every member).
        """
        self._compare_total_orders()
        if at_quiescence:
            for (group, seq), per_member in sorted(self._state.items()):
                for addr, state in sorted(per_member.items()):
                    if state.full and not state.closed:
                        self._check_gap_free((group, seq), addr, state)
                eligible = {
                    m: s.delivered
                    for m, s in per_member.items()
                    if s.full and not s.closed and self._fully_observed(m, group, seq)
                }
                sets = {frozenset(v) for v in eligible.values()}
                if len(sets) > 1:
                    detail = ", ".join(
                        f"{m}:{len(v)}" for m, v in sorted(eligible.items())
                    )
                    self._report(
                        "VS004",
                        group,
                        next(iter(sorted(eligible))),
                        f"open view seq {seq} delivery sets diverge at "
                        f"quiescence ({detail})",
                    )
        if self.violations:
            summary = "; ".join(
                f"{v.code}@{v.group}/{v.member}" for v in self.violations[:5]
            )
            raise VirtualSynchronyViolation(
                self.violations[0].code,
                f"{len(self.violations)} violation(s): {summary}",
            )
        return self.summary()

    def summary(self) -> Dict[str, int]:
        return {
            "deliveries_checked": self.deliveries_checked,
            "views_checked": self.views_checked,
            "violations": len(self.violations),
        }


def install_sanitizer(
    members: Iterable[Any], strict: bool = True
) -> VirtualSynchronySanitizer:
    """Convenience: attach a fresh sanitizer to every given member."""
    sanitizer = VirtualSynchronySanitizer(strict=strict)
    sanitizer.attach_all(members)
    return sanitizer
