"""Tracker-style bootstrap control plane over synchronous UDP.

The deployment's data plane is the asyncio :class:`~repro.runtime.
socket_backend.SocketFabric`; bootstrap happens *before* any event loop
runs, so the control plane is deliberately dumb: one blocking UDP socket
per side, control frames from the same :mod:`repro.net.wire` codec, and
attempt-counted retry loops (socket timeouts bound every wait — no
wall-clock reads, per RL001, and no protocol state survives a lost
datagram that a resend cannot rebuild).

:class:`ControlEndpoint` mirrors the process layer's dispatch idiom —
``endpoint.on(Kind, handler)`` routed by payload type — so the RL013
handler census covers the control plane exactly like any other wire
surface.
"""

from __future__ import annotations

import socket
from typing import Any, Callable, Dict, Optional, Tuple

from repro.deploy.messages import (
    NodeRegister,
    NodeResult,
    PeerList,
    RegisterAck,
    ShutdownCmd,
)
from repro.net.wire.codec import (
    CodecError,
    FRAME_CONTROL,
    decode_frame,
    encode_control_frame,
)

Endpoint = Tuple[str, int]

# One blocking-recv slice; every bounded wait below is counted in these.
_PUMP_TIMEOUT = 0.1
# Bootstrap budget: 600 pumps x 0.1 s = 60 s, the CI hard ceiling.
_DEFAULT_ATTEMPTS = 600
# Resend cadence during a wait (every Nth empty pump).
_RESEND_EVERY = 5


class TrackerError(RuntimeError):
    """Bootstrap failed: a peer never registered, reported or stopped."""


class ControlEndpoint:
    """Synchronous UDP endpoint dispatching control frames by kind."""

    def __init__(self, host: str = "127.0.0.1", port: int = 0) -> None:
        self._sock = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
        self._sock.bind((host, port))
        self._sock.settimeout(_PUMP_TIMEOUT)
        self._handlers: Dict[type, Callable[[Any, Endpoint], None]] = {}
        self.decode_errors = 0

    @property
    def endpoint(self) -> Endpoint:
        name = self._sock.getsockname()
        return (name[0], name[1])

    def on(self, kind: type, handler: Callable[[Any, Endpoint], None]) -> None:
        """Register ``handler(message, sender_endpoint)`` for a kind."""
        self._handlers[kind] = handler

    def send(self, endpoint: Endpoint, payload: Any) -> None:
        self._sock.sendto(encode_control_frame(payload), endpoint)

    def pump(self) -> bool:
        """Receive and dispatch one control frame; False on timeout.
        Malformed or unexpected datagrams are counted and dropped."""
        try:
            data, addr = self._sock.recvfrom(65536)
        except (socket.timeout, ConnectionError, OSError):
            # ICMP port-unreachable surfaces as ConnectionError on some
            # platforms; either way the pump just came up empty.
            return False
        try:
            frame_kind, message = decode_frame(data)
            if frame_kind != FRAME_CONTROL:
                raise CodecError("data frame on the control plane")
        except CodecError:
            self.decode_errors += 1
            return True
        handler = self._handlers.get(message.__class__)
        if handler is not None:
            handler(message, (addr[0], addr[1]))
        return True

    def close(self) -> None:
        self._sock.close()


class Tracker:
    """The parent side: registration barrier, results, shutdown fan-out."""

    def __init__(self, expected: int, host: str = "127.0.0.1") -> None:
        if expected < 1:
            raise ValueError("a deployment needs at least one node")
        self.expected = expected
        self._endpoint = ControlEndpoint(host=host)
        self._control_addrs: Dict[int, Endpoint] = {}
        self._data_endpoints: Dict[int, Endpoint] = {}
        self._results: Dict[int, Any] = {}
        self._endpoint.on(NodeRegister, self._on_register)
        self._endpoint.on(NodeResult, self._on_result)

    @property
    def endpoint(self) -> Endpoint:
        return self._endpoint.endpoint

    @property
    def results(self) -> Dict[int, Any]:
        return dict(self._results)

    # -- handlers ------------------------------------------------------------

    def _on_register(self, message: NodeRegister, addr: Endpoint) -> None:
        self._control_addrs[message.node] = addr
        self._data_endpoints[message.node] = (message.host, message.port)
        self._endpoint.send(addr, RegisterAck(node=message.node))
        # Post-barrier re-register means the node lost its PeerList.
        if len(self._data_endpoints) == self.expected:
            self._endpoint.send(addr, self._peer_list())

    def _on_result(self, message: NodeResult, addr: Endpoint) -> None:
        self._results[message.node] = message.payload

    def _peer_list(self) -> PeerList:
        return PeerList(
            peers=tuple(
                (node, host, port)
                for node, (host, port) in sorted(self._data_endpoints.items())
            )
        )

    # -- phases --------------------------------------------------------------

    def wait_registered(self, attempts: int = _DEFAULT_ATTEMPTS) -> None:
        """Pump until all nodes registered, then release the barrier."""
        for _ in range(attempts):
            self._endpoint.pump()
            if len(self._data_endpoints) == self.expected:
                break
        else:
            raise TrackerError(
                f"only {len(self._data_endpoints)}/{self.expected} nodes "
                "registered before the bootstrap deadline"
            )
        peer_list = self._peer_list()
        for addr in self._control_addrs.values():
            self._endpoint.send(addr, peer_list)

    def wait_results(self, attempts: int = _DEFAULT_ATTEMPTS) -> Dict[int, Any]:
        for _ in range(attempts):
            self._endpoint.pump()
            if len(self._results) == self.expected:
                return dict(self._results)
        raise TrackerError(
            f"only {len(self._results)}/{self.expected} nodes reported "
            "results before the deadline"
        )

    def shutdown(self) -> None:
        """Fan ShutdownCmd out to every known node (thrice: UDP)."""
        for _ in range(3):
            for addr in self._control_addrs.values():
                self._endpoint.send(addr, ShutdownCmd())

    def close(self) -> None:
        self._endpoint.close()


class NodeClient:
    """The child side: register, await the barrier, report, await stop."""

    def __init__(self, node: int, tracker: Endpoint) -> None:
        self.node = node
        self._tracker = tracker
        self._endpoint = ControlEndpoint()
        self._acked = False
        self._peers: Optional[Dict[int, Endpoint]] = None
        self._stopped = False
        self._endpoint.on(RegisterAck, self._on_ack)
        self._endpoint.on(PeerList, self._on_peer_list)
        self._endpoint.on(ShutdownCmd, self._on_shutdown)

    def _on_ack(self, message: RegisterAck, addr: Endpoint) -> None:
        if message.node == self.node:
            self._acked = True

    def _on_peer_list(self, message: PeerList, addr: Endpoint) -> None:
        self._peers = {
            int(node): (host, int(port)) for node, host, port in message.peers
        }

    def _on_shutdown(self, message: ShutdownCmd, addr: Endpoint) -> None:
        self._stopped = True

    def register(
        self, data_endpoint: Endpoint, attempts: int = _DEFAULT_ATTEMPTS
    ) -> Dict[int, Endpoint]:
        """Announce our data endpoint; block until the peer list (the
        start barrier) arrives.  Returns {node index: data endpoint}."""
        register = NodeRegister(
            node=self.node, host=data_endpoint[0], port=data_endpoint[1]
        )
        for attempt in range(attempts):
            if self._peers is not None:
                return dict(self._peers)
            if attempt % _RESEND_EVERY == 0 and not self._acked:
                self._endpoint.send(self._tracker, register)
            elif attempt % (_RESEND_EVERY * 10) == 0:
                # Acked but no barrier yet: re-register occasionally in
                # case the tracker restarted or the PeerList was lost.
                self._endpoint.send(self._tracker, register)
            self._endpoint.pump()
        raise TrackerError(f"node {self.node}: no peer list from tracker")

    def report(self, payload: Any, attempts: int = _DEFAULT_ATTEMPTS) -> None:
        """Deliver our result; block until the tracker says shut down."""
        result = NodeResult(node=self.node, payload=payload)
        for attempt in range(attempts):
            if self._stopped:
                return
            if attempt % _RESEND_EVERY == 0:
                self._endpoint.send(self._tracker, result)
            self._endpoint.pump()
        raise TrackerError(f"node {self.node}: no shutdown from tracker")

    def close(self) -> None:
        self._endpoint.close()
