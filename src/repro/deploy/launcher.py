"""Multi-process deployment launcher: real OS processes over loopback.

``run_deployment`` is what ``python -m repro deploy`` drives: spawn N
child processes (``multiprocessing`` spawn context — each child is a
fresh interpreter importing the library, exactly like a real host), run
the tracker bootstrap (register → barrier → results → shutdown), then
gate the whole run on parity: the merged per-node results must match a
fresh sim-engine run of the identical scenario plan — same views, same
leaf placement, same per-sender delivery sequences — with every node's
strict sanitizer silent.
"""

from __future__ import annotations

import multiprocessing
import traceback
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.deploy.scenarios import (
    DEFAULT_TIME_SCALE,
    LATENCY,
    make_scenario,
    merge_results,
    run_reference,
)
from repro.deploy.tracker import NodeClient, Tracker, TrackerError

# Hard ceiling on waiting for children to exit after shutdown fan-out.
_JOIN_TIMEOUT = 20.0


@dataclass
class DeployOutcome:
    """What a deployment produced, parity verdict included."""

    ok: bool
    scenario: str
    nodes: int
    errors: List[str] = field(default_factory=list)
    reference: Dict[str, Any] = field(default_factory=dict)
    live: Dict[str, Any] = field(default_factory=dict)
    wire: Dict[str, int] = field(default_factory=dict)


def _node_main(
    scenario_name: str,
    size: Optional[int],
    nodes: int,
    time_scale: float,
    node: int,
    tracker_endpoint: Tuple[str, int],
) -> None:
    """Child entry point: one OS process = one deployment node."""
    from repro.proc.env import Environment
    from repro.runtime.socket_backend import SocketRuntime

    client = NodeClient(node, tracker_endpoint)
    runtime = None
    payload: Any
    try:
        scenario = make_scenario(scenario_name, size)
        owners = scenario.owners(nodes)
        runtime = SocketRuntime(
            seed=scenario.seed + node, time_scale=time_scale
        )
        data_endpoint = runtime.open()
        peers = client.register(data_endpoint)
        runtime.connect(
            {
                address: peers[owner]
                for address, owner in owners.items()
                if owner != node
            }
        )
        env = Environment(latency=LATENCY, runtime=runtime)
        local = [a for a, owner in owners.items() if owner == node]
        # t=0 is the barrier release on every node, so the scenario's
        # absolute-time schedule lines up across the deployment.
        runtime.reset_clock()
        state = scenario.build(env, local)
        env.run_for(scenario.duration)
        payload = scenario.results(state)
        payload["wire"] = runtime.fabric.wire_stats()
    except Exception:
        payload = {"error": traceback.format_exc()}
    try:
        client.report(payload)
    finally:
        client.close()
        if runtime is not None:
            runtime.close()
    raise SystemExit(1 if isinstance(payload, dict) and "error" in payload else 0)


def run_deployment(
    scenario_name: str,
    nodes: int = 3,
    size: Optional[int] = None,
    time_scale: float = DEFAULT_TIME_SCALE,
) -> DeployOutcome:
    """Deploy a scenario as ``nodes`` real OS processes; check parity."""
    scenario = make_scenario(scenario_name, size)
    if scenario.name == "hier" and nodes < 2:
        raise ValueError("the hier scenario needs >= 2 nodes (leaders + workers)")
    tracker = Tracker(expected=nodes)
    context = multiprocessing.get_context("spawn")
    children = [
        context.Process(
            target=_node_main,
            args=(
                scenario_name,
                size,
                nodes,
                time_scale,
                node,
                tracker.endpoint,
            ),
            daemon=True,
            name=f"deploy-node-{node}",
        )
        for node in range(nodes)
    ]
    errors: List[str] = []
    node_results: Dict[int, Any] = {}
    try:
        for child in children:
            child.start()
        tracker.wait_registered()
        node_results = tracker.wait_results()
        tracker.shutdown()
    except TrackerError as exc:
        errors.append(str(exc))
    finally:
        for child in children:
            child.join(timeout=_JOIN_TIMEOUT / max(1, len(children)))
        for child in children:
            if child.is_alive():
                errors.append(f"{child.name} did not exit; terminated")
                child.terminate()
                child.join(timeout=2.0)
        tracker.close()

    wire: Dict[str, int] = {}
    slices = []
    for node in sorted(node_results):
        payload = node_results[node]
        if not isinstance(payload, dict):
            errors.append(f"node {node} reported malformed result {payload!r}")
            continue
        if "error" in payload:
            errors.append(f"node {node} failed:\n{payload['error']}")
            continue
        for key, value in payload.pop("wire", {}).items():
            wire[key] = wire.get(key, 0) + int(value)
        slices.append(payload)

    live = merge_results(slices)
    reference: Dict[str, Any] = {}
    if not errors:
        reference = run_reference(scenario)
        errors.extend(scenario.check(reference, live))
        if not live.get("counters", {}).get("deliveries_checked"):
            errors.append("live sanitizers checked no deliveries")
        if not reference.get("counters", {}).get("deliveries_checked"):
            errors.append("reference sanitizer checked no deliveries")
        if not wire.get("frames_received"):
            errors.append("no wire frames crossed the loopback")
        if wire.get("decode_errors"):
            errors.append(f"{wire['decode_errors']} wire decode errors")
    return DeployOutcome(
        ok=not errors,
        scenario=scenario_name,
        nodes=nodes,
        errors=errors,
        reference=reference,
        live=live,
        wire=wire,
    )
