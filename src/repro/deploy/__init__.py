"""Multi-process deployment: tracker bootstrap over real sockets.

The production on-ramp (docs/deployment.md): ``launcher`` spawns N OS
processes, each hosting a slice of a scenario's logical processes on a
:class:`~repro.runtime.socket_backend.SocketRuntime`; ``tracker`` is the
UDP control plane they register with (peer exchange, start barrier,
result collection, shutdown fan-out); ``scenarios`` defines the flat and
hierarchical parity scenarios every node — and the in-process sim
reference the launcher checks against — executes identically.
"""

from repro.deploy.cluster import LoopbackCluster
from repro.deploy.launcher import DeployOutcome, run_deployment
from repro.deploy.scenarios import FlatScenario, HierScenario, make_scenario

__all__ = [
    "DeployOutcome",
    "FlatScenario",
    "HierScenario",
    "LoopbackCluster",
    "make_scenario",
    "run_deployment",
]
