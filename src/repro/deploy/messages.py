"""Deploy control-plane message kinds (wire ids 64-69).

The tracker handshake (docs/deployment.md):

1. node → tracker  :class:`NodeRegister` (resent until acked);
2. tracker → node  :class:`RegisterAck`;
3. tracker → all   :class:`PeerList` once every node registered — this
   is the start barrier; a node that re-registers after the barrier is
   re-sent the list (datagram loss recovery);
4. node → tracker  :class:`NodeResult` (resent until shut down);
5. tracker → all   :class:`ShutdownCmd` once every result arrived.

Registered with the :mod:`repro.net.wire` codec at import — in the 64+
id range reserved for the control plane, keeping ``net`` below
``deploy`` in the layering (the protocol table in
``repro.net.wire.registry`` never imports this package).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Tuple

from repro.net.wire.codec import register_kind


@dataclass
class NodeRegister:
    """A node announcing itself: index + data-plane UDP endpoint."""

    node: int
    host: str
    port: int


@dataclass
class RegisterAck:
    node: int


@dataclass
class PeerList:
    """The start barrier: every node's data endpoint, by node index."""

    peers: Tuple[Any, ...] = field(default_factory=tuple)  # (node, host, port)


@dataclass
class NodeResult:
    """A node's scenario outcome (or {'error': traceback} on failure)."""

    node: int
    payload: Any = None


@dataclass
class ShutdownCmd:
    pass


register_kind(64, NodeRegister)
register_kind(65, RegisterAck)
register_kind(66, PeerList)
register_kind(67, NodeResult)
register_kind(68, ShutdownCmd)
