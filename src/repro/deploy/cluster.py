"""In-process loopback cluster: N socket runtimes, one event loop.

The middle rung of the deployment ladder (docs/deployment.md): every
node has its own :class:`~repro.runtime.socket_backend.SocketRuntime`,
its own Environment and its own UDP socket — all cross-node traffic is
real wire frames over loopback — but everything is multiplexed on one
asyncio loop in one Python process.  That makes it cheap enough for the
parity matrix in ``tests/test_runtime_parity.py`` and the ``--wire``
perf report, while exercising the identical codec/fabric path the
multi-process launcher uses.
"""

from __future__ import annotations

from typing import Any, Dict, List, Tuple

from repro.deploy.scenarios import (
    DEFAULT_TIME_SCALE,
    LATENCY,
    merge_results,
)
from repro.proc.env import Environment
from repro.runtime.socket_backend import SocketRuntime, run_cluster


class LoopbackCluster:
    """Run one scenario as ``nodes`` socket runtimes over loopback."""

    def __init__(
        self,
        scenario,
        nodes: int = 3,
        time_scale: float = DEFAULT_TIME_SCALE,
    ) -> None:
        if nodes < 1:
            raise ValueError("need at least one node")
        self.scenario = scenario
        self.nodes = nodes
        self.time_scale = time_scale

    def run(self) -> Tuple[Dict[str, Any], Dict[str, int]]:
        """Execute the scenario; returns (merged results, wire stats)."""
        scenario = self.scenario
        owners = scenario.owners(self.nodes)
        runtimes: List[SocketRuntime] = []
        try:
            for node in range(self.nodes):
                runtimes.append(
                    SocketRuntime(
                        seed=scenario.seed + node,
                        time_scale=self.time_scale,
                        # Node 0 owns the loop; the rest share it.
                        loop=runtimes[0].loop if runtimes else None,
                    )
                )
            endpoints = [runtime.open() for runtime in runtimes]
            for node, runtime in enumerate(runtimes):
                runtime.connect(
                    {
                        address: endpoints[owner]
                        for address, owner in owners.items()
                        if owner != node
                    }
                )
            environments = [
                Environment(latency=LATENCY, runtime=runtime)
                for runtime in runtimes
            ]
            states = []
            for node, env in enumerate(environments):
                local = [a for a, owner in owners.items() if owner == node]
                # Align every node's t=0 to "all nodes wired", mirroring
                # the launcher's barrier release.
                runtimes[node].reset_clock()
                states.append(scenario.build(env, local))
            run_cluster(runtimes, scenario.duration)
            merged = merge_results(
                scenario.results(state) for state in states
            )
            wire: Dict[str, int] = {}
            for runtime in runtimes:
                for key, value in runtime.fabric.wire_stats().items():
                    wire[key] = wire.get(key, 0) + value
            return merged, wire
        finally:
            # Close the loop owner last: a dead loop cannot run the other
            # transports' close callbacks.
            for runtime in reversed(runtimes):
                runtime.close()
