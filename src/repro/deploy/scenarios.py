"""Deployment parity scenarios: one definition, every engine.

A scenario is a deterministic plan — logical addresses, who owns which
address at a given node count, and a schedule of absolute logical times
(group bootstrap, staggered joins, traffic bursts).  The same plan runs:

* as the **sim reference** — one Environment owning every address;
* as an **in-process loopback cluster** — N SocketRuntimes on one event
  loop (:class:`repro.deploy.cluster.LoopbackCluster`);
* as a **real deployment** — one slice per OS process
  (:mod:`repro.deploy.launcher`).

Because every schedule entry is an absolute logical time and each node's
logical clock starts at the tracker's barrier release, cross-node skew
(milliseconds of wall time) stays far inside the scheduled gaps (the
hierarchical join stagger is 0.2 *logical* seconds — 50 ms of wall time
at the default ``time_scale=0.25``), so placement and view sequences are
engine-independent; per-sender delivery order is protocol-enforced and
needs no timing argument at all.

Only protocol-guaranteed outcomes are compared (:meth:`check`): final
views, leaf placement, per-sender delivery sequences.  Global
interleaving across senders is explicitly *not* — the wall clock races
the OS (see tests/test_runtime_parity.py).
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.core import LargeGroupParams, ReorgPolicy, build_leader_group
from repro.core.hierarchy import LargeGroupMember
from repro.membership import CAUSAL, FIFO, TOTAL
from repro.membership.service import GroupNode
from repro.metrics.sanitizer import install_sanitizer
from repro.net.latency import FixedLatency

# Every scenario runs the parity suite's LAN model.
LATENCY = FixedLatency(0.002)
DEFAULT_TIME_SCALE = 0.25

_ORDERINGS = (FIFO, CAUSAL, TOTAL)


def per_sender(log: Iterable[Tuple[str, Any]]) -> Dict[str, List[Any]]:
    """Collapse a receiver's delivery log to {sender: [payloads]}."""
    out: Dict[str, List[Any]] = {}
    for sender, payload in log:
        out.setdefault(sender, []).append(payload)
    return out


class _Slice:
    """One node's share of a scenario: local members, logs, sanitizer."""

    def __init__(self) -> None:
        self.members: List[Any] = []
        self.logs: Dict[str, List[Tuple[str, Any]]] = {}
        self.sanitizer = None

    def _record(self, me: str):
        log = self.logs[me] = []
        return lambda event: log.append((event.sender, event.payload))

    def counters(self) -> Dict[str, int]:
        if self.sanitizer is None:
            return {}
        return dict(self.sanitizer.check(at_quiescence=True))


class FlatScenario:
    """A flat group, one burst per member across all three orderings."""

    name = "flat"
    group = "g"

    def __init__(self, members: int = 4, seed: int = 7) -> None:
        if members < 3:
            raise ValueError("flat parity needs at least 3 members")
        self.members = members
        self.seed = seed

    # -- plan ----------------------------------------------------------------

    @property
    def duration(self) -> float:
        # Last burst starts at 0.10 + 0.05*(members-1); generous settle.
        return 0.10 + 0.05 * self.members + 1.75

    def addresses(self) -> List[str]:
        return [f"{self.group}-{i}" for i in range(self.members)]

    def owners(self, nodes: int) -> Dict[str, int]:
        """Round-robin: address i lives on OS process i % nodes."""
        return {
            address: i % nodes for i, address in enumerate(self.addresses())
        }

    # -- execution -----------------------------------------------------------

    def build(self, env, local: Iterable[str]) -> _Slice:
        """Create this node's members and schedule its share of the plan
        (absolute logical times; call with ``env.now == 0``)."""
        local_set = set(local)
        addresses = self.addresses()
        state = _Slice()
        by_address = {}
        for address in addresses:
            if address not in local_set:
                continue
            node = GroupNode(env, address)
            member = node.runtime.create_group(self.group, addresses)
            state.members.append(member)
            by_address[address] = member
            member.add_delivery_listener(state._record(address))
        state.sanitizer = install_sanitizer(state.members)
        for i, address in enumerate(addresses):
            member = by_address.get(address)
            if member is None:
                continue
            ordering = _ORDERINGS[i % 3]
            payloads = tuple(f"{address}/m{j}" for j in range(2 + (i == 0)))

            def burst(member=member, ordering=ordering, payloads=payloads):
                for payload in payloads:
                    member.multicast(payload, ordering)

            env.scheduler.at(0.10 + 0.05 * i, burst)
        return state

    def results(self, state: _Slice) -> Dict[str, Any]:
        return {
            "views": {m.me: tuple(m.members) for m in state.members},
            "seqs": {me: per_sender(log) for me, log in state.logs.items()},
            "counters": state.counters(),
        }

    # -- parity --------------------------------------------------------------

    def check(self, reference: Dict, live: Dict) -> List[str]:
        errors = []
        if reference["views"] != live["views"]:
            errors.append(
                f"views diverge: sim {reference['views']!r} "
                f"!= live {live['views']!r}"
            )
        if len(live["views"]) != self.members:
            errors.append(
                f"live run reported {len(live['views'])}/{self.members} members"
            )
        if reference["seqs"] != live["seqs"]:
            errors.append(
                f"per-sender delivery sequences diverge: "
                f"sim {reference['seqs']!r} != live {live['seqs']!r}"
            )
        return errors


class HierScenario:
    """A hierarchical service: static leaders, staggered worker joins,
    one leaf burst from the first and last worker."""

    name = "hier"
    service = "svc"
    join_stagger = 0.2

    def __init__(
        self,
        workers: int = 6,
        seed: int = 11,
        reorg: Optional[ReorgPolicy] = None,
    ) -> None:
        if workers < 2:
            raise ValueError("hier parity needs at least 2 workers")
        self.workers = workers
        self.seed = seed
        # The optional reorg knob: a load-driven policy turns on leaf
        # load reporting and rate-triggered splits/merges on every
        # engine this scenario runs on; the default stays the frozen
        # size-only policy.
        self.params = LargeGroupParams(
            resiliency=2,
            fanout=3,
            reorg=reorg if reorg is not None else ReorgPolicy(),
        )

    # -- plan ----------------------------------------------------------------

    @property
    def place_time(self) -> float:
        """When placement must have settled: all joins done + slack for
        assignment RPCs, leaf flushes and any split reorganisation."""
        return self.join_stagger * self.workers + 2.8

    @property
    def duration(self) -> float:
        return self.place_time + 3.0

    def leader_addresses(self) -> Tuple[str, ...]:
        return tuple(
            f"{self.service}-ldr-{i}"
            for i in range(self.params.leader_group_size)
        )

    def worker_addresses(self) -> List[str]:
        return [f"{self.service}-w-{i}" for i in range(self.workers)]

    def addresses(self) -> List[str]:
        return list(self.leader_addresses()) + self.worker_addresses()

    def owners(self, nodes: int) -> Dict[str, int]:
        """Leaders stay together on node 0 (the leader subgroup is one
        statically bootstrapped group); workers round-robin across the
        remaining nodes."""
        owners = {address: 0 for address in self.leader_addresses()}
        for i, address in enumerate(self.worker_addresses()):
            owners[address] = (i % (nodes - 1)) + 1 if nodes > 1 else 0
        return owners

    # -- execution -----------------------------------------------------------

    def build(self, env, local: Iterable[str]) -> _Slice:
        local_set = set(local)
        state = _Slice()
        leader_addresses = self.leader_addresses()
        if local_set.intersection(leader_addresses):
            if not local_set.issuperset(leader_addresses):
                raise ValueError("the leader subgroup cannot be split")
            build_leader_group(env, self.service, self.params)
        placed_members: List[LargeGroupMember] = []
        for i, address in enumerate(self.worker_addresses()):
            if address not in local_set:
                continue
            node = GroupNode(env, address)
            member = LargeGroupMember(
                node, self.service, leader_addresses, params=self.params
            )
            placed_members.append(member)
            state.members.append(member)
            member.add_delivery_listener(state._record(address))
            env.scheduler.at(self.join_stagger * (i + 1), member.join)

        def install():
            state.sanitizer = install_sanitizer(
                m.leaf_member for m in placed_members if m.is_member
            )

        env.scheduler.at(self.place_time, install)
        senders = {self.worker_addresses()[0]: 0, self.worker_addresses()[-1]: 1}
        for member in placed_members:
            offset = senders.get(member.me)
            if offset is None:
                continue

            def burst(member=member):
                if not member.is_member:
                    return  # unplaced: parity check reports the hole
                for i in range(3):
                    member.leaf_multicast(f"{member.me}/m{i}", FIFO)

            env.scheduler.at(self.place_time + 0.1 + 0.2 * offset, burst)
        return state

    def results(self, state: _Slice) -> Dict[str, Any]:
        placement = {}
        for member in state.members:
            if member.is_member:
                leaf = member.leaf_member
                placement[member.me] = (leaf.group, tuple(leaf.members))
            else:
                placement[member.me] = None
        return {
            "placement": placement,
            "seqs": {me: per_sender(log) for me, log in state.logs.items()},
            "counters": state.counters(),
        }

    # -- parity --------------------------------------------------------------

    def check(self, reference: Dict, live: Dict) -> List[str]:
        errors = []
        unplaced = sorted(
            me for me, slot in live["placement"].items() if slot is None
        )
        if unplaced:
            errors.append(f"workers never placed in a leaf: {unplaced}")
        if len(live["placement"]) != self.workers:
            errors.append(
                f"live run reported {len(live['placement'])}/"
                f"{self.workers} workers"
            )
        if reference["placement"] != live["placement"]:
            errors.append(
                f"leaf placement diverges: sim {reference['placement']!r} "
                f"!= live {live['placement']!r}"
            )
        if reference["seqs"] != live["seqs"]:
            errors.append(
                f"per-sender delivery sequences diverge: "
                f"sim {reference['seqs']!r} != live {live['seqs']!r}"
            )
        return errors


def make_scenario(name: str, size: Optional[int] = None):
    """CLI/test factory: ``flat`` (group size), ``hier`` (workers), or
    ``hier-reorg`` (the same plan with a load-driven reorg policy — leaf
    load reports and rate-triggered splits live on every engine)."""
    if name == "flat":
        return FlatScenario(members=size if size else 4)
    if name == "hier":
        return HierScenario(workers=size if size else 6)
    if name == "hier-reorg":
        return HierScenario(
            workers=size if size else 6,
            reorg=ReorgPolicy(
                mode="load",
                report_interval=0.5,
                cooldown=4.0,
                hot_delivery_rate=10.0,
                hot_request_rate=8.0,
                cold_delivery_rate=0.5,
                cold_request_rate=0.5,
            ),
        )
    raise ValueError(
        f"unknown scenario {name!r} (expected flat|hier|hier-reorg)"
    )


def merge_results(per_node: Iterable[Dict[str, Any]]) -> Dict[str, Any]:
    """Union per-node result slices into one cluster-wide result: member
    keyed maps merge disjointly, sanitizer counters sum."""
    merged: Dict[str, Any] = {}
    for result in per_node:
        for key, value in result.items():
            if key == "counters":
                acc = merged.setdefault("counters", {})
                for name, count in value.items():
                    acc[name] = acc.get(name, 0) + count
            else:
                merged.setdefault(key, {}).update(value)
    return merged


def run_reference(scenario) -> Dict[str, Any]:
    """The sim engine runs the identical plan in one Environment — the
    parity baseline every deployment is checked against."""
    from repro.proc.env import Environment
    from repro.runtime.sim_backend import SimRuntime

    env = Environment(latency=LATENCY, runtime=SimRuntime(seed=scenario.seed))
    state = scenario.build(env, scenario.addresses())
    env.run_for(scenario.duration)
    return scenario.results(state)
