"""Deployment parity scenarios: one definition, every engine.

A scenario is a deterministic plan — logical addresses, who owns which
address at a given node count, and a schedule of absolute logical times
(group bootstrap, staggered joins, traffic bursts).  The same plan runs:

* as the **sim reference** — one Environment owning every address;
* as an **in-process loopback cluster** — N SocketRuntimes on one event
  loop (:class:`repro.deploy.cluster.LoopbackCluster`);
* as a **real deployment** — one slice per OS process
  (:mod:`repro.deploy.launcher`).

Because every schedule entry is an absolute logical time and each node's
logical clock starts at the tracker's barrier release, cross-node skew
(milliseconds of wall time) stays far inside the scheduled gaps (the
hierarchical join stagger is 0.2 *logical* seconds — 50 ms of wall time
at the default ``time_scale=0.25``), so placement and view sequences are
engine-independent; per-sender delivery order is protocol-enforced and
needs no timing argument at all.

Only protocol-guaranteed outcomes are compared (:meth:`check`): final
views, leaf placement, per-sender delivery sequences.  Global
interleaving across senders is explicitly *not* — the wall clock races
the OS (see tests/test_runtime_parity.py).
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.core import LargeGroupParams, ReorgPolicy, build_leader_group
from repro.core.hierarchy import LargeGroupMember
from repro.membership import CAUSAL, FIFO, TOTAL
from repro.membership.service import GroupNode
from repro.metrics.sanitizer import install_sanitizer
from repro.net.latency import FixedLatency

# Every scenario runs the parity suite's LAN model.
LATENCY = FixedLatency(0.002)
DEFAULT_TIME_SCALE = 0.25

_ORDERINGS = (FIFO, CAUSAL, TOTAL)


def per_sender(log: Iterable[Tuple[str, Any]]) -> Dict[str, List[Any]]:
    """Collapse a receiver's delivery log to {sender: [payloads]}."""
    out: Dict[str, List[Any]] = {}
    for sender, payload in log:
        out.setdefault(sender, []).append(payload)
    return out


class _Slice:
    """One node's share of a scenario: local members, logs, sanitizer."""

    def __init__(self) -> None:
        self.members: List[Any] = []
        self.logs: Dict[str, List[Tuple[str, Any]]] = {}
        self.sanitizer = None

    def _record(self, me: str):
        log = self.logs[me] = []
        return lambda event: log.append((event.sender, event.payload))

    def counters(self) -> Dict[str, int]:
        if self.sanitizer is None:
            return {}
        return dict(self.sanitizer.check(at_quiescence=True))


class FlatScenario:
    """A flat group, one burst per member across all three orderings."""

    name = "flat"
    group = "g"

    def __init__(self, members: int = 4, seed: int = 7) -> None:
        if members < 3:
            raise ValueError("flat parity needs at least 3 members")
        self.members = members
        self.seed = seed

    # -- plan ----------------------------------------------------------------

    @property
    def duration(self) -> float:
        # Last burst starts at 0.10 + 0.05*(members-1); generous settle.
        return 0.10 + 0.05 * self.members + 1.75

    def addresses(self) -> List[str]:
        return [f"{self.group}-{i}" for i in range(self.members)]

    def owners(self, nodes: int) -> Dict[str, int]:
        """Round-robin: address i lives on OS process i % nodes."""
        return {
            address: i % nodes for i, address in enumerate(self.addresses())
        }

    # -- execution -----------------------------------------------------------

    def build(self, env, local: Iterable[str]) -> _Slice:
        """Create this node's members and schedule its share of the plan
        (absolute logical times; call with ``env.now == 0``)."""
        local_set = set(local)
        addresses = self.addresses()
        state = _Slice()
        by_address = {}
        for address in addresses:
            if address not in local_set:
                continue
            node = GroupNode(env, address)
            member = node.runtime.create_group(self.group, addresses)
            state.members.append(member)
            by_address[address] = member
            member.add_delivery_listener(state._record(address))
        state.sanitizer = install_sanitizer(state.members)
        for i, address in enumerate(addresses):
            member = by_address.get(address)
            if member is None:
                continue
            ordering = _ORDERINGS[i % 3]
            payloads = tuple(f"{address}/m{j}" for j in range(2 + (i == 0)))

            def burst(member=member, ordering=ordering, payloads=payloads):
                for payload in payloads:
                    member.multicast(payload, ordering)

            env.scheduler.at(0.10 + 0.05 * i, burst)
        return state

    def results(self, state: _Slice) -> Dict[str, Any]:
        return {
            "views": {m.me: tuple(m.members) for m in state.members},
            "seqs": {me: per_sender(log) for me, log in state.logs.items()},
            "counters": state.counters(),
        }

    # -- parity --------------------------------------------------------------

    def check(self, reference: Dict, live: Dict) -> List[str]:
        errors = []
        if reference["views"] != live["views"]:
            errors.append(
                f"views diverge: sim {reference['views']!r} "
                f"!= live {live['views']!r}"
            )
        if len(live["views"]) != self.members:
            errors.append(
                f"live run reported {len(live['views'])}/{self.members} members"
            )
        if reference["seqs"] != live["seqs"]:
            errors.append(
                f"per-sender delivery sequences diverge: "
                f"sim {reference['seqs']!r} != live {live['seqs']!r}"
            )
        return errors


class HierScenario:
    """A hierarchical service: static leaders, staggered worker joins,
    one leaf burst from the first and last worker."""

    name = "hier"
    service = "svc"
    join_stagger = 0.2

    def __init__(
        self,
        workers: int = 6,
        seed: int = 11,
        reorg: Optional[ReorgPolicy] = None,
    ) -> None:
        if workers < 2:
            raise ValueError("hier parity needs at least 2 workers")
        self.workers = workers
        self.seed = seed
        # The optional reorg knob: a load-driven policy turns on leaf
        # load reporting and rate-triggered splits/merges on every
        # engine this scenario runs on; the default stays the frozen
        # size-only policy.
        self.params = LargeGroupParams(
            resiliency=2,
            fanout=3,
            reorg=reorg if reorg is not None else ReorgPolicy(),
        )

    # -- plan ----------------------------------------------------------------

    @property
    def place_time(self) -> float:
        """When placement must have settled: all joins done + slack for
        assignment RPCs, leaf flushes and any split reorganisation."""
        return self.join_stagger * self.workers + 2.8

    @property
    def duration(self) -> float:
        return self.place_time + 3.0

    def leader_addresses(self) -> Tuple[str, ...]:
        return tuple(
            f"{self.service}-ldr-{i}"
            for i in range(self.params.leader_group_size)
        )

    def worker_addresses(self) -> List[str]:
        return [f"{self.service}-w-{i}" for i in range(self.workers)]

    def addresses(self) -> List[str]:
        return list(self.leader_addresses()) + self.worker_addresses()

    def owners(self, nodes: int) -> Dict[str, int]:
        """Leaders stay together on node 0 (the leader subgroup is one
        statically bootstrapped group); workers round-robin across the
        remaining nodes."""
        owners = {address: 0 for address in self.leader_addresses()}
        for i, address in enumerate(self.worker_addresses()):
            owners[address] = (i % (nodes - 1)) + 1 if nodes > 1 else 0
        return owners

    # -- execution -----------------------------------------------------------

    def build(self, env, local: Iterable[str]) -> _Slice:
        local_set = set(local)
        state = _Slice()
        leader_addresses = self.leader_addresses()
        if local_set.intersection(leader_addresses):
            if not local_set.issuperset(leader_addresses):
                raise ValueError("the leader subgroup cannot be split")
            build_leader_group(env, self.service, self.params)
        placed_members: List[LargeGroupMember] = []
        for i, address in enumerate(self.worker_addresses()):
            if address not in local_set:
                continue
            node = GroupNode(env, address)
            member = LargeGroupMember(
                node, self.service, leader_addresses, params=self.params
            )
            placed_members.append(member)
            state.members.append(member)
            member.add_delivery_listener(state._record(address))
            env.scheduler.at(self.join_stagger * (i + 1), member.join)

        def install():
            state.sanitizer = install_sanitizer(
                m.leaf_member for m in placed_members if m.is_member
            )

        env.scheduler.at(self.place_time, install)
        senders = {self.worker_addresses()[0]: 0, self.worker_addresses()[-1]: 1}
        for member in placed_members:
            offset = senders.get(member.me)
            if offset is None:
                continue

            def burst(member=member):
                if not member.is_member:
                    return  # unplaced: parity check reports the hole
                for i in range(3):
                    member.leaf_multicast(f"{member.me}/m{i}", FIFO)

            env.scheduler.at(self.place_time + 0.1 + 0.2 * offset, burst)
        return state

    def results(self, state: _Slice) -> Dict[str, Any]:
        placement = {}
        for member in state.members:
            if member.is_member:
                leaf = member.leaf_member
                placement[member.me] = (leaf.group, tuple(leaf.members))
            else:
                placement[member.me] = None
        return {
            "placement": placement,
            "seqs": {me: per_sender(log) for me, log in state.logs.items()},
            "counters": state.counters(),
        }

    # -- parity --------------------------------------------------------------

    def check(self, reference: Dict, live: Dict) -> List[str]:
        errors = []
        unplaced = sorted(
            me for me, slot in live["placement"].items() if slot is None
        )
        if unplaced:
            errors.append(f"workers never placed in a leaf: {unplaced}")
        if len(live["placement"]) != self.workers:
            errors.append(
                f"live run reported {len(live['placement'])}/"
                f"{self.workers} workers"
            )
        if reference["placement"] != live["placement"]:
            errors.append(
                f"leaf placement diverges: sim {reference['placement']!r} "
                f"!= live {live['placement']!r}"
            )
        if reference["seqs"] != live["seqs"]:
            errors.append(
                f"per-sender delivery sequences diverge: "
                f"sim {reference['seqs']!r} != live {live['seqs']!r}"
            )
        return errors


class SteadyHierScenario:
    """Steady-state hierarchy under heartbeat monitoring: the parallel
    engine's bench plan (tools/perf_report.py ``--parallel``).

    Same shape as ``perf_report``'s ``hier_steady`` scenario — static
    leaders, staggered worker joins, then a quiet settle after which the
    only traffic is periodic (leaf heartbeats, gossip, leader reports) —
    expressed as a deployment-style plan so the *same definition* runs
    single-process, as a loopback cluster, or partitioned across the
    conservative-window workers.  ``owners()`` partitions workers by
    *predicted leaf*: a one-shot probe run of the join phase (periodic
    traffic off — placement is load-independent in a fixed-latency DES)
    reveals which leaf each worker lands in, and whole leaves are packed
    onto partitions.  Leaf traffic (heartbeats, intra-leaf multicast)
    dominates the steady state, so keeping each leaf on one partition is
    the locality the window engine converts into parallel speedup.
    """

    name = "hier-steady"
    service = "svc"

    def __init__(
        self,
        workers: int = 256,
        seed: int = 13,
        join_stagger: float = 0.01,
        sim_s: float = 3.0,
        settle: float = 6.0,
        heartbeat: Optional[float] = 0.1,
        suspect_after: float = 1.0,
        gossip_interval: Optional[float] = 0.5,
        resiliency: int = 3,
        fanout: int = 8,
        latency_delay: float = 0.002,
        sanitize: bool = False,
    ) -> None:
        if workers < 2:
            raise ValueError("hier-steady needs at least 2 workers")
        self.workers = workers
        self.seed = seed
        self.join_stagger = join_stagger
        self.sim_s = sim_s
        self.settle = settle
        self.heartbeat = heartbeat
        self.suspect_after = suspect_after
        self.gossip_interval = gossip_interval
        self.sanitize = sanitize
        self.params = LargeGroupParams(resiliency=resiliency, fanout=fanout)
        # The latency model is part of the plan: its floor is the
        # conservative window of a parallel run (repro.sim.parallel).
        self.latency_delay = latency_delay
        self.latency = FixedLatency(latency_delay)
        self._leaf_groups: Optional[List[List[str]]] = None

    # -- plan ----------------------------------------------------------------

    @property
    def settle_time(self) -> float:
        """All joins done plus slack: the steady state starts here (and
        so does the bench's measured window)."""
        return self.join_stagger * self.workers + self.settle

    @property
    def duration(self) -> float:
        return self.settle_time + self.sim_s

    def leader_addresses(self) -> Tuple[str, ...]:
        return tuple(
            f"{self.service}-ldr-{i}"
            for i in range(self.params.leader_group_size)
        )

    def worker_addresses(self) -> List[str]:
        return [f"{self.service}-w-{i}" for i in range(self.workers)]

    def addresses(self) -> List[str]:
        return list(self.leader_addresses()) + self.worker_addresses()

    def owners(self, nodes: int) -> Dict[str, int]:
        """Leaders on partition 0; workers packed whole-leaf-at-a-time
        into ``nodes`` roughly equal partitions.

        Leaf membership is *not* contiguous in join order — once several
        leaves exist the leaders balance later joiners across all of
        them — so index-block partitioning would strand a third of each
        leaf on foreign partitions and turn its heartbeats into
        cross-partition traffic.  Instead :meth:`leaf_groups` predicts
        the real placement and each leaf lands on exactly one partition.
        """
        owners = {address: 0 for address in self.leader_addresses()}
        addresses = self.worker_addresses()
        if nodes <= 1:
            for address in addresses:
                owners[address] = 0
            return owners
        total = len(addresses)
        pid = 0
        filled = 0
        for members in self.leaf_groups():
            if pid < nodes - 1 and filled >= (pid + 1) * total / nodes:
                pid += 1
            for address in members:
                owners[address] = pid
            filled += len(members)
        return owners

    def leaf_groups(self) -> List[List[str]]:
        """Predicted leaf composition, one address list per leaf, ordered
        by each leaf's earliest joiner.

        Runs the join phase once with periodic traffic off (no
        heartbeats, no gossip) and reads where every worker landed.  The
        probe is exact, not a heuristic: assignment decisions depend only
        on join RPC timing, which a fixed-latency DES keeps independent
        of background load, so the quiet run places workers identically
        to the monitored one.  Cached — the plan is computed once and
        shipped to every partition worker.
        """
        if self._leaf_groups is not None:
            return self._leaf_groups
        from repro.proc.env import Environment
        from repro.runtime.sim_backend import SimRuntime

        probe = SteadyHierScenario(
            workers=self.workers,
            seed=self.seed,
            join_stagger=self.join_stagger,
            sim_s=0.0,
            settle=self.settle,
            heartbeat=None,
            gossip_interval=None,
            resiliency=self.params.resiliency,
            fanout=self.params.fanout,
            latency_delay=self.latency_delay,
        )
        env = Environment(
            latency=probe.latency, runtime=SimRuntime(seed=probe.seed)
        )
        state = probe.build(env, probe.addresses())
        env.scheduler.run(until=probe.settle_time)
        leaves: Dict[Any, List[str]] = {}
        strays: List[str] = []
        for member in state.members:
            if member.is_member:
                leaves.setdefault(member.leaf_member.group, []).append(
                    member.me
                )
            else:
                strays.append(member.me)
        self._leaf_groups = list(leaves.values())
        self._leaf_groups.extend([address] for address in strays)
        return self._leaf_groups

    # -- execution -----------------------------------------------------------

    def _detector(self):
        if self.heartbeat is None:
            return None
        from repro.failure.detector import HeartbeatDetector

        interval, suspect_after = self.heartbeat, self.suspect_after

        def factory(node):
            return HeartbeatDetector(
                node, interval=interval, suspect_after=suspect_after
            )

        return factory

    def build(self, env, local: Iterable[str]) -> _Slice:
        local_set = set(local)
        state = _Slice()
        leader_addresses = self.leader_addresses()
        detector = self._detector()
        if local_set.intersection(leader_addresses):
            if not local_set.issuperset(leader_addresses):
                raise ValueError("the leader subgroup cannot be split")
            build_leader_group(
                env,
                self.service,
                self.params,
                detector_factory=detector,
                gossip_interval=self.gossip_interval,
            )
        placed_members: List[LargeGroupMember] = []
        for i, address in enumerate(self.worker_addresses()):
            if address not in local_set:
                continue
            node = GroupNode(
                env,
                address,
                detector_factory=detector,
                gossip_interval=self.gossip_interval,
            )
            member = LargeGroupMember(
                node, self.service, leader_addresses, params=self.params
            )
            placed_members.append(member)
            state.members.append(member)
            env.scheduler.at(self.join_stagger * (i + 1), member.join)
        if self.sanitize and placed_members:

            def install():
                state.sanitizer = install_sanitizer(
                    m.leaf_member for m in placed_members if m.is_member
                )

            env.scheduler.at(self.settle_time, install)
        return state

    def results(self, state: _Slice) -> Dict[str, Any]:
        return {
            "placed": {m.me: bool(m.is_member) for m in state.members},
            "counters": state.counters(),
        }

    # -- parity --------------------------------------------------------------

    def check(self, reference: Dict, live: Dict) -> List[str]:
        errors = []
        unplaced = sorted(
            me for me, ok in live.get("placed", {}).items() if not ok
        )
        if unplaced:
            errors.append(f"workers never placed in a leaf: {unplaced}")
        if len(live.get("placed", {})) != self.workers:
            errors.append(
                f"live run reported {len(live.get('placed', {}))}/"
                f"{self.workers} workers"
            )
        return errors


class StaticHierScenario:
    """Statically placed hierarchy: the parallel engine's speedup bench.

    Same steady-state traffic shape as :class:`SteadyHierScenario` —
    all-to-all heartbeat monitoring inside each leaf, stability gossip,
    a liveness link from every leaf coordinator to the leader tier —
    but the leaves are bootstrapped from configuration
    (``create_group``: the common-configuration-file start) instead of
    leader-assigned.  Dynamic assignment balances late joiners across
    every existing leaf, and under the windowed engine that balance is
    partition-sensitive (injection order at the leaders shifts with the
    owners map), so *no* static owners map can keep dynamically built
    leaves partition-local.  Pinning placement is what a locality-aware
    deployment does anyway — the paper's premise is precisely that
    communicating processes belong on the same workstation — and it
    makes whole-leaf locality a property of the plan: every leaf lives
    on exactly one partition at any partition count, so the only
    cross-partition traffic is the thin coordinator-to-leader tier.
    """

    name = "hier-static"
    service = "svc"

    def __init__(
        self,
        workers: int = 256,
        leaf_size: int = 16,
        seed: int = 17,
        sim_s: float = 3.0,
        settle: float = 2.0,
        heartbeat: Optional[float] = 0.1,
        suspect_after: float = 1.0,
        gossip_interval: Optional[float] = 0.5,
        multicast_interval: Optional[float] = 0.5,
        leaders: int = 3,
        latency_delay: float = 0.002,
        sanitize: bool = False,
    ) -> None:
        if leaf_size < 2:
            raise ValueError("leaves need at least 2 members")
        if workers < leaf_size or workers % leaf_size:
            raise ValueError(
                f"workers ({workers}) must be a positive multiple of "
                f"leaf_size ({leaf_size})"
            )
        self.workers = workers
        self.leaf_size = leaf_size
        self.seed = seed
        self.sim_s = sim_s
        self.settle = settle
        self.heartbeat = heartbeat
        self.suspect_after = suspect_after
        self.gossip_interval = gossip_interval
        self.multicast_interval = multicast_interval
        self.leaders = leaders
        self.sanitize = sanitize
        self.latency_delay = latency_delay
        self.latency = FixedLatency(latency_delay)

    # -- plan ----------------------------------------------------------------

    @property
    def leaf_count(self) -> int:
        return self.workers // self.leaf_size

    @property
    def settle_time(self) -> float:
        return self.settle

    @property
    def duration(self) -> float:
        return self.settle + self.sim_s

    def leader_addresses(self) -> Tuple[str, ...]:
        return tuple(f"{self.service}-ldr-{i}" for i in range(self.leaders))

    def worker_addresses(self) -> List[str]:
        return [f"{self.service}-w-{i}" for i in range(self.workers)]

    def addresses(self) -> List[str]:
        return list(self.leader_addresses()) + self.worker_addresses()

    def leaf_block(self, leaf: int) -> List[str]:
        base = leaf * self.leaf_size
        return [
            f"{self.service}-w-{i}"
            for i in range(base, base + self.leaf_size)
        ]

    def owners(self, nodes: int) -> Dict[str, int]:
        """Leaders on partition 0; whole leaves in contiguous blocks —
        a leaf is never split, at any partition count."""
        owners = {address: 0 for address in self.leader_addresses()}
        count = self.leaf_count
        for leaf in range(count):
            pid = leaf * nodes // count
            for address in self.leaf_block(leaf):
                owners[address] = pid
        return owners

    # -- execution -----------------------------------------------------------

    def _detector(self):
        if self.heartbeat is None:
            return None
        from repro.failure.detector import HeartbeatDetector

        interval, suspect_after = self.heartbeat, self.suspect_after

        def factory(node):
            return HeartbeatDetector(
                node, interval=interval, suspect_after=suspect_after
            )

        return factory

    def _start_multicast(self, env, node, member, leaf: int) -> None:
        """Leaf-local ordered traffic: the coordinator multicasts a small
        FIFO payload every ``multicast_interval``, staggered per leaf so
        ticks don't burst on the same instant.  The traffic never leaves
        the leaf, so it stays partition-local under any owners map — and
        it gives the delivery sanitizer real ordered deliveries to
        check."""
        interval = self.multicast_interval
        counter = [0]

        def tick(member=member):
            member.multicast(f"{member.group}/r{counter[0]}", FIFO)
            counter[0] += 1

        offset = interval * leaf / self.leaf_count
        # The last tick lands well before the quiescence cut, so every
        # multicast is fully delivered leaf-wide when the sanitizer's
        # at-quiescence check (VS004) compares delivery sets.
        t = interval + offset
        while t < self.duration - 0.1:
            env.scheduler.at(t, tick)
            t += interval

    def build(self, env, local: Iterable[str]) -> _Slice:
        local_set = set(local)
        state = _Slice()
        detector = self._detector()
        leader_addresses = self.leader_addresses()
        if local_set.intersection(leader_addresses):
            if not local_set.issuperset(leader_addresses):
                raise ValueError("the leader subgroup cannot be split")
            for address in leader_addresses:
                node = GroupNode(
                    env,
                    address,
                    detector_factory=detector,
                    gossip_interval=self.gossip_interval,
                )
                state.members.append(
                    node.runtime.create_group(
                        f"{self.service}::leaders", list(leader_addresses)
                    )
                )
        leaf_members = []
        for leaf in range(self.leaf_count):
            block = self.leaf_block(leaf)
            present = [a for a in block if a in local_set]
            if not present:
                continue
            if len(present) != len(block):
                raise ValueError(
                    f"leaf {leaf} split across nodes: "
                    f"{len(present)}/{len(block)} local"
                )
            group = f"{self.service}::leaf-{leaf}"
            for rank, address in enumerate(block):
                node = GroupNode(
                    env,
                    address,
                    detector_factory=detector,
                    gossip_interval=self.gossip_interval,
                )
                member = node.runtime.create_group(group, list(block))
                state.members.append(member)
                leaf_members.append(member)
                if rank == 0:
                    if node.runtime.detector is not None:
                        # The coordinator's liveness link to the leader
                        # tier: the scenario's only cross-leaf traffic.
                        node.runtime.detector.watch(
                            leader_addresses[leaf % len(leader_addresses)]
                        )
                    if self.multicast_interval is not None:
                        self._start_multicast(env, node, member, leaf)
        if self.sanitize and leaf_members:

            def install():
                state.sanitizer = install_sanitizer(leaf_members)

            env.scheduler.at(self.settle_time, install)
        return state

    def results(self, state: _Slice) -> Dict[str, Any]:
        views = {
            f"{member.group}|{member.me}": (
                member.view.size if member.view is not None else 0
            )
            for member in state.members
        }
        return {"views": views, "counters": state.counters()}

    # -- parity --------------------------------------------------------------

    def check(self, reference: Dict, live: Dict) -> List[str]:
        errors = []
        views = live.get("views", {})
        leaders_group = f"{self.service}::leaders"
        for key, size in views.items():
            group = key.split("|", 1)[0]
            expected = (
                self.leaders if group == leaders_group else self.leaf_size
            )
            if size != expected:
                errors.append(f"{key}: view size {size} != {expected}")
        expected_count = self.workers + self.leaders
        if len(views) != expected_count:
            errors.append(
                f"live run reported {len(views)}/{expected_count} members"
            )
        return errors


def make_scenario(name: str, size: Optional[int] = None):
    """CLI/test factory: ``flat`` (group size), ``hier`` (workers), or
    ``hier-reorg`` (the same plan with a load-driven reorg policy — leaf
    load reports and rate-triggered splits live on every engine)."""
    if name == "flat":
        return FlatScenario(members=size if size else 4)
    if name == "hier":
        return HierScenario(workers=size if size else 6)
    if name == "hier-reorg":
        return HierScenario(
            workers=size if size else 6,
            reorg=ReorgPolicy(
                mode="load",
                report_interval=0.5,
                cooldown=4.0,
                hot_delivery_rate=10.0,
                hot_request_rate=8.0,
                cold_delivery_rate=0.5,
                cold_request_rate=0.5,
            ),
        )
    raise ValueError(
        f"unknown scenario {name!r} (expected flat|hier|hier-reorg)"
    )


def merge_results(per_node: Iterable[Dict[str, Any]]) -> Dict[str, Any]:
    """Union per-node result slices into one cluster-wide result: member
    keyed maps merge disjointly, sanitizer counters sum."""
    merged: Dict[str, Any] = {}
    for result in per_node:
        for key, value in result.items():
            if key == "counters":
                acc = merged.setdefault("counters", {})
                for name, count in value.items():
                    acc[name] = acc.get(name, 0) + count
            else:
                merged.setdefault(key, {}).update(value)
    return merged


def run_reference(scenario) -> Dict[str, Any]:
    """The sim engine runs the identical plan in one Environment — the
    parity baseline every deployment is checked against."""
    from repro.proc.env import Environment
    from repro.runtime.sim_backend import SimRuntime

    env = Environment(latency=LATENCY, runtime=SimRuntime(seed=scenario.seed))
    state = scenario.build(env, scenario.addresses())
    env.run_for(scenario.duration)
    return scenario.results(state)
