"""repro — hierarchical process groups for large-scale applications on
networks of workstations.

A from-scratch Python reproduction of Cooper & Birman (1989): the
virtually synchronous process-group substrate of ISIS (views, fbcast /
cbcast / abcast, the toolkit) plus the paper's contribution — large groups
organised as bounded leaf subgroups under a resilient group leader, with
tree-structured atomic broadcast — all running on a deterministic
discrete-event network simulator.

Quickstart::

    from repro import Environment, build_group, FIFO

    env = Environment(seed=1)
    nodes, members = build_group(env, "svc", 5)
    members[0].add_delivery_listener(lambda e: print("got", e.payload))
    members[2].multicast("hello", FIFO)
    env.run_for(1.0)

See ``examples/`` for the full tour and ``DESIGN.md`` for the system map.
"""

from repro.core.params import LargeGroupParams
from repro.membership.events import CAUSAL, FIFO, TOTAL
from repro.membership.service import GroupNode, build_group, build_nodes
from repro.net.latency import FixedLatency, LanLatency, UniformLatency
from repro.proc.env import Environment

__version__ = "1.0.0"

__all__ = [
    "CAUSAL",
    "Environment",
    "FIFO",
    "FixedLatency",
    "GroupNode",
    "LanLatency",
    "LargeGroupParams",
    "TOTAL",
    "UniformLatency",
    "build_group",
    "build_nodes",
    "__version__",
]
