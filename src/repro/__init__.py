"""repro — hierarchical process groups for large-scale applications on
networks of workstations.

A from-scratch Python reproduction of Cooper & Birman (1989): the
virtually synchronous process-group substrate of ISIS (views, fbcast /
cbcast / abcast, the toolkit) plus the paper's contribution — large groups
organised as bounded leaf subgroups under a resilient group leader, with
tree-structured atomic broadcast.  The protocol stack is engine-agnostic
(:mod:`repro.runtime`): by default it runs on a deterministic
discrete-event simulator (:class:`SimRuntime`); pass
``Environment(runtime=AsyncioRuntime(...))`` and the same protocols run
live on wall-clock asyncio timers.

Quickstart::

    from repro import Environment, build_group, FIFO

    env = Environment(seed=1)
    nodes, members = build_group(env, "svc", 5)
    members[0].add_delivery_listener(lambda e: print("got", e.payload))
    members[2].multicast("hello", FIFO)
    env.run_for(1.0)

See ``examples/`` for the full tour and ``DESIGN.md`` for the system map.
"""

from repro.core.params import LargeGroupParams
from repro.membership.events import CAUSAL, FIFO, TOTAL
from repro.membership.service import GroupNode, build_group, build_nodes
from repro.net.latency import FixedLatency, LanLatency, UniformLatency
from repro.proc.env import Environment
from repro.runtime import AsyncioRuntime, SimRuntime

__version__ = "1.0.0"

__all__ = [
    "AsyncioRuntime",
    "CAUSAL",
    "Environment",
    "FIFO",
    "FixedLatency",
    "GroupNode",
    "LanLatency",
    "LargeGroupParams",
    "SimRuntime",
    "TOTAL",
    "UniformLatency",
    "build_group",
    "build_nodes",
    "__version__",
]
